// Extension ablation (paper §VII future work: "identify more features"):
// the 11 Table-II text features vs the 16-feature extended set that adds
// the §V measurement-study signals (buyer reliability, web-client ratio,
// burst concentration, repeat buyers). Train on D0, evaluate on D1 —
// the cross-dataset regime where extra signal matters most.

#include <cstdio>

#include "analysis/validation.h"
#include "bench_common.h"
#include "core/extended_features.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

namespace {

struct EvalResult {
  double auc = 0.0;
  ml::ClassificationMetrics at_calibrated;
};

/// Trains a GBDT on `train`, scores `test`, reports AUC and metrics at the
/// threshold calibrated for 0.9 precision on a held-out slice of train.
EvalResult Evaluate(const ml::Dataset& train, const ml::Dataset& test) {
  ml::Gbdt model;
  Status st = model.Fit(train);
  CATS_CHECK(st.ok());
  std::vector<double> scores = model.PredictProbaAll(test);
  EvalResult out;
  out.auc = ml::RocAuc(test.labels(), scores);
  // Threshold = best F1 on the test scores' own sweep is cheating; use a
  // fixed 0.6 (library default) so the two feature sets are compared at
  // the same operating rule.
  out.at_calibrated = ml::ComputeMetricsFromScores(test.labels(), scores, 0.6);
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Extension ablation — Table-II features vs extended (+user/order/"
      "temporal) features",
      "§VII future work: more public-signal features should help; §V says "
      "which ones");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));
  bench::PlatformData d1 =
      context.MakePlatform(platform::TaobaoD1Config(scales.d1));

  core::FeatureExtractor base(&context.semantic_model());
  core::ExtendedFeatureExtractor extended(&context.semantic_model());

  auto base_train = base.BuildDataset(d0.store.items(), d0.TrueLabels());
  auto base_test = base.BuildDataset(d1.store.items(), d1.TrueLabels());
  auto ext_train = extended.BuildDataset(d0.store.items(), d0.TrueLabels());
  auto ext_test = extended.BuildDataset(d1.store.items(), d1.TrueLabels());
  CATS_CHECK(base_train.ok() && base_test.ok() && ext_train.ok() &&
             ext_test.ok());

  EvalResult base_result = Evaluate(*base_train, *base_test);
  EvalResult ext_result = Evaluate(*ext_train, *ext_test);

  TablePrinter table({"Feature set", "AUC (D1)", "Precision@0.6",
                      "Recall@0.6", "F1@0.6"});
  table.AddRow({"11 text features (paper Table II)",
                StrFormat("%.4f", base_result.auc),
                StrFormat("%.3f", base_result.at_calibrated.precision),
                StrFormat("%.3f", base_result.at_calibrated.recall),
                StrFormat("%.3f", base_result.at_calibrated.f1)});
  table.AddRow({"16 extended (+buyer/client/burst/repeat)",
                StrFormat("%.4f", ext_result.auc),
                StrFormat("%.3f", ext_result.at_calibrated.precision),
                StrFormat("%.3f", ext_result.at_calibrated.recall),
                StrFormat("%.3f", ext_result.at_calibrated.f1)});
  table.Print();

  std::printf("\nThe extended set folds the paper's §V measurement findings "
              "back into the\ndetector — the concrete realization of §VII's "
              "\"identify more features\" future work.\n");
  return 0;
}
