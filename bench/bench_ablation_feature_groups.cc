// Ablation: the paper groups its 11 features into word-level, semantic and
// structural (§II-A). How much does each group contribute? Five-fold CV of
// the Gbdt on each group and their unions, plus the n-gram and rule-filter
// ablations called out in DESIGN.md §4.

#include <cstdio>

#include "bench_common.h"
#include "ml/cross_validation.h"
#include "ml/gbdt.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

namespace {

/// Copies a column subset of a dataset.
ml::Dataset SelectFeatures(const ml::Dataset& data,
                           const std::vector<size_t>& features) {
  std::vector<std::string> names;
  for (size_t f : features) names.push_back(data.feature_names()[f]);
  ml::Dataset out(names);
  std::vector<float> row(features.size());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    for (size_t j = 0; j < features.size(); ++j) {
      row[j] = data.Value(i, features[j]);
    }
    (void)out.AddRow(row, data.Label(i));
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Ablation — feature groups (word / semantic / structural) and n-grams",
      "every Table-II feature group carries signal; the full 11 do best");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  ml::Dataset full = context.BuildDataset(five_k);

  using F = core::FeatureId;
  auto id = [](F f) { return static_cast<size_t>(f); };
  const std::vector<size_t> word_level = {
      id(F::kAveragePositiveNumber), id(F::kAveragePositiveNegativeNumber),
      id(F::kAverageNgramNumber), id(F::kAverageNgramRatio)};
  const std::vector<size_t> semantic = {id(F::kAverageSentiment)};
  const std::vector<size_t> structural = {
      id(F::kUniqueWordRatio),      id(F::kAverageCommentEntropy),
      id(F::kAverageCommentLength), id(F::kSumCommentLength),
      id(F::kSumPunctuationNumber), id(F::kAveragePunctuationRatio)};
  std::vector<size_t> no_ngram;
  for (size_t f = 0; f < core::kNumFeatures; ++f) {
    if (f != id(F::kAverageNgramNumber) && f != id(F::kAverageNgramRatio)) {
      no_ngram.push_back(f);
    }
  }
  std::vector<size_t> all(core::kNumFeatures);
  for (size_t f = 0; f < core::kNumFeatures; ++f) all[f] = f;
  std::vector<size_t> word_semantic = word_level;
  word_semantic.insert(word_semantic.end(), semantic.begin(), semantic.end());

  struct Config {
    const char* name;
    std::vector<size_t> features;
  };
  std::vector<Config> configs = {
      {"word-level only (4)", word_level},
      {"semantic only (1)", semantic},
      {"structural only (6)", structural},
      {"word + semantic (5)", word_semantic},
      {"all minus n-grams (9)", no_ngram},
      {"all 11 (paper)", all},
  };

  TablePrinter table({"Feature set", "Precision", "Recall", "F1"});
  for (const Config& config : configs) {
    ml::Dataset subset = SelectFeatures(full, config.features);
    ml::GbdtOptions options;
    options.num_rounds = 60;
    ml::Gbdt model(options);
    auto result = ml::CrossValidate(model, subset, 5, 2019);
    if (!result.ok()) {
      std::fprintf(stderr, "CV failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({config.name, StrFormat("%.3f", result->precision),
                  StrFormat("%.3f", result->recall),
                  StrFormat("%.3f", result->f1)});
  }
  table.Print();
  std::printf("\nExpected shape: structural > word-level > semantic alone; "
              "the full set wins;\ndropping the two n-gram features costs a "
              "little recall (paper keeps them).\n");
  return 0;
}
