// Ablation: the two-stage detector (paper §II-B). Stage 1 removes items by
// cheap rules (sales volume < 5, no positive signal) before the classifier
// runs. Measure detection quality and classifier workload with and without
// stage 1, and with seeds-only lexicons instead of expanded ones.

#include <cstdio>

#include "analysis/validation.h"
#include "bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

namespace {

struct RunResult {
  ml::ClassificationMetrics metrics;
  size_t classified = 0;
  size_t flagged = 0;
};

RunResult RunDetector(
    const core::SemanticModel* model,
                      const bench::PlatformData& d0,
                      const bench::PlatformData& d1,
                      const core::DetectorOptions& options) {
  core::Detector detector(model, options);
  Status st = detector.Train(d0.store.items(), d0.TrueLabels());
  CATS_CHECK(st.ok());
  auto report = detector.Detect(d1.store.items());
  CATS_CHECK(report.ok());
  RunResult out;
  out.metrics =
      analysis::EvaluateReport(*report, d1.ItemIds(), d1.TrueLabels());
  out.classified = report->items_classified;
  out.flagged = report->detections.size();
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Ablation — stage-1 rule filter and lexicon expansion",
      "the rule filter trims the classifier's workload without hurting "
      "recall; expanded lexicons beat raw seeds");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));
  bench::PlatformData d1 =
      context.MakePlatform(platform::TaobaoD1Config(scales.d1));

  TablePrinter table({"Configuration", "Precision", "Recall", "F1",
                      "items classified", "flagged"});
  auto add = [&table](const char* name, const RunResult& r) {
    table.AddRow({name, StrFormat("%.3f", r.metrics.precision),
                  StrFormat("%.3f", r.metrics.recall),
                  StrFormat("%.3f", r.metrics.f1),
                  std::to_string(r.classified), std::to_string(r.flagged)});
  };

  // (a) full pipeline.
  core::DetectorOptions full;
  add("two-stage (paper)",
      RunDetector(&context.semantic_model(), d0, d1, full));

  // (b) no rule filter: classifier sees everything.
  core::DetectorOptions no_rules;
  no_rules.rules.min_sales_volume = 0;
  no_rules.rules.require_positive_signal = false;
  add("no stage-1 rules",
      RunDetector(&context.semantic_model(), d0, d1, no_rules));

  // (c) seeds-only lexicons (no word2vec expansion).
  core::SemanticModel seeds_model;
  seeds_model.dictionary = context.semantic_model().dictionary;
  seeds_model.sentiment = context.semantic_model().sentiment;
  for (const std::string& w : context.language().PositiveSeeds(4)) {
    seeds_model.positive.Insert(w);
  }
  for (const std::string& w : context.language().NegativeSeeds(4)) {
    seeds_model.negative.Insert(w);
  }
  add("seed lexicons only", RunDetector(&seeds_model, d0, d1, full));

  table.Print();
  std::printf("\nReading: stage 1 cuts the classifier workload (items "
              "classified) at ~zero\nrecall cost; word2vec-expanded lexicons "
              "strengthen the word-level features\nover raw seeds "
              "(paper §II-A2's motivation).\n");
  return 0;
}
