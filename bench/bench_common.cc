#include "bench_common.h"

#include <cstdio>
#include <filesystem>

#include "platform/comment_generator.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cats::bench {

std::vector<int> PlatformData::TrueLabels() const {
  std::vector<int> labels;
  labels.reserve(store.items().size());
  for (const collect::CollectedItem& ci : store.items()) {
    labels.push_back(market->IsFraudItem(ci.item.item_id) ? 1 : 0);
  }
  return labels;
}

std::vector<uint64_t> PlatformData::ItemIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(store.items().size());
  for (const collect::CollectedItem& ci : store.items()) {
    ids.push_back(ci.item.item_id);
  }
  return ids;
}

analysis::LabeledSplit PlatformData::Split() const {
  return analysis::SplitByLabel(store.items(), TrueLabels());
}

namespace {

/// Bump when anything feeding the semantic model changes; stale caches are
/// rebuilt automatically.
constexpr const char* kSemanticCacheVersion = "cats-bench-semantic-v3";

}  // namespace

BenchContext::BenchContext() {
  SetLogLevel(LogLevel::kWarning);
  Stopwatch watch;
  language_ = std::make_unique<platform::SyntheticLanguage>(
      platform::DefaultLanguageOptions());

  // The semantic model is expensive (a ~2M-token word2vec run); cache it
  // on disk so only the first bench binary pays. Delete
  // bench_out/semantic_cache to force a rebuild.
  std::string cache_dir = BenchOutPath("semantic_cache");
  std::string version_file = cache_dir + "/version.txt";
  auto version = ReadFileToString(version_file);
  if (version.ok() && TrimWhitespace(*version) == kSemanticCacheVersion) {
    auto loaded = core::LoadSemanticModel(cache_dir);
    if (loaded.ok()) {
      model_ =
          std::make_unique<core::SemanticModel>(std::move(loaded).value());
      std::fprintf(stderr,
                   "[bench] semantic model loaded from cache (%.1fs, "
                   "|P|=%zu |N|=%zu)\n",
                   watch.ElapsedSeconds(), model_->positive.size(),
                   model_->negative.size());
      return;
    }
  }

  // Build the word2vec training corpus directly from the comment generator
  // — the analogue of the paper's 70M-comment Taobao crawl of Aug 2017.
  std::vector<std::string> corpus;
  corpus.reserve(175000);
  {
    platform::CommentGenerator generator(language_.get());
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 150000; ++i) {
      corpus.push_back(generator.GenerateBenign(rng.Beta(4.0, 2.0), &rng));
    }
    for (int i = 0; i < 1875; ++i) {
      bool stealth = rng.Bernoulli(0.3);
      auto tmpl = generator.GenerateSpamTemplate(&rng, stealth);
      for (int j = 0; j < 12; ++j) {
        corpus.push_back(
            generator.GenerateSpamFromTemplate(tmpl, &rng, stealth));
      }
    }
  }

  // Sentiment-training reviews (the SnowNLP-shipped-corpus analogue).
  std::vector<std::pair<std::string, bool>> sentiment_corpus;
  {
    platform::CommentGenerator generator(language_.get());
    Rng rng(0x5E17);
    for (int i = 0; i < 8000; ++i) {
      bool positive = (i % 2) == 0;
      sentiment_corpus.emplace_back(
          generator.GenerateSentimentTrainingDoc(positive, &rng), positive);
    }
  }

  core::SemanticAnalyzerOptions options;
  options.word2vec.dim = 48;
  options.word2vec.epochs = 6;
  options.expansion.max_words = 200;  // the paper's |P| ~ |N| ~ 200
  options.expansion.min_similarity = 0.65f;
  options.expansion.min_centroid_similarity = 0.5f;
  options.expansion.max_iterations = 3;
  analyzer_ = core::SemanticAnalyzer(options);
  auto result = analyzer_.Build(corpus,
                                language_->BuildSegmentationDictionary(),
                                language_->PositiveSeeds(4),
                                language_->NegativeSeeds(4),
                                sentiment_corpus);
  CATS_CHECK(result.ok());
  model_ = std::make_unique<core::SemanticModel>(std::move(result).value());
  std::fprintf(stderr,
               "[bench] semantic model built in %.1fs (|P|=%zu |N|=%zu)\n",
               watch.ElapsedSeconds(), model_->positive.size(),
               model_->negative.size());

  std::filesystem::create_directories(cache_dir);
  Status cache_st = core::SaveSemanticModel(*model_, cache_dir);
  if (cache_st.ok()) {
    cache_st = WriteStringToFile(version_file, kSemanticCacheVersion);
  }
  if (!cache_st.ok()) {
    std::fprintf(stderr, "[bench] cache write failed: %s\n",
                 cache_st.ToString().c_str());
  }
}

PlatformData BenchContext::MakePlatform(
    const platform::MarketplaceConfig& config) const {
  Stopwatch watch;
  PlatformData out;
  out.market = std::make_unique<platform::Marketplace>(
      platform::Marketplace::Generate(config, language_.get()));
  platform::ApiOptions api_options;
  api_options.page_size = 100;
  platform::MarketplaceApi api(out.market.get(), api_options);
  collect::FakeClock clock;
  collect::CrawlerOptions crawl_options;
  crawl_options.requests_per_second = 1e6;  // virtual time; don't throttle
  collect::Crawler crawler(&api, crawl_options, &clock);
  Status st = crawler.Crawl(&out.store);
  CATS_CHECK(st.ok());
  out.crawl_stats = crawler.stats();
  std::fprintf(stderr,
               "[bench] platform %s: %zu items, %zu comments (%.1fs)\n",
               config.name.c_str(), out.store.items().size(),
               out.store.num_comments(), watch.ElapsedSeconds());
  return out;
}

ml::Dataset BenchContext::BuildDataset(const PlatformData& data) const {
  core::FeatureExtractorOptions options;
  options.num_threads = 8;
  core::FeatureExtractor extractor(model_.get(), options);
  auto dataset = extractor.BuildDataset(data.store.items(), data.TrueLabels());
  CATS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::unique_ptr<core::Detector> BenchContext::TrainDetector(
    const PlatformData& d0, const core::DetectorOptions& options) const {
  auto detector = std::make_unique<core::Detector>(model_.get(), options);
  Status st = detector->Train(d0.store.items(), d0.TrueLabels());
  CATS_CHECK(st.ok());
  return detector;
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("CATS reproduction — %s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================="
              "=================\n");
}

std::string BenchOutPath(const std::string& file) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + file;
}

void DumpComparisonCsv(const std::string& name,
                       const analysis::DistributionComparison& cmp,
                       const std::string& label_a,
                       const std::string& label_b) {
  CsvWriter writer(BenchOutPath(name));
  writer.SetHeader({"bin_center", "density_" + label_a, "density_" + label_b});
  for (size_t i = 0; i < cmp.a.num_bins(); ++i) {
    writer.AddRow({StrFormat("%.6g", cmp.a.BinCenter(i)),
                   StrFormat("%.6g", cmp.a.Density(i)),
                   StrFormat("%.6g", cmp.b.Density(i))});
  }
  Status st = writer.Flush();
  if (!st.ok()) {
    std::fprintf(stderr, "[bench] csv dump failed: %s\n",
                 st.ToString().c_str());
  }
}

}  // namespace cats::bench
