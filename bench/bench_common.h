#ifndef CATS_BENCH_BENCH_COMMON_H_
#define CATS_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/distributions.h"
#include "collect/crawler.h"
#include "collect/store.h"
#include "core/cats.h"
#include "core/detector.h"
#include "platform/api.h"
#include "platform/presets.h"
#include "util/stopwatch.h"

namespace cats::bench {

/// Default scales for the experiment benches: small enough for seconds-long
/// runs, large enough that every paper statistic keeps its shape. Override
/// per bench where noted.
struct BenchScales {
  double d0 = 0.10;       // Table IV training set (paper 34k items)
  double five_k = 0.40;   // Table III / Figs 1-5 subset (paper 10k items)
  double d1 = 0.01;       // Table V/VI evaluation set (paper 1.48M items)
  double e_platform = 0.002;  // §IV-A crawl (paper 4.5M items)
};

/// One generated platform plus its crawled public data.
struct PlatformData {
  std::unique_ptr<platform::Marketplace> market;
  collect::DataStore store;
  collect::CrawlStats crawl_stats;

  /// Ground-truth labels aligned with store.items().
  std::vector<int> TrueLabels() const;
  /// Item ids aligned with store.items().
  std::vector<uint64_t> ItemIds() const;
  /// Ground-truth fraud/normal split of the collected items.
  analysis::LabeledSplit Split() const;
};

/// Shared setup for all experiment benches: the synthetic language and the
/// Taobao-trained semantic model (word2vec lexicons + sentiment), built once.
class BenchContext {
 public:
  BenchContext();

  const platform::SyntheticLanguage& language() const { return *language_; }
  const core::SemanticModel& semantic_model() const { return *model_; }
  const core::SemanticAnalyzer& analyzer() const { return analyzer_; }

  /// Generates and crawls one platform.
  PlatformData MakePlatform(const platform::MarketplaceConfig& config) const;

  /// Extracts the 11 features and attaches ground-truth labels.
  ml::Dataset BuildDataset(const PlatformData& data) const;

  /// A detector trained on a D0-scale labeled platform.
  std::unique_ptr<core::Detector> TrainDetector(
      const PlatformData& d0, const core::DetectorOptions& options) const;
  std::unique_ptr<core::Detector> TrainDetector(const PlatformData& d0) const {
    return TrainDetector(d0, core::DetectorOptions{});
  }

 private:
  std::unique_ptr<platform::SyntheticLanguage> language_;
  core::SemanticAnalyzer analyzer_;
  std::unique_ptr<core::SemanticModel> model_;
};

/// Prints the standard bench banner: experiment id, what the paper showed.
void PrintBanner(const std::string& experiment, const std::string& claim);

/// Writes a two-series CSV (bin, series_a, series_b) next to the ASCII
/// output, under bench_out/.
void DumpComparisonCsv(const std::string& name,
                       const analysis::DistributionComparison& cmp,
                       const std::string& label_a, const std::string& label_b);

/// Ensures bench_out/ exists and returns the path of `file` inside it.
std::string BenchOutPath(const std::string& file);

}  // namespace cats::bench

#endif  // CATS_BENCH_BENCH_COMMON_H_
