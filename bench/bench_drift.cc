// bench_drift — cost and payoff of the adversarial-drift loop.
//
// Gated timings (google-benchmark rows, diffed by scripts/perf_gate.py like
// the ml/pipeline suites):
//   BM_DriftObserve         — per-score DriftDetector::Observe on the
//                             serving hot path
//   BM_DriftSetReference/N  — reference (re)binning at deploy/swap time
//   BM_WarmStartRetrain     — warm-start GBDT continuation on a labeled
//                             recent window (the self-healing step)
//   BM_ArmsRaceScore/P      — frozen-model batch scoring of adversary
//                             profile P's traffic (0=none, 1=mild,
//                             2=hostile)
//
// The arms race itself rides along as counters on BM_ArmsRaceScore: for
// each profile, `strength` (the adaptation ramp at mid-window),
// `auc_frozen` (the baseline-trained model on that profile's unseen
// traffic) and `auc_retrained` (after a warm-start continuation on the
// profile's labeled window). BENCH_drift.json therefore carries both the
// perf gate's timings and the adversary-strength-vs-AUC curve the docs
// quote. perf_gate.py ignores counters, so the AUC columns inform review
// without flapping the gate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "drift/drift_detector.h"
#include "fault/adversary_plan.h"
#include "ml/metrics.h"
#include "platform/presets.h"
#include "util/logging.h"

namespace cats {
namespace {

/// Deterministic right-skewed scores in [0, 1], shaped like a healthy
/// fraud-score stream (mass near 0, thin tail near 1).
std::vector<double> SyntheticScores(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> scores;
  scores.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = uniform(rng);
    scores.push_back(u * u * u);  // ~Beta(1/3 quantile transform)
  }
  return scores;
}

/// Per-item fraud scores aligned with `items`; rule-filtered and
/// quarantined items score 0.0 so AUC judges the whole pipeline.
std::vector<double> ScoreAll(const core::Cats& cats_system,
                             const std::vector<collect::CollectedItem>& items) {
  const core::Detector& detector = cats_system.detector();
  core::StagedBatch staged = detector.StageForScoring(items);
  std::vector<core::FeatureVector> rows;
  rows.reserve(staged.pending.size());
  for (size_t i = 0; i < staged.pending.size(); ++i) {
    core::FeatureVector row;
    std::copy_n(staged.rows.begin() +
                    static_cast<std::ptrdiff_t>(i * row.size()),
                row.size(), row.begin());
    rows.push_back(row);
  }
  std::unordered_map<uint64_t, double> by_id;
  if (!rows.empty()) {
    auto scored = detector.ScoreFeatures(rows);
    CATS_CHECK(scored.ok());
    for (size_t i = 0; i < staged.pending.size(); ++i) {
      by_id[staged.pending[i].item_id] = (*scored)[i];
    }
  }
  std::vector<double> scores(items.size(), 0.0);
  for (size_t i = 0; i < items.size(); ++i) {
    auto it = by_id.find(items[i].item.item_id);
    if (it != by_id.end()) scores[i] = it->second;
  }
  return scores;
}

struct ProfileRun {
  const char* name = "";
  fault::AdversaryProfile profile;
  bench::PlatformData data;
  // Even-index items form the labeled retrain window, odd-index items the
  // held-out evaluation split (same convention as tests/arms_race_test.cc).
  std::vector<collect::CollectedItem> train_items, eval_items;
  std::vector<int> train_labels, eval_labels;
  double strength = 0.0;
  double auc_frozen = 0.0;
  double auc_retrained = 0.0;
};

/// One-time arms-race setup shared by every benchmark: a frozen model
/// trained on clean D0 traffic, plus per-profile unseen markets with their
/// frozen/retrained AUCs precomputed (the timed regions below only score).
struct ArmsRace {
  bench::BenchContext ctx;
  std::string frozen_dir;
  core::Cats frozen;
  std::vector<ProfileRun> runs;

  static const ArmsRace& Get() {
    static const ArmsRace* race = [] {
      auto* r = new ArmsRace();
      r->Build();
      return r;
    }();
    return *race;
  }

  void Build() {
    // The frozen model: trained once on a clean market, deployed via the
    // manifest save/load path (what a real swap would reload).
    bench::PlatformData d0 =
        ctx.MakePlatform(platform::TaobaoD0Config(/*scale=*/0.03));
    core::Cats trainer;
    trainer.SetSemanticModel(ctx.semantic_model());
    Status st = trainer.TrainDetector(d0.store.items(), d0.TrueLabels());
    frozen_dir = (std::filesystem::temp_directory_path() /
                  "cats_bench_drift_model")
                     .string();
    std::filesystem::remove_all(frozen_dir);
    std::filesystem::create_directories(frozen_dir);
    if (st.ok()) st = trainer.SaveModel(frozen_dir);
    if (st.ok()) st = frozen.LoadModel(frozen_dir);
    CATS_CHECK(st.ok());

    runs.resize(3);
    runs[0].name = "none";
    runs[0].profile = fault::AdversaryProfile::None();
    runs[1].name = "mild";
    runs[1].profile = fault::AdversaryProfile::Mild();
    runs[2].name = "hostile";
    runs[2].profile = fault::AdversaryProfile::Hostile();
    for (size_t i = 0; i < runs.size(); ++i) {
      ProfileRun& run = runs[i];
      // Unseen seed per profile: the frozen model must face traffic it has
      // never trained on, or memorized structure masks the adversary.
      platform::MarketplaceConfig config =
          platform::TaobaoD0Config(/*scale=*/0.03);
      config.seed = 0xD21F7 + i;
      config.adversary = run.profile;
      run.data = ctx.MakePlatform(config);
      // Mid-window ramp strength = the typical campaign's adaptation
      // (campaign start days are uniform over the 120-day window). An
      // inactive profile has no campaigns to adapt, so its strength is 0.
      run.strength =
          run.profile.active()
              ? fault::AdversaryPlan(run.profile, config.seed).StrengthAtDay(60)
              : 0.0;

      const std::vector<collect::CollectedItem>& items =
          run.data.store.items();
      const std::vector<int> labels = run.data.TrueLabels();
      for (size_t j = 0; j < items.size(); ++j) {
        if (j % 2 == 0) {
          run.train_items.push_back(items[j]);
          run.train_labels.push_back(labels[j]);
        } else {
          run.eval_items.push_back(items[j]);
          run.eval_labels.push_back(labels[j]);
        }
      }
      run.auc_frozen =
          ml::RocAuc(run.eval_labels, ScoreAll(frozen, run.eval_items));

      core::Cats retrained;
      st = retrained.LoadModel(frozen_dir);
      if (st.ok()) {
        st = retrained.WarmStartDetector(run.train_items, run.train_labels,
                                         /*extra_rounds=*/120);
      }
      CATS_CHECK(st.ok());
      run.auc_retrained =
          ml::RocAuc(run.eval_labels, ScoreAll(retrained, run.eval_items));
      std::printf(
          "arms-race %-8s strength=%.2f auc_frozen=%.4f auc_retrained=%.4f\n",
          run.name, run.strength, run.auc_frozen, run.auc_retrained);
    }
  }
};

// --- Drift detector hot path -----------------------------------------------

void BM_DriftObserve(benchmark::State& state) {
  drift::DriftDetector detector(drift::DriftDetectorOptions{});
  detector.SetReference(SyntheticScores(512, /*seed=*/1));
  const std::vector<double> live = SyntheticScores(4096, /*seed=*/2);
  size_t i = 0;
  for (auto _ : state) {
    detector.Observe(live[i]);
    i = (i + 1) % live.size();
  }
  benchmark::DoNotOptimize(detector.psi());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DriftObserve);

void BM_DriftSetReference(benchmark::State& state) {
  drift::DriftDetector detector(drift::DriftDetectorOptions{});
  const std::vector<double> reference =
      SyntheticScores(static_cast<size_t>(state.range(0)), /*seed=*/3);
  for (auto _ : state) {
    detector.SetReference(reference);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DriftSetReference)->Arg(512)->Arg(4096);

// --- Self-healing retrain --------------------------------------------------

void BM_WarmStartRetrain(benchmark::State& state) {
  const ArmsRace& race = ArmsRace::Get();
  const ProfileRun& hostile = race.runs[2];
  for (auto _ : state) {
    core::Cats candidate;
    Status st = candidate.LoadModel(race.frozen_dir);
    if (st.ok()) {
      st = candidate.WarmStartDetector(hostile.train_items,
                                       hostile.train_labels,
                                       /*extra_rounds=*/40);
    }
    CATS_CHECK(st.ok());
    benchmark::DoNotOptimize(candidate.detector().trained());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(hostile.train_items.size()));
}
BENCHMARK(BM_WarmStartRetrain)->Unit(benchmark::kMillisecond);

// --- Arms race: adversary strength vs. AUC ---------------------------------

void BM_ArmsRaceScore(benchmark::State& state) {
  const ArmsRace& race = ArmsRace::Get();
  const ProfileRun& run = race.runs[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreAll(race.frozen, run.eval_items));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(run.eval_items.size()));
  state.SetLabel(run.name);
  state.counters["strength"] = run.strength;
  state.counters["auc_frozen"] = run.auc_frozen;
  state.counters["auc_retrained"] = run.auc_retrained;
}
BENCHMARK(BM_ArmsRaceScore)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cats
