// §IV-B: the E-platform application — crawl the platform's public site,
// run the Taobao-pretrained detector, sample 1,000 reported items for
// "expert" validation. Paper: 10,720 items reported; 960/1000 sampled
// confirmed (precision 0.96).

#include <cstdio>
#include <unordered_map>

#include "analysis/validation.h"
#include "bench_common.h"
#include "util/string_util.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "§IV-B — CATS applied to E-platform",
      "10,720 fraud items reported from ~4.5M; 1,000-item expert sample "
      "confirms 96%");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));
  std::printf("crawl: %llu requests, %llu retries, %llu duplicates dropped, "
              "%.1f virtual-seconds throttled\n",
              (unsigned long long)eplat.crawl_stats.requests,
              (unsigned long long)eplat.crawl_stats.retries,
              (unsigned long long)eplat.crawl_stats.duplicates_dropped,
              eplat.crawl_stats.throttled_micros / 1e6);

  auto detector = context.TrainDetector(d0);
  // Deployed operating point: calibrated on a low-prevalence validation
  // slice for the production precision target (see bench_table6).
  bench::PlatformData validation = context.MakePlatform([] {
    platform::MarketplaceConfig c = platform::TaobaoD1Config(0.004);
    c.name = "d1-validation";
    c.seed = 0xCA1B;
    return c;
  }());
  auto threshold = detector->CalibrateThreshold(
      validation.store.items(), validation.TrueLabels(),
      /*target_precision=*/0.93);
  std::fprintf(stderr, "[bench] threshold calibrated to %.3f\n",
               threshold.value_or(-1));
  auto report = detector->Detect(eplat.store.items());
  if (!report.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nE-platform sweep: %zu items scanned -> %zu reported as "
              "fraud (paper: 4.5M -> 10,720)\n",
              report->items_scanned, report->detections.size());
  std::printf("stage-1 filter: %zu low-sales, %zu no-positive-signal, %zu "
              "no-comments\n",
              report->items_filtered_low_sales,
              report->items_filtered_no_signal,
              report->items_filtered_no_comments);

  // Expert-panel validation on a 1,000-item sample (truth = the
  // simulator's hidden labels).
  std::unordered_map<uint64_t, int> truth;
  {
    std::vector<uint64_t> ids = eplat.ItemIds();
    std::vector<int> labels = eplat.TrueLabels();
    for (size_t i = 0; i < ids.size(); ++i) truth[ids[i]] = labels[i];
  }
  Rng rng(2017'12'24 % 1000003);
  analysis::SampledValidation sampled =
      analysis::ValidateBySampling(*report, truth, 1000, &rng);
  std::printf("\nsampled validation: %zu / %zu confirmed -> precision %.3f "
              "(paper: 960/1000 = 0.96)\n",
              sampled.confirmed, sampled.sample_size, sampled.precision);

  auto metrics = analysis::EvaluateReport(*report, eplat.ItemIds(),
                                          eplat.TrueLabels());
  std::printf("full-truth check:   %s\n", metrics.ToString().c_str());
  std::printf("\nreported-to-total ratio: %.4f (paper: 10720/4.5M = "
              "0.0024; fraud density floored at small scale, see "
              "DESIGN.md)\n",
              static_cast<double>(report->detections.size()) /
                  report->items_scanned);
  return 0;
}
