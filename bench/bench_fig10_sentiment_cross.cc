// Fig 10: comment sentiment distributions of reported fraud and normal
// items on E-platform vs the labeled fraud and normal items on Taobao.
// Paper: >99.8% of fraud-item comments are positive; the two platforms'
// distributions agree.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 10 — cross-platform comment sentiment distributions",
      ">99.8% of E-platform fraud comments positive; distributions agree "
      "with Taobao's");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData taobao =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));

  const auto& model = context.semantic_model();
  auto tb = taobao.Split();
  auto ep = eplat.Split();
  auto tb_fraud = analysis::CommentSentiments(model, tb.fraud);
  auto tb_normal = analysis::CommentSentiments(model, tb.normal);
  auto ep_fraud = analysis::CommentSentiments(model, ep.fraud);
  auto ep_normal = analysis::CommentSentiments(model, ep.normal);

  // Hard positive/negative classification uses the raw (SnowNLP-style)
  // posterior, which saturates on long documents — the regime in which the
  // paper reports ">99.8% positive".
  auto frac_positive_raw = [&model](
                               const std::vector<collect::CollectedItem>& items) {
    text::Segmenter segmenter(&model.dictionary);
    size_t positive = 0, total = 0;
    for (const auto& item : items) {
      for (const auto& comment : item.comments) {
        ++total;
        positive +=
            model.sentiment.ScoreRaw(segmenter.Segment(comment.content)) > 0.5
                ? 1
                : 0;
      }
    }
    return total > 0 ? static_cast<double>(positive) / total : 0.0;
  };

  std::printf("\nE-platform fraud vs normal:\n");
  auto cmp_ep = analysis::CompareDistributions(ep_fraud, ep_normal, 16);
  std::printf("%s", cmp_ep.ToAscii("fraud (#)", "normal (*)", 24).c_str());

  std::printf("\nfraction of comments classified positive (raw NB "
              "posterior > 0.5):\n");
  std::printf("  E-platform fraud : %.4f   (paper: > 0.998)\n",
              frac_positive_raw(ep.fraud));
  std::printf("  E-platform normal: %.4f\n", frac_positive_raw(ep.normal));
  std::printf("  Taobao     fraud : %.4f\n", frac_positive_raw(tb.fraud));
  std::printf("  Taobao     normal: %.4f\n", frac_positive_raw(tb.normal));

  std::printf("\ncross-platform agreement (KS; smaller = more alike):\n");
  std::printf("  fraud (E-plat) vs fraud (Taobao):   %.3f\n",
              KolmogorovSmirnovStatistic(ep_fraud, tb_fraud));
  std::printf("  normal (E-plat) vs normal (Taobao): %.3f\n",
              KolmogorovSmirnovStatistic(ep_normal, tb_normal));
  std::printf("  fraud vs normal on E-platform:      %.3f  (should dwarf "
              "the two above)\n",
              KolmogorovSmirnovStatistic(ep_fraud, ep_normal));

  bench::DumpComparisonCsv("fig10_eplatform.csv", cmp_ep, "fraud", "normal");
  return 0;
}
