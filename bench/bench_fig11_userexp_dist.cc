// Fig 11: userExpValue distributions of the users who bought fraud vs
// normal items on E-platform. Paper: for fraud-item buyers 45% < 2,000,
// 39% < 1,000, 15% at the minimum (100); only ~20% of the overall user
// base sits below 2,000.

#include <cmath>
#include <cstdio>

#include "analysis/user_aspect.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 11 — userExpValue of fraud-item vs normal-item buyers",
      "fraud buyers: 45% < 2000, 39% < 1000, 15% at 100; overall users: "
      "~20% < 2000");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));
  auto split = eplat.Split();

  double expectation = analysis::PopulationExpectation(eplat.store.items());
  analysis::UserAspectReport fraud =
      analysis::AnalyzeUserAspect(split.fraud, expectation);
  analysis::UserAspectReport normal =
      analysis::AnalyzeUserAspect(split.normal, expectation);

  TablePrinter table(
      {"Buyer group", "at min (100)", "< 1000", "< 2000", "paper"});
  table.AddRow({"fraud items", StrFormat("%.2f", fraud.frac_at_min),
                StrFormat("%.2f", fraud.frac_below_1000),
                StrFormat("%.2f", fraud.frac_below_2000),
                "0.15 / 0.39 / 0.45"});
  table.AddRow({"normal items", StrFormat("%.2f", normal.frac_at_min),
                StrFormat("%.2f", normal.frac_below_1000),
                StrFormat("%.2f", normal.frac_below_2000),
                "overall users ~0.20 < 2000"});
  table.Print();

  // Log-scale histogram of buyer exp values.
  auto log_values = [](const std::vector<double>& v) {
    std::vector<double> out;
    out.reserve(v.size());
    for (double x : v) out.push_back(std::log10(std::max(1.0, x)));
    return out;
  };
  auto cmp = analysis::CompareDistributions(log_values(fraud.buyer_exp_values),
                                            log_values(normal.buyer_exp_values),
                                            16);
  std::printf("\nlog10(userExpValue) of buyers:\n%s",
              cmp.ToAscii("fraud buyers (#)", "normal buyers (*)", 24).c_str());
  std::printf("\nunique buyers: %zu (fraud items), %zu (normal items); "
              "platform expectation=%.0f\n",
              fraud.buyer_exp_values.size(), normal.buyer_exp_values.size(),
              expectation);
  bench::DumpComparisonCsv("fig11_userexp.csv", cmp, "fraud_buyers",
                           "normal_buyers");
  return 0;
}
