// Fig 12: client (order-source) distributions of fraud vs normal items'
// orders on E-platform. Paper: fraud orders are dominated by the web
// client; normal orders by the Android client.

#include <cstdio>

#include "analysis/order_aspect.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 12 — client distribution of fraud vs normal orders",
      "fraud orders mostly via Web; normal orders mostly via Android");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));
  auto split = eplat.Split();

  analysis::ClientDistribution fraud =
      analysis::ComputeClientDistribution(split.fraud);
  analysis::ClientDistribution normal =
      analysis::ComputeClientDistribution(split.normal);

  TablePrinter table({"Client", "fraud orders", "normal orders"});
  const auto& labels = analysis::ClientDistribution::Labels();
  for (size_t c = 0; c < labels.size(); ++c) {
    table.AddRow({labels[c], StrFormat("%.1f%%", 100.0 * fraud.Fraction(c)),
                  StrFormat("%.1f%%", 100.0 * normal.Fraction(c))});
  }
  table.Print();

  std::printf("\ndominant client: fraud=%s (paper: Web), normal=%s "
              "(paper: Android)\n",
              labels[fraud.ArgMax()].c_str(),
              labels[normal.ArgMax()].c_str());
  std::printf("total variation distance: %.3f (paper: \"relatively "
              "large\")\n",
              analysis::ClientDistributionDistance(fraud, normal));
  return 0;
}
