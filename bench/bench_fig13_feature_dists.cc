// Fig 13 (a)-(k): distributions of all 11 features for fraud and normal
// items, on E-platform vs Taobao. Paper: (1) E-platform fraud
// distributions roughly agree with Taobao fraud distributions; (2) the
// fraud-vs-normal gap looks the same on both platforms.

#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 13 — feature distributions across platforms",
      "fraud feature distributions agree across platforms; fraud-vs-normal "
      "differences replicate");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData taobao =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));
  auto tb = taobao.Split();
  auto ep = eplat.Split();
  const auto& model = context.semantic_model();

  TablePrinter table({"Feature", "KS fraudTB~fraudEP", "KS normTB~normEP",
                      "KS fraud~norm (EP)", "agrees"});
  CsvWriter writer(bench::BenchOutPath("fig13_feature_ks.csv"));
  writer.SetHeader({"feature", "ks_fraud_cross", "ks_normal_cross",
                    "ks_fraud_vs_normal_ep"});

  size_t agree = 0;
  for (size_t f = 0; f < core::kNumFeatures; ++f) {
    auto id = static_cast<core::FeatureId>(f);
    auto tb_fraud = analysis::FeatureSeries(model, tb.fraud, id);
    auto tb_normal = analysis::FeatureSeries(model, tb.normal, id);
    auto ep_fraud = analysis::FeatureSeries(model, ep.fraud, id);
    auto ep_normal = analysis::FeatureSeries(model, ep.normal, id);

    double ks_fraud_cross = KolmogorovSmirnovStatistic(tb_fraud, ep_fraud);
    double ks_normal_cross = KolmogorovSmirnovStatistic(tb_normal, ep_normal);
    double ks_gap = KolmogorovSmirnovStatistic(ep_fraud, ep_normal);
    // "Roughly agree": the cross-platform distance is much smaller than
    // the fraud-vs-normal signal.
    bool ok = ks_fraud_cross < ks_gap;
    agree += ok ? 1 : 0;
    table.AddRow({std::string(core::kFeatureNames[f]),
                  StrFormat("%.3f", ks_fraud_cross),
                  StrFormat("%.3f", ks_normal_cross),
                  StrFormat("%.3f", ks_gap), ok ? "yes" : "NO"});
    writer.AddRow({std::string(core::kFeatureNames[f]),
                   StrFormat("%.4f", ks_fraud_cross),
                   StrFormat("%.4f", ks_normal_cross),
                   StrFormat("%.4f", ks_gap)});
  }
  table.Print();
  (void)writer.Flush();
  std::printf("\n%zu / %zu features: cross-platform fraud distributions "
              "closer than the\nfraud-vs-normal gap (the paper's Fig 13 "
              "claim).\n",
              agree, core::kNumFeatures);
  return 0;
}
