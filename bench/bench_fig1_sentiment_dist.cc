// Fig 1: distribution of comments' sentiments for 5,000 fraud and 5,000
// normal items (~70,000 comments each side). Fraud concentrates near 1.0,
// normal near ~0.7.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 1 — distribution of comments' sentiments",
      "fraud comments' sentiment concentrates near 1.0; normal comments "
      "concentrate near ~0.7");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  analysis::LabeledSplit split = five_k.Split();

  auto fraud = analysis::CommentSentiments(context.semantic_model(),
                                           split.fraud);
  auto normal = analysis::CommentSentiments(context.semantic_model(),
                                            split.normal);
  std::printf("comments: %zu fraud-item, %zu normal-item\n\n", fraud.size(),
              normal.size());

  analysis::DistributionComparison cmp =
      analysis::CompareDistributions(fraud, normal, 20);
  std::printf("%s\n",
              cmp.ToAscii("fraud items (#)", "normal items (*)").c_str());
  std::printf("fraud  sentiment: mean=%.3f median=%.3f\n", Mean(fraud),
              Quantile(fraud, 0.5));
  std::printf("normal sentiment: mean=%.3f median=%.3f\n", Mean(normal),
              Quantile(normal, 0.5));
  std::printf("KS distance: %.3f (larger = more separated)\n",
              cmp.ks_statistic);
  std::printf("paper: fraud density peaks near 1.0, normal near 0.7\n");

  bench::DumpComparisonCsv("fig1_sentiment.csv", cmp, "fraud", "normal");
  return 0;
}
