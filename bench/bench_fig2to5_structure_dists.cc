// Figs 2-5: per-comment structural distributions for the 5k/5k subset —
// punctuation count (Fig 2), token entropy (Fig 3), comment length (Fig 4),
// unique-word ratio (Fig 5), fraud vs normal.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

using namespace cats;

namespace {

void Compare(const char* figure, const char* claim,
             const std::vector<double>& fraud,
             const std::vector<double>& normal, const char* csv_name) {
  std::printf("\n--- %s ---\n%s\n", figure, claim);
  analysis::DistributionComparison cmp =
      analysis::CompareDistributions(fraud, normal, 16);
  std::printf("%s", cmp.ToAscii("fraud (#)", "normal (*)", 24).c_str());
  std::printf("fraud mean=%.3f  normal mean=%.3f  KS=%.3f\n", Mean(fraud),
              Mean(normal), cmp.ks_statistic);
  bench::DumpComparisonCsv(csv_name, cmp, "fraud", "normal");
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figs 2-5 — structural distributions of comments",
      "fraud comments: more punctuation (2), higher entropy (3), longer "
      "(4), lower unique-word ratio (5)");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  analysis::LabeledSplit split = five_k.Split();

  analysis::StructuralSeries fraud =
      analysis::ComputeStructuralSeries(context.semantic_model(), split.fraud);
  analysis::StructuralSeries normal = analysis::ComputeStructuralSeries(
      context.semantic_model(), split.normal);
  std::printf("comments: %zu fraud-item, %zu normal-item\n",
              fraud.lengths.size(), normal.lengths.size());

  Compare("Fig 2 — punctuation count",
          "paper: fraud comments carry more punctuation",
          fraud.punctuation_counts, normal.punctuation_counts,
          "fig2_punctuation.csv");
  Compare("Fig 3 — comment entropy",
          "paper: fraud comments are organized more chaotically",
          fraud.entropies, normal.entropies, "fig3_entropy.csv");
  Compare("Fig 4 — comment length",
          "paper: fraud comments are longer", fraud.lengths, normal.lengths,
          "fig4_length.csv");
  Compare("Fig 5 — unique word ratio",
          "paper: fraud comments repeat words (lower unique ratio)",
          fraud.unique_word_ratios, normal.unique_word_ratios,
          "fig5_unique_ratio.csv");
  return 0;
}
