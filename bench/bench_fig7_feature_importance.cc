// Fig 7: feature importance of the Xgboost model, measured as the number of
// times each feature is split on during construction. Paper: every feature
// matters; sumCommentLength, averageCommentEntropy and averageSentiment are
// the top three.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "ml/gbdt.h"
#include "util/csv.h"
#include "util/string_util.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Fig 7 — Xgboost split-count feature importance",
      "all 11 features used; top-3 = sumCommentLength, "
      "averageCommentEntropy, averageSentiment");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  ml::Dataset dataset = context.BuildDataset(five_k);

  ml::Gbdt model;
  Status st = model.Fit(dataset);
  if (!st.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const auto& counts = model.feature_split_counts();
  std::vector<size_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&counts](size_t a, size_t b) { return counts[a] > counts[b]; });

  uint64_t max_count = counts[order[0]];
  std::printf("\n");
  for (size_t f : order) {
    int bars = max_count > 0
                   ? static_cast<int>(48.0 * counts[f] / max_count + 0.5)
                   : 0;
    std::printf("  %-32s %5llu  %s\n",
                std::string(core::kFeatureNames[f]).c_str(),
                static_cast<unsigned long long>(counts[f]),
                std::string(bars, '#').c_str());
  }

  size_t used = 0;
  for (uint64_t c : counts) used += c > 0 ? 1 : 0;
  std::printf("\nfeatures with nonzero importance: %zu / %zu "
              "(paper: all 11 important)\n",
              used, counts.size());
  std::printf("paper top-3: sumCommentLength, averageCommentEntropy, "
              "averageSentiment\n");

  CsvWriter writer(bench::BenchOutPath("fig7_importance.csv"));
  writer.SetHeader({"feature", "split_count"});
  for (size_t f : order) {
    writer.AddRow({std::string(core::kFeatureNames[f]),
                   std::to_string(counts[f])});
  }
  (void)writer.Flush();
  return 0;
}
