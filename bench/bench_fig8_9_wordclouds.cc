// Figs 8/9 + Tables VIII/IX: word clouds (top-50 frequency tables) of fraud
// and normal items' comments on both platforms. Paper findings: fraud
// clouds are positive-word-dominated on both platforms and nearly identical
// across platforms (top-50 occupy ~28% of all tokens); normal clouds
// contain negative words.

#include <cstdio>
#include <unordered_set>

#include "analysis/word_cloud.h"
#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

namespace {

void PrintCloud(const char* title,
                const std::vector<analysis::WordFrequency>& top,
                size_t show) {
  std::printf("\n%s (top %zu of %zu):\n  ", title, show, top.size());
  for (size_t i = 0; i < show && i < top.size(); ++i) {
    const char* tag = top[i].positive ? "+" : (top[i].negative ? "-" : "");
    std::printf("%s%s ", top[i].word.c_str(), tag);
    if ((i + 1) % 8 == 0) std::printf("\n  ");
  }
  std::printf("\n");
}

double Overlap(const std::vector<analysis::WordFrequency>& a,
               const std::vector<analysis::WordFrequency>& b) {
  std::unordered_set<std::string> sa;
  for (const auto& wf : a) sa.insert(wf.word);
  size_t shared = 0;
  for (const auto& wf : b) shared += sa.count(wf.word);
  return b.empty() ? 0.0 : static_cast<double>(shared) / b.size();
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figs 8/9, Tables VIII/IX — word clouds of fraud and normal items",
      "fraud top-50 words are positive on BOTH platforms and nearly the "
      "same set; normal clouds contain negatives");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData taobao =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  bench::PlatformData eplat =
      context.MakePlatform(platform::EPlatformConfig(scales.e_platform));

  analysis::WordCloud cloud(&context.semantic_model());
  auto tb = taobao.Split();
  auto ep = eplat.Split();
  auto tb_fraud = cloud.TopWords(tb.fraud, 50);
  auto tb_normal = cloud.TopWords(tb.normal, 50);
  auto ep_fraud = cloud.TopWords(ep.fraud, 50);
  auto ep_normal = cloud.TopWords(ep.normal, 50);

  PrintCloud("Table IX — Taobao fraud items", tb_fraud, 24);
  PrintCloud("Table VIII — E-platform fraud items", ep_fraud, 24);
  PrintCloud("Fig 9 — normal items (E-platform)", ep_normal, 24);

  TablePrinter table({"Cloud", "positive frac of top-50",
                      "top-50 token mass", "paper"});
  table.AddRow({"Taobao fraud",
                StrFormat("%.2f", analysis::WordCloud::PositiveFractionOfTop(
                                      tb_fraud)),
                StrFormat("%.2f",
                          analysis::WordCloud::TotalMassOfTop(tb_fraud)),
                "top-50 all positive, ~28% mass"});
  table.AddRow({"E-platform fraud",
                StrFormat("%.2f", analysis::WordCloud::PositiveFractionOfTop(
                                      ep_fraud)),
                StrFormat("%.2f",
                          analysis::WordCloud::TotalMassOfTop(ep_fraud)),
                "same as Taobao"});
  table.AddRow({"Taobao normal",
                StrFormat("%.2f", analysis::WordCloud::PositiveFractionOfTop(
                                      tb_normal)),
                StrFormat("%.2f",
                          analysis::WordCloud::TotalMassOfTop(tb_normal)),
                "contains negatives"});
  table.AddRow({"E-platform normal",
                StrFormat("%.2f", analysis::WordCloud::PositiveFractionOfTop(
                                      ep_normal)),
                StrFormat("%.2f",
                          analysis::WordCloud::TotalMassOfTop(ep_normal)),
                "contains negatives"});
  table.Print();

  std::printf("\ncross-platform top-50 overlap (fraud clouds):  %.2f "
              "(paper: nearly identical)\n",
              Overlap(tb_fraud, ep_fraud));
  std::printf("fraud-vs-normal top-50 overlap (E-platform):   %.2f\n",
              Overlap(ep_fraud, ep_normal));

  CsvWriter writer(bench::BenchOutPath("fig8_9_wordclouds.csv"));
  writer.SetHeader({"cloud", "rank", "word", "count", "positive",
                    "negative"});
  auto emit = [&writer](const char* name,
                        const std::vector<analysis::WordFrequency>& top) {
    for (size_t i = 0; i < top.size(); ++i) {
      writer.AddRow({name, std::to_string(i + 1), top[i].word,
                     std::to_string(top[i].count),
                     top[i].positive ? "1" : "0",
                     top[i].negative ? "1" : "0"});
    }
  };
  emit("taobao_fraud", tb_fraud);
  emit("eplatform_fraud", ep_fraud);
  emit("taobao_normal", tb_normal);
  emit("eplatform_normal", ep_normal);
  (void)writer.Flush();
  return 0;
}
