// Custom main for the google-benchmark perf benches: accepts
//   --json=PATH
// in addition to the standard --benchmark_* flags and maps it onto the
// library's own JSON file reporter, so CI and scripts/run_perf_baseline.sh
// can write machine-readable results with one short flag:
//   bench_perf_ml --json=BENCH_ml.json

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (std::string& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
