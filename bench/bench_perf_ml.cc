// Perf microbenches: ML substrate — training and single-row prediction
// latency of every Table-III classifier on an 11-feature dataset shaped
// like the paper's.

#include <benchmark/benchmark.h>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "util/random.h"

using namespace cats;

namespace {

/// An 11-feature two-class dataset, mildly overlapping like the real one.
const ml::Dataset& TrainData() {
  static const ml::Dataset* data = [] {
    std::vector<std::string> names;
    for (int f = 0; f < 11; ++f) names.push_back("f" + std::to_string(f));
    auto* d = new ml::Dataset(names);
    Rng rng(3);
    std::vector<float> row(11);
    for (int i = 0; i < 4000; ++i) {
      int label = i % 2;
      for (int f = 0; f < 11; ++f) {
        row[f] = static_cast<float>(rng.Normal(label * 1.2, 1.0));
      }
      (void)d->AddRow(row, label);
    }
    return d;
  }();
  return *data;
}

template <typename Model>
void TrainBench(benchmark::State& state, Model make) {
  for (auto _ : state) {
    auto model = make();
    Status st = model.Fit(TrainData());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(TrainData().num_rows()));
}

template <typename Model>
void PredictBench(benchmark::State& state, Model make) {
  auto model = make();
  Status st = model.Fit(TrainData());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PredictProba(TrainData().Row(i++ % TrainData().num_rows())));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_GbdtTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::Gbdt(); });
}
BENCHMARK(BM_GbdtTrain)->Unit(benchmark::kMillisecond);

void BM_GbdtTrainExact(benchmark::State& state) {
  TrainBench(state, [] {
    ml::GbdtOptions options;
    options.split_method = ml::GbdtSplitMethod::kExact;
    return ml::Gbdt(options);
  });
}
BENCHMARK(BM_GbdtTrainExact)->Unit(benchmark::kMillisecond);

// Histogram trainer at 1, 2 and 4 workers — the speedup acceptance
// numbers (vs BM_GbdtTrainExact) come from here.
void BM_GbdtTrainHist(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TrainBench(state, [threads] {
    ml::GbdtOptions options;
    options.split_method = ml::GbdtSplitMethod::kHistogram;
    options.num_threads = threads;
    return ml::Gbdt(options);
  });
}
BENCHMARK(BM_GbdtTrainHist)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  PredictBench(state, [] { return ml::Gbdt(); });
}
BENCHMARK(BM_GbdtPredict);

// Whole-dataset batched scoring (the detector's path), against which
// BM_GbdtPredict is the per-row reference.
void BM_GbdtPredictBatch(benchmark::State& state) {
  ml::Gbdt model;
  Status st = model.Fit(TrainData());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto scores = model.PredictBatch(TrainData());
    if (!scores.ok()) state.SkipWithError(scores.status().ToString().c_str());
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(TrainData().num_rows()));
}
BENCHMARK(BM_GbdtPredictBatch)->Unit(benchmark::kMillisecond);

void BM_DecisionTreeTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::DecisionTree(); });
}
BENCHMARK(BM_DecisionTreeTrain)->Unit(benchmark::kMillisecond);

void BM_AdaBoostTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::AdaBoost(); });
}
BENCHMARK(BM_AdaBoostTrain)->Unit(benchmark::kMillisecond);

void BM_SvmTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::LinearSvm(); });
}
BENCHMARK(BM_SvmTrain)->Unit(benchmark::kMillisecond);

void BM_MlpTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::Mlp(); });
}
BENCHMARK(BM_MlpTrain)->Unit(benchmark::kMillisecond);

void BM_NaiveBayesTrain(benchmark::State& state) {
  TrainBench(state, [] { return ml::GaussianNaiveBayes(); });
}
BENCHMARK(BM_NaiveBayesTrain)->Unit(benchmark::kMillisecond);

void BM_NaiveBayesPredict(benchmark::State& state) {
  PredictBench(state, [] { return ml::GaussianNaiveBayes(); });
}
BENCHMARK(BM_NaiveBayesPredict);

}  // namespace
