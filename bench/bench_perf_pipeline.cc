// Perf microbenches: end-to-end pipeline stages — feature-extraction
// throughput (the paper parallelizes this stage), crawler+parse throughput
// against the in-process API, and word2vec training rate.
//
// Item counts come from the obs::MetricsRegistry the stages are
// instrumented with (delta around the timed section), not from hand-rolled
// accounting — the bench measures exactly what production observability
// reports.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "nlp/word2vec.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "platform/comment_generator.h"

using namespace cats;

namespace {

bench::BenchContext& Context() {
  static auto* context = new bench::BenchContext();
  return *context;
}

/// Registry counter delta across the timed loop of one benchmark run.
class CounterDelta {
 public:
  explicit CounterDelta(std::string_view name)
      : counter_(obs::MetricsRegistry::Global().GetCounter(name)),
        start_(counter_->value()) {}
  int64_t value() const {
    return static_cast<int64_t>(counter_->value() - start_);
  }

 private:
  obs::Counter* counter_;
  uint64_t start_;
};

const bench::PlatformData& Platform() {
  static const auto* data = [] {
    platform::MarketplaceConfig config = platform::TaobaoFiveKConfig(0.1);
    return new bench::PlatformData(Context().MakePlatform(config));
  }();
  return *data;
}

void BM_FeatureExtraction(benchmark::State& state) {
  core::FeatureExtractorOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  core::FeatureExtractor extractor(&Context().semantic_model(), options);
  const auto& items = Platform().store.items();
  CounterDelta featurized(obs::kExtractorItemsFeaturizedTotal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractAll(items));
  }
  state.SetItemsProcessed(featurized.value());
  state.SetLabel("items_processed = extractor.items_featurized_total delta");
}
BENCHMARK(BM_FeatureExtraction)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CrawlAndParse(benchmark::State& state) {
  const auto& market = *Platform().market;
  CounterDelta comments(obs::kCrawlerCommentsTotal);
  for (auto _ : state) {
    platform::ApiOptions api_options;
    api_options.page_size = 100;
    platform::MarketplaceApi api(&market, api_options);
    collect::FakeClock clock;
    collect::CrawlerOptions crawl_options;
    crawl_options.requests_per_second = 1e9;
    collect::Crawler crawler(&api, crawl_options, &clock);
    collect::DataStore store;
    Status st = crawler.Crawl(&store);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(store.num_comments());
  }
  state.SetItemsProcessed(comments.value());
  state.SetLabel("items_processed = crawler.comments_total delta");
}
BENCHMARK(BM_CrawlAndParse)->Unit(benchmark::kMillisecond);

void BM_Word2VecTrain(benchmark::State& state) {
  // A fixed 100k-token corpus; reports tokens/second via items_processed.
  static const auto* sentences = [] {
    auto* out = new std::vector<std::vector<std::string>>();
    platform::CommentGenerator generator(&Context().language());
    text::SegmentationDictionary dict =
        Context().language().BuildSegmentationDictionary();
    text::Segmenter segmenter(&dict);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
      out->push_back(segmenter.Segment(generator.GenerateBenign(0.7, &rng)));
    }
    return out;
  }();
  size_t tokens = 0;
  for (const auto& s : *sentences) tokens += s.size();

  for (auto _ : state) {
    nlp::Word2VecOptions options;
    options.dim = 32;
    options.epochs = 1;
    options.num_threads = static_cast<size_t>(state.range(0));
    nlp::Word2Vec w2v(options);
    auto result = w2v.Train(*sentences);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(tokens));
  state.SetLabel("items_processed = corpus tokens per epoch");
}
BENCHMARK(BM_Word2VecTrain)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SentimentScore(benchmark::State& state) {
  const auto& model = Context().semantic_model();
  text::Segmenter segmenter(&model.dictionary);
  std::vector<std::vector<std::string>> token_lists;
  for (size_t i = 0; i < 200 && i < Platform().store.items().size(); ++i) {
    for (const auto& c : Platform().store.items()[i].comments) {
      token_lists.push_back(segmenter.Segment(c.content));
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sentiment.Score(token_lists[i++ % token_lists.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SentimentScore);

}  // namespace
