// Perf microbenches: end-to-end pipeline stages — feature-extraction
// throughput (the paper parallelizes this stage), crawler+parse throughput
// against the in-process API, and word2vec training rate.
//
// Item counts come from the obs::MetricsRegistry the stages are
// instrumented with (delta around the timed section), not from hand-rolled
// accounting — the bench measures exactly what production observability
// reports.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "fault/clock.h"
#include "nlp/word2vec.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "pipeline/streaming_cats.h"
#include "platform/comment_generator.h"

using namespace cats;

namespace {

bench::BenchContext& Context() {
  static auto* context = new bench::BenchContext();
  return *context;
}

/// Registry counter delta across the timed loop of one benchmark run.
class CounterDelta {
 public:
  explicit CounterDelta(std::string_view name)
      : counter_(obs::MetricsRegistry::Global().GetCounter(name)),
        start_(counter_->value()) {}
  int64_t value() const {
    return static_cast<int64_t>(counter_->value() - start_);
  }

 private:
  obs::Counter* counter_;
  uint64_t start_;
};

const bench::PlatformData& Platform() {
  static const auto* data = [] {
    platform::MarketplaceConfig config = platform::TaobaoFiveKConfig(0.1);
    return new bench::PlatformData(Context().MakePlatform(config));
  }();
  return *data;
}

void BM_FeatureExtraction(benchmark::State& state) {
  core::FeatureExtractorOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  core::FeatureExtractor extractor(&Context().semantic_model(), options);
  const auto& items = Platform().store.items();
  CounterDelta featurized(obs::kExtractorItemsFeaturizedTotal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractAll(items));
  }
  state.SetItemsProcessed(featurized.value());
  state.SetLabel("items_processed = extractor.items_featurized_total delta");
}
BENCHMARK(BM_FeatureExtraction)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// The legacy string path (use_token_ids=false), kept benchmarked while the
/// toggle exists: the ratio BM_FeatureExtractionStringPath/1 over
/// BM_FeatureExtraction/1 is the token-id hot path's headline win.
void BM_FeatureExtractionStringPath(benchmark::State& state) {
  core::FeatureExtractorOptions options;
  options.num_threads = 1;
  options.use_token_ids = false;
  core::FeatureExtractor extractor(&Context().semantic_model(), options);
  const auto& items = Platform().store.items();
  CounterDelta featurized(obs::kExtractorItemsFeaturizedTotal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractAll(items));
  }
  state.SetItemsProcessed(featurized.value());
  state.SetLabel("legacy string segmentation + hashing path");
}
BENCHMARK(BM_FeatureExtractionStringPath)->Unit(benchmark::kMillisecond);

void BM_CrawlAndParse(benchmark::State& state) {
  const auto& market = *Platform().market;
  CounterDelta comments(obs::kCrawlerCommentsTotal);
  for (auto _ : state) {
    platform::ApiOptions api_options;
    api_options.page_size = 100;
    platform::MarketplaceApi api(&market, api_options);
    collect::FakeClock clock;
    collect::CrawlerOptions crawl_options;
    crawl_options.requests_per_second = 1e9;
    collect::Crawler crawler(&api, crawl_options, &clock);
    collect::DataStore store;
    Status st = crawler.Crawl(&store);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(store.num_comments());
  }
  state.SetItemsProcessed(comments.value());
  state.SetLabel("items_processed = crawler.comments_total delta");
}
BENCHMARK(BM_CrawlAndParse)->Unit(benchmark::kMillisecond);

void BM_Word2VecTrain(benchmark::State& state) {
  // A fixed 100k-token corpus; reports tokens/second via items_processed.
  static const auto* sentences = [] {
    auto* out = new std::vector<std::vector<std::string>>();
    platform::CommentGenerator generator(&Context().language());
    text::SegmentationDictionary dict =
        Context().language().BuildSegmentationDictionary();
    text::Segmenter segmenter(&dict);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
      out->push_back(segmenter.Segment(generator.GenerateBenign(0.7, &rng)));
    }
    return out;
  }();
  size_t tokens = 0;
  for (const auto& s : *sentences) tokens += s.size();

  for (auto _ : state) {
    nlp::Word2VecOptions options;
    options.dim = 32;
    options.epochs = 1;
    options.num_threads = static_cast<size_t>(state.range(0));
    nlp::Word2Vec w2v(options);
    auto result = w2v.Train(*sentences);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(tokens));
  state.SetLabel("items_processed = corpus tokens per epoch");
}
BENCHMARK(BM_Word2VecTrain)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- streaming vs sequential end-to-end detection -------------------------
//
// The production scenario the streaming plane exists for: a rate-limited
// crawl (real SystemClock — the limiter actually sleeps, like network I/O
// against a platform that throttles) followed by detection. Sequentially
// those costs add; streaming overlaps detection compute with the crawl's
// idle wait, so end-to-end wall time approaches max(crawl, detect) instead
// of crawl + detect. Compare the two real_time values in
// BENCH_pipeline.json for the headline speedup.

/// Requests/second for the throttled crawl legs. The crawl needs ~1 request
/// per item (comment walks fit one page at page size 500), and its idle
/// time is throttle pacing plus retry backoff against the API's default
/// Mild fault profile — a few hundred milliseconds total, comparable to,
/// not dwarfing, the detect compute (a huge sleep would make any speedup
/// look arbitrarily good).
constexpr double kThrottledRps = 2500.0;

/// Coalesce pacing sleeps into 20ms chunks (see CrawlerOptions): ~25 long
/// sleeps instead of ~1.25k sub-millisecond ones. Same average rate; what
/// changes is that wake-up latency (OS sleep overshoot, and on a loaded
/// core the scheduler letting a compute thread finish its slice first) is
/// paid per sleep, so it no longer dominates either leg's crawl time.
constexpr int64_t kPacingChunkMicros = 20'000;

/// Comment-dense variant of the 5k platform: popular listings with deep
/// comment histories. Detection compute scales with comments while crawl
/// requests scale with items, so this is the regime where overlapping the
/// two actually matters — ~40 comments/item vs the corpus-wide ~14.
const bench::PlatformData& DensePlatform() {
  static const auto* data = [] {
    platform::MarketplaceConfig config = platform::TaobaoFiveKConfig(0.1);
    config.name = "taobao-5k-dense";
    config.mean_organic_comments_normal = 40.0;
    config.mean_organic_comments_fraud = 12.0;
    config.campaign.mean_spam_comments_per_item = 30.0;
    return new bench::PlatformData(Context().MakePlatform(config));
  }();
  return *data;
}

const core::Detector& PipelineDetector() {
  static const core::Detector* detector =
      Context().TrainDetector(DensePlatform()).release();
  return *detector;
}

void BM_SequentialCrawlThenDetect(benchmark::State& state) {
  const auto& market = *DensePlatform().market;
  const core::Detector& detector = PipelineDetector();
  size_t items = 0;
  for (auto _ : state) {
    platform::ApiOptions api_options;
    api_options.page_size = 500;
    platform::MarketplaceApi api(&market, api_options);
    fault::SystemClock clock;
    collect::CrawlerOptions crawl_options;
    crawl_options.requests_per_second = kThrottledRps;
    crawl_options.pacing_chunk_micros = kPacingChunkMicros;
    collect::Crawler crawler(&api, crawl_options, &clock);
    collect::DataStore store;
    Status st = crawler.Crawl(&store);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    auto report = detector.Detect(store.items());
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(report->detections.size());
    items = store.items().size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(items) * state.iterations());
  state.SetLabel("crawl, THEN detect (costs add)");
}
// MinTime pins a multi-iteration measurement window: one iteration of each
// leg is ~1.2s and single-iteration timings on a busy single-core host are
// noisy, so the headline streaming-vs-sequential ratio is averaged.
BENCHMARK(BM_SequentialCrawlThenDetect)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(4.0);

void BM_StreamingCrawlAndDetect(benchmark::State& state) {
  const auto& market = *DensePlatform().market;
  pipeline::StreamingCats streaming(&PipelineDetector());
  size_t items = 0;
  for (auto _ : state) {
    platform::ApiOptions api_options;
    api_options.page_size = 500;
    platform::MarketplaceApi api(&market, api_options);
    fault::SystemClock clock;
    collect::CrawlerOptions crawl_options;
    crawl_options.requests_per_second = kThrottledRps;
    crawl_options.pacing_chunk_micros = kPacingChunkMicros;
    collect::Crawler crawler(&api, crawl_options, &clock);
    collect::DataStore store;
    collect::CrawlCheckpoint checkpoint;
    auto result = streaming.Run(&crawler, &store, &checkpoint);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
    } else if (!result->crawl_status.ok()) {
      state.SkipWithError(result->crawl_status.ToString().c_str());
    }
    benchmark::DoNotOptimize(result->report.detections.size());
    items = store.items().size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(items) * state.iterations());
  state.SetLabel("crawl AND detect overlapped (streaming plane)");
}
BENCHMARK(BM_StreamingCrawlAndDetect)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(4.0);

void BM_SentimentScore(benchmark::State& state) {
  const auto& model = Context().semantic_model();
  text::Segmenter segmenter(&model.dictionary);
  std::vector<std::vector<std::string>> token_lists;
  for (size_t i = 0; i < 200 && i < Platform().store.items().size(); ++i) {
    for (const auto& c : Platform().store.items()[i].comments) {
      token_lists.push_back(segmenter.Segment(c.content));
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sentiment.Score(token_lists[i++ % token_lists.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SentimentScore);

}  // namespace
