// Perf microbenches: text substrate — UTF-8 decode, FMM segmentation,
// entropy, punctuation scan, JSON parse/serialize of comment records.
//
// Byte accounting goes through obs::Counter handles in the process
// registry (bench.* names, transient) instead of loop-local tallies, so
// the benches exercise — and their numbers agree with — the same metrics
// substrate the pipeline stages report through.

#include <benchmark/benchmark.h>

#include "collect/record.h"
#include "obs/metrics.h"
#include "platform/comment_generator.h"
#include "platform/presets.h"
#include "text/id_segmenter.h"
#include "text/segmenter.h"
#include "text/text_stats.h"
#include "text/token_ids.h"
#include "text/utf8.h"
#include "util/json.h"
#include "util/random.h"

using namespace cats;

namespace {

/// Registry-backed byte tally: Add on the hot path is one relaxed atomic
/// add; the delta since construction feeds SetBytesProcessed.
class RegistryBytes {
 public:
  explicit RegistryBytes(std::string_view name)
      : counter_(obs::MetricsRegistry::Global().GetCounter(name)),
        start_(counter_->value()) {}
  void Add(size_t bytes) { counter_->Increment(bytes); }
  int64_t Delta() const {
    return static_cast<int64_t>(counter_->value() - start_);
  }

 private:
  obs::Counter* counter_;
  uint64_t start_;
};

const platform::SyntheticLanguage& Language() {
  static const auto* language = new platform::SyntheticLanguage(
      platform::DefaultLanguageOptions());
  return *language;
}

const std::vector<std::string>& Comments() {
  static const auto* comments = [] {
    auto* out = new std::vector<std::string>();
    platform::CommentGenerator generator(&Language());
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
      out->push_back(generator.GenerateBenign(0.7, &rng));
    }
    return out;
  }();
  return *comments;
}

const text::SegmentationDictionary& Dictionary() {
  static const auto* dict = new text::SegmentationDictionary(
      Language().BuildSegmentationDictionary());
  return *dict;
}

void BM_Utf8Decode(benchmark::State& state) {
  const auto& comments = Comments();
  RegistryBytes bytes("bench.utf8_decode_bytes_total");
  size_t i = 0;
  for (auto _ : state) {
    const std::string& c = comments[i++ % comments.size()];
    benchmark::DoNotOptimize(text::DecodeString(c));
    bytes.Add(c.size());
  }
  state.SetBytesProcessed(bytes.Delta());
}
BENCHMARK(BM_Utf8Decode);

void BM_FmmSegment(benchmark::State& state) {
  text::Segmenter segmenter(&Dictionary());
  const auto& comments = Comments();
  RegistryBytes bytes("bench.fmm_segment_bytes_total");
  size_t i = 0;
  for (auto _ : state) {
    const std::string& c = comments[i++ % comments.size()];
    benchmark::DoNotOptimize(segmenter.Segment(c));
    bytes.Add(c.size());
  }
  state.SetBytesProcessed(bytes.Delta());
}
BENCHMARK(BM_FmmSegment);

void BM_TrieSegmentIds(benchmark::State& state) {
  // The token-id hot path: double-array-trie longest match into a reused
  // TokenArena — compare against BM_FmmSegment (hash probes + per-token
  // string allocation) for the segmentation speedup in isolation.
  text::IdSegmenter segmenter(Dictionary());
  text::TokenArena arena;
  const auto& comments = Comments();
  RegistryBytes bytes("bench.trie_segment_bytes_total");
  size_t i = 0;
  for (auto _ : state) {
    const std::string& c = comments[i++ % comments.size()];
    arena.Reset();
    benchmark::DoNotOptimize(segmenter.SegmentToIds(c, &arena));
    bytes.Add(c.size());
  }
  state.SetBytesProcessed(bytes.Delta());
}
BENCHMARK(BM_TrieSegmentIds);

void BM_TokenEntropy(benchmark::State& state) {
  text::Segmenter segmenter(&Dictionary());
  std::vector<std::vector<std::string>> token_lists;
  for (const std::string& c : Comments()) {
    token_lists.push_back(segmenter.Segment(c));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::TokenEntropy(token_lists[i++ % token_lists.size()]));
  }
}
BENCHMARK(BM_TokenEntropy);

void BM_PunctuationScan(benchmark::State& state) {
  const auto& comments = Comments();
  RegistryBytes bytes("bench.punctuation_scan_bytes_total");
  size_t i = 0;
  for (auto _ : state) {
    const std::string& c = comments[i++ % comments.size()];
    benchmark::DoNotOptimize(text::AnalyzeStructure(c));
    bytes.Add(c.size());
  }
  state.SetBytesProcessed(bytes.Delta());
}
BENCHMARK(BM_PunctuationScan);

void BM_CommentRecordJsonRoundTrip(benchmark::State& state) {
  collect::CommentRecord record;
  record.item_id = 545470505476ull;
  record.comment_id = 40805023517ull;
  record.content = Comments()[0];
  record.nickname = "0***莉";
  record.user_exp_value = 100;
  record.client = "Android";
  record.date = "2017-09-10 12:10:00";
  for (auto _ : state) {
    std::string body = collect::CommentRecordToJson(record).Serialize();
    auto parsed = JsonValue::Parse(body);
    auto back = collect::ParseCommentRecord(*parsed);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_CommentRecordJsonRoundTrip);

}  // namespace
