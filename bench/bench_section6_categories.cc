// §VI deployment: Alibaba partially incorporated CATS into Taobao to
// detect fraud items in eight third-party-shop categories (men's/women's
// clothing & shoes, computer & office, phone & accessories, food & grocery,
// sports & outdoors). This bench reproduces the deployment view: a single
// trained detector swept over each category's items, reported per category.

#include <cstdio>
#include <map>
#include <unordered_set>

#include "analysis/validation.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "§VI — per-category deployment on the Taobao-like platform",
      "CATS detects frauds \"with a high accuracy\" across all eight "
      "deployed categories");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));
  bench::PlatformData d1 =
      context.MakePlatform(platform::TaobaoD1Config(scales.d1));

  auto detector = context.TrainDetector(d0);
  // Deployed operating point (same calibration recipe as bench_table6).
  bench::PlatformData validation = context.MakePlatform([] {
    platform::MarketplaceConfig c = platform::TaobaoD1Config(0.004);
    c.name = "d1-validation";
    c.seed = 0xCA1B;
    return c;
  }());
  (void)detector->CalibrateThreshold(validation.store.items(),
                                     validation.TrueLabels(),
                                     /*target_precision=*/0.90);
  auto report = detector->Detect(d1.store.items());
  if (!report.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::unordered_set<uint64_t> flagged;
  for (const core::Detection& d : report->detections) {
    flagged.insert(d.item_id);
  }

  // Per-category confusion; category comes from the public item record.
  struct Counts {
    size_t items = 0, fraud = 0, tp = 0, fp = 0;
  };
  std::map<std::string, Counts> by_category;
  std::vector<int> labels = d1.TrueLabels();
  for (size_t i = 0; i < d1.store.items().size(); ++i) {
    const collect::CollectedItem& ci = d1.store.items()[i];
    Counts& c = by_category[ci.item.category];
    ++c.items;
    bool is_fraud = labels[i] == 1;
    bool is_flagged = flagged.count(ci.item.item_id) > 0;
    c.fraud += is_fraud;
    if (is_flagged && is_fraud) ++c.tp;
    if (is_flagged && !is_fraud) ++c.fp;
  }

  TablePrinter table({"Category", "items", "fraud", "flagged", "precision",
                      "recall"});
  for (const auto& [category, c] : by_category) {
    double precision =
        (c.tp + c.fp) > 0 ? static_cast<double>(c.tp) / (c.tp + c.fp) : 0.0;
    double recall =
        c.fraud > 0 ? static_cast<double>(c.tp) / c.fraud : 0.0;
    table.AddRow({category, std::to_string(c.items), std::to_string(c.fraud),
                  std::to_string(c.tp + c.fp), StrFormat("%.2f", precision),
                  StrFormat("%.2f", recall)});
  }
  table.Print();
  std::printf("\nOne model, all eight §VI categories — detection quality "
              "must not collapse in\nany category (the paper reports "
              "category-independent deployment).\n");
  return 0;
}
