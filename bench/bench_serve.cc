// bench_serve — the serving plane's latency/throughput curve, over TCP.
//
// Trains a small model, saves it through the manifest path, starts a
// ServeLoop behind a TcpServer, then drives it open-loop at stepped QPS
// over many concurrent loopback connections (serve/loadgen.h), with a
// model hot-swap fired mid-run while traffic flows. Two curves are
// measured in the same process for an apples-to-apples A/B:
//
//   - transport=reactor: the epoll event-loop transport (the default),
//     at --connections concurrent connections and an extended QPS ladder;
//   - transport=thread_per_connection: the legacy blocking transport, at
//     the same connection count, as the comparison baseline.
//
// Writes both curves as JSON (default BENCH_serve.json, override with
// --json=PATH) — the committed baseline scripts/run_perf_baseline.sh
// regenerates, and scripts/perf_gate.py gates p99 at the highest QPS step
// the reactor curve sustains cleanly.
//
// The latency convention is coordinated-omission-free: each request's
// latency is measured from its *scheduled* arrival, so queueing delay under
// saturation shows up in p99 instead of being hidden by a slowed client.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "platform/presets.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "util/csv.h"

using namespace cats;

namespace {

const char* TransportName(serve::TcpTransport transport) {
  return transport == serve::TcpTransport::kReactor ? "reactor"
                                                    : "thread_per_connection";
}

/// Runs one full loadgen curve against a fresh TcpServer on the given
/// transport. Returns the report JSON annotated with the transport config,
/// or exits on failure (a bench with a dead transport has no baseline to
/// write).
JsonValue RunCurve(serve::ServeLoop* loop,
                   const std::vector<collect::CollectedItem>& items,
                   const serve::LoadgenOptions& loadgen_options,
                   serve::TcpTransport transport, size_t num_shards) {
  serve::TcpServerOptions server_options;
  server_options.transport = transport;
  server_options.num_shards = num_shards;
  server_options.max_connections = loadgen_options.connections + 8;
  serve::TcpServer server(loop, server_options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "tcp server start (%s) failed: %s\n",
                 TransportName(transport), st.ToString().c_str());
    std::exit(1);
  }

  std::printf("-- transport=%s connections=%zu shards=%zu\n",
              TransportName(transport), loadgen_options.connections,
              num_shards);
  auto report = serve::RunLoadgenTcp("127.0.0.1", server.port(), items,
                                     loadgen_options);
  server.Stop();
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen (%s) failed: %s\n",
                 TransportName(transport),
                 report.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%10s %12s %8s %10s %8s %10s %10s %10s\n", "qps", "achieved",
              "ok", "overload", "errors", "p50_us", "p99_us", "inflight");
  for (const serve::LoadgenStepResult& step : report->steps) {
    std::printf("%10.0f %12.1f %8llu %10llu %8llu %10.0f %10.0f %10llu\n",
                step.qps_target, step.qps_achieved,
                (unsigned long long)step.ok,
                (unsigned long long)step.overloaded,
                (unsigned long long)step.errors, step.p50_micros,
                step.p99_micros, (unsigned long long)step.max_inflight);
  }
  if (report->swap_attempted) {
    std::printf("hot swap under load: %s (generation %llu in %lld us)\n",
                report->swap_ok ? "ok" : "FAILED",
                (unsigned long long)report->swap_generation,
                (long long)report->swap_latency_micros);
    if (!report->swap_ok) std::exit(1);
  }

  JsonValue curve = report->ToJson(loop->options());
  curve.Set("transport", JsonValue::String(TransportName(transport)));
  curve.Set("connections",
            JsonValue::Int(static_cast<int64_t>(loadgen_options.connections)));
  curve.Set("shards", JsonValue::Int(static_cast<int64_t>(num_shards)));
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  size_t connections = 64;
  size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = static_cast<size_t>(std::atol(argv[i] + 14));
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<size_t>(std::atol(argv[i] + 9));
    }
  }

  bench::PrintBanner(
      "serve",
      "online scoring over TCP sustains stepped offered load across many "
      "concurrent connections, epoll reactor vs thread-per-connection A/B, "
      "with a zero-downtime mid-run model hot-swap");

  bench::BenchContext ctx;
  bench::PlatformData d0 =
      ctx.MakePlatform(platform::TaobaoD0Config(/*scale=*/0.03));

  // A deployable model dir: the serving plane only loads through the
  // manifest CRC path, so the bench exercises save -> load -> serve.
  core::Cats cats_system;
  cats_system.SetSemanticModel(ctx.semantic_model());
  Status st = cats_system.TrainDetector(d0.store.items(), d0.TrueLabels());
  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "cats_bench_serve_model")
          .string();
  std::filesystem::remove_all(model_dir);
  std::filesystem::create_directories(model_dir);
  if (st.ok()) st = cats_system.SaveModel(model_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "model setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<collect::CollectedItem> probe = d0.store.items();
  if (probe.size() > 32) probe.resize(32);

  serve::ServeLoop loop(serve::ServeOptions{});
  st = loop.Start(model_dir, std::move(probe));
  if (!st.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Reactor curve: the full ladder, swap mid-run.
  serve::LoadgenOptions reactor_options;
  reactor_options.qps_steps = {100.0, 200.0, 400.0, 800.0, 1600.0};
  reactor_options.step_seconds = 1.5;
  reactor_options.swap_model_dir = model_dir;  // hot-swap under live traffic
  reactor_options.connections = connections;
  JsonValue reactor_curve =
      RunCurve(&loop, d0.store.items(), reactor_options,
               serve::TcpTransport::kReactor, shards);

  // Legacy curve: same connection count, same ladder minus the top step
  // (thread-per-connection at high QPS on a small box mostly measures
  // scheduler thrash; the A/B point is the shared ladder).
  serve::LoadgenOptions legacy_options = reactor_options;
  legacy_options.qps_steps = {100.0, 200.0, 400.0, 800.0};
  legacy_options.swap_model_dir.clear();
  JsonValue legacy_curve =
      RunCurve(&loop, d0.store.items(), legacy_options,
               serve::TcpTransport::kThreadPerConnection, 0);

  loop.Stop(serve::StopMode::kDrain);

  JsonValue out = JsonValue::Object();
  out.Set("bench", JsonValue::String("serve_loadgen"));
  out.Set("workers",
          JsonValue::Int(static_cast<int64_t>(loop.options().num_workers)));
  out.Set("queue_capacity",
          JsonValue::Int(static_cast<int64_t>(loop.options().queue_capacity)));
  JsonValue curves = JsonValue::Array();
  curves.Append(std::move(reactor_curve));
  curves.Append(std::move(legacy_curve));
  out.Set("curves", std::move(curves));

  st = WriteStringToFile(json_path, out.Serialize() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("curves written to %s\n", json_path.c_str());
  std::filesystem::remove_all(model_dir);
  return 0;
}
