// bench_serve — the serving plane's latency/throughput curve.
//
// Trains a small model, saves it through the manifest path, then drives an
// in-process ServeLoop open-loop at stepped QPS (serve/loadgen.h), with a
// model hot-swap fired mid-run while traffic flows. Writes the curve as
// JSON (default BENCH_serve.json, override with --json=PATH) — the
// committed baseline scripts/run_perf_baseline.sh regenerates.
//
// The latency convention is coordinated-omission-free: each request's
// latency is measured from its *scheduled* arrival, so queueing delay under
// saturation shows up in p99 instead of being hidden by a slowed client.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "platform/presets.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/csv.h"

using namespace cats;

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::PrintBanner(
      "serve",
      "online scoring sustains stepped offered load with bounded-admission "
      "overload behavior and a zero-downtime mid-run model hot-swap");

  bench::BenchContext ctx;
  bench::PlatformData d0 =
      ctx.MakePlatform(platform::TaobaoD0Config(/*scale=*/0.03));

  // A deployable model dir: the serving plane only loads through the
  // manifest CRC path, so the bench exercises save -> load -> serve.
  core::Cats cats_system;
  cats_system.SetSemanticModel(ctx.semantic_model());
  Status st = cats_system.TrainDetector(d0.store.items(), d0.TrueLabels());
  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "cats_bench_serve_model")
          .string();
  std::filesystem::remove_all(model_dir);
  std::filesystem::create_directories(model_dir);
  if (st.ok()) st = cats_system.SaveModel(model_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "model setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<collect::CollectedItem> probe = d0.store.items();
  if (probe.size() > 32) probe.resize(32);

  serve::ServeLoop loop(serve::ServeOptions{});
  st = loop.Start(model_dir, std::move(probe));
  if (!st.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::LoadgenOptions options;
  options.qps_steps = {100.0, 200.0, 400.0, 800.0};
  options.step_seconds = 1.5;
  options.swap_model_dir = model_dir;  // hot-swap under live traffic
  auto report = serve::RunLoadgen(&loop, d0.store.items(), options);
  loop.Stop(serve::StopMode::kDrain);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%10s %12s %8s %10s %8s %10s %10s\n", "qps", "achieved", "ok",
              "overload", "errors", "p50_us", "p99_us");
  for (const serve::LoadgenStepResult& step : report->steps) {
    std::printf("%10.0f %12.1f %8llu %10llu %8llu %10.0f %10.0f\n",
                step.qps_target, step.qps_achieved,
                (unsigned long long)step.ok,
                (unsigned long long)step.overloaded,
                (unsigned long long)step.errors, step.p50_micros,
                step.p99_micros);
  }
  std::printf("hot swap under load: %s (generation %llu in %lld us)\n",
              report->swap_ok ? "ok" : "FAILED",
              (unsigned long long)report->swap_generation,
              (long long)report->swap_latency_micros);
  if (report->swap_attempted && !report->swap_ok) return 1;

  st = WriteStringToFile(json_path,
                         report->ToJson(loop.options()).Serialize() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("curve written to %s\n", json_path.c_str());
  std::filesystem::remove_all(model_dir);
  return 0;
}
