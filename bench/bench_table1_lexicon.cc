// Table I: the positive set P and negative set N, expanded from a few seed
// words by iterative word2vec k-NN (~200 words each). The paper highlights
// that the expansion even discovers homograph spellings of 好评 (好坪, 好平)
// that spammers use; the simulator plants codepoint-swapped aliases of the
// positive seeds in campaign text, and this bench checks they are found.

#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Table I — positive / negative lexicons via word2vec expansion",
      "P and N each ~200 words grown from seeds; homograph variants of "
      "positive seeds are discovered automatically");

  bench::BenchContext context;
  const core::SemanticModel& model = context.semantic_model();
  const platform::SyntheticLanguage& lang = context.language();

  auto purity = [&lang](const nlp::Lexicon& lexicon,
                        platform::Polarity want) {
    size_t correct = 0;
    for (const std::string& w : lexicon.SortedWords()) {
      if (lang.PolarityOf(w) == want) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(lexicon.size());
  };
  double pos_purity = purity(model.positive, platform::Polarity::kPositive);
  double neg_purity = purity(model.negative, platform::Polarity::kNegative);

  TablePrinter table({"Set", "size", "ground-truth purity", "paper size"});
  table.AddRow({"Positive (P)", std::to_string(model.positive.size()),
                StrFormat("%.2f", pos_purity), "~200"});
  table.AddRow({"Negative (N)", std::to_string(model.negative.size()),
                StrFormat("%.2f", neg_purity), "~200"});
  table.Print();

  // Homograph discovery (the 好评 -> 好坪/好平 phenomenon).
  std::printf("\nHomograph discovery (spam-only aliases of positive seeds):\n");
  size_t found = 0, total = 0;
  for (const platform::LanguageWord& w : lang.words()) {
    if (!w.spam_homograph) continue;
    ++total;
    bool in_p = model.positive.Contains(w.text);
    found += in_p ? 1 : 0;
    std::printf("  %-12s -> %s\n", w.text.c_str(),
                in_p ? "FOUND in P" : "missed");
  }
  std::printf("discovered %zu / %zu homographs (paper: finds 好坪, 好平 "
              "for 好评)\n\n", found, total);

  // Sample of each lexicon (the analogue of Table I's keyword listing).
  auto dump = [](const char* label, const nlp::Lexicon& lexicon) {
    std::printf("%s (first 15 of %zu): ", label, lexicon.size());
    size_t shown = 0;
    for (const std::string& w : lexicon.SortedWords()) {
      if (shown++ >= 15) break;
      std::printf("%s ", w.c_str());
    }
    std::printf("\n");
  };
  dump("P", model.positive);
  dump("N", model.negative);

  // Persist the full sets.
  CsvWriter writer(bench::BenchOutPath("table1_lexicons.csv"));
  writer.SetHeader({"set", "word", "ground_truth_polarity"});
  auto emit = [&](const char* set, const nlp::Lexicon& lexicon) {
    for (const std::string& w : lexicon.SortedWords()) {
      const char* truth = "neutral";
      auto p = lang.PolarityOf(w);
      if (p == platform::Polarity::kPositive) truth = "positive";
      if (p == platform::Polarity::kNegative) truth = "negative";
      writer.AddRow({set, w, truth});
    }
  };
  emit("P", model.positive);
  emit("N", model.negative);
  (void)writer.Flush();
  std::printf("\nfull lexicons written to %s\n",
              bench::BenchOutPath("table1_lexicons.csv").c_str());
  return 0;
}
