// Table II: the 11 platform-independent features. This bench prints each
// feature's definition together with its fraud/normal class means on the
// 5k/5k subset — a sanity dump that every feature carries signal in the
// direction the paper describes.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

namespace {

constexpr const char* kDescriptions[core::kNumFeatures] = {
    "avg number of positive words per comment",
    "avg |#positive - #negative| per comment",
    "unique words / total words",
    "avg sentiment of comments",
    "avg entropy of comments",
    "avg comment length (words)",
    "sum of comment lengths",
    "total punctuation marks",
    "avg punctuation ratio",
    "avg positive 2-grams per comment",
    "avg positive 2-gram ratio",
};

}  // namespace

int main() {
  bench::PrintBanner("Table II — the 11 features",
                     "word-level, semantic and structural features "
                     "discriminate fraud from normal items");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k =
      context.MakePlatform(platform::TaobaoFiveKConfig(scales.five_k));
  ml::Dataset dataset = context.BuildDataset(five_k);

  TablePrinter table(
      {"Feature", "Description", "fraud mean", "normal mean", "KS"});
  for (size_t f = 0; f < core::kNumFeatures; ++f) {
    RunningStats fraud, normal;
    std::vector<double> fraud_col, normal_col;
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      double v = dataset.Value(i, f);
      if (dataset.Label(i) == 1) {
        fraud.Add(v);
        fraud_col.push_back(v);
      } else {
        normal.Add(v);
        normal_col.push_back(v);
      }
    }
    table.AddRow({std::string(core::kFeatureNames[f]), kDescriptions[f],
                  StrFormat("%.3f", fraud.mean()),
                  StrFormat("%.3f", normal.mean()),
                  StrFormat("%.2f",
                            KolmogorovSmirnovStatistic(fraud_col,
                                                       normal_col))});
  }
  table.Print();
  std::printf("\nKS > 0 for every row means every Table-II feature is "
              "informative on the\nsimulated platform, as the paper's Fig 7 "
              "importances imply.\n");
  return 0;
}
