// Table III: performance comparison of six classifiers under five-fold
// cross validation on the 5,000 fraud + 5,000 normal ground-truth set.
//
// Paper values:  Xgboost .93/.90  SVM .99/.62  AdaBoost .90/.90
//                Neural Network .83/.65  Decision Tree .86/.90
//                Naive Bayes .91/.65.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "ml/adaboost.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "util/table_printer.h"
#include "util/string_util.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Table III — classifier comparison (five-fold CV)",
      "Xgboost best overall (.93/.90); SVM precision-heavy (.99/.62); "
      "NN and NB recall-poor (~.65); DT/AdaBoost balanced (~.9/.9)");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData five_k = context.MakePlatform(
      platform::TaobaoFiveKConfig(scales.five_k));
  ml::Dataset dataset = context.BuildDataset(five_k);
  std::printf("dataset: %zu rows (%zu fraud / %zu normal), %zu features\n\n",
              dataset.num_rows(), dataset.CountLabel(1),
              dataset.CountLabel(0), dataset.num_features());

  struct Row {
    std::unique_ptr<ml::Classifier> model;
    double paper_precision;
    double paper_recall;
  };
  ml::SvmOptions svm_options;
  svm_options.decision_margin = 2.5;  // the paper's SVM trades recall away
  std::vector<Row> rows;
  rows.push_back({std::make_unique<ml::Gbdt>(), 0.93, 0.90});
  rows.push_back({std::make_unique<ml::LinearSvm>(svm_options), 0.99, 0.62});
  rows.push_back({std::make_unique<ml::AdaBoost>(), 0.90, 0.90});
  rows.push_back({std::make_unique<ml::Mlp>(), 0.83, 0.65});
  rows.push_back({std::make_unique<ml::DecisionTree>(), 0.86, 0.90});
  rows.push_back({std::make_unique<ml::GaussianNaiveBayes>(), 0.91, 0.65});

  TablePrinter table({"Classifier", "Precision", "Recall", "F1", "AUC",
                      "paper P", "paper R"});
  for (const Row& row : rows) {
    Stopwatch watch;
    auto result = ml::CrossValidate(*row.model, dataset, 5, /*seed=*/2019);
    if (!result.ok()) {
      std::fprintf(stderr, "CV failed for %s: %s\n",
                   row.model->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({result->model_name, StrFormat("%.2f", result->precision),
                  StrFormat("%.2f", result->recall),
                  StrFormat("%.2f", result->f1),
                  StrFormat("%.4f", result->auc),
                  StrFormat("%.2f", row.paper_precision),
                  StrFormat("%.2f", row.paper_recall)});
    std::fprintf(stderr, "[bench] %s done in %.1fs\n",
                 result->model_name.c_str(), watch.ElapsedSeconds());
  }
  table.Print();
  std::printf(
      "\nShape checks: the tree ensemble should lead on F1; the margin-"
      "shifted\nlinear SVM should show the paper's high-precision/low-recall "
      "signature.\n");
  return 0;
}
