// Table IV: the labeled Taobao training set D0 — 14,000 fraud items,
// 20,000 normal items, 474,000 comments. This bench generates the D0
// analogue at the configured scale and reports its composition against the
// paper's (scaled) numbers.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner("Table IV — the labeled dataset D0",
                     "14,000 fraud / 20,000 normal items, 474,000 comments");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));

  size_t fraud = 0, normal = 0;
  for (const collect::CollectedItem& ci : d0.store.items()) {
    (d0.market->IsFraudItem(ci.item.item_id) ? fraud : normal)++;
  }
  double comments_per_item =
      static_cast<double>(d0.store.num_comments()) /
      static_cast<double>(d0.store.items().size());

  TablePrinter table({"Quantity", "measured", "paper", "paper x scale"});
  table.AddRow({"scale", StrFormat("%.3f", scales.d0), "1.0", "-"});
  table.AddRow({"#FI (fraud items)", FormatWithCommas((int64_t)fraud),
                "14,000",
                FormatWithCommas((int64_t)(14000 * scales.d0))});
  table.AddRow({"#NI (normal items)", FormatWithCommas((int64_t)normal),
                "20,000",
                FormatWithCommas((int64_t)(20000 * scales.d0))});
  table.AddRow({"#comments",
                FormatWithCommas((int64_t)d0.store.num_comments()), "474,000",
                FormatWithCommas((int64_t)(474000 * scales.d0))});
  table.AddRow({"comments/item", StrFormat("%.1f", comments_per_item),
                StrFormat("%.1f", 474000.0 / 34000.0), "-"});
  table.AddRow({"FI fraction",
                StrFormat("%.3f", fraud / double(fraud + normal)),
                StrFormat("%.3f", 14000.0 / 34000.0), "-"});
  table.Print();
  std::printf("\nNote: normal-item count runs slightly above scale because "
              "malicious shops\ncarry legitimate cover inventory (see "
              "DESIGN.md).\n");
  return 0;
}
