// Table V: the held-out Taobao evaluation set D1 — 18,682 fraud /
// 1,461,452 normal items from 15,992 shops with 72,340,999 comments.
// Generated here at the configured scale (comment volume per item reduced;
// see DESIGN.md).

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Table V — the evaluation dataset D1",
      "18,682 fraud / 1,461,452 normal items, 72.3M comments, 15,992 shops");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d1 =
      context.MakePlatform(platform::TaobaoD1Config(scales.d1));

  size_t fraud = 0, normal = 0;
  for (const collect::CollectedItem& ci : d1.store.items()) {
    (d1.market->IsFraudItem(ci.item.item_id) ? fraud : normal)++;
  }
  TablePrinter table({"Quantity", "measured", "paper", "paper x scale"});
  table.AddRow({"scale", StrFormat("%.4f", scales.d1), "1.0", "-"});
  table.AddRow({"#FI", FormatWithCommas((int64_t)fraud), "18,682",
                FormatWithCommas((int64_t)(18682 * scales.d1))});
  table.AddRow({"#NI", FormatWithCommas((int64_t)normal), "1,461,452",
                FormatWithCommas((int64_t)(1461452 * scales.d1))});
  table.AddRow({"#comments",
                FormatWithCommas((int64_t)d1.store.num_comments()),
                "72,340,999", "(volume/item reduced, see DESIGN.md)"});
  table.AddRow({"#shops", FormatWithCommas((int64_t)d1.store.shops().size()),
                "15,992",
                FormatWithCommas((int64_t)(15992 * scales.d1))});
  table.AddRow({"FI fraction",
                StrFormat("%.4f", fraud / double(fraud + normal)),
                StrFormat("%.4f", 18682.0 / 1480134.0), "-"});
  table.Print();
  return 0;
}
