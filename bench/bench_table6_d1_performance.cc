// Table VI: CATS on D1 — precision/recall/F-score for (a) fraud items
// labeled with sufficient evidence and (b) all fraud items. The detector is
// pre-trained on D0 (as in the paper) and then applied to the disjoint D1.
//
// Paper:  evidence-labeled  P=0.83 R=0.92 F=0.87
//         overall           P=0.91 R=0.90 F=0.90
//
// Evidence mapping in the simulator: blatant campaigns correspond to the
// paper's financially-evidenced labels; stealth campaigns to the
// expert-manual labels (they are the hard cases in both worlds).

#include <cstdio>
#include <unordered_set>

#include "analysis/validation.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "Table VI — CATS performance on D1 (trained on D0)",
      "evidence-labeled frauds: P=.83 R=.92; overall: P=.91 R=.90");

  bench::BenchContext context;
  bench::BenchScales scales;
  bench::PlatformData d0 =
      context.MakePlatform(platform::TaobaoD0Config(scales.d0));
  bench::PlatformData d1 =
      context.MakePlatform(platform::TaobaoD1Config(scales.d1));

  Stopwatch train_watch;
  auto detector = context.TrainDetector(d0);
  // Pick the deployed operating point on a D1-like validation slice that
  // matches D1's class imbalance: the lowest threshold reaching the
  // production precision target (the paper's deployment tuned for ~0.9
  // precision on Taobao). D0 itself is 40% fraud and cannot calibrate the
  // 1.3%-prevalence regime.
  bench::PlatformData validation = context.MakePlatform([] {
    platform::MarketplaceConfig c = platform::TaobaoD1Config(0.004);
    c.name = "d1-validation";
    c.seed = 0xCA1B;
    return c;
  }());
  auto threshold = detector->CalibrateThreshold(
      validation.store.items(), validation.TrueLabels(),
      /*target_precision=*/0.90);
  std::fprintf(stderr,
               "[bench] detector trained in %.1fs; threshold calibrated to "
               "%.3f\n",
               train_watch.ElapsedSeconds(), threshold.value_or(-1));

  Stopwatch detect_watch;
  auto report = detector->Detect(d1.store.items());
  if (!report.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("D1: scanned %zu items, classified %zu, flagged %zu "
              "(%.1fs)\n\n",
              report->items_scanned, report->items_classified,
              report->detections.size(), detect_watch.ElapsedSeconds());

  // Evidence split: items promoted by non-stealth campaigns.
  std::unordered_set<uint64_t> evidence_items;
  for (const platform::CampaignPlan& plan : d1.market->campaigns()) {
    if (plan.stealth) continue;
    evidence_items.insert(plan.item_ids.begin(), plan.item_ids.end());
  }

  std::vector<uint64_t> ids = d1.ItemIds();
  std::vector<int> overall_labels = d1.TrueLabels();
  std::vector<int> evidence_labels(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    evidence_labels[i] = evidence_items.count(ids[i]) ? 1 : 0;
  }

  ml::ClassificationMetrics overall =
      analysis::EvaluateReport(*report, ids, overall_labels);
  ml::ClassificationMetrics evidence =
      analysis::EvaluateReport(*report, ids, evidence_labels);

  TablePrinter table({"Category", "Precision", "Recall", "F-score",
                      "paper P", "paper R", "paper F"});
  table.AddRow({"fraud items labeled with sufficient evidence",
                StrFormat("%.2f", evidence.precision),
                StrFormat("%.2f", evidence.recall),
                StrFormat("%.2f", evidence.f1), "0.83", "0.92", "0.87"});
  table.AddRow({"the overall fraud items",
                StrFormat("%.2f", overall.precision),
                StrFormat("%.2f", overall.recall),
                StrFormat("%.2f", overall.f1), "0.91", "0.90", "0.90"});
  table.Print();
  std::printf("\nShape: recall on evidence-labeled (blatant) frauds exceeds "
              "overall recall;\nthe evidence row's precision is depressed "
              "because stealth frauds it also\ncatches count against it — "
              "the same asymmetry the paper reports.\n");
  std::printf("\nconfusion (overall): %s\n", overall.ToString().c_str());
  return 0;
}
