// §V user aspect: the risky-user study on E-platform's reported frauds.
// Paper: 70% of fraud items have avgUserExpValue below the platform
// expectation; 20% of risky users repeat-purchase (extremes 400+); 83,745
// co-purchase pairs trace back to a set of 1,056 users.

#include <cstdio>

#include "analysis/user_aspect.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace cats;

int main() {
  bench::PrintBanner(
      "§V user aspect — risky users behind the reported frauds",
      "70% of fraud items below expectation; 20% repeat buyers (400+ "
      "extremes); 83,745 pairs from 1,056 users");

  bench::BenchContext context;
  bench::BenchScales scales;
  // Larger fraud slice for stable pair statistics.
  platform::MarketplaceConfig config =
      platform::EPlatformConfig(scales.e_platform);
  bench::PlatformData eplat = context.MakePlatform(config);
  auto split = eplat.Split();

  double expectation = analysis::PopulationExpectation(eplat.store.items());
  analysis::UserAspectReport fraud =
      analysis::AnalyzeUserAspect(split.fraud, expectation);
  analysis::UserAspectReport normal =
      analysis::AnalyzeUserAspect(split.normal, expectation);

  TablePrinter table({"Statistic", "fraud items", "normal items", "paper"});
  table.AddRow({"items analyzed", std::to_string(split.fraud.size()),
                std::to_string(split.normal.size()), "10,720 / rest"});
  table.AddRow({"unique buyers",
                std::to_string(fraud.buyer_exp_values.size()),
                std::to_string(normal.buyer_exp_values.size()), "-"});
  table.AddRow({"avgUserExpValue below expectation",
                StrFormat("%.2f", fraud.frac_items_below_expectation),
                StrFormat("%.2f", normal.frac_items_below_expectation),
                "0.70 (fraud)"});
  table.AddRow({"buyers with repeat purchases",
                StrFormat("%.2f", fraud.frac_buyers_with_repeat),
                StrFormat("%.2f", normal.frac_buyers_with_repeat),
                "0.20 (fraud)"});
  table.AddRow({"max purchases by one user",
                std::to_string(fraud.max_purchases_by_one_user),
                std::to_string(normal.max_purchases_by_one_user),
                "400+ (fraud)"});
  table.AddRow({"co-purchase pairs (>=2 shared items)",
                FormatWithCommas((int64_t)fraud.copurchase_pairs),
                FormatWithCommas((int64_t)normal.copurchase_pairs),
                "83,745 (fraud)"});
  table.AddRow({"users forming those pairs",
                FormatWithCommas((int64_t)fraud.copurchase_users),
                FormatWithCommas((int64_t)normal.copurchase_users),
                "1,056 (fraud)"});
  table.Print();

  double pair_concentration =
      fraud.copurchase_users > 0
          ? static_cast<double>(fraud.copurchase_pairs) /
                fraud.copurchase_users
          : 0.0;
  std::printf("\npair concentration (pairs per involved user): fraud=%.1f "
              "(paper: 83745/1056 = %.1f)\n",
              pair_concentration, 83745.0 / 1056.0);
  std::printf("The shape to check: a small hired workforce produces a pair "
              "count orders of\nmagnitude above what its size suggests, "
              "while normal items show near-zero pairs.\n");
  return 0;
}
