// Campaign forensics scenario (paper §V): after CATS reports fraud items,
// dig into the public comment records to expose the promotion workforce —
// low-reputation buyers, repeat purchases, and co-purchase rings — exactly
// the measurement study the paper runs on E-platform's reported frauds.
//
// Run: ./build/examples/campaign_forensics

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "analysis/order_aspect.h"
#include "analysis/shop_aspect.h"
#include "analysis/user_aspect.h"
#include "collect/crawler.h"
#include "core/cats.h"
#include "platform/api.h"
#include "platform/presets.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace cats;

int main() {
  SetLogLevel(LogLevel::kWarning);
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());

  // Train CATS on the labeled platform (condensed; see quickstart).
  std::printf("[1/3] training CATS...\n");
  platform::Marketplace taobao = platform::Marketplace::Generate(
      platform::TaobaoD0Config(0.05), &language);
  platform::MarketplaceApi taobao_api(&taobao);
  collect::FakeClock clock;
  collect::Crawler taobao_crawler(&taobao_api, collect::CrawlerOptions{},
                                  &clock);
  collect::DataStore taobao_store;
  CATS_CHECK(taobao_crawler.Crawl(&taobao_store).ok());

  std::vector<std::string> corpus;
  for (const auto& item : taobao_store.items()) {
    for (const auto& comment : item.comments) corpus.push_back(comment.content);
  }
  core::Cats cats_system;
  CATS_CHECK(cats_system
                 .BuildSemanticModel(corpus,
                                     language.BuildSegmentationDictionary(),
                                     language.PositiveSeeds(4),
                                     language.NegativeSeeds(4),
                                     taobao.BuildSentimentCorpus(6000, 7))
                 .ok());
  std::vector<int> labels;
  for (const auto& ci : taobao_store.items()) {
    labels.push_back(taobao.IsFraudItem(ci.item.item_id) ? 1 : 0);
  }
  CATS_CHECK(cats_system.TrainDetector(taobao_store.items(), labels).ok());

  // Sweep the target platform.
  std::printf("[2/3] sweeping the target platform...\n");
  platform::Marketplace target = platform::Marketplace::Generate(
      platform::EPlatformConfig(0.001), &language);
  platform::MarketplaceApi api(&target);
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  CATS_CHECK(crawler.Crawl(&store).ok());
  auto report = cats_system.Detect(store.items());
  CATS_CHECK(report.ok());
  std::printf("  %zu items flagged as fraud\n", report->detections.size());

  // Forensics on the REPORTED items only (no ground truth used).
  std::printf("[3/3] forensics on reported items\n\n");
  std::unordered_set<uint64_t> flagged;
  for (const auto& d : report->detections) flagged.insert(d.item_id);
  std::vector<collect::CollectedItem> reported, rest;
  for (const auto& ci : store.items()) {
    (flagged.count(ci.item.item_id) ? reported : rest).push_back(ci);
  }

  double expectation = analysis::PopulationExpectation(store.items());
  analysis::UserAspectReport fraud_aspect =
      analysis::AnalyzeUserAspect(reported, expectation);
  analysis::UserAspectReport normal_aspect =
      analysis::AnalyzeUserAspect(rest, expectation);

  std::printf("user aspect (reported vs remaining items):\n");
  std::printf("  buyers at min reputation: %5.1f%%  vs %5.1f%%\n",
              100 * fraud_aspect.frac_at_min, 100 * normal_aspect.frac_at_min);
  std::printf("  buyers below expValue 2000: %5.1f%% vs %5.1f%%\n",
              100 * fraud_aspect.frac_below_2000,
              100 * normal_aspect.frac_below_2000);
  std::printf("  items w/ avg buyer below platform mean: %5.1f%% vs %5.1f%%\n",
              100 * fraud_aspect.frac_items_below_expectation,
              100 * normal_aspect.frac_items_below_expectation);
  std::printf("  repeat buyers: %5.1f%% vs %5.1f%% (max %llu buys by one "
              "account)\n",
              100 * fraud_aspect.frac_buyers_with_repeat,
              100 * normal_aspect.frac_buyers_with_repeat,
              (unsigned long long)fraud_aspect.max_purchases_by_one_user);
  std::printf("  co-purchase ring: %s pairs over %s accounts (remaining "
              "items: %s pairs)\n",
              FormatWithCommas((int64_t)fraud_aspect.copurchase_pairs).c_str(),
              FormatWithCommas((int64_t)fraud_aspect.copurchase_users).c_str(),
              FormatWithCommas((int64_t)normal_aspect.copurchase_pairs)
                  .c_str());

  analysis::ClientDistribution fraud_clients =
      analysis::ComputeClientDistribution(reported);
  analysis::ClientDistribution normal_clients =
      analysis::ComputeClientDistribution(rest);
  std::printf("\norder aspect (client of record):\n");
  const auto& names = analysis::ClientDistribution::Labels();
  for (size_t c = 0; c < names.size(); ++c) {
    std::printf("  %-8s reported %5.1f%%   remaining %5.1f%%\n",
                names[c].c_str(), 100 * fraud_clients.Fraction(c),
                100 * normal_clients.Fraction(c));
  }

  // Roll item-level reports up to the merchants running the campaigns.
  auto shops = analysis::AnalyzeShops(store, *report);
  auto merchants =
      analysis::SuspectedMerchants(shops, analysis::ShopAspectOptions{});
  size_t truly_malicious = 0;
  for (const auto& m : merchants) {
    if (target.shops()[m.shop_id].malicious) ++truly_malicious;
  }
  std::printf("\nshop aspect: %zu suspected malicious merchants "
              "(%zu truly malicious per ground truth); top offenders:\n",
              merchants.size(), truly_malicious);
  for (size_t i = 0; i < merchants.size() && i < 5; ++i) {
    std::printf("  shop %llu: %zu/%zu items flagged (max score %.2f)\n",
                (unsigned long long)merchants[i].shop_id,
                merchants[i].flagged, merchants[i].items,
                merchants[i].max_score);
  }

  // How much of the true hired workforce did the ring analysis expose?
  std::unordered_set<uint64_t> true_crew;
  for (const auto& plan : target.campaigns()) {
    true_crew.insert(plan.crew.begin(), plan.crew.end());
  }
  std::printf("\nground truth (simulator-only): the platform's real hired "
              "workforce is %zu accounts;\nthe co-purchase ring among "
              "reported items involved %llu distinct buyer identities.\n",
              true_crew.size(),
              (unsigned long long)fraud_aspect.copurchase_users);
  return 0;
}
