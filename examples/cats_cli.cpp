// cats_cli — command-line front end for the CATS pipeline, operating on
// JSONL data directories so each stage can run (and be re-run) separately:
//
//   cats_cli gen    <dir> [--preset d0|d1|eplatform|5k] [--scale S] [--seed N]
//       Generate a simulated platform, crawl it, store the public data as
//       JSONL (shops/items/comments) plus ground-truth labels.
//   cats_cli train  <data-dir> <model-dir>
//       Build the semantic model from the data's comments, train the
//       detector on the ground-truth labels, save the deployable model.
//   cats_cli detect <data-dir> <model-dir> [--threshold T]
//       Load a model, sweep the data, print the detection report (and
//       precision/recall when labels.csv is present).
//   cats_cli analyze <data-dir>
//       Run the §V measurement study (user/order aspects) on the data.
//   cats_cli serve <model-dir>
//       Run the long-lived scoring server (docs/SERVING.md): framed TCP
//       protocol over the epoll reactor (or --transport threads), bounded
//       admission, hot-swappable model.
//   cats_cli loadgen <data-dir> <model-dir>
//       Drive a server open-loop at stepped QPS — in-process by default,
//       over N loopback TCP connections with --connections N — and write
//       the latency/throughput curve as JSON.
//   cats_cli transfer-eval [--platforms a,b,c] [--scale S] [--seed N]
//       Crawl N heterogeneous built-in platforms (federated shards), train
//       one detector per platform, score every platform with every
//       detector, print the in-platform vs cross-platform AUC matrix and
//       write it as BENCH_federation.json.
//
// Example session:
//   ./build/examples/cats_cli gen /tmp/taobao --preset d0 --scale 0.05
//   ./build/examples/cats_cli train /tmp/taobao /tmp/model
//   ./build/examples/cats_cli gen /tmp/target --preset eplatform --scale 0.001
//   ./build/examples/cats_cli detect /tmp/target /tmp/model
//   ./build/examples/cats_cli analyze /tmp/target
//   ./build/examples/cats_cli serve /tmp/model --probe-data /tmp/target
//   ./build/examples/cats_cli loadgen /tmp/target /tmp/model --qps 100,200

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_map>

#include "analysis/order_aspect.h"
#include "analysis/user_aspect.h"
#include "analysis/validation.h"
#include "collect/crawler.h"
#include "core/cats.h"
#include "fault/fault_plan.h"
#include "federate/transfer_eval.h"
#include "pipeline/streaming_cats.h"
#include "platform/api.h"
#include "platform/presets.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace cats;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cats_cli gen <dir> [--preset d0|d1|eplatform|5k] "
               "[--scale S] [--seed N]\n"
               "                 [--fault-profile none|mild|hostile]\n"
               "                 [--data-fault-profile none|mild|hostile]\n"
               "                 [--adversary-profile none|mild|hostile]\n"
               "  cats_cli train <data-dir> <model-dir> [--metrics]\n"
               "  cats_cli detect <data-dir> <model-dir> [--threshold T]\n"
               "                  [--streaming] [--metrics] "
               "[--metrics-json <path>]\n"
               "  cats_cli analyze <data-dir>\n"
               "  cats_cli serve <model-dir> [--probe-data <dir>] [--port P]\n"
               "                 [--workers N] [--queue-capacity C]\n"
               "                 [--max-seconds S] [--transport T] "
               "[--shards N]\n"
               "                 [--max-connections C]\n"
               "  cats_cli loadgen <data-dir> <model-dir> "
               "[--qps Q1,Q2,...]\n"
               "                   [--step-seconds S] [--swap-dir D]\n"
               "                   [--out PATH] [--workers N] "
               "[--queue-capacity C]\n"
               "                   [--connections N] [--transport T] "
               "[--shards N]\n"
               "  cats_cli transfer-eval [--platforms P1,P2,...] "
               "[--scale S]\n"
               "                         [--seed N] [--out PATH]\n"
               "\n"
               "  --platforms P1,...   built-in platforms for the federated\n"
               "                       transfer evaluation (default: all —\n"
               "                       taobao,jademall,bazaar)\n"
               "  --fault-profile P    weather for the simulated crawl\n"
               "                       (default mild; hostile = 429s, 5xx\n"
               "                       bursts, corrupt bodies, stale pages)\n"
               "  --data-fault-profile P\n"
               "                       record dirtiness (default none; mild =\n"
               "                       missing fields; hostile adds absurd\n"
               "                       prices, garbled / oversized comments,\n"
               "                       colliding comment ids)\n"
               "  --adversary-profile P\n"
               "                       adaptive spam campaigns (default none;\n"
               "                       mild = slight template drift + filler\n"
               "                       padding; hostile ramps template\n"
               "                       mutation, homograph rotation, heavy\n"
               "                       sentiment damping and aged sockpuppet\n"
               "                       accounts over the window)\n"
               "  --streaming          run detection on the streaming plane\n"
               "                       (concurrent stage workers over bounded\n"
               "                       queues; same results as sequential)\n"
               "  --metrics            print the pipeline metrics table\n"
               "                       (docs/METRICS.md) after the run\n"
               "  --metrics-json PATH  also write the registry snapshot as "
               "JSON\n"
               "  --probe-data DIR     JSONL data dir whose items become the\n"
               "                       held-out probe rows each swap\n"
               "                       candidate must score sanely\n"
               "  --port P             TCP port for serve (default 8471;\n"
               "                       0 = kernel-assigned, printed)\n"
               "  --workers N          scoring worker threads (default 2)\n"
               "  --queue-capacity C   admission queue capacity (default "
               "128)\n"
               "  --max-seconds S      serve exits after S seconds (default\n"
               "                       0 = run until SIGINT)\n"
               "  --transport T        TCP engine: 'reactor' (epoll event\n"
               "                       loops, the default) or 'threads'\n"
               "                       (legacy thread-per-connection)\n"
               "  --shards N           reactor event-loop shards (default 1)\n"
               "  --max-connections C  concurrent-connection cap (default "
               "64)\n"
               "  --connections N      loadgen: drive over N loopback TCP\n"
               "                       connections instead of in-process\n"
               "                       (default 0 = in-process submit)\n"
               "  --qps Q1,Q2,...      loadgen offered-load steps in req/s\n"
               "                       (default 100,200,400,800)\n"
               "  --step-seconds S     seconds per loadgen step (default 2)\n"
               "  --swap-dir D         model dir hot-swapped in mid-run\n"
               "                       (default: the serving model dir)\n"
               "  --out PATH           loadgen JSON output (default\n"
               "                       BENCH_serve.json)\n");
  return 2;
}

/// Looks up "--flag value" in argv; returns fallback when absent.
std::string FlagValue(int argc, char** argv, const char* flag,
                      const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// True when the boolean "--flag" is present.
bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

Status SaveLabels(const std::string& dir, const platform::Marketplace& market,
                  const collect::DataStore& store) {
  CsvWriter writer(dir + "/labels.csv");
  writer.SetHeader({"item_id", "label"});
  for (const collect::CollectedItem& ci : store.items()) {
    writer.AddRow({std::to_string(ci.item.item_id),
                   market.IsFraudItem(ci.item.item_id) ? "1" : "0"});
  }
  return writer.Flush();
}

Result<std::unordered_map<uint64_t, int>> LoadLabels(const std::string& dir) {
  CATS_ASSIGN_OR_RETURN(auto rows, ReadCsv(dir + "/labels.csv"));
  std::unordered_map<uint64_t, int> labels;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) continue;
    labels[std::strtoull(rows[r][0].c_str(), nullptr, 10)] =
        std::atoi(rows[r][1].c_str());
  }
  return labels;
}

int CmdGen(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string dir = argv[2];
  std::string preset = FlagValue(argc, argv, "--preset", "d0");
  double scale = std::atof(FlagValue(argc, argv, "--scale", "0.05").c_str());
  uint64_t seed =
      std::strtoull(FlagValue(argc, argv, "--seed", "0").c_str(), nullptr, 10);

  platform::MarketplaceConfig config;
  if (preset == "d0") {
    config = platform::TaobaoD0Config(scale);
  } else if (preset == "d1") {
    config = platform::TaobaoD1Config(scale);
  } else if (preset == "eplatform") {
    config = platform::EPlatformConfig(scale);
  } else if (preset == "5k") {
    config = platform::TaobaoFiveKConfig(scale);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  if (seed != 0) config.seed = seed;

  std::string adversary_name =
      FlagValue(argc, argv, "--adversary-profile", "none");
  auto adversary = fault::AdversaryProfile::FromName(adversary_name);
  if (!adversary.ok()) {
    std::fprintf(stderr, "%s\n", adversary.status().ToString().c_str());
    return 2;
  }
  config.adversary = *adversary;

  std::filesystem::create_directories(dir);
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());
  platform::Marketplace market =
      platform::Marketplace::Generate(config, &language);

  std::string profile_name =
      FlagValue(argc, argv, "--fault-profile", "mild");
  auto profile = fault::FaultProfile::FromName(profile_name);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 2;
  }
  std::string data_profile_name =
      FlagValue(argc, argv, "--data-fault-profile", "none");
  auto data_profile = fault::DataFaultProfile::FromName(data_profile_name);
  if (!data_profile.ok()) {
    std::fprintf(stderr, "%s\n", data_profile.status().ToString().c_str());
    return 2;
  }
  collect::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = *profile;
  api_options.data_faults = *data_profile;
  api_options.seed = config.seed;
  api_options.clock = &clock;  // slow-response faults advance virtual time
  platform::MarketplaceApi api(&market, api_options);
  collect::CrawlerOptions crawler_options;
  if (profile_name == "hostile") {
    crawler_options.max_retries = 12;  // ride out 5xx bursts
  }
  collect::Crawler crawler(&api, crawler_options, &clock);
  collect::DataStore store;
  Status st = crawler.Crawl(&store);
  if (!st.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (profile_name != "none") {
    const collect::CrawlStats& cs = crawler.stats();
    std::printf("crawl weather (%s): %llu requests, %llu retries "
                "(%llu rate-limited, %llu 5xx, %llu malformed), "
                "%llu slow, %llu breaker opens\n",
                profile_name.c_str(), (unsigned long long)cs.requests,
                (unsigned long long)cs.retries,
                (unsigned long long)cs.rate_limited,
                (unsigned long long)cs.server_errors,
                (unsigned long long)cs.malformed_bodies,
                (unsigned long long)cs.slow_responses,
                (unsigned long long)cs.breaker_opens);
  }
  if (data_profile_name != "none") {
    std::printf("data weather (%s): %zu items served poisoned, %zu items "
                "served degraded, %llu comment ids collided\n",
                data_profile_name.c_str(), api.data_poisoned_items().size(),
                api.data_degraded_items().size(),
                (unsigned long long)api.data_duplicate_comment_ids());
  }
  st = store.SaveJsonl(dir);
  if (st.ok()) st = SaveLabels(dir, market, store);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("generated %s (%s, scale %.4g): %zu shops, %zu items, %zu "
              "comments -> %s/{shops,items,comments}.jsonl + labels.csv\n",
              config.name.c_str(), preset.c_str(), scale,
              store.shops().size(), store.items().size(),
              store.num_comments(), dir.c_str());
  return 0;
}

int CmdTrain(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string data_dir = argv[2];
  std::string model_dir = argv[3];

  auto store = collect::DataStore::LoadJsonl(data_dir);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  auto labels_map = LoadLabels(data_dir);
  if (!labels_map.ok()) {
    std::fprintf(stderr, "labels.csv required for training: %s\n",
                 labels_map.status().ToString().c_str());
    return 1;
  }
  std::vector<int> labels;
  std::vector<std::string> corpus;
  for (const collect::CollectedItem& ci : store->items()) {
    auto it = labels_map->find(ci.item.item_id);
    labels.push_back(it != labels_map->end() ? it->second : 0);
    for (const collect::CommentRecord& c : ci.comments) {
      corpus.push_back(c.content);
    }
  }

  // Segmentation dictionary + seeds come from the language; a deployment
  // against a real platform would ship its own dictionary and seed words.
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());
  platform::Marketplace sentiment_source = platform::Marketplace::Generate(
      platform::TaobaoD0Config(0.002), &language);

  core::Cats cats_system;
  Status st = cats_system.BuildSemanticModel(
      corpus, language.BuildSegmentationDictionary(),
      language.PositiveSeeds(4), language.NegativeSeeds(4),
      sentiment_source.BuildSentimentCorpus(6000, 7));
  if (st.ok()) st = cats_system.TrainDetector(store->items(), labels);
  if (st.ok()) {
    std::filesystem::create_directories(model_dir);
    st = cats_system.SaveModel(model_dir);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu items (%zu comments); model saved to %s "
              "(|P|=%zu |N|=%zu)\n",
              store->items().size(), corpus.size(), model_dir.c_str(),
              cats_system.semantic_model().positive.size(),
              cats_system.semantic_model().negative.size());
  if (HasFlag(argc, argv, "--metrics")) {
    std::printf("\npipeline metrics:\n%s",
                core::Cats::DumpMetricsTable().c_str());
  }
  return 0;
}

int CmdDetect(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string data_dir = argv[2];
  std::string model_dir = argv[3];
  double threshold =
      std::atof(FlagValue(argc, argv, "--threshold", "0.6").c_str());

  auto store = collect::DataStore::LoadJsonl(data_dir);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  core::CatsOptions options;
  options.detector.decision_threshold = threshold;
  core::Cats cats_system(options);
  Status st = cats_system.LoadModel(model_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "model load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const bool streaming_mode = HasFlag(argc, argv, "--streaming");
  auto report = [&]() -> Result<core::DetectionReport> {
    if (!streaming_mode) return cats_system.Detect(store->items());
    // Streaming plane: same stages, run as concurrent workers over bounded
    // queues (replay mode here — the items are already on disk). The
    // report is result-identical to the sequential path.
    pipeline::StreamingCats streaming(&cats_system.detector());
    auto result = streaming.RunOnItems(store->items());
    if (!result.ok()) return result.status();
    return std::move(result->report);
  }();
  if (!report.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (streaming_mode) {
    std::printf("streaming plane: %zu items streamed through %zu staging "
                "workers\n",
                store->items().size(),
                pipeline::StreamingOptions{}.num_stage_workers);
  }
  std::printf("scanned %zu items; quarantined %zu; filtered %zu; classified "
              "%zu (%zu degraded); flagged %zu (threshold %.2f)\n",
              report->items_scanned, report->items_quarantined,
              report->items_scanned - report->items_classified -
                  report->items_quarantined,
              report->items_classified, report->items_degraded,
              report->detections.size(), threshold);
  if (!report->quarantine.empty()) {
    size_t shown = 0;
    for (const core::QuarantineEntry& e : report->quarantine.entries) {
      if (++shown > 10) break;
      std::printf("  quarantined item %llu: %s\n",
                  (unsigned long long)e.item_id,
                  core::RecordIssuesToString(e.issues).c_str());
    }
    if (report->quarantine.size() > 10) {
      std::printf("  ... and %zu more quarantined\n",
                  report->quarantine.size() - 10);
    }
  }
  if (!report->degraded_detections.empty()) {
    std::printf("  %zu low-confidence flags from degraded records (review, "
                "don't auto-enforce):\n",
                report->degraded_detections.size());
    for (size_t i = 0; i < report->degraded_detections.size() && i < 10;
         ++i) {
      std::printf("    item %llu  score %.3f (degraded)\n",
                  (unsigned long long)report->degraded_detections[i].item_id,
                  report->degraded_detections[i].score);
    }
  }
  for (size_t i = 0; i < report->detections.size() && i < 20; ++i) {
    std::printf("  fraud item %llu  score %.3f\n",
                (unsigned long long)report->detections[i].item_id,
                report->detections[i].score);
  }
  if (report->detections.size() > 20) {
    std::printf("  ... and %zu more\n", report->detections.size() - 20);
  }

  auto labels = LoadLabels(data_dir);
  if (labels.ok()) {
    std::vector<uint64_t> ids;
    std::vector<int> truth;
    for (const collect::CollectedItem& ci : store->items()) {
      ids.push_back(ci.item.item_id);
      auto it = labels->find(ci.item.item_id);
      truth.push_back(it != labels->end() ? it->second : 0);
    }
    auto metrics = analysis::EvaluateReport(*report, ids, truth);
    std::printf("against labels.csv: %s\n", metrics.ToString().c_str());
  }

  if (HasFlag(argc, argv, "--metrics")) {
    std::printf("\nstage trace:\n%s", report->trace.ToString().c_str());
    std::printf("\npipeline metrics:\n%s",
                core::Cats::DumpMetricsTable().c_str());
  }
  std::string metrics_json = FlagValue(argc, argv, "--metrics-json", "");
  if (!metrics_json.empty()) {
    Status st = WriteStringToFile(metrics_json,
                                  core::Cats::DumpMetricsJson() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "metrics-json write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_json.c_str());
  }
  return 0;
}

int CmdAnalyze(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string data_dir = argv[2];
  auto store = collect::DataStore::LoadJsonl(data_dir);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  auto labels = LoadLabels(data_dir);
  std::vector<collect::CollectedItem> fraud, normal;
  if (labels.ok()) {
    for (const collect::CollectedItem& ci : store->items()) {
      auto it = labels->find(ci.item.item_id);
      ((it != labels->end() && it->second == 1) ? fraud : normal)
          .push_back(ci);
    }
  } else {
    normal = store->items();
  }

  double expectation = analysis::PopulationExpectation(store->items());
  std::printf("platform: %zu items, %zu comments; mean buyer userExpValue "
              "%.0f\n",
              store->items().size(), store->num_comments(), expectation);
  auto print_group = [&](const char* name,
                         const std::vector<collect::CollectedItem>& items) {
    if (items.empty()) return;
    auto user = analysis::AnalyzeUserAspect(items, expectation);
    auto client = analysis::ComputeClientDistribution(items);
    std::printf("%s (%zu items):\n", name, items.size());
    std::printf("  buyers: %zu unique; at-min %.2f; <1000 %.2f; <2000 %.2f\n",
                user.buyer_exp_values.size(), user.frac_at_min,
                user.frac_below_1000, user.frac_below_2000);
    std::printf("  repeat buyers %.2f; co-purchase pairs %llu over %llu "
                "users\n",
                user.frac_buyers_with_repeat,
                (unsigned long long)user.copurchase_pairs,
                (unsigned long long)user.copurchase_users);
    std::printf("  dominant client: %s\n",
                analysis::ClientDistribution::Labels()[client.ArgMax()]
                    .c_str());
  };
  print_group("fraud-labeled items", fraud);
  print_group(labels.ok() ? "normal-labeled items" : "all items", normal);
  return 0;
}

std::atomic<bool> g_interrupted{false};
void HandleSigint(int) { g_interrupted.store(true); }

/// Probe rows for swap validation: a bounded slice of a data dir.
Result<std::vector<collect::CollectedItem>> LoadProbeItems(
    const std::string& data_dir, size_t max_items) {
  CATS_ASSIGN_OR_RETURN(collect::DataStore store,
                        collect::DataStore::LoadJsonl(data_dir));
  std::vector<collect::CollectedItem> probe = store.items();
  if (probe.size() > max_items) probe.resize(max_items);
  return probe;
}

serve::ServeOptions ServeOptionsFromFlags(int argc, char** argv) {
  serve::ServeOptions options;
  options.num_workers = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "--workers", "2").c_str()));
  options.queue_capacity = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "--queue-capacity", "128").c_str()));
  return options;
}

/// Shared --transport/--shards parsing for serve and loadgen: both drive a
/// TcpServer and both want the same A/B switch the bench uses.
Result<serve::TcpServerOptions> TcpOptionsFromFlags(int argc, char** argv) {
  serve::TcpServerOptions options;
  const std::string transport =
      FlagValue(argc, argv, "--transport", "reactor");
  if (transport == "reactor") {
    options.transport = serve::TcpTransport::kReactor;
  } else if (transport == "threads") {
    options.transport = serve::TcpTransport::kThreadPerConnection;
  } else {
    return Status::InvalidArgument(
        "--transport must be 'reactor' or 'threads', got '" + transport +
        "'");
  }
  options.num_shards = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "--shards", "1").c_str()));
  options.max_connections = static_cast<size_t>(std::atoi(
      FlagValue(argc, argv, "--max-connections", "64").c_str()));
  return options;
}

int CmdServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string model_dir = argv[2];
  std::string probe_dir = FlagValue(argc, argv, "--probe-data", "");
  int port = std::atoi(FlagValue(argc, argv, "--port", "8471").c_str());
  double max_seconds =
      std::atof(FlagValue(argc, argv, "--max-seconds", "0").c_str());

  std::vector<collect::CollectedItem> probe_items;
  if (!probe_dir.empty()) {
    auto probe = LoadProbeItems(probe_dir, 64);
    if (!probe.ok()) {
      std::fprintf(stderr, "probe data load failed: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
    probe_items = std::move(probe).value();
  }

  const size_t num_probe_items = probe_items.size();
  serve::ServeLoop loop(ServeOptionsFromFlags(argc, argv));
  Status st = loop.Start(model_dir, std::move(probe_items));
  if (!st.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto tcp_options = TcpOptionsFromFlags(argc, argv);
  if (!tcp_options.ok()) {
    std::fprintf(stderr, "%s\n", tcp_options.status().ToString().c_str());
    return 1;
  }
  tcp_options->port = static_cast<uint16_t>(port);
  serve::TcpServer tcp(&loop, *tcp_options);
  st = tcp.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "tcp start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving model %s (generation %llu) on 127.0.0.1:%u — "
              "%s transport, %zu workers, queue capacity %zu, "
              "%zu probe rows\n",
              model_dir.c_str(), (unsigned long long)loop.model_generation(),
              tcp.port(),
              tcp_options->transport == serve::TcpTransport::kReactor
                  ? "reactor"
                  : "thread-per-connection",
              loop.options().num_workers, loop.options().queue_capacity,
              num_probe_items);
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                max_seconds > 0 ? max_seconds : 1e9));
  while (!g_interrupted.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  tcp.Stop();
  loop.Stop(serve::StopMode::kDrain);
  const serve::ServeStats& stats = loop.stats();
  std::printf("server stopped: %llu received, %llu ok, %llu errors, "
              "%llu overloaded, %llu shed\n",
              (unsigned long long)stats.received.load(),
              (unsigned long long)stats.ok.load(),
              (unsigned long long)stats.errors.load(),
              (unsigned long long)stats.overload_rejected.load(),
              (unsigned long long)stats.shed.load());
  return 0;
}

int CmdLoadgen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string data_dir = argv[2];
  std::string model_dir = argv[3];
  std::string out_path = FlagValue(argc, argv, "--out", "BENCH_serve.json");

  auto store = collect::DataStore::LoadJsonl(data_dir);
  if (!store.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::vector<collect::CollectedItem> probe = store->items();
  if (probe.size() > 32) probe.resize(32);

  serve::ServeLoop loop(ServeOptionsFromFlags(argc, argv));
  Status st = loop.Start(model_dir, std::move(probe));
  if (!st.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::LoadgenOptions options;
  options.swap_model_dir = FlagValue(argc, argv, "--swap-dir", model_dir);
  options.step_seconds =
      std::atof(FlagValue(argc, argv, "--step-seconds", "2").c_str());
  std::string qps_csv = FlagValue(argc, argv, "--qps", "100,200,400,800");
  options.qps_steps.clear();
  for (const std::string& field : SplitAndTrim(qps_csv, ',')) {
    options.qps_steps.push_back(std::atof(field.c_str()));
  }
  const size_t connections = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "--connections", "0").c_str()));

  Result<serve::LoadgenReport> report = Status::Internal("unset");
  if (connections > 0) {
    // Over-the-wire mode: stand up a TcpServer in this process and drive
    // it across N loopback connections — the same path bench_serve takes.
    auto tcp_options = TcpOptionsFromFlags(argc, argv);
    if (!tcp_options.ok()) {
      std::fprintf(stderr, "%s\n", tcp_options.status().ToString().c_str());
      return 1;
    }
    tcp_options->max_connections =
        std::max(tcp_options->max_connections, connections + 8);
    options.connections = connections;
    serve::TcpServer tcp(&loop, *tcp_options);
    st = tcp.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "tcp start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    report = serve::RunLoadgenTcp("127.0.0.1", tcp.port(), store->items(),
                                  options);
    tcp.Stop();
  } else {
    report = serve::RunLoadgen(&loop, store->items(), options);
  }
  loop.Stop(serve::StopMode::kDrain);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const serve::LoadgenStepResult& step : report->steps) {
    std::printf("qps %7.1f -> achieved %7.1f  ok %llu  overloaded %llu  "
                "errors %llu  p50 %.0fus  p99 %.0fus  max-inflight %llu\n",
                step.qps_target, step.qps_achieved,
                (unsigned long long)step.ok,
                (unsigned long long)step.overloaded,
                (unsigned long long)step.errors, step.p50_micros,
                step.p99_micros, (unsigned long long)step.max_inflight);
  }
  if (report->swap_attempted) {
    std::printf("mid-run hot swap: %s (generation %llu, %lld us)\n",
                report->swap_ok ? "ok" : "FAILED",
                (unsigned long long)report->swap_generation,
                (long long)report->swap_latency_micros);
  }
  st = WriteStringToFile(out_path,
                         report->ToJson(loop.options()).Serialize() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("latency/throughput curve written to %s\n", out_path.c_str());
  return 0;
}

int CmdTransferEval(int argc, char** argv) {
  federate::TransferEvalOptions options;
  std::string platforms_csv = FlagValue(argc, argv, "--platforms", "");
  if (!platforms_csv.empty()) {
    options.platforms = SplitAndTrim(platforms_csv, ',');
  }
  options.scale =
      std::atof(FlagValue(argc, argv, "--scale", "0.02").c_str());
  options.seed = std::strtoull(FlagValue(argc, argv, "--seed", "0").c_str(),
                               nullptr, 10);
  std::string out_path =
      FlagValue(argc, argv, "--out", "BENCH_federation.json");

  auto report = federate::RunTransferEval(options);
  if (!report.ok()) {
    std::fprintf(stderr, "transfer-eval failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const federate::ShardReport& shard : report->federation.shards) {
    std::printf("platform %-10s crawl: %zu shops, %zu items, %zu comments "
                "(%llu requests, %llu retries)\n",
                shard.platform_id.c_str(), shard.store.shops().size(),
                shard.store.items().size(), shard.store.num_comments(),
                (unsigned long long)shard.stats.requests,
                (unsigned long long)shard.stats.retries);
  }
  const size_t n = report->platforms.size();
  std::printf("\nAUC matrix (rows = train platform, cols = eval "
              "platform):\n%12s", "");
  for (const std::string& p : report->platforms) {
    std::printf(" %10s", p.c_str());
  }
  std::printf("\n");
  for (size_t t = 0; t < n; ++t) {
    std::printf("%12s", report->platforms[t].c_str());
    for (size_t e = 0; e < n; ++e) {
      std::printf(" %10.4f", report->AucAt(t, e));
    }
    std::printf("\n");
  }
  std::printf("\nmin in-platform AUC %.4f; min cross-platform AUC %.4f; "
              "max transfer degradation %.4f\n",
              report->MinInPlatformAuc(), report->MinCrossAuc(),
              report->MaxDegradation());
  Status st =
      WriteStringToFile(out_path, report->ToJson().Serialize() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("transfer matrix written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "gen") return CmdGen(argc, argv);
  if (command == "train") return CmdTrain(argc, argv);
  if (command == "detect") return CmdDetect(argc, argv);
  if (command == "analyze") return CmdAnalyze(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "loadgen") return CmdLoadgen(argc, argv);
  if (command == "transfer-eval") return CmdTransferEval(argc, argv);
  return Usage();
}
