// Cross-platform deployment scenario (the paper's core story): build the
// semantic model and train the detector ONCE on the labeled Taobao-like
// platform, save the deployable model to disk, then — in a separate
// "deployment" phase that never sees training data — load it and sweep two
// other platforms that differ in workload mix, campaign style and user
// base. This is the third-party, platform-independent mode of operation
// that motivates CATS (§I, §VI).
//
// Run: ./build/examples/cross_platform_detection

#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "analysis/validation.h"
#include "collect/crawler.h"
#include "core/cats.h"
#include "platform/api.h"
#include "platform/presets.h"
#include "util/logging.h"

using namespace cats;

namespace {

collect::DataStore Crawl(const platform::Marketplace& market) {
  platform::MarketplaceApi api(&market);
  collect::FakeClock clock;
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  CATS_CHECK(crawler.Crawl(&store).ok());
  return store;
}

void Sweep(core::Cats* cats_system, const platform::Marketplace& market,
           const collect::DataStore& store) {
  auto report = cats_system->Detect(store.items());
  CATS_CHECK(report.ok());

  std::unordered_map<uint64_t, int> truth;
  for (const collect::CollectedItem& ci : store.items()) {
    truth[ci.item.item_id] = market.IsFraudItem(ci.item.item_id) ? 1 : 0;
  }
  Rng rng(4);
  auto sampled =
      analysis::ValidateBySampling(*report, truth, /*sample_size=*/1000, &rng);
  std::printf("  %-14s %6zu items -> %4zu flagged; sampled precision %.3f\n",
              market.name().c_str(), store.items().size(),
              report->detections.size(), sampled.precision);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());

  std::string model_dir = "cats_model";
  std::filesystem::create_directories(model_dir);

  // --- Phase 1: train on the labeled platform, save the model. ---
  std::printf("[train] building CATS on the labeled Taobao-like platform\n");
  {
    platform::Marketplace taobao = platform::Marketplace::Generate(
        platform::TaobaoD0Config(/*scale=*/0.06), &language);
    collect::DataStore store = Crawl(taobao);

    std::vector<std::string> corpus;
    for (const auto& item : store.items()) {
      for (const auto& comment : item.comments) {
        corpus.push_back(comment.content);
      }
    }
    core::Cats trainer;
    CATS_CHECK(trainer
                   .BuildSemanticModel(
                       corpus, language.BuildSegmentationDictionary(),
                       language.PositiveSeeds(4), language.NegativeSeeds(4),
                       taobao.BuildSentimentCorpus(6000, 7))
                   .ok());
    std::vector<int> labels;
    for (const auto& ci : store.items()) {
      labels.push_back(taobao.IsFraudItem(ci.item.item_id) ? 1 : 0);
    }
    CATS_CHECK(trainer.TrainDetector(store.items(), labels).ok());
    CATS_CHECK(trainer.SaveModel(model_dir).ok());
    std::printf("[train] model saved to %s/ (gbdt + lexicons + sentiment + "
                "dictionary)\n\n",
                model_dir.c_str());
  }

  // --- Phase 2: deploy the saved model to other platforms. ---
  std::printf("[deploy] loading the saved model and sweeping platforms:\n");
  core::Cats deployed;
  CATS_CHECK(deployed.LoadModel(model_dir).ok());

  platform::Marketplace eplatform = platform::Marketplace::Generate(
      platform::EPlatformConfig(/*scale=*/0.001), &language);
  collect::DataStore ep_store = Crawl(eplatform);
  Sweep(&deployed, eplatform, ep_store);

  // A third platform with its own mix: app-first community, pushier
  // campaigns.
  platform::MarketplaceConfig third = platform::EPlatformConfig(0.001);
  third.name = "m-platform";
  third.seed = 0x3AB;
  third.benign_client_probs[0] = 0.05;  // web
  third.benign_client_probs[1] = 0.60;  // android
  third.benign_client_probs[2] = 0.25;  // iphone
  third.benign_client_probs[3] = 0.10;  // wechat
  third.campaign.mean_spam_comments_per_item = 15.0;
  third.campaign.stealth_campaign_prob = 0.2;
  platform::Marketplace mplatform =
      platform::Marketplace::Generate(third, &language);
  collect::DataStore m_store = Crawl(mplatform);
  Sweep(&deployed, mplatform, m_store);

  std::printf("\nOne trained model, multiple platforms — no per-platform "
              "retraining (paper §VI).\n");
  return 0;
}
