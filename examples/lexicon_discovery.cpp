// Lexicon discovery scenario (paper §II-A2, Table I): train word2vec on a
// comment corpus and iteratively expand a handful of seed words into the
// positive and negative lexicons, then inspect what was discovered —
// including the spammers' homograph spellings of positive words (the
// 好评 -> 好坪/好平 effect).
//
// Run: ./build/examples/lexicon_discovery

#include <cstdio>

#include "core/semantic_analyzer.h"
#include "nlp/lexicon.h"
#include "nlp/word2vec.h"
#include "platform/comment_generator.h"
#include "platform/presets.h"
#include "text/segmenter.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cats;

int main() {
  SetLogLevel(LogLevel::kWarning);
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());

  // 1. A comment corpus: mostly organic reviews plus promotion campaigns.
  std::printf("[1/4] generating a comment corpus...\n");
  std::vector<std::string> corpus;
  {
    platform::CommentGenerator generator(&language);
    Rng rng(20170801);  // the paper's corpus is from August 2017
    for (int i = 0; i < 120000; ++i) {
      corpus.push_back(generator.GenerateBenign(rng.Beta(4.0, 2.0), &rng));
    }
    for (int i = 0; i < 1500; ++i) {
      auto tmpl = generator.GenerateSpamTemplate(&rng);
      for (int j = 0; j < 12; ++j) {
        corpus.push_back(generator.GenerateSpamFromTemplate(tmpl, &rng));
      }
    }
  }
  std::printf("  %zu comments\n", corpus.size());

  // 2. Segment and train word2vec.
  std::printf("[2/4] training word2vec (skip-gram, negative sampling)...\n");
  text::SegmentationDictionary dictionary =
      language.BuildSegmentationDictionary();
  text::Segmenter segmenter(&dictionary);
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(corpus.size());
  for (const std::string& comment : corpus) {
    sentences.push_back(segmenter.Segment(comment));
  }
  nlp::Word2VecOptions w2v_options;
  w2v_options.dim = 48;
  w2v_options.epochs = 5;
  nlp::Word2Vec w2v(w2v_options);
  Stopwatch watch;
  auto embeddings = w2v.Train(sentences);
  CATS_CHECK(embeddings.ok());
  std::printf("  vocab %zu, %llu pairs, %.1fs\n", embeddings->size(),
              (unsigned long long)w2v.trained_pairs(),
              watch.ElapsedSeconds());

  // 3. Nearest neighbors of a seed word (the paper's discovery mechanism).
  std::vector<std::string> pos_seeds = language.PositiveSeeds(4);
  std::vector<std::string> neg_seeds = language.NegativeSeeds(4);
  std::printf("[3/4] nearest neighbors of positive seed \"%s\":\n",
              pos_seeds[0].c_str());
  auto nn = embeddings->NearestNeighbors(pos_seeds[0], 10);
  CATS_CHECK(nn.ok());
  for (const nlp::Neighbor& n : *nn) {
    const char* tag = "";
    switch (language.PolarityOf(n.word)) {
      case platform::Polarity::kPositive:
        tag = "[positive]";
        break;
      case platform::Polarity::kNegative:
        tag = "[negative]";
        break;
      default:
        tag = "";
    }
    std::printf("  %.3f  %-10s %s\n", n.similarity, n.word.c_str(), tag);
  }

  // 4. Full lexicon expansion + homograph check.
  std::printf("[4/4] expanding lexicons from %zu+%zu seeds...\n",
              pos_seeds.size(), neg_seeds.size());
  nlp::LexiconExpansionOptions options;
  options.max_words = 200;
  options.min_similarity = 0.65f;
  options.min_centroid_similarity = 0.5f;
  options.max_iterations = 3;
  auto positive = nlp::ExpandLexicon(*embeddings, pos_seeds, options);
  auto negative = nlp::ExpandLexicon(*embeddings, neg_seeds, options);
  CATS_CHECK(positive.ok());
  CATS_CHECK(negative.ok());

  auto purity = [&language](const nlp::Lexicon& lexicon,
                            platform::Polarity want) {
    size_t correct = 0;
    for (const std::string& w : lexicon.SortedWords()) {
      if (language.PolarityOf(w) == want) ++correct;
    }
    return static_cast<double>(correct) / lexicon.size();
  };
  std::printf("  |P| = %zu (ground-truth purity %.2f)\n", positive->size(),
              purity(*positive, platform::Polarity::kPositive));
  std::printf("  |N| = %zu (ground-truth purity %.2f)\n", negative->size(),
              purity(*negative, platform::Polarity::kNegative));

  std::printf("\nhomograph discovery (spam-only aliases of positive "
              "seeds):\n");
  for (const platform::LanguageWord& w : language.words()) {
    if (!w.spam_homograph) continue;
    std::printf("  %-10s -> %s\n", w.text.c_str(),
                positive->Contains(w.text)
                    ? "discovered in P (like 好坪 for 好评)"
                    : "not discovered");
  }
  return 0;
}
