// Quickstart: the whole CATS pipeline end to end on a small simulated
// platform — generate a marketplace, crawl its public API, build the
// semantic model, train the detector on labeled data, detect frauds on a
// held-out platform slice, and validate against ground truth.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <unordered_map>

#include "analysis/validation.h"
#include "collect/crawler.h"
#include "core/cats.h"
#include "platform/api.h"
#include "platform/presets.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cats;

namespace {

/// Crawls a marketplace's public API into a DataStore.
collect::DataStore Crawl(const platform::Marketplace& market) {
  platform::ApiOptions api_options;
  api_options.page_size = 100;
  platform::MarketplaceApi api(&market, api_options);
  collect::FakeClock clock;
  collect::CrawlerOptions crawl_options;
  collect::Crawler crawler(&api, crawl_options, &clock);
  collect::DataStore store;
  Status st = crawler.Crawl(&store);
  CATS_CHECK(st.ok());
  std::printf("  crawled %s: %zu shops, %zu items, %zu comments "
              "(%llu requests, %llu retries, %llu dup records dropped)\n",
              market.name().c_str(), store.shops().size(),
              store.items().size(), store.num_comments(),
              (unsigned long long)crawler.stats().requests,
              (unsigned long long)crawler.stats().retries,
              (unsigned long long)store.duplicates_dropped());
  return store;
}

/// Ground-truth labels aligned with a store's items.
std::vector<int> TrueLabels(const platform::Marketplace& market,
                            const collect::DataStore& store) {
  std::vector<int> labels;
  labels.reserve(store.items().size());
  for (const collect::CollectedItem& ci : store.items()) {
    labels.push_back(market.IsFraudItem(ci.item.item_id) ? 1 : 0);
  }
  return labels;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  Stopwatch watch;

  // 1. A shared language and two platforms: a labeled training platform
  //    (Taobao D0 analogue) and a target platform to sweep.
  std::printf("[1/5] generating platforms...\n");
  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());
  platform::Marketplace train_market = platform::Marketplace::Generate(
      platform::TaobaoD0Config(/*scale=*/0.06), &language);
  platform::Marketplace target_market = platform::Marketplace::Generate(
      platform::EPlatformConfig(/*scale=*/0.001), &language);

  // 2. Crawl both through the public JSON API.
  std::printf("[2/5] crawling public APIs...\n");
  collect::DataStore train_store = Crawl(train_market);
  collect::DataStore target_store = Crawl(target_market);

  // 3. Semantic model: word2vec lexicon expansion + sentiment, trained on
  //    the training platform's comment corpus.
  std::printf("[3/5] building semantic model (word2vec + lexicons + "
              "sentiment)...\n");
  std::vector<std::string> corpus;
  for (const auto& item : train_store.items()) {
    for (const auto& comment : item.comments) {
      corpus.push_back(comment.content);
    }
  }
  core::Cats cats;
  Status st = cats.BuildSemanticModel(
      corpus, language.BuildSegmentationDictionary(),
      language.PositiveSeeds(4), language.NegativeSeeds(4),
      train_market.BuildSentimentCorpus(4000, /*seed=*/7));
  CATS_CHECK(st.ok());
  std::printf("  lexicons: |P|=%zu |N|=%zu\n",
              cats.semantic_model().positive.size(),
              cats.semantic_model().negative.size());

  // 4. Train the detector (Gbdt) on the labeled platform.
  std::printf("[4/5] training detector on labeled data...\n");
  st = cats.TrainDetector(train_store.items(),
                          TrueLabels(train_market, train_store));
  CATS_CHECK(st.ok());

  // 5. Detect on the target platform and validate against hidden truth.
  std::printf("[5/5] detecting on target platform...\n");
  auto report = cats.Detect(target_store.items());
  CATS_CHECK(report.ok());
  std::printf("  scanned %zu items; filtered %zu (low sales) + %zu (no "
              "positive signal) + %zu (no comments); classified %zu; "
              "flagged %zu\n",
              report->items_scanned, report->items_filtered_low_sales,
              report->items_filtered_no_signal,
              report->items_filtered_no_comments, report->items_classified,
              report->detections.size());

  std::unordered_map<uint64_t, int> truth;
  for (const auto& ci : target_store.items()) {
    truth[ci.item.item_id] =
        target_market.IsFraudItem(ci.item.item_id) ? 1 : 0;
  }
  Rng rng(1);
  auto sampled = analysis::ValidateBySampling(*report, truth,
                                              /*sample_size=*/1000, &rng);
  std::printf("  sampled validation: %zu/%zu confirmed -> precision %.3f "
              "(paper: 0.96 on E-platform)\n",
              sampled.confirmed, sampled.sample_size, sampled.precision);

  std::vector<uint64_t> ids;
  std::vector<int> labels;
  for (const auto& ci : target_store.items()) {
    ids.push_back(ci.item.item_id);
    labels.push_back(truth[ci.item.item_id]);
  }
  auto metrics = analysis::EvaluateReport(*report, ids, labels);
  std::printf("  full-truth metrics: %s\n", metrics.ToString().c_str());
  std::printf("done in %.1fs\n", watch.ElapsedSeconds());
  return 0;
}
