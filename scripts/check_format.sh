#!/bin/sh
# format-check: every C++ file under src/ tests/ bench/ examples/ must be
# clang-format clean against the repo's .clang-format. Runs as the
# `format_check` ctest and as the CI format job.
#
# Exit codes: 0 clean, 1 violations (diff printed), 77 clang-format not
# installed (ctest maps 77 to SKIPPED via SKIP_RETURN_CODE so local runs
# without the tool don't fail tier-1).
#
# Usage: check_format.sh [repo_root]
set -u

root="${1:-$(dirname "$0")/..}"
root="$(cd "$root" && pwd)"

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG_FORMAT" ]; then
  echo "format-check: clang-format not found; skipping (install it or set" \
       "CLANG_FORMAT=/path/to/clang-format)" >&2
  exit 77
fi

files=$(find "$root/src" "$root/tests" "$root/bench" "$root/examples" \
             -type f \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) \
        | LC_ALL=C sort)
if [ -z "$files" ]; then
  echo "format-check: no sources found under $root" >&2
  exit 1
fi

status=0
checked=0
for f in $files; do
  checked=$((checked + 1))
  if ! "$CLANG_FORMAT" --style=file --dry-run -Werror "$f" \
       >/dev/null 2>&1; then
    if [ "$status" -eq 0 ]; then
      echo "format-check: violations ($("$CLANG_FORMAT" --version)):" >&2
    fi
    status=1
    echo "  needs formatting: ${f#"$root"/}" >&2
  fi
done

if [ "$status" -ne 0 ]; then
  echo "format-check: FAILED — run: $CLANG_FORMAT -i <files> (style from" \
       ".clang-format)" >&2
  exit 1
fi
echo "format-check: OK ($checked files clean, $("$CLANG_FORMAT" --version))"
