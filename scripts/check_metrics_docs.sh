#!/bin/sh
# docs-check: every metric name declared in src/obs/metric_names.h must be
# documented in docs/METRICS.md, and no source file may register a metric
# by raw string literal (bypassing metric_names.h would also bypass this
# check). Runs as the `docs_check` ctest so the operator-facing metrics
# reference cannot drift from the code.
#
# Usage: check_metrics_docs.sh [repo_root]
set -u

root="${1:-$(dirname "$0")/..}"
names_header="$root/src/obs/metric_names.h"
docs="$root/docs/METRICS.md"

if [ ! -f "$names_header" ]; then
  echo "docs-check: missing $names_header" >&2
  exit 1
fi
if [ ! -f "$docs" ]; then
  echo "docs-check: missing $docs" >&2
  exit 1
fi

# Metric names are the string literals assigned to the kFoo constants, e.g.
#     inline constexpr std::string_view kGbdtRoundsTotal = "gbdt.rounds_total";
# clang-format wraps long ones onto the next line, so flatten each
# declaration (= statement up to ';') onto one line before matching.
names=$(tr '\n' ' ' <"$names_header" \
  | sed 's/;/;\n/g' \
  | sed -n 's/.*std::string_view  *k[A-Za-z0-9]*  *=  *"\([^"]*\)".*/\1/p')

if [ -z "$names" ]; then
  echo "docs-check: no metric names parsed from $names_header" >&2
  exit 1
fi

missing=0
total=0
for name in $names; do
  total=$((total + 1))
  if ! grep -q -F "\`$name\`" "$docs"; then
    echo "docs-check: metric \"$name\" is registered in" \
      "src/obs/metric_names.h but not documented in docs/METRICS.md" >&2
    missing=$((missing + 1))
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "docs-check: FAILED — $missing of $total metric name(s) undocumented" >&2
  exit 1
fi

# Second pass: registry lookups in src/ must go through the named constants.
# A raw literal like GetCounter("my.counter") would dodge the check above,
# so it is an error everywhere outside metric_names.h itself.
raw=$(grep -rn 'Get\(Counter\|Gauge\|Histogram\|LatencyHistogram\)([^)]*"' \
        "$root/src" --include='*.cc' --include='*.h' \
  | grep -v 'metric_names\.h')
if [ -n "$raw" ]; then
  echo "docs-check: FAILED — metric registered by raw string literal" \
    "(use a constant from src/obs/metric_names.h):" >&2
  echo "$raw" >&2
  exit 1
fi
echo "docs-check: OK — all $total metric names documented in docs/METRICS.md," \
  "no raw-literal registrations in src/"
