#!/bin/sh
# sanitize-check: build the tree under ASan and UBSan (CATS_SANITIZE=...)
# and run the crawler / fault-injection test battery — the code most exposed
# to untrusted bytes and adversarial schedules. Registered as the
# `sanitize_check` ctest with the `slow` label (excluded from tier-1; enable
# with -DCATS_ENABLE_SLOW_TESTS=ON or run this script directly).
#
# Usage: check_sanitize.sh [repo_root]
set -u

root="${1:-$(dirname "$0")/..}"
root="$(cd "$root" && pwd)" || exit 1

# The tests that exercise the fault layer and everything hardened against it.
test_filter="Backoff|CircuitBreaker|FaultPlan|FaultProfile|CorruptBody|RetryAfter|RateLimiter|FakeClock|Crawler|Chaos|Fuzz|Store|DataFault|RecordValidator|Quarantine|Crc32|Manifest|AtomicWrite|ModelCorruption|CorruptFile"

failed=0
for sanitizer in address undefined; do
  build_dir="$root/build-sanitize-$sanitizer"
  echo "== sanitize-check: configuring $sanitizer -> $build_dir"
  cmake -B "$build_dir" -S "$root" -DCATS_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || { failed=1; continue; }

  targets="fault_plan_test backoff_test circuit_breaker_test rate_limiter_test crawler_test chaos_crawl_test fuzz_test store_test data_fault_plan_test record_validator_test model_persistence_test chaos_detect_test gbdt_test sentiment_test"
  echo "== sanitize-check: building $sanitizer test battery"
  # shellcheck disable=SC2086
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
        --target $targets >/dev/null || { failed=1; continue; }

  echo "== sanitize-check: running under $sanitizer"
  if ! (cd "$build_dir" && \
        ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" \
              -R "$test_filter"); then
    echo "sanitize-check: FAILED under $sanitizer" >&2
    failed=1
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "sanitize-check: FAILED" >&2
  exit 1
fi
echo "sanitize-check: OK — crawler/fault battery clean under ASan and UBSan"
