#!/bin/sh
# sanitize-check: build the tree under ASan, UBSan and TSan
# (CATS_SANITIZE=...) and run the relevant test batteries. ASan/UBSan run
# the crawler / fault-injection battery — the code most exposed to
# untrusted bytes and adversarial schedules — plus the model parsers. TSan
# runs the parallel training/scoring paths (histogram GBDT, batched
# prediction, the pooled segmentation and embedding scans, the
# drift-detector / concurrent-swap machinery, the epoll reactor
# transport — shard event loops racing ServeLoop worker callbacks over
# per-connection outboxes — and the federation plane's thread-per-shard
# crawl plus the loadgen's per-step accounting). Registered as
# the `sanitize_check` ctest with the `slow` label (excluded from tier-1;
# enable with -DCATS_ENABLE_SLOW_TESTS=ON or run this script directly).
#
# Usage: check_sanitize.sh [repo_root]
set -u

root="${1:-$(dirname "$0")/..}"
root="$(cd "$root" && pwd)" || exit 1

# The tests that exercise the fault layer and everything hardened against
# it. The platform-profile / federation battery rides here too: the schema
# normalizer parses attacker-shaped bytes (three wire dialects plus the
# corrupt-body fault), and ChaosFederation drives every dialect through
# hostile weather.
memory_filter="Backoff|CircuitBreaker|FaultPlan|FaultProfile|CorruptBody|RetryAfter|RateLimiter|FakeClock|Crawler|Chaos|Fuzz|Store|DataFault|RecordValidator|Quarantine|Crc32|Manifest|AtomicWrite|ModelCorruption|CorruptFile|Gbdt|BinMapper|DoubleArrayTrie|SegmenterDiff|IdPathIdentity|Utf8|Adversary|Drift|Retrain|ArmsRace|ServeProtocol|ServeReactor|PlatformProfile|Federation"
memory_targets="fault_plan_test backoff_test circuit_breaker_test rate_limiter_test crawler_test chaos_crawl_test fuzz_test store_test data_fault_plan_test record_validator_test model_persistence_test chaos_detect_test gbdt_test binning_test sentiment_test double_array_trie_test segmenter_diff_test id_path_identity_test utf8_test adversary_plan_test drift_detector_test retrain_scheduler_test arms_race_test serve_protocol_test serve_reactor_test platform_profile_test federation_test federation_property_test chaos_federation_test"

# The tests that drive work through the thread pool or the serving plane's
# worker/swap machinery. Word2vec's Hogwild trainer races by design (see
# word2vec.cc) and is left out — the federation tests stay TSan-clean
# because RunTransferEval pins word2vec to one thread; what TSan checks
# there is the thread-per-shard federated crawl and the loadgen's
# multi-connection TCP close loop.
thread_filter="ThreadPool|Gbdt|BinMapper|ParallelNearestNeighbors|ParallelExpansion|ParallelSegmentation|PredictBatch|ServeLoop|ServeHotSwap|ServeChaos|IdPathIdentity|DriftDetector|SwapRace|ServeTcp|ServeReactor|Federation|Loadgen"
thread_targets="thread_pool_test gbdt_test binning_test embedding_test lexicon_test semantic_analyzer_test serve_loop_test serve_hot_swap_test serve_chaos_test id_path_identity_test drift_detector_test serve_swap_race_test serve_tcp_test serve_reactor_test federation_test federation_property_test chaos_federation_test loadgen_test"

failed=0
for sanitizer in address undefined thread; do
  build_dir="$root/build-sanitize-$sanitizer"
  if [ "$sanitizer" = "thread" ]; then
    test_filter="$thread_filter"
    targets="$thread_targets"
  else
    test_filter="$memory_filter"
    targets="$memory_targets"
  fi

  echo "== sanitize-check: configuring $sanitizer -> $build_dir"
  cmake -B "$build_dir" -S "$root" -DCATS_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || { failed=1; continue; }

  echo "== sanitize-check: building $sanitizer test battery"
  # shellcheck disable=SC2086
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
        --target $targets >/dev/null || { failed=1; continue; }

  echo "== sanitize-check: running under $sanitizer"
  if ! (cd "$build_dir" && \
        ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        TSAN_OPTIONS=halt_on_error=1 \
        ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" \
              -R "$test_filter"); then
    echo "sanitize-check: FAILED under $sanitizer" >&2
    failed=1
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "sanitize-check: FAILED" >&2
  exit 1
fi
echo "sanitize-check: OK — fault battery clean under ASan/UBSan, parallel paths clean under TSan"
