#!/usr/bin/env python3
"""Perf gate: compare two google-benchmark --json outputs and fail on
regressions.

Usage:
  perf_gate.py BASELINE.json CURRENT.json [--threshold 0.15]
               [--report-only] [--label NAME]
  perf_gate.py --self-test

Semantics:
  - Benchmarks are matched by "name". real_time is normalized by
    "time_unit" (ns/us/ms/s) so baselines regenerated with a different
    unit still compare correctly.
  - A benchmark whose current real_time exceeds baseline * (1 + threshold)
    is a REGRESSION; any regression fails the gate (exit 1).
  - A baseline benchmark missing from the current run also fails — a
    silently dropped bench must never pass as "no regression".
  - Benchmarks only present in the current run are reported as NEW and do
    not fail the gate (they have nothing to regress against).
  - --report-only prints the same per-bench delta table but always exits 0
    (used by run_perf_baseline.sh to show what a regeneration changed).

The CI perf lane regenerates benches and runs this against the committed
BENCH_*.json files (see .github/workflows/ci.yml); the `perf_gate` ctest
runs --self-test so the gate's own failure semantics are pinned.
"""

import argparse
import json
import sys

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: real_time_ns} for one --json output file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions): gate on
        # the primary iteration rows only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        unit = bench.get("time_unit", "ns")
        if unit not in _NS_PER_UNIT:
            raise ValueError(f"{path}: benchmark {name}: unknown time_unit "
                             f"{unit!r}")
        out[name] = float(bench["real_time"]) * _NS_PER_UNIT[unit]
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def compare(baseline, current, threshold):
    """Returns (rows, failures). rows: (name, base_ns, cur_ns, delta, verdict)
    where delta is the fractional change (None for missing/new)."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            rows.append((name, base_ns, None, None, "MISSING"))
            failures.append(f"{name}: present in baseline but missing from "
                            "current run")
            continue
        cur_ns = current[name]
        delta = (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        if delta > threshold:
            verdict = "REGRESSION"
            failures.append(f"{name}: {format_ns(base_ns)} -> "
                            f"{format_ns(cur_ns)} "
                            f"(+{delta * 100.0:.1f}% > "
                            f"+{threshold * 100.0:.1f}% allowed)")
        elif delta < -threshold:
            verdict = "IMPROVED"
        else:
            verdict = "ok"
        rows.append((name, base_ns, cur_ns, delta, verdict))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name], None, "NEW"))
    return rows, failures


def print_table(rows, label):
    header = f"perf-gate{f' [{label}]' if label else ''}"
    name_width = max([len(r[0]) for r in rows] + [9])
    print(header)
    print(f"  {'benchmark'.ljust(name_width)}  {'baseline':>10}  "
          f"{'current':>10}  {'delta':>8}  verdict")
    for name, base_ns, cur_ns, delta, verdict in rows:
        base = format_ns(base_ns) if base_ns is not None else "-"
        cur = format_ns(cur_ns) if cur_ns is not None else "-"
        d = f"{delta * 100.0:+.1f}%" if delta is not None else "-"
        print(f"  {name.ljust(name_width)}  {base:>10}  {cur:>10}  "
              f"{d:>8}  {verdict}")


def run_gate(argv):
    parser = argparse.ArgumentParser(prog="perf_gate.py")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional real_time increase "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the delta table but always exit 0")
    parser.add_argument("--label", default="",
                        help="tag printed with the table (e.g. 'pipeline')")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"perf-gate: FATAL: no benchmarks in baseline "
              f"{args.baseline}", file=sys.stderr)
        return 1
    rows, failures = compare(baseline, current, args.threshold)
    print_table(rows, args.label)
    if failures and not args.report_only:
        print(f"perf-gate: FAIL ({len(failures)} problem(s), threshold "
              f"+{args.threshold * 100.0:.1f}%):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf-gate: {len(failures)} problem(s) ignored "
              "(--report-only)")
    else:
        print("perf-gate: OK")
    return 0


def self_test():
    """Pins the gate's own semantics with synthetic bench files: a 20%
    slowdown must fail, a 10% slowdown must pass at the default threshold,
    a missing bench must fail, and --report-only must always pass."""
    import tempfile
    import os

    def bench_doc(entries):
        return {"benchmarks": [
            {"name": name, "real_time": rt, "time_unit": unit,
             "run_type": "iteration"}
            for name, rt, unit in entries]}

    cases_run = []

    def expect(case, argv, expected_exit):
        code = run_gate(argv)
        cases_run.append(case)
        if code != expected_exit:
            print(f"perf-gate self-test: FAIL: {case}: exit {code}, "
                  f"expected {expected_exit}", file=sys.stderr)
            return False
        return True

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            return path

        base = write("base.json", bench_doc([
            ("BM_A/1", 100.0, "ms"),
            ("BM_B", 500.0, "us"),
        ]))
        # 20% slowdown on BM_A (and unit change on BM_B proving
        # normalization: 0.45ms == 450us, a 10% improvement).
        slow20 = write("slow20.json", bench_doc([
            ("BM_A/1", 120.0, "ms"),
            ("BM_B", 0.45, "ms"),
        ]))
        slow10 = write("slow10.json", bench_doc([
            ("BM_A/1", 110.0, "ms"),
            ("BM_B", 500.0, "us"),
        ]))
        missing = write("missing.json", bench_doc([
            ("BM_A/1", 100.0, "ms"),
        ]))

        ok = True
        ok &= expect("20% slowdown fails", [base, slow20], 1)
        ok &= expect("10% slowdown passes", [base, slow10], 0)
        ok &= expect("missing bench fails", [base, missing], 1)
        ok &= expect("report-only never fails",
                     [base, slow20, "--report-only"], 0)
        ok &= expect("tighter threshold catches 10%",
                     [base, slow10, "--threshold", "0.05"], 1)

    if not ok:
        return 1
    print(f"perf-gate self-test: OK ({len(cases_run)} cases)")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    return run_gate(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
