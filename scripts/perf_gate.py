#!/usr/bin/env python3
"""Perf gate: compare two google-benchmark --json outputs and fail on
regressions.

Usage:
  perf_gate.py BASELINE.json CURRENT.json [--threshold 0.15]
               [--report-only] [--label NAME]
  perf_gate.py --serve BASELINE.json CURRENT.json [--threshold 0.15]
               [--report-only] [--label NAME]
  perf_gate.py --federation BASELINE.json CURRENT.json [--threshold 0.05]
               [--report-only] [--label NAME]
  perf_gate.py --self-test

Semantics (google-benchmark mode, the default):
  - Benchmarks are matched by "name". real_time is normalized by
    "time_unit" (ns/us/ms/s) so baselines regenerated with a different
    unit still compare correctly.
  - A benchmark whose current real_time exceeds baseline * (1 + threshold)
    is a REGRESSION; any regression fails the gate (exit 1).
  - A baseline benchmark missing from the current run also fails — a
    silently dropped bench must never pass as "no regression".
  - Benchmarks only present in the current run are reported as NEW and do
    not fail the gate (they have nothing to regress against).
  - --report-only prints the same per-bench delta table but always exits 0
    (used by run_perf_baseline.sh to show what a regeneration changed).

Semantics (--serve mode, for bench_serve's loadgen schema):
  - Each file is a serve_loadgen document: either the current shape with a
    top-level "curves" array (one entry per transport; the reactor curve is
    gated) or the legacy shape with top-level "steps" (treated as the one
    and only curve).
  - A QPS step is SUSTAINED when it finished with zero errors and achieved
    at least 95% of its offered load. The gate compares the highest
    sustained step: current must sustain at least the baseline's highest
    sustained QPS, and its p99 at that step must not exceed the baseline's
    p99 there by more than the threshold.
  - A baseline curve whose mid-run model swap succeeded must keep
    succeeding.

Semantics (--federation mode, for cats_cli transfer-eval's schema):
  - Each file is a federation_transfer document: an N x N "matrix" of
    {train, eval, auc} cells from training a detector on one platform and
    scoring another. Cells are matched by the (train, eval) platform pair.
  - A cell whose current AUC falls more than `threshold` BELOW its
    baseline AUC (absolute drop, default 0.05) is a REGRESSION; any
    regression fails the gate. AUC is a quality score, not a time — the
    threshold is an absolute delta, not a ratio, and improvements never
    fail.
  - A baseline (train, eval) pair missing from the current run fails — a
    platform silently dropped from the transfer matrix must never pass.
  - Pairs only present in the current run are NEW and do not fail (adding
    a platform to the federation grows the matrix).

The CI perf lane regenerates benches and runs this against the committed
BENCH_*.json files (see .github/workflows/ci.yml); the `perf_gate` ctest
runs --self-test so the gate's own failure semantics are pinned.
"""

import argparse
import json
import sys

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: real_time_ns} for one --json output file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions): gate on
        # the primary iteration rows only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        unit = bench.get("time_unit", "ns")
        if unit not in _NS_PER_UNIT:
            raise ValueError(f"{path}: benchmark {name}: unknown time_unit "
                             f"{unit!r}")
        out[name] = float(bench["real_time"]) * _NS_PER_UNIT[unit]
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def compare(baseline, current, threshold):
    """Returns (rows, failures). rows: (name, base_ns, cur_ns, delta, verdict)
    where delta is the fractional change (None for missing/new)."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            rows.append((name, base_ns, None, None, "MISSING"))
            failures.append(f"{name}: present in baseline but missing from "
                            "current run")
            continue
        cur_ns = current[name]
        delta = (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        if delta > threshold:
            verdict = "REGRESSION"
            failures.append(f"{name}: {format_ns(base_ns)} -> "
                            f"{format_ns(cur_ns)} "
                            f"(+{delta * 100.0:.1f}% > "
                            f"+{threshold * 100.0:.1f}% allowed)")
        elif delta < -threshold:
            verdict = "IMPROVED"
        else:
            verdict = "ok"
        rows.append((name, base_ns, cur_ns, delta, verdict))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name], None, "NEW"))
    return rows, failures


def print_table(rows, label):
    header = f"perf-gate{f' [{label}]' if label else ''}"
    name_width = max([len(r[0]) for r in rows] + [9])
    print(header)
    print(f"  {'benchmark'.ljust(name_width)}  {'baseline':>10}  "
          f"{'current':>10}  {'delta':>8}  verdict")
    for name, base_ns, cur_ns, delta, verdict in rows:
        base = format_ns(base_ns) if base_ns is not None else "-"
        cur = format_ns(cur_ns) if cur_ns is not None else "-"
        d = f"{delta * 100.0:+.1f}%" if delta is not None else "-"
        print(f"  {name.ljust(name_width)}  {base:>10}  {cur:>10}  "
              f"{d:>8}  {verdict}")


def load_serve_curve(path):
    """Returns (steps, swap_ok) for one serve_loadgen JSON file.

    Handles both schemas: the current one with a top-level "curves" array
    (the reactor curve is the gated one) and the legacy single-curve shape
    with top-level "steps"."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("bench") != "serve_loadgen":
        raise ValueError(f"{path}: not a serve_loadgen document")
    curve = None
    if "curves" in doc:
        for candidate in doc["curves"]:
            if candidate.get("transport") == "reactor":
                curve = candidate
                break
        if curve is None and doc["curves"]:
            curve = doc["curves"][0]
    elif "steps" in doc:
        curve = doc
    if curve is None or not curve.get("steps"):
        raise ValueError(f"{path}: no loadgen steps found")
    swap = curve.get("swap", {})
    return curve["steps"], bool(swap.get("ok", False))


def highest_sustained(steps):
    """The highest step that finished cleanly: zero errors and >= 95% of
    the offered load achieved. Returns None when no step qualifies."""
    best = None
    for step in steps:
        if step.get("errors", 0) != 0:
            continue
        if step.get("qps_achieved", 0.0) < 0.95 * step.get("qps_target", 0.0):
            continue
        if best is None or step["qps_target"] > best["qps_target"]:
            best = step
    return best


def run_serve_gate(args):
    base_steps, base_swap_ok = load_serve_curve(args.baseline)
    cur_steps, cur_swap_ok = load_serve_curve(args.current)

    base_best = highest_sustained(base_steps)
    cur_best = highest_sustained(cur_steps)
    failures = []
    if base_best is None:
        print(f"perf-gate: FATAL: baseline {args.baseline} sustains no "
              "step cleanly", file=sys.stderr)
        return 1

    label = f" [{args.label}]" if args.label else ""
    print(f"perf-gate{label} (serve)")
    print(f"  {'qps_target':>10}  {'base p99':>10}  {'cur p99':>10}  "
          f"{'delta':>8}  note")
    cur_by_target = {s["qps_target"]: s for s in cur_steps}
    for step in sorted(base_steps, key=lambda s: s["qps_target"]):
        target = step["qps_target"]
        cur = cur_by_target.get(target)
        base_p99 = step["p99_micros"] * 1e3
        cur_p99 = cur["p99_micros"] * 1e3 if cur else None
        delta = ((cur_p99 - base_p99) / base_p99
                 if cur and base_p99 > 0 else None)
        note = ""
        if base_best and target == base_best["qps_target"]:
            note = "<- gated step"
        print(f"  {target:>10.0f}  {format_ns(base_p99):>10}  "
              f"{format_ns(cur_p99) if cur_p99 is not None else '-':>10}  "
              f"{f'{delta * 100.0:+.1f}%' if delta is not None else '-':>8}"
              f"  {note}")

    if cur_best is None:
        failures.append("current run sustains no QPS step cleanly "
                        "(errors or missed offered load everywhere)")
    else:
        print(f"  sustained: baseline {base_best['qps_target']:.0f} qps, "
              f"current {cur_best['qps_target']:.0f} qps")
        if cur_best["qps_target"] < base_best["qps_target"]:
            failures.append(
                f"sustained QPS dropped: baseline holds "
                f"{base_best['qps_target']:.0f} qps cleanly, current only "
                f"{cur_best['qps_target']:.0f}")
        else:
            gated = cur_by_target.get(base_best["qps_target"])
            if gated is None:
                failures.append(
                    f"current run has no {base_best['qps_target']:.0f} qps "
                    "step to gate against")
            else:
                allowed = base_best["p99_micros"] * (1.0 + args.threshold)
                if gated["p99_micros"] > allowed:
                    failures.append(
                        f"p99 at {base_best['qps_target']:.0f} qps "
                        f"regressed: {base_best['p99_micros']:.0f}us -> "
                        f"{gated['p99_micros']:.0f}us "
                        f"(allowed {allowed:.0f}us at "
                        f"+{args.threshold * 100.0:.1f}%)")
    if base_swap_ok and not cur_swap_ok:
        failures.append("mid-run model swap succeeded in baseline but not "
                        "in current run")

    if failures and not args.report_only:
        print(f"perf-gate: FAIL ({len(failures)} problem(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf-gate: {len(failures)} problem(s) ignored "
              "(--report-only)")
    else:
        print("perf-gate: OK")
    return 0


def load_transfer_matrix(path):
    """Returns {(train, eval): auc} for one cats_cli transfer-eval file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("bench") != "federation_transfer":
        raise ValueError(f"{path}: not a federation_transfer document")
    cells = {}
    for cell in doc.get("matrix", []):
        cells[(cell["train"], cell["eval"])] = float(cell["auc"])
    if not cells:
        raise ValueError(f"{path}: empty transfer matrix")
    return cells


def run_federation_gate(args):
    baseline = load_transfer_matrix(args.baseline)
    current = load_transfer_matrix(args.current)

    label = f" [{args.label}]" if args.label else ""
    print(f"perf-gate{label} (federation transfer)")
    print(f"  {'train->eval':<24}  {'base auc':>8}  {'cur auc':>8}  "
          f"{'delta':>8}  verdict")
    failures = []
    for pair in sorted(baseline):
        name = f"{pair[0]}->{pair[1]}"
        base_auc = baseline[pair]
        if pair not in current:
            print(f"  {name:<24}  {base_auc:>8.4f}  {'-':>8}  {'-':>8}  "
                  "MISSING")
            failures.append(f"{name}: present in baseline but missing "
                            "from current transfer matrix")
            continue
        cur_auc = current[pair]
        delta = cur_auc - base_auc
        if delta < -args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: AUC {base_auc:.4f} -> {cur_auc:.4f} "
                f"({delta:+.4f} < -{args.threshold:.4f} allowed)")
        elif delta > args.threshold:
            verdict = "IMPROVED"
        else:
            verdict = "ok"
        print(f"  {name:<24}  {base_auc:>8.4f}  {cur_auc:>8.4f}  "
              f"{delta:>+8.4f}  {verdict}")
    for pair in sorted(set(current) - set(baseline)):
        print(f"  {pair[0] + '->' + pair[1]:<24}  {'-':>8}  "
              f"{current[pair]:>8.4f}  {'-':>8}  NEW")

    if failures and not args.report_only:
        print(f"perf-gate: FAIL ({len(failures)} problem(s), allowed AUC "
              f"drop {args.threshold:.4f}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf-gate: {len(failures)} problem(s) ignored "
              "(--report-only)")
    else:
        print("perf-gate: OK")
    return 0


def run_gate(argv):
    parser = argparse.ArgumentParser(prog="perf_gate.py")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional real_time increase "
                             "(default 0.15 = 15%%); in --federation "
                             "mode, allowed absolute AUC drop "
                             "(default 0.05)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the delta table but always exit 0")
    parser.add_argument("--label", default="",
                        help="tag printed with the table (e.g. 'pipeline')")
    parser.add_argument("--serve", action="store_true",
                        help="gate bench_serve loadgen JSON instead of "
                             "google-benchmark JSON")
    parser.add_argument("--federation", action="store_true",
                        help="gate cats_cli transfer-eval JSON (absolute "
                             "AUC-drop threshold, default 0.05)")
    args = parser.parse_args(argv)

    if args.serve and args.federation:
        parser.error("--serve and --federation are mutually exclusive")
    if args.threshold is None:
        # 0.15 is a fractional slowdown; an AUC only has 1.0 of headroom
        # total, so the federation default is an absolute 0.05 drop.
        args.threshold = 0.05 if args.federation else 0.15
    if args.serve:
        return run_serve_gate(args)
    if args.federation:
        return run_federation_gate(args)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"perf-gate: FATAL: no benchmarks in baseline "
              f"{args.baseline}", file=sys.stderr)
        return 1
    rows, failures = compare(baseline, current, args.threshold)
    print_table(rows, args.label)
    if failures and not args.report_only:
        print(f"perf-gate: FAIL ({len(failures)} problem(s), threshold "
              f"+{args.threshold * 100.0:.1f}%):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf-gate: {len(failures)} problem(s) ignored "
              "(--report-only)")
    else:
        print("perf-gate: OK")
    return 0


def self_test():
    """Pins the gate's own semantics with synthetic bench files: a 20%
    slowdown must fail, a 10% slowdown must pass at the default threshold,
    a missing bench must fail, and --report-only must always pass. Serve
    mode: losing a sustained QPS step fails, p99 regression at the gated
    step fails, a clean faster run passes, and the legacy single-curve
    schema is still readable as a baseline. Federation mode: an AUC drop
    beyond the threshold fails, a small wobble passes, a dropped
    (train, eval) pair fails, and a new platform's cells never fail."""
    import tempfile
    import os

    def bench_doc(entries):
        return {"benchmarks": [
            {"name": name, "real_time": rt, "time_unit": unit,
             "run_type": "iteration"}
            for name, rt, unit in entries]}

    cases_run = []

    def expect(case, argv, expected_exit):
        code = run_gate(argv)
        cases_run.append(case)
        if code != expected_exit:
            print(f"perf-gate self-test: FAIL: {case}: exit {code}, "
                  f"expected {expected_exit}", file=sys.stderr)
            return False
        return True

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            return path

        base = write("base.json", bench_doc([
            ("BM_A/1", 100.0, "ms"),
            ("BM_B", 500.0, "us"),
        ]))
        # 20% slowdown on BM_A (and unit change on BM_B proving
        # normalization: 0.45ms == 450us, a 10% improvement).
        slow20 = write("slow20.json", bench_doc([
            ("BM_A/1", 120.0, "ms"),
            ("BM_B", 0.45, "ms"),
        ]))
        slow10 = write("slow10.json", bench_doc([
            ("BM_A/1", 110.0, "ms"),
            ("BM_B", 500.0, "us"),
        ]))
        missing = write("missing.json", bench_doc([
            ("BM_A/1", 100.0, "ms"),
        ]))

        def serve_step(target, p99, errors=0, achieved=None):
            return {"qps_target": target, "qps_achieved":
                    achieved if achieved is not None else target,
                    "requests": int(target), "ok": int(target),
                    "overloaded": 0, "errors": errors,
                    "p50_micros": p99 / 4.0, "p99_micros": p99,
                    "mean_micros": p99 / 3.0, "max_inflight": 4}

        def serve_doc(steps, swap_ok=True, curves_schema=True):
            curve = {"steps": steps,
                     "swap": {"ok": swap_ok, "generation": 2,
                              "latency_micros": 1000}}
            if not curves_schema:
                return {"bench": "serve_loadgen", **curve}
            curve["transport"] = "reactor"
            curve["connections"] = 64
            return {"bench": "serve_loadgen", "curves": [curve]}

        serve_base = write("serve_base.json", serve_doc([
            serve_step(100, 2000.0), serve_step(200, 4000.0),
            serve_step(400, 8000.0)]))
        # 400-qps step now errors out: the sustained ceiling drops to 200.
        serve_dropped = write("serve_dropped.json", serve_doc([
            serve_step(100, 2000.0), serve_step(200, 4000.0),
            serve_step(400, 8000.0, errors=3)]))
        # Same ceiling but p99 at the gated (400 qps) step doubles.
        serve_slower = write("serve_slower.json", serve_doc([
            serve_step(100, 2000.0), serve_step(200, 4000.0),
            serve_step(400, 16000.0)]))
        serve_faster = write("serve_faster.json", serve_doc([
            serve_step(100, 1000.0), serve_step(200, 2000.0),
            serve_step(400, 4000.0), serve_step(800, 6000.0)]))
        serve_legacy = write("serve_legacy.json", serve_doc([
            serve_step(100, 2000.0), serve_step(200, 4000.0)],
            curves_schema=False))

        def fed_doc(cells):
            return {"bench": "federation_transfer",
                    "platforms": sorted({c[0] for c in cells}),
                    "matrix": [{"train": t, "eval": e, "auc": auc,
                                "items": 100} for t, e, auc in cells]}

        fed_base = write("fed_base.json", fed_doc([
            ("taobao", "taobao", 0.99), ("taobao", "bazaar", 0.90),
            ("bazaar", "taobao", 0.88), ("bazaar", "bazaar", 0.98)]))
        # taobao->bazaar transfer collapses by 0.10 (> 0.05 allowed).
        fed_drop = write("fed_drop.json", fed_doc([
            ("taobao", "taobao", 0.99), ("taobao", "bazaar", 0.80),
            ("bazaar", "taobao", 0.88), ("bazaar", "bazaar", 0.98)]))
        # Every cell wobbles within the allowed 0.05.
        fed_wobble = write("fed_wobble.json", fed_doc([
            ("taobao", "taobao", 0.97), ("taobao", "bazaar", 0.92),
            ("bazaar", "taobao", 0.86), ("bazaar", "bazaar", 0.99)]))
        # bazaar vanished from the matrix entirely.
        fed_missing = write("fed_missing.json", fed_doc([
            ("taobao", "taobao", 0.99)]))
        # A third platform joined the federation: new cells, old intact.
        fed_grown = write("fed_grown.json", fed_doc([
            ("taobao", "taobao", 0.99), ("taobao", "bazaar", 0.90),
            ("bazaar", "taobao", 0.88), ("bazaar", "bazaar", 0.98),
            ("jademall", "jademall", 0.97), ("jademall", "taobao", 0.85),
            ("taobao", "jademall", 0.87), ("bazaar", "jademall", 0.84),
            ("jademall", "bazaar", 0.83)]))

        ok = True
        ok &= expect("20% slowdown fails", [base, slow20], 1)
        ok &= expect("10% slowdown passes", [base, slow10], 0)
        ok &= expect("missing bench fails", [base, missing], 1)
        ok &= expect("report-only never fails",
                     [base, slow20, "--report-only"], 0)
        ok &= expect("tighter threshold catches 10%",
                     [base, slow10, "--threshold", "0.05"], 1)
        ok &= expect("serve: identical run passes",
                     ["--serve", serve_base, serve_base], 0)
        ok &= expect("serve: dropped sustained step fails",
                     ["--serve", serve_base, serve_dropped], 1)
        ok &= expect("serve: p99 regression at gated step fails",
                     ["--serve", serve_base, serve_slower], 1)
        ok &= expect("serve: faster run with extra step passes",
                     ["--serve", serve_base, serve_faster], 0)
        ok &= expect("serve: legacy single-curve baseline readable",
                     ["--serve", serve_legacy, serve_faster], 0)
        ok &= expect("serve: report-only never fails",
                     ["--serve", serve_base, serve_dropped,
                      "--report-only"], 0)
        ok &= expect("federation: identical matrix passes",
                     ["--federation", fed_base, fed_base], 0)
        ok &= expect("federation: 0.10 AUC drop fails",
                     ["--federation", fed_base, fed_drop], 1)
        ok &= expect("federation: within-threshold wobble passes",
                     ["--federation", fed_base, fed_wobble], 0)
        ok &= expect("federation: dropped platform pair fails",
                     ["--federation", fed_base, fed_missing], 1)
        ok &= expect("federation: new platform's cells pass",
                     ["--federation", fed_base, fed_grown], 0)
        ok &= expect("federation: looser threshold tolerates the drop",
                     ["--federation", fed_base, fed_drop,
                      "--threshold", "0.2"], 0)
        ok &= expect("federation: report-only never fails",
                     ["--federation", fed_base, fed_missing,
                      "--report-only"], 0)

    if not ok:
        return 1
    print(f"perf-gate self-test: OK ({len(cases_run)} cases)")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    return run_gate(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
