#!/bin/sh
# run-perf-baseline: build the perf benches and regenerate the committed
# machine-readable baselines at the repo root:
#   BENCH_ml.json       — bench/bench_perf_ml (trainers incl. the
#                         exact-vs-histogram GBDT comparison and batched
#                         prediction)
#   BENCH_pipeline.json — bench/bench_perf_pipeline (extraction, crawl,
#                         word2vec, sentiment)
#   BENCH_serve.json    — bench/bench_serve (the serving plane's open-loop
#                         latency/throughput curves per QPS step over many
#                         concurrent TCP connections, epoll reactor vs
#                         thread-per-connection A/B, with a mid-run model
#                         hot-swap under load)
#   BENCH_drift.json    — bench/bench_drift (drift-detector hot path,
#                         warm-start retrain, and the arms-race
#                         adversary-strength-vs-AUC counters)
#   BENCH_federation.json — examples/cats_cli transfer-eval (the N x N
#                         cross-platform transfer-AUC matrix: train a
#                         detector on each built-in platform, score every
#                         other; single-threaded word2vec makes the
#                         output deterministic, so this file only changes
#                         when detection quality actually moves)
# Diffing these files across commits is how a perf regression (or the
# claimed speedup of an optimization PR) is reviewed.
#
# Usage: run_perf_baseline.sh [repo_root] [build_dir]
set -eu

root="${1:-$(dirname "$0")/..}"
root="$(cd "$root" && pwd)"
build_dir="${2:-$root/build}"

cmake -B "$build_dir" -S "$root" >/dev/null
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
      --target bench_perf_ml bench_perf_pipeline bench_serve bench_drift \
               cats_cli >/dev/null

# The build step above swallows its output; never limp past a bench that
# didn't actually get built (a silently missing binary would leave a stale
# baseline committed as if it were regenerated).
for bench in bench_perf_ml bench_perf_pipeline bench_serve bench_drift; do
  if [ ! -x "$build_dir/bench/$bench" ]; then
    echo "perf-baseline: FATAL: $build_dir/bench/$bench missing or not" \
         "executable after build" >&2
    exit 1
  fi
done
if [ ! -x "$build_dir/examples/cats_cli" ]; then
  echo "perf-baseline: FATAL: $build_dir/examples/cats_cli missing or not" \
       "executable after build" >&2
  exit 1
fi

# Snapshot the committed baselines so the regeneration can be diffed
# against them (scripts/perf_gate.py --report-only prints the per-bench
# delta table; it never fails — this script REGENERATES baselines, the CI
# perf lane is what gates).
snapshot_dir="$build_dir/perf_baseline_prev"
mkdir -p "$snapshot_dir"
for f in BENCH_ml.json BENCH_pipeline.json BENCH_serve.json \
         BENCH_drift.json BENCH_federation.json; do
  [ -f "$root/$f" ] && cp "$root/$f" "$snapshot_dir/$f"
done

echo "== perf-baseline: bench_perf_ml -> $root/BENCH_ml.json"
"$build_dir/bench/bench_perf_ml" --json="$root/BENCH_ml.json"

echo "== perf-baseline: bench_perf_pipeline -> $root/BENCH_pipeline.json"
"$build_dir/bench/bench_perf_pipeline" --json="$root/BENCH_pipeline.json"

echo "== perf-baseline: bench_serve -> $root/BENCH_serve.json"
"$build_dir/bench/bench_serve" --json="$root/BENCH_serve.json"

echo "== perf-baseline: bench_drift -> $root/BENCH_drift.json"
"$build_dir/bench/bench_drift" --json="$root/BENCH_drift.json"

echo "== perf-baseline: cats_cli transfer-eval -> $root/BENCH_federation.json"
"$build_dir/examples/cats_cli" transfer-eval \
    --out "$root/BENCH_federation.json"

if command -v python3 >/dev/null 2>&1; then
  echo "== perf-baseline: delta vs previously committed baselines"
  for name in ml pipeline drift; do
    prev="$snapshot_dir/BENCH_$name.json"
    [ -f "$prev" ] || continue
    python3 "$root/scripts/perf_gate.py" "$prev" "$root/BENCH_$name.json" \
            --report-only --label "$name"
  done
  # BENCH_serve.json is loadgen's latency-curve schema, not
  # google-benchmark JSON — perf_gate's --serve mode gates p99 at the
  # highest QPS step the reactor curve sustains cleanly.
  if [ -f "$snapshot_dir/BENCH_serve.json" ]; then
    python3 "$root/scripts/perf_gate.py" --serve \
            "$snapshot_dir/BENCH_serve.json" "$root/BENCH_serve.json" \
            --report-only --label serve
  fi
  # BENCH_federation.json is transfer-eval's AUC-matrix schema; the
  # --federation mode compares per-cell AUC with an absolute-drop bound.
  if [ -f "$snapshot_dir/BENCH_federation.json" ]; then
    python3 "$root/scripts/perf_gate.py" --federation \
            "$snapshot_dir/BENCH_federation.json" \
            "$root/BENCH_federation.json" \
            --report-only --label federation
  fi
else
  echo "perf-baseline: python3 not found, skipping delta tables" >&2
fi

echo "perf-baseline: OK"
