#!/bin/sh
# run-perf-baseline: build the perf benches and regenerate the committed
# machine-readable baselines at the repo root:
#   BENCH_ml.json       — bench/bench_perf_ml (trainers incl. the
#                         exact-vs-histogram GBDT comparison and batched
#                         prediction)
#   BENCH_pipeline.json — bench/bench_perf_pipeline (extraction, crawl,
#                         word2vec, sentiment)
#   BENCH_serve.json    — bench/bench_serve (the serving plane's open-loop
#                         latency/throughput curve per QPS step, with a
#                         mid-run model hot-swap under load)
# Diffing these files across commits is how a perf regression (or the
# claimed speedup of an optimization PR) is reviewed.
#
# Usage: run_perf_baseline.sh [repo_root] [build_dir]
set -eu

root="${1:-$(dirname "$0")/..}"
root="$(cd "$root" && pwd)"
build_dir="${2:-$root/build}"

cmake -B "$build_dir" -S "$root" >/dev/null
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
      --target bench_perf_ml bench_perf_pipeline bench_serve >/dev/null

# The build step above swallows its output; never limp past a bench that
# didn't actually get built (a silently missing binary would leave a stale
# baseline committed as if it were regenerated).
for bench in bench_perf_ml bench_perf_pipeline bench_serve; do
  if [ ! -x "$build_dir/bench/$bench" ]; then
    echo "perf-baseline: FATAL: $build_dir/bench/$bench missing or not" \
         "executable after build" >&2
    exit 1
  fi
done

echo "== perf-baseline: bench_perf_ml -> $root/BENCH_ml.json"
"$build_dir/bench/bench_perf_ml" --json="$root/BENCH_ml.json"

echo "== perf-baseline: bench_perf_pipeline -> $root/BENCH_pipeline.json"
"$build_dir/bench/bench_perf_pipeline" --json="$root/BENCH_pipeline.json"

echo "== perf-baseline: bench_serve -> $root/BENCH_serve.json"
"$build_dir/bench/bench_serve" --json="$root/BENCH_serve.json"

echo "perf-baseline: OK"
