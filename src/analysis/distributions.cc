#include "analysis/distributions.h"

#include <algorithm>

#include "text/text_stats.h"
#include "util/stats.h"

namespace cats::analysis {

std::vector<double> CommentSentiments(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items) {
  std::vector<double> out;
  text::Segmenter segmenter(&model.dictionary);
  for (const collect::CollectedItem& item : items) {
    for (const collect::CommentRecord& comment : item.comments) {
      out.push_back(model.sentiment.Score(segmenter.Segment(comment.content)));
    }
  }
  return out;
}

StructuralSeries ComputeStructuralSeries(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items) {
  StructuralSeries out;
  text::Segmenter segmenter(&model.dictionary);
  for (const collect::CollectedItem& item : items) {
    for (const collect::CommentRecord& comment : item.comments) {
      std::vector<std::string> tokens = segmenter.Segment(comment.content);
      text::CommentStructure structure =
          text::AnalyzeStructure(comment.content);
      out.punctuation_counts.push_back(
          static_cast<double>(structure.punctuation_count));
      out.entropies.push_back(text::TokenEntropy(tokens));
      out.lengths.push_back(static_cast<double>(structure.codepoint_length));
      out.unique_word_ratios.push_back(text::UniqueTokenRatio(tokens));
    }
  }
  return out;
}

std::vector<double> FeatureSeries(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items,
    core::FeatureId feature) {
  core::FeatureExtractor extractor(&model);
  std::vector<core::FeatureVector> features = extractor.ExtractAll(items);
  std::vector<double> out;
  out.reserve(features.size());
  for (const core::FeatureVector& f : features) {
    out.push_back(static_cast<double>(f[static_cast<size_t>(feature)]));
  }
  return out;
}

std::string DistributionComparison::ToAscii(const std::string& label_a,
                                            const std::string& label_b,
                                            int width) const {
  return Histogram::ToAsciiComparison(a, b, label_a, label_b, width);
}

DistributionComparison CompareDistributions(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!a.empty() || !b.empty()) {
    lo = 1e300;
    hi = -1e300;
    for (double v : a) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    for (double v : b) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi <= lo) hi = lo + 1.0;
    double pad = (hi - lo) * 0.02;
    lo -= pad;
    hi += pad;
  }
  DistributionComparison out{Histogram(lo, hi, bins), Histogram(lo, hi, bins),
                             KolmogorovSmirnovStatistic(a, b)};
  out.a.AddAll(a);
  out.b.AddAll(b);
  return out;
}

LabeledSplit SplitByLabel(const std::vector<collect::CollectedItem>& items,
                          const std::vector<int>& labels) {
  LabeledSplit out;
  for (size_t i = 0; i < items.size() && i < labels.size(); ++i) {
    (labels[i] == 1 ? out.fraud : out.normal).push_back(items[i]);
  }
  return out;
}

}  // namespace cats::analysis
