#ifndef CATS_ANALYSIS_DISTRIBUTIONS_H_
#define CATS_ANALYSIS_DISTRIBUTIONS_H_

#include <string>
#include <vector>

#include "collect/store.h"
#include "core/feature_extractor.h"
#include "core/semantic_analyzer.h"
#include "util/histogram.h"

namespace cats::analysis {

/// Per-comment sentiment scores of a set of items (Fig 1 / Fig 10 series).
std::vector<double> CommentSentiments(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items);

/// Per-comment structural series (Figs 2-5).
struct StructuralSeries {
  std::vector<double> punctuation_counts;  // Fig 2
  std::vector<double> entropies;           // Fig 3
  std::vector<double> lengths;             // Fig 4 (codepoints)
  std::vector<double> unique_word_ratios;  // Fig 5
};

StructuralSeries ComputeStructuralSeries(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items);

/// One feature's values across a set of items (Fig 13 panels), extracted
/// with the given semantic model.
std::vector<double> FeatureSeries(
    const core::SemanticModel& model,
    const std::vector<collect::CollectedItem>& items,
    core::FeatureId feature);

/// A fraud-vs-normal (or platform-vs-platform) distribution comparison:
/// shared-binning histograms plus the KS distance.
struct DistributionComparison {
  Histogram a;
  Histogram b;
  double ks_statistic = 0.0;

  std::string ToAscii(const std::string& label_a, const std::string& label_b,
                      int width = 30) const;
};

/// Builds a comparison with automatic shared range (padded min/max).
DistributionComparison CompareDistributions(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            size_t bins);

/// Splits a store's items by ground-truth labels (1 = fraud).
struct LabeledSplit {
  std::vector<collect::CollectedItem> fraud;
  std::vector<collect::CollectedItem> normal;
};

LabeledSplit SplitByLabel(const std::vector<collect::CollectedItem>& items,
                          const std::vector<int>& labels);

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_DISTRIBUTIONS_H_
