#include "analysis/order_aspect.h"

#include <cmath>

namespace cats::analysis {

const std::array<std::string, 5>& ClientDistribution::Labels() {
  static const std::array<std::string, 5>* labels =
      new std::array<std::string, 5>{"Web", "Android", "iPhone", "WeChat",
                                     "Other"};
  return *labels;
}

size_t ClientDistribution::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return best;
}

ClientDistribution ComputeClientDistribution(
    const std::vector<collect::CollectedItem>& items) {
  ClientDistribution out;
  for (const collect::CollectedItem& item : items) {
    for (const collect::CommentRecord& c : item.comments) {
      size_t idx = 4;
      const auto& labels = ClientDistribution::Labels();
      for (size_t i = 0; i < 4; ++i) {
        if (c.client == labels[i]) {
          idx = i;
          break;
        }
      }
      ++out.counts[idx];
      ++out.total;
    }
  }
  return out;
}

double ClientDistributionDistance(const ClientDistribution& a,
                                  const ClientDistribution& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.counts.size(); ++i) {
    d += std::fabs(a.Fraction(i) - b.Fraction(i));
  }
  return d / 2.0;
}

}  // namespace cats::analysis
