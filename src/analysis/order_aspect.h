#ifndef CATS_ANALYSIS_ORDER_ASPECT_H_
#define CATS_ANALYSIS_ORDER_ASPECT_H_

#include <array>
#include <string>
#include <vector>

#include "collect/store.h"

namespace cats::analysis {

/// Order-source (client) distribution over a set of items' comments —
/// the paper's order aspect (§V, Fig 12): comment client_information is a
/// proxy for the order source since only buyers may comment.
struct ClientDistribution {
  // Order: Web, Android, iPhone, WeChat, other/unknown.
  std::array<uint64_t, 5> counts{};
  uint64_t total = 0;

  double Fraction(size_t idx) const {
    return total > 0 ? static_cast<double>(counts[idx]) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Index of the dominant client.
  size_t ArgMax() const;

  static const std::array<std::string, 5>& Labels();
};

ClientDistribution ComputeClientDistribution(
    const std::vector<collect::CollectedItem>& items);

/// Total variation distance between two client distributions — quantifies
/// the fraud-vs-normal order-source difference the paper calls
/// "relatively large".
double ClientDistributionDistance(const ClientDistribution& a,
                                  const ClientDistribution& b);

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_ORDER_ASPECT_H_
