#include "analysis/shop_aspect.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cats::analysis {

std::vector<ShopReport> AnalyzeShops(const collect::DataStore& store,
                                     const core::DetectionReport& report) {
  std::unordered_map<uint64_t, double> flagged_scores;
  for (const core::Detection& d : report.detections) {
    flagged_scores.emplace(d.item_id, d.score);
  }

  std::unordered_map<uint64_t, ShopReport> by_shop;
  for (const collect::ShopRecord& shop : store.shops()) {
    ShopReport r;
    r.shop_id = shop.shop_id;
    r.shop_name = shop.shop_name;
    by_shop.emplace(shop.shop_id, std::move(r));
  }
  for (const collect::CollectedItem& ci : store.items()) {
    auto it = by_shop.find(ci.item.shop_id);
    if (it == by_shop.end()) {
      // Item whose shop page was never collected: synthesize a row.
      ShopReport r;
      r.shop_id = ci.item.shop_id;
      it = by_shop.emplace(ci.item.shop_id, std::move(r)).first;
    }
    ShopReport& shop = it->second;
    ++shop.items;
    auto flagged = flagged_scores.find(ci.item.item_id);
    if (flagged != flagged_scores.end()) {
      ++shop.flagged;
      shop.max_score = std::max(shop.max_score, flagged->second);
    }
  }

  std::vector<ShopReport> out;
  out.reserve(by_shop.size());
  for (auto& [id, shop] : by_shop) {
    if (shop.items > 0) {
      shop.flagged_fraction =
          static_cast<double>(shop.flagged) / static_cast<double>(shop.items);
    }
    out.push_back(std::move(shop));
  }
  std::sort(out.begin(), out.end(),
            [](const ShopReport& a, const ShopReport& b) {
              if (a.flagged != b.flagged) return a.flagged > b.flagged;
              if (a.flagged_fraction != b.flagged_fraction) {
                return a.flagged_fraction > b.flagged_fraction;
              }
              return a.shop_id < b.shop_id;
            });
  return out;
}

std::vector<ShopReport> SuspectedMerchants(
    const std::vector<ShopReport>& shops, const ShopAspectOptions& options) {
  std::vector<ShopReport> out;
  for (const ShopReport& shop : shops) {
    if (shop.flagged == 0) continue;
    if (shop.flagged >= options.min_flagged_items ||
        shop.flagged_fraction >= options.min_flagged_fraction) {
      out.push_back(shop);
    }
  }
  return out;
}

}  // namespace cats::analysis
