#ifndef CATS_ANALYSIS_SHOP_ASPECT_H_
#define CATS_ANALYSIS_SHOP_ASPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/detector.h"

namespace cats::analysis {

/// One shop's standing after a detection sweep. Item-level reports roll up
/// to the merchants running the campaigns — the entity a platform would
/// actually sanction (the paper's malicious merchants, §I/§VII's
/// "underground economy" actors).
struct ShopReport {
  uint64_t shop_id = 0;
  std::string shop_name;
  size_t items = 0;           // items of this shop in the crawl
  size_t flagged = 0;         // items CATS reported as fraud
  double flagged_fraction = 0.0;
  double max_score = 0.0;     // strongest item-level fraud score
};

struct ShopAspectOptions {
  /// A shop is reported as a suspected malicious merchant when at least
  /// this many of its items are flagged...
  size_t min_flagged_items = 2;
  /// ...or when this fraction of its (>=1 flagged) inventory is flagged.
  double min_flagged_fraction = 0.5;
};

/// Rolls an item-level DetectionReport up to shops. `items` must be the
/// same collection the report was produced from; shop identity comes from
/// matching item ids against the crawled shop->item structure in `store`.
/// Returns per-shop reports sorted by flagged count (desc), suspected
/// merchants first.
std::vector<ShopReport> AnalyzeShops(const collect::DataStore& store,
                                     const core::DetectionReport& report);

/// Applies the thresholds to pick the suspected malicious merchants.
std::vector<ShopReport> SuspectedMerchants(
    const std::vector<ShopReport>& shops, const ShopAspectOptions& options);

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_SHOP_ASPECT_H_
