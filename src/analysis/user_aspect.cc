#include "analysis/user_aspect.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "platform/entities.h"

namespace cats::analysis {
namespace {

/// Interns (nickname, userExpValue) pairs to dense user indices — the
/// paper's approximate unique-user identification (§V, user aspect).
class UserInterner {
 public:
  uint32_t Intern(const std::string& nickname, int64_t exp_value) {
    std::string key = nickname + "\x1f" + std::to_string(exp_value);
    auto [it, inserted] =
        index_.emplace(std::move(key), static_cast<uint32_t>(exp_.size()));
    if (inserted) exp_.push_back(exp_value);
    return it->second;
  }

  size_t size() const { return exp_.size(); }
  int64_t exp_value(uint32_t user) const { return exp_[user]; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<int64_t> exp_;
};

}  // namespace

double PopulationExpectation(
    const std::vector<collect::CollectedItem>& items) {
  UserInterner interner;
  std::unordered_set<uint32_t> seen;
  double sum = 0.0;
  for (const collect::CollectedItem& item : items) {
    for (const collect::CommentRecord& c : item.comments) {
      uint32_t user = interner.Intern(c.nickname, c.user_exp_value);
      if (seen.insert(user).second) {
        sum += static_cast<double>(c.user_exp_value);
      }
    }
  }
  return seen.empty() ? 0.0 : sum / static_cast<double>(seen.size());
}

UserAspectReport AnalyzeUserAspect(
    const std::vector<collect::CollectedItem>& items,
    double population_expectation) {
  UserAspectReport report;
  UserInterner interner;

  // Per-item unique buyers; per-(user,item) purchase counts.
  std::unordered_map<uint64_t, uint32_t> purchase_count;  // (user,item) key
  std::unordered_map<uint32_t, uint64_t> purchases_by_user;
  std::vector<std::vector<uint32_t>> item_buyers;
  item_buyers.reserve(items.size());

  for (size_t i = 0; i < items.size(); ++i) {
    const collect::CollectedItem& item = items[i];
    std::unordered_set<uint32_t> buyers;
    double exp_sum = 0.0;
    for (const collect::CommentRecord& c : item.comments) {
      uint32_t user = interner.Intern(c.nickname, c.user_exp_value);
      uint64_t key = (static_cast<uint64_t>(user) << 32) |
                     static_cast<uint64_t>(i & 0xFFFFFFFF);
      ++purchase_count[key];
      ++purchases_by_user[user];
      if (buyers.insert(user).second) {
        exp_sum += static_cast<double>(c.user_exp_value);
      }
    }
    if (!buyers.empty()) {
      report.avg_exp_per_item.push_back(exp_sum /
                                        static_cast<double>(buyers.size()));
    }
    item_buyers.emplace_back(buyers.begin(), buyers.end());
    std::sort(item_buyers.back().begin(), item_buyers.back().end());
  }

  // Unique-buyer exp-value distribution (Fig 11).
  std::unordered_set<uint32_t> all_buyers;
  for (const auto& buyers : item_buyers) {
    for (uint32_t u : buyers) all_buyers.insert(u);
  }
  report.buyer_exp_values.reserve(all_buyers.size());
  size_t at_min = 0, below_1000 = 0, below_2000 = 0;
  for (uint32_t u : all_buyers) {
    int64_t exp = interner.exp_value(u);
    report.buyer_exp_values.push_back(static_cast<double>(exp));
    if (exp <= platform::kMinUserExpValue) ++at_min;
    if (exp < 1000) ++below_1000;
    if (exp < 2000) ++below_2000;
  }
  double num_buyers = static_cast<double>(all_buyers.size());
  if (num_buyers > 0) {
    report.frac_at_min = at_min / num_buyers;
    report.frac_below_1000 = below_1000 / num_buyers;
    report.frac_below_2000 = below_2000 / num_buyers;
  }

  // avgUserExpValue vs the population expectation.
  if (!report.avg_exp_per_item.empty()) {
    size_t below = 0;
    for (double v : report.avg_exp_per_item) {
      if (v < population_expectation) ++below;
    }
    report.frac_items_below_expectation =
        static_cast<double>(below) /
        static_cast<double>(report.avg_exp_per_item.size());
  }

  // Repeat purchases.
  std::unordered_set<uint32_t> repeat_buyers;
  for (const auto& [key, count] : purchase_count) {
    if (count >= 2) repeat_buyers.insert(static_cast<uint32_t>(key >> 32));
  }
  if (num_buyers > 0) {
    report.frac_buyers_with_repeat =
        static_cast<double>(repeat_buyers.size()) / num_buyers;
  }
  for (const auto& [user, count] : purchases_by_user) {
    report.max_purchases_by_one_user =
        std::max(report.max_purchases_by_one_user, count);
  }

  // Co-purchase pairs sharing >= 2 items.
  std::unordered_map<uint64_t, uint32_t> pair_shared;
  for (const auto& buyers : item_buyers) {
    for (size_t a = 0; a < buyers.size(); ++a) {
      for (size_t b = a + 1; b < buyers.size(); ++b) {
        uint64_t key =
            (static_cast<uint64_t>(buyers[a]) << 32) | buyers[b];
        ++pair_shared[key];
      }
    }
  }
  std::unordered_set<uint32_t> pair_users;
  for (const auto& [key, shared] : pair_shared) {
    if (shared >= 2) {
      ++report.copurchase_pairs;
      pair_users.insert(static_cast<uint32_t>(key >> 32));
      pair_users.insert(static_cast<uint32_t>(key & 0xFFFFFFFF));
    }
  }
  report.copurchase_users = pair_users.size();
  return report;
}

}  // namespace cats::analysis
