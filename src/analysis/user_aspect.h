#ifndef CATS_ANALYSIS_USER_ASPECT_H_
#define CATS_ANALYSIS_USER_ASPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collect/store.h"

namespace cats::analysis {

/// User-aspect measurement results (paper §V, Fig 11 and the risky-user
/// study). All statistics are computed purely from public comment records;
/// users are identified by (nickname, userExpValue), exactly the paper's
/// approximate identification.
struct UserAspectReport {
  /// One entry per unique buyer of the analyzed items.
  std::vector<double> buyer_exp_values;

  /// Fig 11 summary fractions over unique buyers.
  double frac_at_min = 0.0;       // userExpValue == 100
  double frac_below_1000 = 0.0;
  double frac_below_2000 = 0.0;

  /// avgUserExpValue per item; fraction of items whose average lies below
  /// `population_expectation` (the paper finds 70% for fraud items).
  std::vector<double> avg_exp_per_item;
  double frac_items_below_expectation = 0.0;

  /// Repeat purchasing among the analyzed buyers.
  double frac_buyers_with_repeat = 0.0;  // bought some analyzed item twice+
  uint64_t max_purchases_by_one_user = 0;

  /// Co-purchase structure: pairs of buyers sharing >= 2 analyzed items,
  /// and the distinct users appearing in such pairs (the paper: 83,745
  /// pairs from a set of 1,056 users).
  uint64_t copurchase_pairs = 0;
  uint64_t copurchase_users = 0;
};

/// Computes the user-aspect report for a set of items (typically the
/// reported fraud items, or the normal items for contrast).
/// `population_expectation` is the mean userExpValue of the whole platform.
UserAspectReport AnalyzeUserAspect(
    const std::vector<collect::CollectedItem>& items,
    double population_expectation);

/// Mean userExpValue over every unique commenter in the store (the
/// "expectation value of userExpValue" baseline).
double PopulationExpectation(const std::vector<collect::CollectedItem>& items);

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_USER_ASPECT_H_
