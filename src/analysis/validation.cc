#include "analysis/validation.h"

#include <unordered_set>

namespace cats::analysis {

SampledValidation ValidateBySampling(
    const core::DetectionReport& report,
    const std::unordered_map<uint64_t, int>& truth, size_t sample_size,
    Rng* rng) {
  SampledValidation out;
  size_t n = report.detections.size();
  if (n == 0) return out;
  sample_size = std::min(sample_size, n);

  // Partial Fisher-Yates over detection indices.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < sample_size; ++i) {
    size_t j = i + rng->UniformU32(static_cast<uint32_t>(n - i));
    std::swap(indices[i], indices[j]);
  }

  out.sample_size = sample_size;
  for (size_t i = 0; i < sample_size; ++i) {
    uint64_t item_id = report.detections[indices[i]].item_id;
    auto it = truth.find(item_id);
    if (it != truth.end() && it->second == 1) ++out.confirmed;
  }
  out.precision =
      static_cast<double>(out.confirmed) / static_cast<double>(sample_size);
  return out;
}

ml::ClassificationMetrics EvaluateReport(
    const core::DetectionReport& report,
    const std::vector<uint64_t>& item_ids, const std::vector<int>& labels) {
  std::unordered_set<uint64_t> flagged;
  flagged.reserve(report.detections.size());
  for (const core::Detection& d : report.detections) {
    flagged.insert(d.item_id);
  }
  std::vector<int> predicted(item_ids.size(), 0);
  for (size_t i = 0; i < item_ids.size(); ++i) {
    predicted[i] = flagged.count(item_ids[i]) > 0 ? 1 : 0;
  }
  return ml::ComputeMetrics(labels, predicted);
}

}  // namespace cats::analysis
