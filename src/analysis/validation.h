#ifndef CATS_ANALYSIS_VALIDATION_H_
#define CATS_ANALYSIS_VALIDATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/detector.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace cats::analysis {

/// Result of the paper's sampled "expert" validation (§IV-B: 1,000 items
/// sampled from the 10,720 reports; 960 confirmed -> precision 0.96).
struct SampledValidation {
  size_t sample_size = 0;
  size_t confirmed = 0;
  double precision = 0.0;
};

/// Samples `sample_size` detections uniformly without replacement and
/// checks each against ground truth (`truth` maps item_id -> 1 fraud /
/// 0 normal). Stands in for Alibaba's expert panel: the simulator's hidden
/// labels play the role of the experts' internal evidence.
SampledValidation ValidateBySampling(
    const core::DetectionReport& report,
    const std::unordered_map<uint64_t, int>& truth, size_t sample_size,
    Rng* rng);

/// Full-label evaluation of a report (precision/recall/F over all items) —
/// used for the D1 numbers of Table VI where complete labels exist.
/// `item_ids` and `labels` are parallel.
ml::ClassificationMetrics EvaluateReport(const core::DetectionReport& report,
                                         const std::vector<uint64_t>& item_ids,
                                         const std::vector<int>& labels);

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_VALIDATION_H_
