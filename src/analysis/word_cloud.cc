#include "analysis/word_cloud.h"

#include <algorithm>
#include <unordered_map>

namespace cats::analysis {

std::vector<WordFrequency> WordCloud::TopWords(
    const std::vector<collect::CollectedItem>& items, size_t k) const {
  std::unordered_map<std::string, uint64_t> counts;
  uint64_t total = 0;
  text::Segmenter segmenter(&model_->dictionary);
  for (const collect::CollectedItem& item : items) {
    for (const collect::CommentRecord& comment : item.comments) {
      for (std::string& token : segmenter.Segment(comment.content)) {
        ++counts[std::move(token)];
        ++total;
      }
    }
  }
  std::vector<WordFrequency> all;
  all.reserve(counts.size());
  for (auto& [word, count] : counts) {
    WordFrequency wf;
    wf.word = word;
    wf.count = count;
    wf.fraction = total > 0 ? static_cast<double>(count) /
                                  static_cast<double>(total)
                            : 0.0;
    wf.positive = model_->positive.Contains(word);
    wf.negative = model_->negative.Contains(word);
    all.push_back(std::move(wf));
  }
  size_t top = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + top, all.end(),
                    [](const WordFrequency& a, const WordFrequency& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.word < b.word;  // deterministic ties
                    });
  all.resize(top);
  return all;
}

double WordCloud::PositiveFractionOfTop(
    const std::vector<WordFrequency>& top) {
  if (top.empty()) return 0.0;
  size_t positives = 0;
  for (const WordFrequency& wf : top) {
    if (wf.positive) ++positives;
  }
  return static_cast<double>(positives) / static_cast<double>(top.size());
}

double WordCloud::TotalMassOfTop(const std::vector<WordFrequency>& top) {
  double mass = 0.0;
  for (const WordFrequency& wf : top) mass += wf.fraction;
  return mass;
}

}  // namespace cats::analysis
