#ifndef CATS_ANALYSIS_WORD_CLOUD_H_
#define CATS_ANALYSIS_WORD_CLOUD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/semantic_analyzer.h"

namespace cats::analysis {

/// One entry of a word-frequency table.
struct WordFrequency {
  std::string word;
  uint64_t count = 0;
  double fraction = 0.0;   // of all counted tokens
  bool positive = false;   // member of the expanded positive lexicon
  bool negative = false;
};

/// Top-k word-frequency analysis over a set of items' comments — the word
/// clouds of Figs 8/9 and the top-50 tables (VIII/IX). Punctuation is
/// excluded; membership flags come from the semantic model's lexicons.
class WordCloud {
 public:
  explicit WordCloud(const core::SemanticModel* model) : model_(model) {}

  /// Frequency table of the top `k` words across `items`' comments.
  std::vector<WordFrequency> TopWords(
      const std::vector<collect::CollectedItem>& items, size_t k) const;

  /// Fraction of the top-k entries that are positive-lexicon words (the
  /// paper: "the top 50 words ... are positive words, which occupy ~28% of
  /// a total" — i.e. of all tokens).
  static double PositiveFractionOfTop(const std::vector<WordFrequency>& top);

  /// Combined frequency mass of the top entries (fraction of all tokens).
  static double TotalMassOfTop(const std::vector<WordFrequency>& top);

 private:
  const core::SemanticModel* model_;  // not owned
};

}  // namespace cats::analysis

#endif  // CATS_ANALYSIS_WORD_CLOUD_H_
