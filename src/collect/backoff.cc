#include "collect/backoff.h"

#include <algorithm>

namespace cats::collect {

Backoff::Backoff(int64_t base_micros, int64_t cap_micros, uint64_t seed)
    : base_(std::max<int64_t>(1, base_micros)),
      cap_(std::max(std::max<int64_t>(1, base_micros), cap_micros)),
      rng_(seed, 0xBAC0FF) {}

int64_t Backoff::NextDelayMicros() {
  if (prev_ <= 0) {
    prev_ = base_;
    return base_;
  }
  int64_t hi = prev_ > cap_ / 3 ? cap_ : prev_ * 3;
  prev_ = rng_.UniformInt(base_, std::max(base_, hi));
  return prev_;
}

}  // namespace cats::collect
