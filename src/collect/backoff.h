#ifndef CATS_COLLECT_BACKOFF_H_
#define CATS_COLLECT_BACKOFF_H_

#include <cstdint>

#include "util/random.h"

namespace cats::collect {

/// Capped exponential backoff with decorrelated jitter (the AWS
/// architecture-blog variant): the first delay is exactly `base`, and each
/// subsequent delay is drawn uniformly from [base, min(cap, prev * 3)].
/// Decorrelation keeps retrying crawl workers from synchronizing into
/// thundering herds while still growing the expected delay exponentially.
/// Seeded, so a given (seed, call sequence) produces an exact, testable
/// delay sequence. Replaces the crawler's original linear backoff.
class Backoff {
 public:
  Backoff(int64_t base_micros, int64_t cap_micros, uint64_t seed);

  /// Delay before the next retry; advances the jitter stream.
  int64_t NextDelayMicros();

  /// Back to cold state: the next delay is `base` again. Called after a
  /// success; the jitter stream is not rewound.
  void Reset() { prev_ = 0; }

  int64_t base_micros() const { return base_; }
  int64_t cap_micros() const { return cap_; }

 private:
  int64_t base_;
  int64_t cap_;
  Rng rng_;
  int64_t prev_ = 0;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_BACKOFF_H_
