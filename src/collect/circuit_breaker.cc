#include "collect/circuit_breaker.h"

namespace cats::collect {

CircuitBreaker::State CircuitBreaker::state() const {
  if (!open_) return State::kClosed;
  return clock_->NowMicros() >= open_until_micros_ ? State::kHalfOpen
                                                   : State::kOpen;
}

void CircuitBreaker::Open() {
  open_ = true;
  open_until_micros_ = clock_->NowMicros() + pause_micros_;
  consecutive_failures_ = 0;
  ++opens_;
}

void CircuitBreaker::RecordSuccess() {
  open_ = false;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure() {
  if (failure_threshold_ == 0) return;
  if (state() == State::kHalfOpen) {
    // The probe failed: reopen for a fresh pause.
    Open();
    return;
  }
  if (++consecutive_failures_ >= failure_threshold_) Open();
}

}  // namespace cats::collect
