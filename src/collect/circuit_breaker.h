#ifndef CATS_COLLECT_CIRCUIT_BREAKER_H_
#define CATS_COLLECT_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>

#include "fault/clock.h"

namespace cats::collect {

/// Classic three-state circuit breaker guarding the crawl loop: after
/// `failure_threshold` consecutive failures it opens and refuses requests
/// for `pause_micros` of (virtual) time — the crawler sleeps out the pause
/// instead of hammering a platform that is clearly down. After the pause
/// it half-opens: one probe request is allowed; a success closes the
/// breaker, another failure reopens it for a fresh pause.
///
/// failure_threshold == 0 disables the breaker (AllowRequest always true).
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  CircuitBreaker(size_t failure_threshold, int64_t pause_micros,
                 fault::VirtualClock* clock)
      : failure_threshold_(failure_threshold),
        pause_micros_(pause_micros),
        clock_(clock) {}

  /// False while open and the pause has not elapsed yet. Callers that get
  /// false should sleep until open_until_micros() and ask again.
  bool AllowRequest() const { return state() != State::kOpen; }

  void RecordSuccess();
  void RecordFailure();

  /// Current state, evaluated lazily against the clock (an elapsed pause
  /// turns kOpen into kHalfOpen without any mutation).
  State state() const;
  uint64_t opens() const { return opens_; }
  int64_t open_until_micros() const { return open_until_micros_; }
  size_t consecutive_failures() const { return consecutive_failures_; }

 private:
  void Open();

  size_t failure_threshold_;
  int64_t pause_micros_;
  fault::VirtualClock* clock_;  // not owned
  bool open_ = false;           // open or half-open (vs closed)
  int64_t open_until_micros_ = 0;
  size_t consecutive_failures_ = 0;
  uint64_t opens_ = 0;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_CIRCUIT_BREAKER_H_
