#include "collect/crawler.h"

#include <algorithm>
#include <functional>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cats::collect {
namespace {

/// Mirrors one crawl's stats into the process-wide registry. Counters are
/// cumulative across crawls; CrawlStats stays the per-run view.
void RecordCrawlMetrics(const CrawlStats& stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(obs::kCrawlerRequestsTotal)->Increment(stats.requests);
  registry.GetCounter(obs::kCrawlerRetriesTotal)->Increment(stats.retries);
  registry.GetCounter(obs::kCrawlerPagesFetchedTotal)
      ->Increment(stats.pages_fetched);
  registry.GetCounter(obs::kCrawlerShopsTotal)->Increment(stats.shops);
  registry.GetCounter(obs::kCrawlerItemsTotal)->Increment(stats.items);
  registry.GetCounter(obs::kCrawlerCommentsTotal)->Increment(stats.comments);
  registry.GetCounter(obs::kCrawlerDuplicatesDroppedTotal)
      ->Increment(stats.duplicates_dropped);
  registry.GetCounter(obs::kCrawlerRateLimiterStallMicrosTotal)
      ->Increment(static_cast<uint64_t>(
          std::max<int64_t>(0, stats.throttled_micros)));
}

}  // namespace

Result<std::string> Crawler::Fetch(const std::string& path) {
  for (size_t attempt = 0;; ++attempt) {
    limiter_.Acquire();
    ++stats_.requests;
    Result<std::string> response = api_->Get(path);
    if (response.ok()) return response;
    if (response.status().code() != StatusCode::kUnavailable ||
        attempt >= options_.max_retries) {
      return response.status();
    }
    ++stats_.retries;
    clock_->AdvanceMicros(options_.retry_backoff_micros *
                          static_cast<int64_t>(attempt + 1));
  }
}

Status Crawler::FetchAllPages(
    const std::string& base_path,
    const std::function<Status(const JsonValue&)>& consume) {
  size_t page = 0;
  size_t total_pages = 1;
  while (page < total_pages) {
    CATS_ASSIGN_OR_RETURN(
        std::string body,
        Fetch(StrFormat("%s?page=%zu", base_path.c_str(), page)));
    CATS_ASSIGN_OR_RETURN(Page parsed, ParsePage(body));
    ++stats_.pages_fetched;
    total_pages = parsed.total_pages;
    for (const JsonValue& record : parsed.data) {
      CATS_RETURN_NOT_OK(consume(record));
    }
    ++page;
  }
  return Status::OK();
}

Status Crawler::Crawl(DataStore* store) {
  stats_ = CrawlStats{};
  obs::ScopedTimer crawl_timer(obs::MetricsRegistry::Global()
                                   .GetLatencyHistogram(
                                       obs::kCrawlerCrawlLatencyMicros));

  // Step 1: all shop homepages.
  CATS_RETURN_NOT_OK(FetchAllPages("/shops", [&](const JsonValue& v) {
    CATS_ASSIGN_OR_RETURN(ShopRecord shop, ParseShopRecord(v));
    if (store->AddShop(std::move(shop))) ++stats_.shops;
    return Status::OK();
  }));

  // Step 2 + 3: each shop's items, then each item's comments.
  bool stop = false;
  for (const ShopRecord& shop : store->shops()) {
    if (stop) break;
    std::vector<uint64_t> new_items;
    CATS_RETURN_NOT_OK(FetchAllPages(
        StrFormat("/shops/%llu/items",
                  static_cast<unsigned long long>(shop.shop_id)),
        [&](const JsonValue& v) {
          CATS_ASSIGN_OR_RETURN(ItemRecord item, ParseItemRecord(v));
          uint64_t id = item.item_id;
          if (store->AddItem(std::move(item))) {
            ++stats_.items;
            new_items.push_back(id);
          }
          return Status::OK();
        }));

    for (uint64_t item_id : new_items) {
      CATS_RETURN_NOT_OK(FetchAllPages(
          StrFormat("/items/%llu/comments",
                    static_cast<unsigned long long>(item_id)),
          [&](const JsonValue& v) {
            CATS_ASSIGN_OR_RETURN(CommentRecord comment,
                                  ParseCommentRecord(v));
            if (store->AddComment(std::move(comment))) ++stats_.comments;
            return Status::OK();
          }));
      if (options_.max_items > 0 && stats_.items >= options_.max_items) {
        stop = true;
        break;
      }
    }
  }
  stats_.duplicates_dropped = store->duplicates_dropped();
  stats_.throttled_micros = limiter_.throttled_micros();
  RecordCrawlMetrics(stats_);
  return Status::OK();
}

}  // namespace cats::collect
