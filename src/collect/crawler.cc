#include "collect/crawler.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "fault/fault_plan.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cats::collect {
namespace {

/// Stable handle for the per-wait backoff histogram (handle creation takes
/// the registry mutex; do it once).
obs::LatencyHistogram* BackoffHistogram() {
  static obs::LatencyHistogram* hist =
      obs::MetricsRegistry::Global().GetLatencyHistogram(
          obs::kCrawlerBackoffMicros);
  return hist;
}

/// Mirrors one crawl's stats into the process-wide registry. Counters are
/// cumulative across crawls; CrawlStats stays the per-run view.
void RecordCrawlMetrics(const CrawlStats& stats, int breaker_state) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(obs::kCrawlerRequestsTotal)->Increment(stats.requests);
  registry.GetCounter(obs::kCrawlerRetriesTotal)->Increment(stats.retries);
  registry.GetCounter(obs::kCrawlerPagesFetchedTotal)
      ->Increment(stats.pages_fetched);
  registry.GetCounter(obs::kCrawlerShopsTotal)->Increment(stats.shops);
  registry.GetCounter(obs::kCrawlerItemsTotal)->Increment(stats.items);
  registry.GetCounter(obs::kCrawlerCommentsTotal)->Increment(stats.comments);
  registry.GetCounter(obs::kCrawlerDuplicatesDroppedTotal)
      ->Increment(stats.duplicates_dropped);
  registry.GetCounter(obs::kCrawlerRateLimiterStallMicrosTotal)
      ->Increment(static_cast<uint64_t>(
          std::max<int64_t>(0, stats.throttled_micros)));
  registry.GetCounter(obs::kCrawlerFaultsRateLimitedTotal)
      ->Increment(stats.rate_limited);
  registry.GetCounter(obs::kCrawlerFaultsServerErrorsTotal)
      ->Increment(stats.server_errors);
  registry.GetCounter(obs::kCrawlerFaultsMalformedBodiesTotal)
      ->Increment(stats.malformed_bodies);
  registry.GetCounter(obs::kCrawlerFaultsSlowResponsesTotal)
      ->Increment(stats.slow_responses);
  registry.GetCounter(obs::kCrawlerPaginationProbesTotal)
      ->Increment(stats.pagination_probes);
  registry.GetCounter(obs::kCrawlerBreakerOpensTotal)
      ->Increment(stats.breaker_opens);
  registry.GetCounter(obs::kCrawlerBreakerPausedMicrosTotal)
      ->Increment(static_cast<uint64_t>(
          std::max<int64_t>(0, stats.breaker_paused_micros)));
  registry.GetGauge(obs::kCrawlerBreakerState)
      ->Set(static_cast<double>(breaker_state));
}

}  // namespace

Crawler::Crawler(platform::MarketplaceApi* api, const CrawlerOptions& options,
                 VirtualClock* clock)
    : api_(api),
      normalizer_(&api->profile()),
      options_(options),
      limiter_(options.requests_per_second, options.burst, clock,
               options.pacing_chunk_micros),
      clock_(clock),
      backoff_(options.backoff_base_micros, options.backoff_cap_micros,
               options.backoff_seed),
      breaker_(options.breaker_failure_threshold,
               options.breaker_pause_micros, clock),
      current_rps_(options.requests_per_second) {}

void Crawler::OnRateLimited() {
  double floor = std::min(options_.min_requests_per_second,
                          options_.requests_per_second);
  double halved = std::max(floor, current_rps_ * 0.5);
  if (halved < current_rps_) {
    current_rps_ = halved;
    limiter_.SetRate(current_rps_);
  }
  success_streak_ = 0;
}

void Crawler::OnPageSuccess() {
  if (current_rps_ >= options_.requests_per_second) return;
  if (++success_streak_ < 64) return;
  current_rps_ = std::min(options_.requests_per_second, current_rps_ * 2.0);
  limiter_.SetRate(current_rps_);
  success_streak_ = 0;
}

Result<Page> Crawler::FetchPage(const std::string& base_path,
                                size_t page_index) {
  const std::string path =
      base_path +
      api_->profile().PageQuery(page_index, api_->page_size());
  for (size_t attempt = 0;; ++attempt) {
    if (options_.breaker_failure_threshold > 0 && !breaker_.AllowRequest()) {
      // Breaker open: sleep out the pause instead of hammering a platform
      // that is clearly down, then probe (half-open).
      int64_t pause = breaker_.open_until_micros() - clock_->NowMicros();
      if (pause > 0) {
        clock_->AdvanceMicros(pause);
        stats_.breaker_paused_micros += pause;
      }
    }
    limiter_.Acquire();
    ++stats_.requests;
    const int64_t issued_at = clock_->NowMicros();
    Result<std::string> response = api_->Get(path);
    if (clock_->NowMicros() - issued_at >=
        options_.slow_response_threshold_micros) {
      ++stats_.slow_responses;
    }

    std::optional<int64_t> retry_after;
    Status failure;
    if (response.ok()) {
      Result<Page> parsed =
          normalizer_.ParsePage(*response, api_->page_size());
      if (parsed.ok() && parsed->page == page_index) {
        breaker_.RecordSuccess();
        backoff_.Reset();
        OnPageSuccess();
        return parsed;
      }
      // Truncated/garbled body, or a body for the wrong page: never accept
      // — treat as transient and re-fetch.
      ++stats_.malformed_bodies;
      failure = Status::Unavailable(
          parsed.ok() ? StrFormat("page echo mismatch (asked %zu, got %zu)",
                                  page_index, parsed->page)
                      : "malformed body: " + parsed.status().message());
    } else if (response.status().code() == StatusCode::kUnavailable) {
      retry_after = fault::ParseRetryAfterMicros(response.status().message());
      if (retry_after.has_value()) {
        ++stats_.rate_limited;
        OnRateLimited();
      } else {
        ++stats_.server_errors;
      }
      failure = response.status();
    } else {
      // NotFound / InvalidArgument / OutOfRange are not transient.
      // OutOfRange flows back to FetchAllPages as the end of pagination.
      return response.status();
    }

    breaker_.RecordFailure();
    if (attempt >= options_.max_retries) return failure;
    if (options_.retry_budget > 0 &&
        stats_.retries >= options_.retry_budget) {
      return Status::Unavailable(
          StrFormat("retry budget (%zu) exhausted; last failure: %s",
                    options_.retry_budget, failure.message().c_str()));
    }
    ++stats_.retries;
    int64_t wait = retry_after.has_value()
                       ? std::max<int64_t>(0, *retry_after)
                       : backoff_.NextDelayMicros();
    clock_->AdvanceMicros(wait);
    stats_.backoff_micros += wait;
    BackoffHistogram()->Observe(static_cast<double>(wait));
  }
}

Status Crawler::FetchAllPages(
    const std::string& base_path, PageCursor* cursor,
    const std::function<Status(const JsonValue&)>& consume) {
  if (cursor->complete) return Status::OK();
  size_t page = cursor->next_page;
  for (;;) {
    Result<Page> parsed = FetchPage(base_path, page);
    if (!parsed.ok()) {
      if (parsed.status().code() == StatusCode::kOutOfRange) {
        // The platform over-reported what remains (stale total_pages, or a
        // stale next_cursor pointing past the end); the walk actually ended
        // earlier. A clean end, not an error.
        ++stats_.pagination_probes;
        break;
      }
      return parsed.status();
    }
    ++stats_.pages_fetched;
    for (const JsonValue& record : parsed->data) {
      CATS_RETURN_NOT_OK(consume(record));
    }
    ++page;
    cursor->next_page = page;
    if (!parsed->has_more) break;
  }
  cursor->complete = true;
  return Status::OK();
}

Status Crawler::Crawl(DataStore* store) {
  CrawlCheckpoint checkpoint;
  return Crawl(store, &checkpoint);
}

Status Crawler::Crawl(DataStore* store, CrawlCheckpoint* checkpoint) {
  stats_ = CrawlStats{};
  canceled_ = false;
  const uint64_t duplicates_before = store->duplicates_dropped();
  const int64_t throttled_before = limiter_.throttled_micros();
  const uint64_t breaker_opens_before = breaker_.opens();
  obs::ScopedTimer crawl_timer(obs::MetricsRegistry::Global()
                                   .GetLatencyHistogram(
                                       obs::kCrawlerCrawlLatencyMicros));

  const platform::PlatformProfile& profile = api_->profile();
  Status status = Status::OK();
  if (!checkpoint->complete) {
    // Step 1: all shop homepages.
    status = FetchAllPages(profile.ShopsRoute(), &checkpoint->shops,
                           [&](const JsonValue& v) {
                             CATS_ASSIGN_OR_RETURN(
                                 ShopRecord shop, normalizer_.NormalizeShop(v));
                             if (store->AddShop(std::move(shop))) {
                               ++stats_.shops;
                             }
                             return Status::OK();
                           });

    // Step 2 + 3: each shop's items, then each of its items' comments.
    bool stop = false;
    for (size_t s = 0; status.ok() && !stop && s < store->shops().size();
         ++s) {
      const ShopRecord& shop = store->shops()[s];
      PageCursor* items_cursor = &checkpoint->shop_items[shop.shop_id];
      status = FetchAllPages(
          profile.ItemsRoute(shop.shop_id), items_cursor,
          [&](const JsonValue& v) {
            CATS_ASSIGN_OR_RETURN(ItemRecord item,
                                  normalizer_.NormalizeItem(v));
            if (store->AddItem(std::move(item))) ++stats_.items;
            return Status::OK();
          });
      if (!status.ok()) break;

      for (size_t item_index : store->ItemIndicesOfShop(shop.shop_id)) {
        const uint64_t item_id = store->items()[item_index].item.item_id;
        PageCursor* comments_cursor = &checkpoint->item_comments[item_id];
        if (comments_cursor->complete) continue;
        status = FetchAllPages(
            profile.CommentsRoute(item_id), comments_cursor,
            [&](const JsonValue& v) {
              CATS_ASSIGN_OR_RETURN(CommentRecord comment,
                                    normalizer_.NormalizeComment(v));
              if (store->AddComment(std::move(comment))) ++stats_.comments;
              return Status::OK();
            });
        if (!status.ok()) break;
        // Item fully collected (all comment pages in) — hand it to the
        // streaming sink. A false return is a cancellation request: stop
        // at this item boundary, leaving the checkpoint resumable.
        if (item_sink_ && !item_sink_(store->items()[item_index])) {
          canceled_ = true;
          stop = true;
          break;
        }
        if (options_.max_items > 0 &&
            store->items().size() >= options_.max_items) {
          stop = true;
          break;
        }
      }
    }
    if (status.ok() && !canceled_) checkpoint->complete = true;
  }

  stats_.duplicates_dropped = store->duplicates_dropped() - duplicates_before;
  stats_.throttled_micros = limiter_.throttled_micros() - throttled_before;
  stats_.breaker_opens = breaker_.opens() - breaker_opens_before;
  // Mirror stats even for aborted crawls: a failed crawl is precisely the
  // one an operator needs to see.
  RecordCrawlMetrics(stats_, static_cast<int>(breaker_.state()));
  return status;
}

}  // namespace cats::collect
