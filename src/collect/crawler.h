#ifndef CATS_COLLECT_CRAWLER_H_
#define CATS_COLLECT_CRAWLER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "collect/rate_limiter.h"
#include "collect/store.h"
#include "platform/api.h"
#include "util/status.h"

namespace cats::collect {

struct CrawlerOptions {
  /// Requests per (virtual) second — the "minimize server impact" knob.
  double requests_per_second = 200.0;
  double burst = 20.0;
  /// Transient-failure retries per request, with linear backoff.
  size_t max_retries = 5;
  int64_t retry_backoff_micros = 50000;
  /// Stop early after this many items (0 = no cap); lets benches subsample
  /// the way the paper subsampled E-platform.
  size_t max_items = 0;
};

/// Crawl statistics for reporting (the paper quotes requests, duration and
/// volumes for its one-week E-platform crawl).
struct CrawlStats {
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t pages_fetched = 0;
  uint64_t shops = 0;
  uint64_t items = 0;
  uint64_t comments = 0;
  uint64_t duplicates_dropped = 0;
  int64_t throttled_micros = 0;
};

/// The data collector (paper §IV-A): walks the platform's public endpoints
/// — all shop homepages, each shop's items, each item's comments — through
/// a rate limiter, retrying transient failures, deduplicating records into
/// a DataStore. Substitutes for the Scrapy deployment on three servers.
///
/// Observability: every Crawl mirrors its CrawlStats into the process-wide
/// obs::MetricsRegistry under the `crawler.*` names (docs/METRICS.md) and
/// records per-crawl wall time into `crawler.crawl_latency_micros`.
class Crawler {
 public:
  Crawler(platform::MarketplaceApi* api, const CrawlerOptions& options,
          VirtualClock* clock)
      : api_(api),
        options_(options),
        limiter_(options.requests_per_second, options.burst, clock),
        clock_(clock) {}

  /// Runs the full crawl into `store`.
  Status Crawl(DataStore* store);

  const CrawlStats& stats() const { return stats_; }

 private:
  /// One GET with rate limiting and retry-on-Unavailable.
  Result<std::string> Fetch(const std::string& path);

  /// Fetches every page of `base_path` and feeds records to `consume`.
  Status FetchAllPages(
      const std::string& base_path,
      const std::function<Status(const JsonValue&)>& consume);

  platform::MarketplaceApi* api_;  // not owned
  CrawlerOptions options_;
  RateLimiter limiter_;
  VirtualClock* clock_;            // not owned
  CrawlStats stats_;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_CRAWLER_H_
