#ifndef CATS_COLLECT_CRAWLER_H_
#define CATS_COLLECT_CRAWLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "collect/backoff.h"
#include "collect/circuit_breaker.h"
#include "collect/normalizer.h"
#include "collect/rate_limiter.h"
#include "collect/store.h"
#include "platform/api.h"
#include "util/status.h"

namespace cats::collect {

struct CrawlerOptions {
  /// Requests per (virtual) second — the "minimize server impact" knob.
  double requests_per_second = 200.0;
  double burst = 20.0;
  /// Pacing-sleep coalescing granularity (see RateLimiter): 0 sleeps the
  /// owed interval on every throttled request; a positive chunk lets
  /// requests run on token credit until a full chunk of sleep is owed,
  /// then sleeps once. Same average rate, far fewer timer wakeups — useful
  /// when the crawl shares a core with compute (e.g. the streaming plane).
  int64_t pacing_chunk_micros = 0;
  /// Floor the adaptive throttle may back down to after 429s; the rate
  /// halves per 429 and creeps back toward requests_per_second on
  /// sustained success.
  double min_requests_per_second = 25.0;
  /// Retries per page fetch before the fetch fails.
  size_t max_retries = 5;
  /// Total retries allowed per crawl; 0 = unlimited. Exhausting the budget
  /// aborts the crawl (resumable from its checkpoint).
  size_t retry_budget = 0;
  /// Exponential backoff with decorrelated jitter (collect/backoff.h):
  /// first delay = base, then uniform in [base, min(cap, prev*3)]. An
  /// injected Retry-After hint overrides the computed delay.
  int64_t backoff_base_micros = 50'000;
  int64_t backoff_cap_micros = 5'000'000;
  uint64_t backoff_seed = 0xB0FF;
  /// Circuit breaker: consecutive failed attempts before the crawl pauses
  /// for breaker_pause_micros. 0 disables the breaker.
  size_t breaker_failure_threshold = 8;
  int64_t breaker_pause_micros = 2'000'000;
  /// Responses slower than this (by the shared virtual clock) count into
  /// CrawlStats::slow_responses.
  int64_t slow_response_threshold_micros = 1'000'000;
  /// Stop early after this many items (0 = no cap); lets benches subsample
  /// the way the paper subsampled E-platform.
  size_t max_items = 0;
};

/// Crawl statistics for reporting (the paper quotes requests, duration and
/// volumes for its one-week E-platform crawl). Reset per Crawl call.
struct CrawlStats {
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t pages_fetched = 0;
  uint64_t shops = 0;
  uint64_t items = 0;
  uint64_t comments = 0;
  uint64_t duplicates_dropped = 0;
  int64_t throttled_micros = 0;
  // Fault observations (what the crawler actually saw and survived).
  uint64_t rate_limited = 0;       // 429 responses
  uint64_t server_errors = 0;      // other kUnavailable responses
  uint64_t malformed_bodies = 0;   // unparseable / wrong-page bodies refetched
  uint64_t slow_responses = 0;     // responses over the slow threshold
  uint64_t pagination_probes = 0;  // OutOfRange ends past stale total_pages
  int64_t backoff_micros = 0;      // virtual time spent in retry backoff
  uint64_t breaker_opens = 0;
  int64_t breaker_paused_micros = 0;
};

/// Progress cursor for one paginated endpoint.
struct PageCursor {
  size_t next_page = 0;
  bool complete = false;
};

/// Resumable crawl position: which page each endpoint walk is on. A crawl
/// aborted mid-flight (retry budget exhausted, persistent outage) leaves
/// the checkpoint pointing at the first incomplete page; passing the same
/// checkpoint and store back into Crawl resumes there instead of
/// re-fetching completed pages (the DataStore's dedup makes the one
/// possibly partially-consumed page idempotent).
struct CrawlCheckpoint {
  PageCursor shops;
  std::unordered_map<uint64_t, PageCursor> shop_items;     // by shop_id
  std::unordered_map<uint64_t, PageCursor> item_comments;  // by item_id
  bool complete = false;
};

/// The data collector (paper §IV-A): walks the platform's public endpoints
/// — all shop homepages, each shop's items, each item's comments — through
/// a rate limiter, deduplicating records into a DataStore. Substitutes for
/// the Scrapy deployment on three servers. Routes, query strings and
/// response envelopes follow the platform's PlatformProfile (taken from
/// the API), so the same crawler walks page-numbered, offset/limit and
/// cursor-token platforms; records are normalized into canonical form by
/// the SchemaNormalizer before they reach the store.
///
/// Hardened against everything fault::FaultPlan injects: exponential
/// backoff with decorrelated jitter (Retry-After hints honored), adaptive
/// rate reduction after 429s, a per-crawl retry budget, a circuit breaker
/// that pauses the crawl on consecutive failures, malformed-body detection
/// (re-fetch, never accept), stale-pagination tolerance (OutOfRange ends a
/// walk cleanly), and checkpoint/resume.
///
/// Observability: every Crawl mirrors its CrawlStats into the process-wide
/// obs::MetricsRegistry under the `crawler.*` names (docs/METRICS.md),
/// records per-crawl wall time into `crawler.crawl_latency_micros`, each
/// backoff wait into `crawler.backoff_micros`, and the breaker state into
/// the `crawler.breaker_state` gauge.
class Crawler {
 public:
  /// Streaming hook: invoked from the crawl thread each time an item's
  /// comment walk completes — the moment the item is fully collected and
  /// ready for downstream analysis (pipeline::StreamingCats feeds its
  /// ingest queue from this). The reference points into the store and is
  /// only valid for the duration of the call (the store's item vector may
  /// reallocate as the crawl continues) — copy, don't keep. Return false
  /// to cancel the crawl: it stops cleanly at the item boundary with an OK
  /// status and a resumable (incomplete) checkpoint. Items already
  /// complete in a resumed checkpoint do not re-fire the sink.
  using ItemSink = std::function<bool(const CollectedItem&)>;

  Crawler(platform::MarketplaceApi* api, const CrawlerOptions& options,
          VirtualClock* clock);

  /// Runs the full crawl into `store` from a fresh checkpoint.
  Status Crawl(DataStore* store);

  /// Runs (or resumes) the crawl from `checkpoint`, which must belong to
  /// the same store. On failure the checkpoint holds the resume position.
  Status Crawl(DataStore* store, CrawlCheckpoint* checkpoint);

  /// Installs (or clears, with nullptr) the per-item streaming sink.
  void set_item_sink(ItemSink sink) { item_sink_ = std::move(sink); }

  /// True when the last Crawl call ended early because the sink asked to
  /// stop (the checkpoint is left incomplete and resumable).
  bool canceled() const { return canceled_; }

  const CrawlStats& stats() const { return stats_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  double current_requests_per_second() const { return current_rps_; }

 private:
  /// One page GET with rate limiting, breaker, retry-with-backoff on
  /// transient failures, and body validation (parse + page echo check).
  /// kOutOfRange is returned untouched — the caller treats it as the clean
  /// end of a pagination walk.
  Result<Page> FetchPage(const std::string& base_path, size_t page_index);

  /// Fetches every remaining page of `base_path` per `cursor`, feeding
  /// records to `consume` and advancing the cursor page by page.
  Status FetchAllPages(
      const std::string& base_path, PageCursor* cursor,
      const std::function<Status(const JsonValue&)>& consume);

  /// Adaptive throttle hooks.
  void OnRateLimited();
  void OnPageSuccess();

  platform::MarketplaceApi* api_;  // not owned
  /// Maps the platform's wire dialect (api_->profile()) to the canonical
  /// records the store and detection plane consume.
  SchemaNormalizer normalizer_;
  CrawlerOptions options_;
  RateLimiter limiter_;
  VirtualClock* clock_;            // not owned
  Backoff backoff_;
  CircuitBreaker breaker_;
  double current_rps_;
  size_t success_streak_ = 0;
  CrawlStats stats_;
  ItemSink item_sink_;
  bool canceled_ = false;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_CRAWLER_H_
