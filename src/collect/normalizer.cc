#include "collect/normalizer.h"

#include "util/string_util.h"

namespace cats::collect {
namespace {

Result<const JsonValue*> Field(const JsonValue& v, const std::string& key) {
  const JsonValue* f = v.Get(key);
  if (f == nullptr) return Status::NotFound("missing key '" + key + "'");
  return f;
}

Result<uint64_t> FieldId(const platform::PlatformProfile& p,
                         const JsonValue& v, const std::string& key,
                         const std::string& prefix) {
  CATS_ASSIGN_OR_RETURN(const JsonValue* f, Field(v, key));
  Result<uint64_t> id = p.DecodeId(*f, prefix);
  if (!id.ok()) {
    return Status::ParseError("key '" + key +
                              "': " + id.status().message());
  }
  return id;
}

}  // namespace

Result<ShopRecord> SchemaNormalizer::NormalizeShop(const JsonValue& v) const {
  const platform::PlatformProfile& p = *profile_;
  ShopRecord r;
  CATS_ASSIGN_OR_RETURN(r.shop_id,
                        FieldId(p, v, p.shop.id, p.shop_id_prefix));
  CATS_ASSIGN_OR_RETURN(r.shop_url, v.GetString(p.shop.url));
  CATS_ASSIGN_OR_RETURN(r.shop_name, v.GetString(p.shop.name));
  return r;
}

Result<ItemRecord> SchemaNormalizer::NormalizeItem(const JsonValue& v) const {
  const platform::PlatformProfile& p = *profile_;
  ItemRecord r;
  CATS_ASSIGN_OR_RETURN(r.item_id,
                        FieldId(p, v, p.item.id, p.item_id_prefix));
  CATS_ASSIGN_OR_RETURN(r.shop_id,
                        FieldId(p, v, p.item.shop_id, p.shop_id_prefix));
  CATS_ASSIGN_OR_RETURN(r.item_name, v.GetString(p.item.name));
  CATS_ASSIGN_OR_RETURN(r.price, v.GetDouble(p.item.price));
  CATS_ASSIGN_OR_RETURN(r.sales_volume, v.GetInt(p.item.sales));
  CATS_ASSIGN_OR_RETURN(r.category, v.GetString(p.item.category));
  return r;
}

Result<CommentRecord> SchemaNormalizer::NormalizeComment(
    const JsonValue& v) const {
  const platform::PlatformProfile& p = *profile_;
  CommentRecord r;
  CATS_ASSIGN_OR_RETURN(r.item_id,
                        FieldId(p, v, p.comment.item_id, p.item_id_prefix));
  CATS_ASSIGN_OR_RETURN(r.comment_id,
                        FieldId(p, v, p.comment.id, p.comment_id_prefix));
  CATS_ASSIGN_OR_RETURN(r.content, v.GetString(p.comment.content));
  CATS_ASSIGN_OR_RETURN(r.nickname, v.GetString(p.comment.nickname));
  {
    CATS_ASSIGN_OR_RETURN(const JsonValue* rep,
                          Field(v, p.comment.reputation));
    CATS_ASSIGN_OR_RETURN(r.user_exp_value, p.DecodeReputation(*rep));
  }
  {
    CATS_ASSIGN_OR_RETURN(std::string client, v.GetString(p.comment.client));
    r.client = p.DecodeClient(client);
  }
  {
    CATS_ASSIGN_OR_RETURN(const JsonValue* date, Field(v, p.comment.date));
    CATS_ASSIGN_OR_RETURN(r.date, p.DecodeDate(*date));
  }
  return r;
}

Result<Page> SchemaNormalizer::ParsePage(const std::string& body,
                                         size_t page_size) const {
  const platform::PlatformProfile& p = *profile_;
  CATS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(body));
  if (!doc.is_object()) {
    return Status::ParseError("page body is not an object");
  }
  const JsonValue* env = &doc;
  if (!p.envelope.wrapper.empty()) {
    env = doc.GetPath(p.envelope.wrapper);
    if (env == nullptr || !env->is_object()) {
      return Status::ParseError("page body missing envelope wrapper '" +
                                p.envelope.wrapper + "'");
    }
  }

  Page page;
  switch (p.pagination) {
    case platform::PaginationStyle::kPageNumber: {
      CATS_ASSIGN_OR_RETURN(int64_t pg, env->GetInt(p.envelope.key_page));
      CATS_ASSIGN_OR_RETURN(int64_t tp,
                            env->GetInt(p.envelope.key_total_pages));
      page.page = static_cast<size_t>(pg);
      page.total_pages = static_cast<size_t>(tp);
      page.has_more = page.page + 1 < page.total_pages;
      break;
    }
    case platform::PaginationStyle::kOffsetLimit: {
      CATS_ASSIGN_OR_RETURN(int64_t off, env->GetInt(p.envelope.key_offset));
      CATS_ASSIGN_OR_RETURN(int64_t total,
                            env->GetInt(p.envelope.key_total));
      if (off < 0 || total < 0 || page_size == 0 ||
          off % static_cast<int64_t>(page_size) != 0) {
        return Status::ParseError(
            StrFormat("bad offset window offset=%lld total=%lld",
                      static_cast<long long>(off),
                      static_cast<long long>(total)));
      }
      page.page = static_cast<size_t>(off) / page_size;
      page.total_pages =
          (static_cast<size_t>(total) + page_size - 1) / page_size;
      page.has_more = page.page + 1 < page.total_pages;
      break;
    }
    case platform::PaginationStyle::kCursorToken: {
      CATS_ASSIGN_OR_RETURN(std::string echo,
                            env->GetString(p.envelope.key_cursor));
      CATS_ASSIGN_OR_RETURN(std::string next,
                            env->GetString(p.envelope.key_next_cursor));
      if (echo.empty()) {
        page.page = 0;
      } else {
        if (!StartsWith(echo, p.cursor_prefix)) {
          return Status::ParseError("bad cursor echo: " + echo);
        }
        uint64_t idx = 0;
        for (size_t i = p.cursor_prefix.size(); i < echo.size(); ++i) {
          char c = echo[i];
          if (c < '0' || c > '9') {
            return Status::ParseError("bad cursor echo: " + echo);
          }
          idx = idx * 10 + static_cast<uint64_t>(c - '0');
        }
        page.page = static_cast<size_t>(idx);
      }
      page.has_more = !next.empty();
      page.total_pages = page.page + (page.has_more ? 2 : 1);
      break;
    }
  }

  const JsonValue* data = env->Get(p.envelope.key_data);
  if (data == nullptr || !data->is_array()) {
    return Status::ParseError("page body has no data array");
  }
  page.data.reserve(data->size());
  for (size_t i = 0; i < data->size(); ++i) page.data.push_back(data->at(i));
  return page;
}

}  // namespace cats::collect
