#ifndef CATS_COLLECT_NORMALIZER_H_
#define CATS_COLLECT_NORMALIZER_H_

#include <string>

#include "collect/record.h"
#include "platform/profile.h"
#include "util/result.h"

namespace cats::collect {

/// The federation's normalization stage: maps one platform's wire dialect
/// (field names, envelope shape, id / reputation / client / date
/// encodings — platform/profile.h) into the canonical Record structs and
/// the canonical Page view the crawler and detection plane consume. With
/// the canonical profile this is exactly the historical parser, so a
/// single-platform crawl is unchanged byte for byte.
class SchemaNormalizer {
 public:
  explicit SchemaNormalizer(const platform::PlatformProfile* profile)
      : profile_(profile) {}

  Result<ShopRecord> NormalizeShop(const JsonValue& v) const;
  Result<ItemRecord> NormalizeItem(const JsonValue& v) const;
  Result<CommentRecord> NormalizeComment(const JsonValue& v) const;

  /// Parses one paginated response body (unwrapping any envelope wrapper)
  /// into the canonical Page view: a page index, the records, and whether
  /// the walk has more pages. `page_size` is needed for offset arithmetic.
  Result<Page> ParsePage(const std::string& body, size_t page_size) const;

  const platform::PlatformProfile& profile() const { return *profile_; }

 private:
  const platform::PlatformProfile* profile_;  // not owned
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_NORMALIZER_H_
