#include "collect/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace cats::collect {

RateLimiter::RateLimiter(double permits_per_second, double burst,
                         VirtualClock* clock, int64_t pacing_chunk_micros)
    : rate_(permits_per_second / 1e6),
      burst_(std::max(1.0, burst)),
      pacing_chunk_micros_(std::max<int64_t>(0, pacing_chunk_micros)),
      tokens_(std::max(1.0, burst)),
      last_refill_(clock->NowMicros()),
      clock_(clock),
      unlimited_(permits_per_second <= 0.0) {}

void RateLimiter::Refill() {
  int64_t now = clock_->NowMicros();
  double elapsed = static_cast<double>(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

void RateLimiter::SetRate(double permits_per_second) {
  Refill();  // settle accrued tokens at the old rate
  unlimited_ = permits_per_second <= 0.0;
  rate_ = permits_per_second / 1e6;
}

void RateLimiter::Acquire() {
  ++acquired_;
  if (unlimited_) return;
  Refill();
  if (tokens_ < 1.0) {
    int64_t wait =
        static_cast<int64_t>(std::ceil((1.0 - tokens_) / rate_));
    if (wait < pacing_chunk_micros_) {
      // Owed sleep is shorter than the pacing chunk: run on credit instead
      // of paying a sub-chunk sleep. The debt (negative tokens, bounded by
      // chunk * rate) lengthens the next real sleep by exactly the credit
      // taken, so the average rate is unchanged.
      tokens_ -= 1.0;
      return;
    }
    clock_->AdvanceMicros(wait);
    throttled_micros_ += wait;
    Refill();
  }
  tokens_ -= 1.0;
}

}  // namespace cats::collect
