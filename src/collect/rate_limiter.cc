#include "collect/rate_limiter.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>

namespace cats::collect {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::AdvanceMicros(int64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

RateLimiter::RateLimiter(double permits_per_second, double burst,
                         VirtualClock* clock)
    : rate_(permits_per_second / 1e6),
      burst_(burst),
      tokens_(burst),
      last_refill_(clock->NowMicros()),
      clock_(clock) {
  assert(permits_per_second > 0.0);
  assert(burst >= 1.0);
}

void RateLimiter::Refill() {
  int64_t now = clock_->NowMicros();
  double elapsed = static_cast<double>(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

void RateLimiter::Acquire() {
  Refill();
  if (tokens_ < 1.0) {
    int64_t wait =
        static_cast<int64_t>(std::ceil((1.0 - tokens_) / rate_));
    clock_->AdvanceMicros(wait);
    throttled_micros_ += wait;
    Refill();
  }
  tokens_ -= 1.0;
  ++acquired_;
}

}  // namespace cats::collect
