#ifndef CATS_COLLECT_RATE_LIMITER_H_
#define CATS_COLLECT_RATE_LIMITER_H_

#include <cstdint>

namespace cats::collect {

/// Injectable time source so tests and benches run the crawler at full
/// speed against a virtual clock while a real deployment would block.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  /// Current time in microseconds.
  virtual int64_t NowMicros() const = 0;
  /// Advances (fake) or sleeps (real) for `micros`.
  virtual void AdvanceMicros(int64_t micros) = 0;
};

/// Deterministic fake clock; AdvanceMicros is instantaneous.
class FakeClock : public VirtualClock {
 public:
  int64_t NowMicros() const override { return now_; }
  void AdvanceMicros(int64_t micros) override { now_ += micros; }

 private:
  int64_t now_ = 0;
};

/// Wall clock; AdvanceMicros really sleeps.
class SystemClock : public VirtualClock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;
};

/// Token-bucket rate limiter. The paper's collector "was designed to
/// minimize server impact" (§VII); this is that mechanism. Acquire()
/// blocks (via the clock) until a token is available.
class RateLimiter {
 public:
  /// `permits_per_second` > 0; `burst` tokens may accumulate.
  RateLimiter(double permits_per_second, double burst, VirtualClock* clock);

  /// Takes one token, advancing the clock if the bucket is empty.
  void Acquire();

  /// Total time spent throttled, in microseconds.
  int64_t throttled_micros() const { return throttled_micros_; }
  uint64_t acquired() const { return acquired_; }

 private:
  void Refill();

  double rate_;            // tokens per microsecond
  double burst_;
  double tokens_;
  int64_t last_refill_;
  VirtualClock* clock_;    // not owned
  int64_t throttled_micros_ = 0;
  uint64_t acquired_ = 0;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_RATE_LIMITER_H_
