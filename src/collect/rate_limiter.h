#ifndef CATS_COLLECT_RATE_LIMITER_H_
#define CATS_COLLECT_RATE_LIMITER_H_

#include <cstdint>

#include "fault/clock.h"

namespace cats::collect {

/// The clock abstraction lives in the fault layer (fault/clock.h) so both
/// the platform's fault injection and the collector schedule against the
/// same virtual time; these aliases keep the historical collect:: names.
using VirtualClock = fault::VirtualClock;
using FakeClock = fault::FakeClock;
using SystemClock = fault::SystemClock;

/// Token-bucket rate limiter. The paper's collector "was designed to
/// minimize server impact" (§VII); this is that mechanism. Acquire()
/// blocks (via the clock) until a token is available.
///
/// Degenerate inputs are clamped rather than asserted: burst < 1 behaves
/// as burst 1 (every request rate-paced), and permits_per_second <= 0
/// disables throttling entirely (an unlimited limiter), so callers can
/// wire user-supplied configs straight through.
class RateLimiter {
 public:
  /// pacing_chunk_micros coalesces pacing sleeps: a request whose owed wait
  /// is shorter than the chunk runs immediately on token credit (tokens go
  /// negative), and the debt makes the next real sleep proportionally
  /// longer. The long-run rate is preserved exactly — only the sleep
  /// granularity changes, from one short sleep per request to one
  /// chunk-length sleep per chunk's worth of requests. 0 (the default)
  /// keeps the classic per-request pacing.
  RateLimiter(double permits_per_second, double burst, VirtualClock* clock,
              int64_t pacing_chunk_micros = 0);

  /// Takes one token, advancing the clock if the bucket is empty.
  void Acquire();

  /// Changes the refill rate mid-stream (adaptive throttling after 429s).
  /// Tokens already accrued are settled at the old rate first, so
  /// throttled_micros accounting stays exact across the change.
  /// rps <= 0 switches the limiter to unlimited.
  void SetRate(double permits_per_second);

  /// Current refill rate in permits per second (0 when unlimited).
  double rate_per_second() const { return unlimited_ ? 0.0 : rate_ * 1e6; }

  /// Total time spent throttled, in microseconds.
  int64_t throttled_micros() const { return throttled_micros_; }
  uint64_t acquired() const { return acquired_; }
  int64_t pacing_chunk_micros() const { return pacing_chunk_micros_; }

 private:
  void Refill();

  double rate_;            // tokens per microsecond
  double burst_;
  int64_t pacing_chunk_micros_;
  double tokens_;
  int64_t last_refill_;
  VirtualClock* clock_;    // not owned
  bool unlimited_ = false;
  int64_t throttled_micros_ = 0;
  uint64_t acquired_ = 0;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_RATE_LIMITER_H_
