#include "collect/record.h"

#include <cstdlib>

namespace cats::collect {
namespace {

/// IDs arrive as JSON strings (Listing 2); parse to uint64.
Result<uint64_t> GetStringId(const JsonValue& v, const char* key) {
  CATS_ASSIGN_OR_RETURN(std::string s, v.GetString(key));
  if (s.empty()) return Status::ParseError(std::string(key) + " is empty");
  char* end = nullptr;
  uint64_t id = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError(std::string(key) + " is not numeric: " + s);
  }
  return id;
}

}  // namespace

Result<ShopRecord> ParseShopRecord(const JsonValue& v) {
  ShopRecord r;
  CATS_ASSIGN_OR_RETURN(r.shop_id, GetStringId(v, "shop_id"));
  CATS_ASSIGN_OR_RETURN(r.shop_url, v.GetString("shop_url"));
  CATS_ASSIGN_OR_RETURN(r.shop_name, v.GetString("shop_name"));
  return r;
}

Result<ItemRecord> ParseItemRecord(const JsonValue& v) {
  ItemRecord r;
  CATS_ASSIGN_OR_RETURN(r.item_id, GetStringId(v, "item_id"));
  CATS_ASSIGN_OR_RETURN(r.shop_id, GetStringId(v, "shop_id"));
  CATS_ASSIGN_OR_RETURN(r.item_name, v.GetString("item_name"));
  CATS_ASSIGN_OR_RETURN(r.price, v.GetDouble("price"));
  CATS_ASSIGN_OR_RETURN(r.sales_volume, v.GetInt("sales_volume"));
  CATS_ASSIGN_OR_RETURN(r.category, v.GetString("category"));
  return r;
}

Result<CommentRecord> ParseCommentRecord(const JsonValue& v) {
  CommentRecord r;
  CATS_ASSIGN_OR_RETURN(r.item_id, GetStringId(v, "item_id"));
  CATS_ASSIGN_OR_RETURN(r.comment_id, GetStringId(v, "comment_id"));
  CATS_ASSIGN_OR_RETURN(r.content, v.GetString("comment_content"));
  CATS_ASSIGN_OR_RETURN(r.nickname, v.GetString("nickname"));
  // userExpValue is serialized as a string (Listing 2).
  CATS_ASSIGN_OR_RETURN(std::string exp, v.GetString("userExpValue"));
  r.user_exp_value = std::strtoll(exp.c_str(), nullptr, 10);
  CATS_ASSIGN_OR_RETURN(r.client, v.GetString("client_information"));
  CATS_ASSIGN_OR_RETURN(r.date, v.GetString("date"));
  return r;
}

JsonValue ShopRecordToJson(const ShopRecord& r) {
  JsonValue v = JsonValue::Object();
  v.Set("shop_id", JsonValue::String(std::to_string(r.shop_id)));
  v.Set("shop_url", JsonValue::String(r.shop_url));
  v.Set("shop_name", JsonValue::String(r.shop_name));
  return v;
}

JsonValue ItemRecordToJson(const ItemRecord& r) {
  JsonValue v = JsonValue::Object();
  v.Set("item_id", JsonValue::String(std::to_string(r.item_id)));
  v.Set("shop_id", JsonValue::String(std::to_string(r.shop_id)));
  v.Set("item_name", JsonValue::String(r.item_name));
  v.Set("price", JsonValue::Number(r.price));
  v.Set("sales_volume", JsonValue::Int(r.sales_volume));
  v.Set("category", JsonValue::String(r.category));
  return v;
}

JsonValue CommentRecordToJson(const CommentRecord& r) {
  JsonValue v = JsonValue::Object();
  v.Set("item_id", JsonValue::String(std::to_string(r.item_id)));
  v.Set("comment_id", JsonValue::String(std::to_string(r.comment_id)));
  v.Set("comment_content", JsonValue::String(r.content));
  v.Set("nickname", JsonValue::String(r.nickname));
  v.Set("userExpValue", JsonValue::String(std::to_string(r.user_exp_value)));
  v.Set("client_information", JsonValue::String(r.client));
  v.Set("date", JsonValue::String(r.date));
  return v;
}

Result<Page> ParsePage(const std::string& body) {
  CATS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(body));
  if (!doc.is_object()) return Status::ParseError("page body is not an object");
  Page page;
  CATS_ASSIGN_OR_RETURN(int64_t p, doc.GetInt("page"));
  CATS_ASSIGN_OR_RETURN(int64_t tp, doc.GetInt("total_pages"));
  page.page = static_cast<size_t>(p);
  page.total_pages = static_cast<size_t>(tp);
  page.has_more = page.page + 1 < page.total_pages;
  const JsonValue* data = doc.Get("data");
  if (data == nullptr || !data->is_array()) {
    return Status::ParseError("page body has no data array");
  }
  page.data.reserve(data->size());
  for (size_t i = 0; i < data->size(); ++i) page.data.push_back(data->at(i));
  return page;
}

}  // namespace cats::collect
