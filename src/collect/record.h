#ifndef CATS_COLLECT_RECORD_H_
#define CATS_COLLECT_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace cats::collect {

/// Public shop record as scraped from the platform (paper §IV-A step 1).
struct ShopRecord {
  uint64_t shop_id = 0;
  std::string shop_url;
  std::string shop_name;
};

/// Public item record (§IV-A step 2). `shop_id` records which shop page
/// the item was scraped from.
struct ItemRecord {
  uint64_t item_id = 0;
  uint64_t shop_id = 0;
  std::string item_name;
  double price = 0.0;
  int64_t sales_volume = 0;
  std::string category;
};

/// Public comment record (§IV-A step 3, Listing 2).
struct CommentRecord {
  uint64_t item_id = 0;
  uint64_t comment_id = 0;
  std::string content;
  std::string nickname;
  int64_t user_exp_value = 0;
  std::string client;     // "Web", "Android", "iPhone", "WeChat"
  std::string date;
};

/// Parsers from one JSON object (an element of a page's "data" array).
Result<ShopRecord> ParseShopRecord(const JsonValue& v);
Result<ItemRecord> ParseItemRecord(const JsonValue& v);
Result<CommentRecord> ParseCommentRecord(const JsonValue& v);

/// Serializers (JSONL store format).
JsonValue ShopRecordToJson(const ShopRecord& r);
JsonValue ItemRecordToJson(const ItemRecord& r);
JsonValue CommentRecordToJson(const CommentRecord& r);

/// A paginated API response, normalized to a canonical view regardless of
/// the platform's pagination dialect (page-number, offset/limit or cursor
/// chain — see collect/normalizer.h). Canonically
/// {"page":K,"total_pages":N,"data":[...]}.
struct Page {
  size_t page = 0;
  /// Meaningful for counted styles; cursor-token platforms never report a
  /// total and get a synthetic lower bound. The crawler's continuation
  /// decision is `has_more`, not this.
  size_t total_pages = 0;
  /// Whether the walk has at least one more page after this one.
  bool has_more = false;
  std::vector<JsonValue> data;
};

/// Canonical-dialect page parser (SchemaNormalizer generalizes this to any
/// platform profile).
Result<Page> ParsePage(const std::string& body);

}  // namespace cats::collect

#endif  // CATS_COLLECT_RECORD_H_
