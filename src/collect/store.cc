#include "collect/store.h"

#include <fstream>

namespace cats::collect {

bool DataStore::AddShop(ShopRecord record) {
  if (!shop_ids_.insert(record.shop_id).second) {
    ++duplicates_dropped_;
    return false;
  }
  shops_.push_back(std::move(record));
  return true;
}

bool DataStore::AddItem(ItemRecord record) {
  auto [it, inserted] = item_index_.emplace(record.item_id, items_.size());
  if (!inserted) {
    ++duplicates_dropped_;
    return false;
  }
  CollectedItem ci;
  ci.item = std::move(record);
  shop_item_index_[ci.item.shop_id].push_back(items_.size());
  items_.push_back(std::move(ci));
  return true;
}

bool DataStore::AddComment(CommentRecord record) {
  if (!comment_ids_.insert(record.comment_id).second) {
    ++duplicates_dropped_;
    return false;
  }
  auto it = item_index_.find(record.item_id);
  if (it == item_index_.end()) {
    // Comment for an item we never collected; keep the store consistent by
    // dropping it (counted as a duplicate-style drop).
    ++duplicates_dropped_;
    comment_ids_.erase(record.comment_id);
    return false;
  }
  items_[it->second].comments.push_back(std::move(record));
  ++num_comments_;
  return true;
}

const CollectedItem* DataStore::FindItem(uint64_t item_id) const {
  auto it = item_index_.find(item_id);
  return it == item_index_.end() ? nullptr : &items_[it->second];
}

const std::vector<size_t>& DataStore::ItemIndicesOfShop(
    uint64_t shop_id) const {
  static const std::vector<size_t> kEmpty;
  auto it = shop_item_index_.find(shop_id);
  return it == shop_item_index_.end() ? kEmpty : it->second;
}

Status DataStore::SaveJsonl(const std::string& dir) const {
  {
    std::ofstream out(dir + "/shops.jsonl", std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open shops.jsonl");
    for (const ShopRecord& s : shops_) {
      out << ShopRecordToJson(s).Serialize() << "\n";
    }
    if (!out.good()) return Status::IoError("write failed: shops.jsonl");
  }
  {
    std::ofstream out(dir + "/items.jsonl", std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open items.jsonl");
    for (const CollectedItem& ci : items_) {
      out << ItemRecordToJson(ci.item).Serialize() << "\n";
    }
    if (!out.good()) return Status::IoError("write failed: items.jsonl");
  }
  {
    std::ofstream out(dir + "/comments.jsonl", std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open comments.jsonl");
    for (const CollectedItem& ci : items_) {
      for (const CommentRecord& c : ci.comments) {
        out << CommentRecordToJson(c).Serialize() << "\n";
      }
    }
    if (!out.good()) return Status::IoError("write failed: comments.jsonl");
  }
  return Status::OK();
}

Result<DataStore> DataStore::LoadJsonl(const std::string& dir) {
  DataStore store;
  auto load_lines = [](const std::string& path,
                       auto&& per_line) -> Status {
    std::ifstream in(path);
    if (!in.is_open()) return Status::IoError("cannot open: " + path);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      CATS_ASSIGN_OR_RETURN(JsonValue v, JsonValue::Parse(line));
      CATS_RETURN_NOT_OK(per_line(v));
    }
    return Status::OK();
  };

  CATS_RETURN_NOT_OK(load_lines(dir + "/shops.jsonl", [&](const JsonValue& v) {
    CATS_ASSIGN_OR_RETURN(ShopRecord r, ParseShopRecord(v));
    store.AddShop(std::move(r));
    return Status::OK();
  }));
  CATS_RETURN_NOT_OK(load_lines(dir + "/items.jsonl", [&](const JsonValue& v) {
    CATS_ASSIGN_OR_RETURN(ItemRecord r, ParseItemRecord(v));
    store.AddItem(std::move(r));
    return Status::OK();
  }));
  CATS_RETURN_NOT_OK(
      load_lines(dir + "/comments.jsonl", [&](const JsonValue& v) {
        CATS_ASSIGN_OR_RETURN(CommentRecord r, ParseCommentRecord(v));
        store.AddComment(std::move(r));
        return Status::OK();
      }));
  return store;
}

}  // namespace cats::collect
