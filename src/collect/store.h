#ifndef CATS_COLLECT_STORE_H_
#define CATS_COLLECT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collect/record.h"
#include "util/result.h"
#include "util/status.h"

namespace cats::collect {

/// An item with all its collected comments — the unit the feature extractor
/// consumes.
struct CollectedItem {
  ItemRecord item;
  std::vector<CommentRecord> comments;
};

/// In-memory store for crawled public data, with duplicate filtering (the
/// paper's collector "can filter the noisy data, e.g. duplicated data
/// records") and JSONL persistence.
class DataStore {
 public:
  DataStore() = default;

  /// Each Add returns true if the record was new (false = duplicate drop).
  bool AddShop(ShopRecord record);
  bool AddItem(ItemRecord record);
  bool AddComment(CommentRecord record);

  const std::vector<ShopRecord>& shops() const { return shops_; }
  const std::vector<CollectedItem>& items() const { return items_; }

  /// Mutable access for pipeline post-processing.
  std::vector<CollectedItem>& mutable_items() { return items_; }

  const CollectedItem* FindItem(uint64_t item_id) const;

  /// Indices into items() of the items collected from `shop_id`, in
  /// insertion order. Lets a resumed crawl revisit a shop's items without
  /// scanning the whole store. Empty vector for unknown shops.
  const std::vector<size_t>& ItemIndicesOfShop(uint64_t shop_id) const;

  size_t num_comments() const { return num_comments_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

  /// Persists to three JSONL files in `dir`: shops.jsonl, items.jsonl,
  /// comments.jsonl. The directory must exist.
  Status SaveJsonl(const std::string& dir) const;
  static Result<DataStore> LoadJsonl(const std::string& dir);

 private:
  std::vector<ShopRecord> shops_;
  std::vector<CollectedItem> items_;
  std::unordered_map<uint64_t, size_t> item_index_;
  std::unordered_map<uint64_t, std::vector<size_t>> shop_item_index_;
  std::unordered_set<uint64_t> shop_ids_;
  std::unordered_set<uint64_t> comment_ids_;
  size_t num_comments_ = 0;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace cats::collect

#endif  // CATS_COLLECT_STORE_H_
