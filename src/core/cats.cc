#include "core/cats.h"

#include <algorithm>
#include <fstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace cats::core {

Status Cats::BuildSemanticModel(
    const std::vector<std::string>& corpus,
    text::SegmentationDictionary dictionary,
    const std::vector<std::string>& positive_seeds,
    const std::vector<std::string>& negative_seeds,
    const std::vector<std::pair<std::string, bool>>& sentiment_corpus) {
  analyzer_ = SemanticAnalyzer(options_.semantic);
  CATS_ASSIGN_OR_RETURN(
      SemanticModel model,
      analyzer_.Build(corpus, std::move(dictionary), positive_seeds,
                      negative_seeds, sentiment_corpus));
  SetSemanticModel(std::move(model));
  return Status::OK();
}

void Cats::SetSemanticModel(SemanticModel model) {
  semantic_model_ = std::make_unique<SemanticModel>(std::move(model));
  detector_ = std::make_unique<Detector>(semantic_model_.get(),
                                         options_.detector);
}

Status Cats::TrainDetector(const std::vector<collect::CollectedItem>& items,
                           const std::vector<int>& labels) {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("build the semantic model first");
  }
  return detector_->Train(items, labels);
}

Result<DetectionReport> Cats::Detect(
    const std::vector<collect::CollectedItem>& items) const {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("build the semantic model first");
  }
  return detector_->Detect(items);
}

Status Cats::SaveModel(const std::string& dir) const {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("nothing to save");
  }
  CATS_RETURN_NOT_OK(detector_->SaveGbdt(dir + "/gbdt.model"));
  return SaveSemanticModel(*semantic_model_, dir);
}

Status Cats::LoadModel(const std::string& dir) {
  CATS_ASSIGN_OR_RETURN(SemanticModel model, LoadSemanticModel(dir));
  SetSemanticModel(std::move(model));
  return detector_->LoadPretrainedGbdt(dir + "/gbdt.model");
}

}  // namespace cats::core
