#include "core/cats.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/model_manifest.h"
#include "obs/metric_names.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace cats::core {
namespace {

/// Every file a model directory holds, in save order. The MANIFEST is
/// written last (atomically), so its presence certifies the others.
const std::vector<std::string>& ModelFiles() {
  static const std::vector<std::string>* files = new std::vector<std::string>{
      "gbdt.model",          "sentiment.model", "positive_lexicon.txt",
      "negative_lexicon.txt", "dictionary.txt",  "imputation.stats"};
  return *files;
}

/// Handles for the model-persistence metrics, resolved once per process.
struct ModelMetrics {
  obs::Counter* saves;
  obs::Counter* save_failures;
  obs::Counter* loads;
  obs::Counter* load_failures;

  static const ModelMetrics& Get() {
    static const ModelMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new ModelMetrics{
          registry.GetCounter(obs::kModelSavesTotal),
          registry.GetCounter(obs::kModelSaveFailuresTotal),
          registry.GetCounter(obs::kModelLoadsTotal),
          registry.GetCounter(obs::kModelLoadFailuresTotal)};
    }();
    return *metrics;
  }
};

}  // namespace

Status Cats::BuildSemanticModel(
    const std::vector<std::string>& corpus,
    text::SegmentationDictionary dictionary,
    const std::vector<std::string>& positive_seeds,
    const std::vector<std::string>& negative_seeds,
    const std::vector<std::pair<std::string, bool>>& sentiment_corpus) {
  analyzer_ = SemanticAnalyzer(options_.semantic);
  CATS_ASSIGN_OR_RETURN(
      SemanticModel model,
      analyzer_.Build(corpus, std::move(dictionary), positive_seeds,
                      negative_seeds, sentiment_corpus));
  SetSemanticModel(std::move(model));
  return Status::OK();
}

void Cats::SetSemanticModel(SemanticModel model) {
  semantic_model_ = std::make_unique<SemanticModel>(std::move(model));
  // Hand-assembled models (tests, tools) arrive uncompiled; compile here so
  // every detector behind the facade gets the token-id hot path.
  if (semantic_model_->token_index == nullptr) semantic_model_->Compile();
  detector_ = std::make_unique<Detector>(semantic_model_.get(),
                                         options_.detector);
}

Status Cats::TrainDetector(const std::vector<collect::CollectedItem>& items,
                           const std::vector<int>& labels) {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("build the semantic model first");
  }
  return detector_->Train(items, labels);
}

Status Cats::WarmStartDetector(const std::vector<collect::CollectedItem>& items,
                               const std::vector<int>& labels,
                               size_t extra_rounds) {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("build the semantic model first");
  }
  return detector_->WarmStartTrain(items, labels, extra_rounds);
}

Result<DetectionReport> Cats::Detect(
    const std::vector<collect::CollectedItem>& items) const {
  if (!has_semantic_model()) {
    return Status::FailedPrecondition("build the semantic model first");
  }
  return detector_->Detect(items);
}

Status Cats::SaveModel(const std::string& dir) const {
  Status st = [&]() -> Status {
    if (!has_semantic_model()) {
      return Status::FailedPrecondition("nothing to save");
    }
    // Every file lands via temp + rename; the MANIFEST — checksums of the
    // bytes just written — goes last, so a crash at any point leaves either
    // a fully verified model or one LoadModel rejects loudly.
    CATS_RETURN_NOT_OK(detector_->SaveGbdt(dir + "/gbdt.model"));
    CATS_RETURN_NOT_OK(SaveSemanticModel(*semantic_model_, dir));
    CATS_RETURN_NOT_OK(detector_->SaveImputation(dir + "/imputation.stats"));
    CATS_ASSIGN_OR_RETURN(ModelManifest manifest,
                          BuildManifest(dir, ModelFiles()));
    return WriteManifest(dir, manifest);
  }();
  const ModelMetrics& metrics = ModelMetrics::Get();
  (st.ok() ? metrics.saves : metrics.save_failures)->Increment();
  return st;
}

Status Cats::LoadModel(const std::string& dir) {
  Status st = [&]() -> Status {
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      // One clear error naming the dir, not a cascade of per-file failures.
      return Status::NotFound("model directory does not exist: " + dir);
    }
    CATS_ASSIGN_OR_RETURN(ModelManifest manifest, ReadManifest(dir));
    CATS_RETURN_NOT_OK(VerifyManifest(dir, manifest));
    CATS_ASSIGN_OR_RETURN(SemanticModel model, LoadSemanticModel(dir));
    SetSemanticModel(std::move(model));
    CATS_RETURN_NOT_OK(detector_->LoadPretrainedGbdt(dir + "/gbdt.model"));
    return detector_->LoadImputation(dir + "/imputation.stats");
  }();
  const ModelMetrics& metrics = ModelMetrics::Get();
  (st.ok() ? metrics.loads : metrics.load_failures)->Increment();
  return st;
}

}  // namespace cats::core
