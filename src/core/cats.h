#ifndef CATS_CORE_CATS_H_
#define CATS_CORE_CATS_H_

#include <memory>
#include <string>
#include <vector>

#include "collect/crawler.h"
#include "collect/store.h"
#include "core/detector.h"
#include "core/semantic_analyzer.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace cats::core {

struct CatsOptions {
  SemanticAnalyzerOptions semantic;
  DetectorOptions detector;
};

/// The CATS system facade (paper Fig 6): data collector -> semantic
/// analyzer -> feature extractor -> detector. Typical use:
///
///   cats::core::Cats cats(options);
///   cats.BuildSemanticModel(corpus, dictionary, pos_seeds, neg_seeds,
///                           sentiment_corpus);            // once, Taobao
///   cats.TrainDetector(d0_items, d0_labels);              // once, D0
///   auto report = cats.Detect(eplatform_store.items());   // any platform
///
/// The semantic model and the trained detector are platform-independent;
/// only the crawled DataStore changes per platform.
class Cats {
 public:
  explicit Cats(CatsOptions options) : options_(options) {}
  Cats() : Cats(CatsOptions{}) {}

  /// Non-copyable (owns the semantic model the detector points into).
  Cats(const Cats&) = delete;
  Cats& operator=(const Cats&) = delete;

  /// Trains word2vec + lexicons + sentiment from a comment corpus.
  Status BuildSemanticModel(
      const std::vector<std::string>& corpus,
      text::SegmentationDictionary dictionary,
      const std::vector<std::string>& positive_seeds,
      const std::vector<std::string>& negative_seeds,
      const std::vector<std::pair<std::string, bool>>& sentiment_corpus);

  /// Installs an externally built semantic model (e.g. loaded from disk).
  void SetSemanticModel(SemanticModel model);

  /// Trains the detector's classifier on labeled items.
  Status TrainDetector(const std::vector<collect::CollectedItem>& items,
                       const std::vector<int>& labels);

  /// Warm-start continuation on a recent labeled window: appends
  /// `extra_rounds` boosting rounds to the already-trained (or loaded)
  /// Gbdt — the drift-recovery retrain (Detector::WarmStartTrain).
  Status WarmStartDetector(const std::vector<collect::CollectedItem>& items,
                           const std::vector<int>& labels,
                           size_t extra_rounds);

  /// Runs detection on unlabeled collected items.
  Result<DetectionReport> Detect(
      const std::vector<collect::CollectedItem>& items) const;

  /// Persists / restores the deployable state (semantic model + Gbdt +
  /// imputation marginals) under `dir`: gbdt.model, sentiment.model,
  /// positive_lexicon.txt, negative_lexicon.txt, dictionary.txt,
  /// imputation.stats, plus a MANIFEST with per-file CRC32s. `dir` must
  /// exist. Every write is atomic (temp + rename) and the MANIFEST goes
  /// last, so a crash mid-save never yields a loadable-but-wrong model;
  /// LoadModel verifies every checksum before parsing anything and returns
  /// typed errors (NotFound / Corruption / FailedPrecondition / ParseError)
  /// for missing, truncated, bit-flipped or version-skewed model dirs.
  Status SaveModel(const std::string& dir) const;
  Status LoadModel(const std::string& dir);

  /// Observability: every pipeline stage registers its metrics in the
  /// process-wide obs::MetricsRegistry (names in docs/METRICS.md). These
  /// helpers expose that registry through the facade so operators can
  /// snapshot/dump without reaching into src/obs directly.
  static obs::MetricsRegistry& metrics() {
    return obs::MetricsRegistry::Global();
  }
  static obs::MetricsSnapshot MetricsSnapshot() {
    return metrics().Snapshot();
  }
  /// JSON/table dumps of the current snapshot (see MetricsRegistry).
  static std::string DumpMetricsJson() { return metrics().DumpJson(); }
  static std::string DumpMetricsTable() { return metrics().DumpTable(); }

  bool has_semantic_model() const { return semantic_model_ != nullptr; }
  const SemanticModel& semantic_model() const { return *semantic_model_; }
  const Detector& detector() const { return *detector_; }
  Detector* mutable_detector() { return detector_.get(); }
  const SemanticAnalyzer& analyzer() const { return analyzer_; }

 private:
  CatsOptions options_;
  SemanticAnalyzer analyzer_{};
  std::unique_ptr<SemanticModel> semantic_model_;
  std::unique_ptr<Detector> detector_;
};

}  // namespace cats::core

#endif  // CATS_CORE_CATS_H_
