#include "core/detector.h"

#include <algorithm>
#include <utility>

namespace cats::core {

bool DetectionReport::Contains(uint64_t item_id) const {
  for (const Detection& d : detections) {
    if (d.item_id == item_id) return true;
  }
  return false;
}

Detector::Detector(const SemanticModel* model, DetectorOptions options)
    : options_(options),
      extractor_(model),
      filter_(options.rules),
      classifier_(std::make_unique<ml::Gbdt>(options.gbdt)) {}

void Detector::SetClassifier(std::unique_ptr<ml::Classifier> classifier) {
  classifier_ = std::move(classifier);
  trained_ = false;
}

Status Detector::Train(const std::vector<collect::CollectedItem>& items,
                       const std::vector<int>& labels) {
  CATS_ASSIGN_OR_RETURN(ml::Dataset dataset,
                        extractor_.BuildDataset(items, labels));
  CATS_RETURN_NOT_OK(classifier_->Fit(dataset));
  trained_ = true;
  return Status::OK();
}

Result<double> Detector::CalibrateThreshold(
    const std::vector<collect::CollectedItem>& validation_items,
    const std::vector<int>& validation_labels, double target_precision) {
  if (!trained_) {
    return Status::FailedPrecondition("train the classifier first");
  }
  if (validation_items.size() != validation_labels.size() ||
      validation_items.empty()) {
    return Status::InvalidArgument("bad validation set");
  }
  std::vector<FeatureVector> features = extractor_.ExtractAll(validation_items);

  // Collect (score, label) for items the rule filter would keep — the
  // classifier only ever sees those.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(validation_items.size());
  for (size_t i = 0; i < validation_items.size(); ++i) {
    if (filter_.Evaluate(validation_items[i], features[i]) !=
        FilterReason::kKept) {
      continue;
    }
    scored.emplace_back(classifier_->PredictProba(features[i].data()),
                        validation_labels[i]);
  }
  if (scored.empty()) {
    return Status::FailedPrecondition("rule filter removed every item");
  }
  std::sort(scored.begin(), scored.end());

  // Sweep thresholds at every distinct score (predict fraud for >= t).
  size_t total_pos = 0;
  for (const auto& [score, label] : scored) total_pos += label;
  double best_reaching = -1.0, best_f1_threshold = 0.5, best_f1 = -1.0;
  size_t tp = total_pos, fp = scored.size() - total_pos;
  size_t i = 0;
  while (i < scored.size()) {
    double t = scored[i].first;  // classify >= t as fraud
    double precision = (tp + fp) > 0
                           ? static_cast<double>(tp) / (tp + fp)
                           : 0.0;
    double recall =
        total_pos > 0 ? static_cast<double>(tp) / total_pos : 0.0;
    double f1 = (precision + recall) > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    if (precision >= target_precision && best_reaching < 0) {
      best_reaching = t;
    }
    if (f1 > best_f1) {
      best_f1 = f1;
      best_f1_threshold = t;
    }
    // Advance past all items with this score; they flip to "normal".
    while (i < scored.size() && scored[i].first == t) {
      if (scored[i].second == 1) {
        --tp;
      } else {
        --fp;
      }
      ++i;
    }
  }
  double chosen = best_reaching >= 0 ? best_reaching : best_f1_threshold;
  options_.decision_threshold = chosen;
  return chosen;
}

Status Detector::LoadPretrainedGbdt(const std::string& path) {
  CATS_ASSIGN_OR_RETURN(ml::Gbdt model, ml::Gbdt::Load(path));
  classifier_ = std::make_unique<ml::Gbdt>(std::move(model));
  trained_ = true;
  return Status::OK();
}

Status Detector::SaveGbdt(const std::string& path) const {
  const auto* gbdt = dynamic_cast<const ml::Gbdt*>(classifier_.get());
  if (gbdt == nullptr) {
    return Status::FailedPrecondition(
        "current classifier is not a Gbdt; cannot save");
  }
  return gbdt->Save(path);
}

Result<DetectionReport> Detector::Detect(
    const std::vector<collect::CollectedItem>& items) const {
  if (!trained_) {
    return Status::FailedPrecondition("detector classifier is not trained");
  }
  DetectionReport report;
  report.items_scanned = items.size();

  std::vector<FeatureVector> features = extractor_.ExtractAll(items);
  for (size_t i = 0; i < items.size(); ++i) {
    switch (filter_.Evaluate(items[i], features[i])) {
      case FilterReason::kLowSales:
        ++report.items_filtered_low_sales;
        continue;
      case FilterReason::kNoPositiveSignal:
        ++report.items_filtered_no_signal;
        continue;
      case FilterReason::kNoComments:
        ++report.items_filtered_no_comments;
        continue;
      case FilterReason::kKept:
        break;
    }
    ++report.items_classified;
    double score = classifier_->PredictProba(features[i].data());
    if (score >= options_.decision_threshold) {
      report.detections.push_back(Detection{items[i].item.item_id, score});
    }
  }
  return report;
}

Result<std::vector<double>> Detector::ScoreFeatures(
    const std::vector<FeatureVector>& features) const {
  if (!trained_) {
    return Status::FailedPrecondition("detector classifier is not trained");
  }
  std::vector<double> scores;
  scores.reserve(features.size());
  for (const FeatureVector& f : features) {
    scores.push_back(classifier_->PredictProba(f.data()));
  }
  return scores;
}

}  // namespace cats::core
