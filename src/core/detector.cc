#include "core/detector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/csv.h"

namespace cats::core {
namespace {

/// Handles for the detector metrics, resolved once per process.
struct DetectorMetrics {
  obs::Counter* items_scanned;
  obs::Counter* items_rule_filtered;
  obs::Counter* filtered_low_sales;
  obs::Counter* filtered_no_signal;
  obs::Counter* filtered_no_comments;
  obs::Counter* items_classified;
  obs::Counter* items_flagged;
  obs::Counter* items_quarantined;
  obs::Counter* items_degraded;
  obs::Counter* quarantine_absurd_price;
  obs::Counter* quarantine_corrupt_text;
  obs::Counter* quarantine_oversized_comment;
  obs::Counter* quarantine_duplicate_comment_ids;
  obs::Counter* quarantine_mismatched_item_id;
  obs::Counter* degraded_missing_comments;
  obs::Counter* degraded_missing_orders;
  obs::LatencyHistogram* score_histogram;
  obs::LatencyHistogram* detect_latency;
  obs::LatencyHistogram* train_latency;

  static const DetectorMetrics& Get() {
    static const DetectorMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new DetectorMetrics{
          registry.GetCounter(obs::kDetectorItemsScannedTotal),
          registry.GetCounter(obs::kDetectorItemsRuleFilteredTotal),
          registry.GetCounter(obs::kDetectorFilteredLowSalesTotal),
          registry.GetCounter(obs::kDetectorFilteredNoSignalTotal),
          registry.GetCounter(obs::kDetectorFilteredNoCommentsTotal),
          registry.GetCounter(obs::kDetectorItemsClassifiedTotal),
          registry.GetCounter(obs::kDetectorItemsFlaggedTotal),
          registry.GetCounter(obs::kDetectorItemsQuarantinedTotal),
          registry.GetCounter(obs::kDetectorItemsDegradedTotal),
          registry.GetCounter(obs::kDetectorQuarantineAbsurdPriceTotal),
          registry.GetCounter(obs::kDetectorQuarantineCorruptTextTotal),
          registry.GetCounter(obs::kDetectorQuarantineOversizedCommentTotal),
          registry.GetCounter(
              obs::kDetectorQuarantineDuplicateCommentIdsTotal),
          registry.GetCounter(obs::kDetectorQuarantineMismatchedItemIdTotal),
          registry.GetCounter(obs::kDetectorDegradedMissingCommentsTotal),
          registry.GetCounter(obs::kDetectorDegradedMissingOrdersTotal),
          registry.GetHistogram(
              obs::kDetectorScoreHistogram,
              obs::LatencyHistogram::UniformBounds(0.0, 1.0, 20)),
          registry.GetLatencyHistogram(obs::kDetectorDetectLatencyMicros),
          registry.GetLatencyHistogram(obs::kDetectorTrainLatencyMicros)};
    }();
    return *metrics;
  }
};

}  // namespace

bool DetectionReport::Contains(uint64_t item_id) const {
  for (const Detection& d : detections) {
    if (d.item_id == item_id) return true;
  }
  return false;
}

Detector::Detector(const SemanticModel* model, DetectorOptions options)
    : options_(options),
      extractor_(model, options.extractor),
      filter_(options.rules),
      validator_(options.validation),
      classifier_(std::make_unique<ml::Gbdt>(options.gbdt)) {}

void Detector::SetClassifier(std::unique_ptr<ml::Classifier> classifier) {
  classifier_ = std::move(classifier);
  trained_ = false;
}

Status Detector::StageTrainingSet(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<int>& labels, ml::Dataset* dataset,
    std::array<double, kNumFeatures>* clean_sum, size_t* clean_rows) const {
  if (items.size() != labels.size()) {
    return Status::InvalidArgument("items/labels size mismatch");
  }
  std::vector<FeatureVector> features = extractor_.ExtractAll(items);

  // Poison records never train the classifier; clean records additionally
  // contribute to the imputation marginals degraded records are scored
  // from. On a curated training set (no poison, no missing fields) the
  // resulting dataset — and therefore the model — is identical to training
  // without validation.
  std::vector<float> row(kNumFeatures);
  clean_sum->fill(0.0);
  *clean_rows = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    RecordValidation v;
    if (options_.validate_records) v = validator_.Validate(items[i]);
    if (v.verdict == RecordVerdict::kPoison) continue;
    row.assign(features[i].begin(), features[i].end());
    CATS_RETURN_NOT_OK(dataset->AddRow(row, labels[i]));
    if (v.verdict == RecordVerdict::kClean) {
      for (size_t k = 0; k < kNumFeatures; ++k) {
        (*clean_sum)[k] += features[i][k];
      }
      ++*clean_rows;
    }
  }
  if (dataset->num_rows() == 0) {
    return Status::InvalidArgument(
        "no trainable records (every item was poison)");
  }
  return Status::OK();
}

void Detector::RefreshImputation(
    const std::array<double, kNumFeatures>& clean_sum, size_t clean_rows) {
  if (clean_rows == 0) return;
  for (size_t k = 0; k < kNumFeatures; ++k) {
    imputed_features_[k] =
        static_cast<float>(clean_sum[k] / static_cast<double>(clean_rows));
  }
}

Status Detector::Train(const std::vector<collect::CollectedItem>& items,
                       const std::vector<int>& labels) {
  obs::ScopedTimer train_timer(DetectorMetrics::Get().train_latency);
  ml::Dataset dataset(FeatureExtractor::FeatureNames());
  std::array<double, kNumFeatures> clean_sum{};
  size_t clean_rows = 0;
  CATS_RETURN_NOT_OK(
      StageTrainingSet(items, labels, &dataset, &clean_sum, &clean_rows));
  CATS_RETURN_NOT_OK(classifier_->Fit(dataset));
  RefreshImputation(clean_sum, clean_rows);
  trained_ = true;
  return Status::OK();
}

Status Detector::WarmStartTrain(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<int>& labels, size_t extra_rounds) {
  obs::ScopedTimer train_timer(DetectorMetrics::Get().train_latency);
  if (!trained_) {
    return Status::FailedPrecondition(
        "train or load a model before warm-starting");
  }
  auto* gbdt = dynamic_cast<ml::Gbdt*>(classifier_.get());
  if (gbdt == nullptr) {
    return Status::FailedPrecondition(
        "current classifier is not a Gbdt; cannot warm-start");
  }
  ml::Dataset dataset(FeatureExtractor::FeatureNames());
  std::array<double, kNumFeatures> clean_sum{};
  size_t clean_rows = 0;
  CATS_RETURN_NOT_OK(
      StageTrainingSet(items, labels, &dataset, &clean_sum, &clean_rows));
  CATS_RETURN_NOT_OK(gbdt->WarmStart(dataset, extra_rounds));
  // The imputation marginals follow the recent window — that's the
  // distribution degraded records will be scored against from now on.
  RefreshImputation(clean_sum, clean_rows);
  return Status::OK();
}

Result<double> Detector::CalibrateThreshold(
    const std::vector<collect::CollectedItem>& validation_items,
    const std::vector<int>& validation_labels, double target_precision) {
  if (!trained_) {
    return Status::FailedPrecondition("train the classifier first");
  }
  if (validation_items.size() != validation_labels.size() ||
      validation_items.empty()) {
    return Status::InvalidArgument("bad validation set");
  }
  std::vector<FeatureVector> features = extractor_.ExtractAll(validation_items);

  // Collect (score, label) for items the rule filter would keep — the
  // classifier only ever sees those.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(validation_items.size());
  for (size_t i = 0; i < validation_items.size(); ++i) {
    if (filter_.Evaluate(validation_items[i], features[i]) !=
        FilterReason::kKept) {
      continue;
    }
    scored.emplace_back(classifier_->PredictProba(features[i].data()),
                        validation_labels[i]);
  }
  if (scored.empty()) {
    return Status::FailedPrecondition("rule filter removed every item");
  }
  std::sort(scored.begin(), scored.end());

  // Sweep thresholds at every distinct score (predict fraud for >= t).
  size_t total_pos = 0;
  for (const auto& [score, label] : scored) total_pos += label;
  double best_reaching = -1.0, best_f1_threshold = 0.5, best_f1 = -1.0;
  size_t tp = total_pos, fp = scored.size() - total_pos;
  size_t i = 0;
  while (i < scored.size()) {
    double t = scored[i].first;  // classify >= t as fraud
    double precision = (tp + fp) > 0
                           ? static_cast<double>(tp) / (tp + fp)
                           : 0.0;
    double recall =
        total_pos > 0 ? static_cast<double>(tp) / total_pos : 0.0;
    double f1 = (precision + recall) > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    if (precision >= target_precision && best_reaching < 0) {
      best_reaching = t;
    }
    if (f1 > best_f1) {
      best_f1 = f1;
      best_f1_threshold = t;
    }
    // Advance past all items with this score; they flip to "normal".
    while (i < scored.size() && scored[i].first == t) {
      if (scored[i].second == 1) {
        --tp;
      } else {
        --fp;
      }
      ++i;
    }
  }
  double chosen = best_reaching >= 0 ? best_reaching : best_f1_threshold;
  options_.decision_threshold = chosen;
  return chosen;
}

Status Detector::LoadPretrainedGbdt(const std::string& path) {
  CATS_ASSIGN_OR_RETURN(ml::Gbdt model, ml::Gbdt::Load(path));
  classifier_ = std::make_unique<ml::Gbdt>(std::move(model));
  trained_ = true;
  return Status::OK();
}

Status Detector::SaveGbdt(const std::string& path) const {
  const auto* gbdt = dynamic_cast<const ml::Gbdt*>(classifier_.get());
  if (gbdt == nullptr) {
    return Status::FailedPrecondition(
        "current classifier is not a Gbdt; cannot save");
  }
  return gbdt->Save(path);
}

Status Detector::SaveImputation(const std::string& path) const {
  std::ostringstream out;
  out << "cats-imputation-v1\n" << kNumFeatures << "\n";
  char buf[32];
  for (size_t k = 0; k < kNumFeatures; ++k) {
    // %.9g round-trips any float exactly, so save -> load -> save is
    // bit-identical (the MANIFEST round-trip test depends on that).
    std::snprintf(buf, sizeof(buf), "%.9g", imputed_features_[k]);
    out << buf << (k + 1 < kNumFeatures ? " " : "\n");
  }
  return WriteStringToFileAtomic(path, out.str());
}

Status Detector::LoadImputation(const std::string& path) {
  CATS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::istringstream in(content);
  std::string magic;
  if (!(in >> magic) || magic != "cats-imputation-v1") {
    return Status::ParseError("bad imputation stats header in " + path);
  }
  size_t count = 0;
  if (!(in >> count) || count != kNumFeatures) {
    return Status::ParseError("imputation stats feature count mismatch in " +
                              path);
  }
  FeatureVector values{};
  for (size_t k = 0; k < kNumFeatures; ++k) {
    if (!(in >> values[k])) {
      return Status::ParseError("truncated imputation stats in " + path);
    }
    if (!std::isfinite(values[k])) {
      return Status::ParseError("non-finite imputation value in " + path);
    }
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage in imputation stats: " + path);
  }
  imputed_features_ = values;
  return Status::OK();
}

Result<DetectionReport> Detector::Detect(
    const std::vector<collect::CollectedItem>& items) const {
  if (!trained_) {
    return Status::FailedPrecondition("detector classifier is not trained");
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  DetectionReport report;

  // Every stage scope closes before `return report` so the RAII writes land
  // while the trace still lives at its final address. The whole input runs
  // as one staged batch — the streaming plane runs the same two methods
  // over micro-batches and merges.
  {
    obs::StageTrace detect_stage(&report.trace, "detect",
                                 metrics.detect_latency);
    detect_stage.AddItems(items.size());
    StagedBatch staged = StageForScoring(items, &report.trace);
    obs::StageTrace classify_stage(&report.trace, "rule_filter_and_classify");
    ScoreStagedBatch(staged, &report);
    classify_stage.AddItems(report.items_classified);
  }
  MirrorReportMetrics(report);
  return report;
}

StagedBatch Detector::StageForScoring(
    const std::vector<collect::CollectedItem>& items,
    obs::PipelineTrace* trace, const FeatureExtractor* extractor) const {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  StagedBatch batch;
  batch.items_scanned = items.size();

  // Triage first: poison records are quarantined and never scored;
  // degraded records bypass stage 1 (their missing fields are exactly
  // what the rules key on) and are scored from imputed features.
  std::vector<RecordValidation> validations(items.size());
  if (options_.validate_records) {
    std::optional<obs::StageTrace> validate_stage;
    if (trace != nullptr) validate_stage.emplace(trace, "validate");
    for (size_t i = 0; i < items.size(); ++i) {
      validations[i] = validator_.Validate(items[i]);
      if (validations[i].verdict != RecordVerdict::kPoison) continue;
      batch.quarantined.push_back(
          QuarantineEntry{items[i].item.item_id, validations[i].issues});
      const RecordIssue issues = validations[i].issues;
      if (HasIssue(issues, RecordIssue::kAbsurdPrice)) {
        metrics.quarantine_absurd_price->Increment();
      }
      if (HasIssue(issues, RecordIssue::kCorruptCommentText)) {
        metrics.quarantine_corrupt_text->Increment();
      }
      if (HasIssue(issues, RecordIssue::kOversizedComment)) {
        metrics.quarantine_oversized_comment->Increment();
      }
      if (HasIssue(issues, RecordIssue::kDuplicateCommentIds)) {
        metrics.quarantine_duplicate_comment_ids->Increment();
      }
      if (HasIssue(issues, RecordIssue::kMismatchedItemId)) {
        metrics.quarantine_mismatched_item_id->Increment();
      }
    }
    if (validate_stage.has_value()) validate_stage->AddItems(items.size());
  }

  std::vector<FeatureVector> features;
  {
    std::optional<obs::StageTrace> extract_stage;
    if (trace != nullptr) extract_stage.emplace(trace, "extract_features");
    features = (extractor != nullptr ? *extractor : extractor_)
                   .ExtractAll(items);
    if (extract_stage.has_value()) extract_stage->AddItems(items.size());
  }

  // Route every non-poison item: degraded ones straight to scoring (from
  // imputed features when their comments are missing), the rest through
  // the stage-1 rules. Survivors' rows land in one contiguous buffer so
  // the scorer can classify the whole batch in a single
  // PredictProbaBatch call.
  batch.pending.reserve(items.size());
  batch.rows.reserve(items.size() * kNumFeatures);
  for (size_t i = 0; i < items.size(); ++i) {
    if (validations[i].verdict == RecordVerdict::kPoison) continue;
    if (validations[i].verdict == RecordVerdict::kDegraded) {
      const RecordIssue issues = validations[i].issues;
      // Commentless items have nothing to extract — substitute the
      // training-set marginals; missing-orders items keep their own
      // comment-derived features.
      const FeatureVector& row =
          HasIssue(issues, RecordIssue::kMissingComments) ? imputed_features_
                                                          : features[i];
      ++batch.degraded;
      if (HasIssue(issues, RecordIssue::kMissingComments)) {
        metrics.degraded_missing_comments->Increment();
      }
      if (HasIssue(issues, RecordIssue::kMissingOrders)) {
        metrics.degraded_missing_orders->Increment();
      }
      batch.pending.push_back(
          StagedBatch::PendingRow{items[i].item.item_id, /*degraded=*/true});
      batch.rows.insert(batch.rows.end(), row.begin(), row.end());
      continue;
    }
    switch (filter_.Evaluate(items[i], features[i])) {
      case FilterReason::kLowSales:
        ++batch.filtered_low_sales;
        metrics.filtered_low_sales->Increment();
        continue;
      case FilterReason::kNoPositiveSignal:
        ++batch.filtered_no_signal;
        metrics.filtered_no_signal->Increment();
        continue;
      case FilterReason::kNoComments:
        ++batch.filtered_no_comments;
        metrics.filtered_no_comments->Increment();
        continue;
      case FilterReason::kKept:
        break;
    }
    batch.pending.push_back(
        StagedBatch::PendingRow{items[i].item.item_id, /*degraded=*/false});
    batch.rows.insert(batch.rows.end(), features[i].begin(),
                      features[i].end());
  }
  return batch;
}

void Detector::ScoreStagedBatch(const StagedBatch& batch,
                                DetectionReport* report) const {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  report->items_scanned += batch.items_scanned;
  report->items_quarantined += batch.quarantined.size();
  report->quarantine.entries.insert(report->quarantine.entries.end(),
                                    batch.quarantined.begin(),
                                    batch.quarantined.end());
  report->items_filtered_low_sales += batch.filtered_low_sales;
  report->items_filtered_no_signal += batch.filtered_no_signal;
  report->items_filtered_no_comments += batch.filtered_no_comments;
  report->items_classified += batch.pending.size();
  report->items_degraded += batch.degraded;

  std::vector<double> scores = classifier_->PredictProbaBatch(
      batch.rows.data(), batch.pending.size(), kNumFeatures);
  for (size_t p = 0; p < batch.pending.size(); ++p) {
    double score = scores[p];
    metrics.score_histogram->Observe(score);
    if (score < options_.decision_threshold) continue;
    if (batch.pending[p].degraded) {
      report->degraded_detections.push_back(Detection{
          batch.pending[p].item_id, score, ScoreConfidence::kDegraded});
    } else {
      report->detections.push_back(
          Detection{batch.pending[p].item_id, score, ScoreConfidence::kFull});
    }
  }
}

void Detector::MirrorReportMetrics(const DetectionReport& report) {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.items_scanned->Increment(report.items_scanned);
  metrics.items_quarantined->Increment(report.items_quarantined);
  metrics.items_degraded->Increment(report.items_degraded);
  metrics.items_rule_filtered->Increment(report.items_scanned -
                                         report.items_classified -
                                         report.items_quarantined);
  metrics.items_classified->Increment(report.items_classified);
  metrics.items_flagged->Increment(report.detections.size() +
                                   report.degraded_detections.size());
}

Result<std::vector<double>> Detector::ScoreFeatures(
    const std::vector<FeatureVector>& features) const {
  if (!trained_) {
    return Status::FailedPrecondition("detector classifier is not trained");
  }
  if (features.empty()) return std::vector<double>{};
  // FeatureVector is a fixed-size array, so the vector is one contiguous
  // row-major block — score it as a single batch.
  return classifier_->PredictProbaBatch(features.front().data(),
                                        features.size(), kNumFeatures);
}

}  // namespace cats::core
