#ifndef CATS_CORE_DETECTOR_H_
#define CATS_CORE_DETECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/feature_extractor.h"
#include "core/record_validator.h"
#include "core/rule_filter.h"
#include "ml/classifier.h"
#include "ml/gbdt.h"
#include "obs/stage_trace.h"
#include "util/result.h"

namespace cats::core {

/// How much evidence backed a detection's score.
enum class ScoreConfidence : uint8_t {
  kFull = 0,  // scored from the item's own comments
  kDegraded,  // scored from imputed features (record was missing fields)
};

/// One flagged item in a detection report.
struct Detection {
  uint64_t item_id = 0;
  double score = 0.0;  // classifier P(fraud)
  ScoreConfidence confidence = ScoreConfidence::kFull;
};

/// Full output of a detector run. Every scanned item lands in exactly one
/// bucket: quarantined (poison), filtered by a stage-1 rule, or classified;
/// degraded items are classified (from imputed features) and additionally
/// counted in items_degraded.
struct DetectionReport {
  std::vector<Detection> detections;           // flagged as fraud
  /// Flagged items whose score rests on imputed features — reported apart
  /// from `detections` because the evidence is weaker (confidence is
  /// kDegraded); an operator reviews these, never auto-enforces.
  std::vector<Detection> degraded_detections;
  /// Poison records excluded from scoring, with typed reasons.
  Quarantine quarantine;
  size_t items_scanned = 0;
  size_t items_quarantined = 0;  // == quarantine.size()
  size_t items_degraded = 0;     // scored with kDegraded confidence
  size_t items_filtered_low_sales = 0;
  size_t items_filtered_no_signal = 0;
  size_t items_filtered_no_comments = 0;
  size_t items_classified = 0;
  /// Per-stage wall time + item counts of this run (detect > validate /
  /// extract_features / rule_filter_and_classify). The same latencies also
  /// land in the process-wide registry histograms (docs/METRICS.md).
  obs::PipelineTrace trace;

  bool Contains(uint64_t item_id) const;
};

struct DetectorOptions {
  RuleFilterOptions rules;
  double decision_threshold = 0.60;
  ml::GbdtOptions gbdt;  // used when no custom classifier is injected
  /// Extractor knobs, including the token-id/string hot-path toggle
  /// (FeatureExtractorOptions::use_token_ids) the equivalence tests flip.
  FeatureExtractorOptions extractor;
  /// Thresholds for the clean/degraded/poison record triage.
  RecordValidatorOptions validation;
  /// When false, records are not validated: no quarantine, no imputation —
  /// the pre-robustness pipeline, for strict paper-replication runs.
  bool validate_records = true;
};

/// Intermediate product of the pre-scoring stages (validate -> extract ->
/// rule filter) over one slice of items. Self-contained and additive: the
/// streaming plane (pipeline::StreamingCats) stages micro-batches on
/// concurrent workers and merges them through ScoreStagedBatch in any
/// order; the sequential Detect stages the whole input as one batch. Both
/// paths therefore route every item through exactly the same code.
struct StagedBatch {
  /// One rule-filter survivor awaiting classification.
  struct PendingRow {
    uint64_t item_id = 0;
    bool degraded = false;  // scored from imputed features
  };

  size_t items_scanned = 0;
  std::vector<QuarantineEntry> quarantined;
  size_t filtered_low_sales = 0;
  size_t filtered_no_signal = 0;
  size_t filtered_no_comments = 0;
  size_t degraded = 0;  // == count of degraded PendingRows
  std::vector<PendingRow> pending;
  /// pending.size() rows of kNumFeatures floats, row-major, aligned with
  /// `pending` — the contiguous buffer PredictProbaBatch consumes.
  std::vector<float> rows;
};

/// Stage 1 + stage 2 of CATS (paper §II-B): rule filter, then a binary
/// classifier over the 11 features. Defaults to the Gbdt (the paper's
/// Xgboost choice); any ml::Classifier can be injected — "in practice, it
/// is not necessary to choose the Xgboost model".
class Detector {
 public:
  Detector(const SemanticModel* model, DetectorOptions options);
  explicit Detector(const SemanticModel* model)
      : Detector(model, DetectorOptions{}) {}

  /// Replaces the default Gbdt with a custom classifier (untrained).
  void SetClassifier(std::unique_ptr<ml::Classifier> classifier);

  /// Trains the classifier on labeled items (e.g. the D0 set).
  Status Train(const std::vector<collect::CollectedItem>& items,
               const std::vector<int>& labels);

  /// Warm-start continuation for drift recovery: appends `extra_rounds`
  /// boosting rounds to the current Gbdt, fit on a *recent* labeled window
  /// instead of the original training set (Gbdt::WarmStart). Uses the same
  /// triage as Train (poison skipped, clean rows refresh the imputation
  /// marginals to the new window's means). Requires a trained or loaded
  /// Gbdt classifier.
  Status WarmStartTrain(const std::vector<collect::CollectedItem>& items,
                        const std::vector<int>& labels, size_t extra_rounds);

  /// Picks the detection threshold on a labeled validation set: the lowest
  /// score threshold whose validation precision reaches `target_precision`
  /// (maximizing recall at that precision — the deployed operating point a
  /// production anti-fraud team chooses). Falls back to the threshold with
  /// the best F1 when the target is unreachable. Returns the chosen
  /// threshold and installs it for subsequent Detect calls.
  Result<double> CalibrateThreshold(
      const std::vector<collect::CollectedItem>& validation_items,
      const std::vector<int>& validation_labels, double target_precision);

  double decision_threshold() const { return options_.decision_threshold; }

  /// Loads a pre-trained Gbdt from disk instead of training.
  Status LoadPretrainedGbdt(const std::string& path);

  /// Persists the current Gbdt (fails for injected non-Gbdt classifiers).
  Status SaveGbdt(const std::string& path) const;

  /// Persists / restores the degraded-mode imputation vector (the training
  /// set's per-feature means over clean records). Save is atomic; Load
  /// rejects truncated files, non-finite values and trailing garbage.
  Status SaveImputation(const std::string& path) const;
  Status LoadImputation(const std::string& path);

  /// Runs both stages on unlabeled items.
  Result<DetectionReport> Detect(
      const std::vector<collect::CollectedItem>& items) const;

  /// The pre-scoring half of Detect over one batch: validate (quarantine
  /// poison), extract features, apply the stage-1 rules, and collect the
  /// survivors' feature rows for batch scoring. Thread-safe — the
  /// streaming plane calls it from several workers concurrently. `trace`
  /// (optional, single-threaded callers only) records "validate" and
  /// "extract_features" child stages. `extractor` overrides the member
  /// extractor — the streaming plane passes a serial one per worker so
  /// parallelism comes from the workers, not nested pools.
  StagedBatch StageForScoring(
      const std::vector<collect::CollectedItem>& items,
      obs::PipelineTrace* trace = nullptr,
      const FeatureExtractor* extractor = nullptr) const;

  /// The scoring half of Detect: classifies a staged batch's pending rows
  /// in one PredictProbaBatch call and folds everything — counts,
  /// quarantine, detections — into `report` additively. Call from one
  /// thread at a time (the classifier's batch path owns a thread pool).
  /// Precondition: trained().
  void ScoreStagedBatch(const StagedBatch& batch,
                        DetectionReport* report) const;

  /// Mirrors a finished report's run-level totals into the process-wide
  /// `detector.*` counters — the final step of Detect, exposed so the
  /// streaming plane reports identical run metrics for its merged report.
  static void MirrorReportMetrics(const DetectionReport& report);

  /// Classifier scores for pre-extracted features (no rule filter) —
  /// used by evaluation code that wants raw per-item probabilities.
  Result<std::vector<double>> ScoreFeatures(
      const std::vector<FeatureVector>& features) const;

  const ml::Classifier& classifier() const { return *classifier_; }
  const FeatureExtractor& extractor() const { return extractor_; }
  const RecordValidator& validator() const { return validator_; }
  bool trained() const { return trained_; }

  /// Training-set marginals used to score degraded records. All-zero until
  /// Train or LoadImputation ran (an all-zero vector is also what the
  /// extractor emits for commentless items, so the fallback is consistent).
  const FeatureVector& imputed_features() const { return imputed_features_; }
  void set_imputed_features(const FeatureVector& features) {
    imputed_features_ = features;
  }

 private:
  /// Shared triage + dataset assembly behind Train and WarmStartTrain:
  /// extracts features, drops poison records into no-man's-land, fills
  /// `dataset`, and accumulates clean-row feature sums for imputation.
  Status StageTrainingSet(const std::vector<collect::CollectedItem>& items,
                          const std::vector<int>& labels, ml::Dataset* dataset,
                          std::array<double, kNumFeatures>* clean_sum,
                          size_t* clean_rows) const;
  void RefreshImputation(const std::array<double, kNumFeatures>& clean_sum,
                         size_t clean_rows);

  DetectorOptions options_;
  FeatureExtractor extractor_;
  RuleFilter filter_;
  RecordValidator validator_;
  std::unique_ptr<ml::Classifier> classifier_;
  FeatureVector imputed_features_{};
  bool trained_ = false;
};

}  // namespace cats::core

#endif  // CATS_CORE_DETECTOR_H_
