#ifndef CATS_CORE_DETECTOR_H_
#define CATS_CORE_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/feature_extractor.h"
#include "core/rule_filter.h"
#include "ml/classifier.h"
#include "ml/gbdt.h"
#include "obs/stage_trace.h"
#include "util/result.h"

namespace cats::core {

/// One flagged item in a detection report.
struct Detection {
  uint64_t item_id = 0;
  double score = 0.0;  // classifier P(fraud)
};

/// Full output of a detector run.
struct DetectionReport {
  std::vector<Detection> detections;           // flagged as fraud
  size_t items_scanned = 0;
  size_t items_filtered_low_sales = 0;
  size_t items_filtered_no_signal = 0;
  size_t items_filtered_no_comments = 0;
  size_t items_classified = 0;
  /// Per-stage wall time + item counts of this run (detect >
  /// extract_features / rule_filter_and_classify). The same latencies also
  /// land in the process-wide registry histograms (docs/METRICS.md).
  obs::PipelineTrace trace;

  bool Contains(uint64_t item_id) const;
};

struct DetectorOptions {
  RuleFilterOptions rules;
  double decision_threshold = 0.60;
  ml::GbdtOptions gbdt;  // used when no custom classifier is injected
};

/// Stage 1 + stage 2 of CATS (paper §II-B): rule filter, then a binary
/// classifier over the 11 features. Defaults to the Gbdt (the paper's
/// Xgboost choice); any ml::Classifier can be injected — "in practice, it
/// is not necessary to choose the Xgboost model".
class Detector {
 public:
  Detector(const SemanticModel* model, DetectorOptions options);
  explicit Detector(const SemanticModel* model)
      : Detector(model, DetectorOptions{}) {}

  /// Replaces the default Gbdt with a custom classifier (untrained).
  void SetClassifier(std::unique_ptr<ml::Classifier> classifier);

  /// Trains the classifier on labeled items (e.g. the D0 set).
  Status Train(const std::vector<collect::CollectedItem>& items,
               const std::vector<int>& labels);

  /// Picks the detection threshold on a labeled validation set: the lowest
  /// score threshold whose validation precision reaches `target_precision`
  /// (maximizing recall at that precision — the deployed operating point a
  /// production anti-fraud team chooses). Falls back to the threshold with
  /// the best F1 when the target is unreachable. Returns the chosen
  /// threshold and installs it for subsequent Detect calls.
  Result<double> CalibrateThreshold(
      const std::vector<collect::CollectedItem>& validation_items,
      const std::vector<int>& validation_labels, double target_precision);

  double decision_threshold() const { return options_.decision_threshold; }

  /// Loads a pre-trained Gbdt from disk instead of training.
  Status LoadPretrainedGbdt(const std::string& path);

  /// Persists the current Gbdt (fails for injected non-Gbdt classifiers).
  Status SaveGbdt(const std::string& path) const;

  /// Runs both stages on unlabeled items.
  Result<DetectionReport> Detect(
      const std::vector<collect::CollectedItem>& items) const;

  /// Classifier scores for pre-extracted features (no rule filter) —
  /// used by evaluation code that wants raw per-item probabilities.
  Result<std::vector<double>> ScoreFeatures(
      const std::vector<FeatureVector>& features) const;

  const ml::Classifier& classifier() const { return *classifier_; }
  const FeatureExtractor& extractor() const { return extractor_; }
  bool trained() const { return trained_; }

 private:
  DetectorOptions options_;
  FeatureExtractor extractor_;
  RuleFilter filter_;
  std::unique_ptr<ml::Classifier> classifier_;
  bool trained_ = false;
};

}  // namespace cats::core

#endif  // CATS_CORE_DETECTOR_H_
