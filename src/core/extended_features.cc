#include "core/extended_features.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "platform/entities.h"
#include "util/thread_pool.h"

namespace cats::core {
namespace {

/// Days in month for the simple proleptic calendar used here.
int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

}  // namespace

int32_t ParseDateToDayOrdinal(const std::string& date) {
  // "YYYY-MM-DD hh:mm:ss"
  if (date.size() < 10 || date[4] != '-' || date[7] != '-') return -1;
  int year = std::atoi(date.substr(0, 4).c_str());
  int month = std::atoi(date.substr(5, 2).c_str());
  int day = std::atoi(date.substr(8, 2).c_str());
  if (year < 2000 || month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(year, month)) {
    return -1;
  }
  int32_t ordinal = 0;
  for (int y = 2000; y < year; ++y) {
    bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    ordinal += leap ? 366 : 365;
  }
  for (int m = 1; m < month; ++m) ordinal += DaysInMonth(year, m);
  return ordinal + day - 1;
}

std::array<float, kNumExtendedOnly>
ExtendedFeatureExtractor::ExtractMetadataFeatures(
    const collect::CollectedItem& item) {
  std::array<float, kNumExtendedOnly> out{};
  const auto& comments = item.comments;
  if (comments.empty()) return out;

  // Unique buyers by (nickname, userExpValue) — the paper's approximate
  // identification.
  std::unordered_map<std::string, size_t> buyer_orders;
  double exp_sum = 0.0;
  size_t min_exp_buyers = 0;
  size_t web_orders = 0;
  std::vector<int32_t> days;
  days.reserve(comments.size());
  for (const collect::CommentRecord& c : comments) {
    std::string key = c.nickname + "\x1f" + std::to_string(c.user_exp_value);
    if (++buyer_orders[key] == 1) {
      exp_sum += static_cast<double>(c.user_exp_value);
      if (c.user_exp_value <= platform::kMinUserExpValue) ++min_exp_buyers;
    }
    if (c.client == "Web") ++web_orders;
    int32_t day = ParseDateToDayOrdinal(c.date);
    if (day >= 0) days.push_back(day);
  }
  double unique = static_cast<double>(buyer_orders.size());
  double total = static_cast<double>(comments.size());

  out[static_cast<size_t>(ExtendedFeatureId::kLogAvgBuyerExpValue)] =
      static_cast<float>(std::log10(std::max(1.0, exp_sum / unique)));
  out[static_cast<size_t>(ExtendedFeatureId::kMinExpBuyerFraction)] =
      static_cast<float>(min_exp_buyers / unique);
  out[static_cast<size_t>(ExtendedFeatureId::kWebClientRatio)] =
      static_cast<float>(web_orders / total);

  // Densest 7-day window via two pointers over sorted day ordinals.
  double burst = 0.0;
  if (!days.empty()) {
    std::sort(days.begin(), days.end());
    size_t lo = 0, best = 1;
    for (size_t hi = 0; hi < days.size(); ++hi) {
      while (days[hi] - days[lo] >= 7) ++lo;
      best = std::max(best, hi - lo + 1);
    }
    burst = static_cast<double>(best) / static_cast<double>(days.size());
  }
  out[static_cast<size_t>(ExtendedFeatureId::kBurstConcentration)] =
      static_cast<float>(burst);

  size_t repeat_orders = 0;
  for (const auto& [key, orders] : buyer_orders) {
    if (orders >= 2) repeat_orders += orders;
  }
  out[static_cast<size_t>(ExtendedFeatureId::kRepeatBuyerRatio)] =
      static_cast<float>(repeat_orders / total);
  return out;
}

ExtendedFeatureVector ExtendedFeatureExtractor::Extract(
    const collect::CollectedItem& item) const {
  ExtendedFeatureVector out{};
  FeatureVector base = base_.Extract(item);
  std::copy(base.begin(), base.end(), out.begin());
  auto extra = ExtractMetadataFeatures(item);
  std::copy(extra.begin(), extra.end(), out.begin() + kNumFeatures);
  return out;
}

std::vector<ExtendedFeatureVector> ExtendedFeatureExtractor::ExtractAll(
    const std::vector<collect::CollectedItem>& items,
    size_t num_threads) const {
  std::vector<ExtendedFeatureVector> out(items.size());
  if (items.empty()) return out;
  if (num_threads <= 1) {
    for (size_t i = 0; i < items.size(); ++i) out[i] = Extract(items[i]);
    return out;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(items.size(),
                   [&](size_t i) { out[i] = Extract(items[i]); });
  return out;
}

Result<ml::Dataset> ExtendedFeatureExtractor::BuildDataset(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<int>& labels) const {
  if (items.size() != labels.size()) {
    return Status::InvalidArgument("items/labels size mismatch");
  }
  std::vector<ExtendedFeatureVector> features = ExtractAll(items);
  ml::Dataset dataset(FeatureNames());
  std::vector<float> row(kNumExtendedFeatures);
  for (size_t i = 0; i < items.size(); ++i) {
    row.assign(features[i].begin(), features[i].end());
    CATS_RETURN_NOT_OK(dataset.AddRow(row, labels[i]));
  }
  return dataset;
}

std::vector<std::string> ExtendedFeatureExtractor::FeatureNames() {
  std::vector<std::string> names = FeatureExtractor::FeatureNames();
  for (std::string_view name : kExtendedFeatureNames) {
    names.emplace_back(name);
  }
  return names;
}

}  // namespace cats::core
