#ifndef CATS_CORE_EXTENDED_FEATURES_H_
#define CATS_CORE_EXTENDED_FEATURES_H_

#include <array>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/feature_extractor.h"
#include "ml/dataset.h"
#include "util/result.h"

namespace cats::core {

/// The paper's future-work direction (§VII: "identify more features that
/// can discriminate whether an item is fraudulent") realized from the same
/// public comment records: the §V measurement study shows buyer
/// reliability, order client and campaign burstiness all separate fraud
/// from normal items, so this module turns them into five extra features
/// on top of the 11 of Table II.
enum class ExtendedFeatureId : int {
  // log10 of the average userExpValue of the item's unique buyers (Fig 11).
  kLogAvgBuyerExpValue = 0,
  // Fraction of the item's unique buyers at the minimum userExpValue.
  kMinExpBuyerFraction,
  // Fraction of the item's orders placed through the Web client (Fig 12).
  kWebClientRatio,
  // Fraction of comments inside the densest 7-day window — promotion
  // campaigns are bursts (§II/§V).
  kBurstConcentration,
  // Fraction of comments from identities that commented 2+ times on this
  // item (repeat purchasing, §V).
  kRepeatBuyerRatio,
};

inline constexpr size_t kNumExtendedOnly = 5;
inline constexpr size_t kNumExtendedFeatures =
    kNumFeatures + kNumExtendedOnly;

inline constexpr std::array<std::string_view, kNumExtendedOnly>
    kExtendedFeatureNames = {
        "logAvgBuyerExpValue", "minExpBuyerFraction", "webClientRatio",
        "burstConcentration",  "repeatBuyerRatio",
};

/// The 16-dimensional extended vector: Table II's 11 features followed by
/// the five user/order/temporal features.
using ExtendedFeatureVector = std::array<float, kNumExtendedFeatures>;

/// Computes the extended vector. Wraps a FeatureExtractor for the first 11
/// dimensions; the rest come from the comment metadata (nickname,
/// userExpValue, client_information, date — all in the public record of
/// Listing 2). Thread-compatible like FeatureExtractor.
class ExtendedFeatureExtractor {
 public:
  explicit ExtendedFeatureExtractor(const SemanticModel* model)
      : base_(model) {}

  ExtendedFeatureVector Extract(const collect::CollectedItem& item) const;

  /// The five metadata features alone (unit-testable without a semantic
  /// model).
  static std::array<float, kNumExtendedOnly> ExtractMetadataFeatures(
      const collect::CollectedItem& item);

  std::vector<ExtendedFeatureVector> ExtractAll(
      const std::vector<collect::CollectedItem>& items,
      size_t num_threads = 4) const;

  /// Labeled 16-feature dataset.
  Result<ml::Dataset> BuildDataset(
      const std::vector<collect::CollectedItem>& items,
      const std::vector<int>& labels) const;

  static std::vector<std::string> FeatureNames();

 private:
  FeatureExtractor base_;
};

/// Parses "YYYY-MM-DD hh:mm:ss" to a day ordinal (days since 2000-01-01;
/// -1 on malformed input). Exposed for tests.
int32_t ParseDateToDayOrdinal(const std::string& date);

}  // namespace cats::core

#endif  // CATS_CORE_EXTENDED_FEATURES_H_
