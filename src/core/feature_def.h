#ifndef CATS_CORE_FEATURE_DEF_H_
#define CATS_CORE_FEATURE_DEF_H_

#include <array>
#include <cstddef>
#include <string_view>

namespace cats::core {

/// The 11 platform-independent features of Table II, in the paper's order.
enum class FeatureId : int {
  kAveragePositiveNumber = 0,
  kAveragePositiveNegativeNumber,  // averagePositive/NegativeNumber
  kUniqueWordRatio,
  kAverageSentiment,
  kAverageCommentEntropy,
  kAverageCommentLength,
  kSumCommentLength,
  kSumPunctuationNumber,
  kAveragePunctuationRatio,
  kAverageNgramNumber,
  kAverageNgramRatio,
};

inline constexpr size_t kNumFeatures = 11;

/// Feature names exactly as printed in the paper.
inline constexpr std::array<std::string_view, kNumFeatures> kFeatureNames = {
    "averagePositiveNumber",
    "averagePositive/NegativeNumber",
    "uniqueWordRatio",
    "averageSentiment",
    "averageCommentEntropy",
    "averageCommentLength",
    "sumCommentLength",
    "sumPunctuationNumber",
    "averagePunctuationRatio",
    "averageNgramNumber",
    "averageNgramRatio",
};

inline constexpr std::string_view FeatureName(FeatureId id) {
  return kFeatureNames[static_cast<size_t>(id)];
}

}  // namespace cats::core

#endif  // CATS_CORE_FEATURE_DEF_H_
