#include "core/feature_extractor.h"

#include <cmath>
#include <unordered_set>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "text/text_stats.h"
#include "util/thread_pool.h"

namespace cats::core {
namespace {

/// Handles for the extractor metrics, resolved once per process.
struct ExtractorMetrics {
  obs::Counter* items;
  obs::Counter* comments;
  obs::Counter* sentiment_evals;
  obs::LatencyHistogram* extract_latency;
  obs::LatencyHistogram* chunk_latency;
  obs::Gauge* last_items_per_second;

  static const ExtractorMetrics& Get() {
    static const ExtractorMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new ExtractorMetrics{
          registry.GetCounter(obs::kExtractorItemsFeaturizedTotal),
          registry.GetCounter(obs::kExtractorCommentsProcessedTotal),
          registry.GetCounter(obs::kExtractorSentimentEvalsTotal),
          registry.GetLatencyHistogram(obs::kExtractorExtractLatencyMicros),
          registry.GetLatencyHistogram(obs::kExtractorChunkLatencyMicros),
          registry.GetGauge(obs::kExtractorLastItemsPerSecond)};
    }();
    return *metrics;
  }
};

}  // namespace

FeatureVector FeatureExtractor::ExtractFromComments(
    const std::vector<std::string>& raw_comments) const {
  FeatureVector out{};
  size_t num_comments = raw_comments.size();
  if (num_comments == 0) return out;

  text::Segmenter segmenter(&model_->dictionary);

  double sum_positive = 0.0;         // sum_j |C_j ∩ P|
  double sum_abs_pos_minus_neg = 0.0;
  double sum_sentiment = 0.0;
  double sum_entropy = 0.0;
  double sum_length_words = 0.0;
  double sum_punct = 0.0;
  double sum_punct_ratio = 0.0;
  double sum_ngram = 0.0;
  double sum_ngram_ratio = 0.0;
  size_t total_tokens = 0;
  std::unordered_set<std::string> unique_tokens;

  for (const std::string& raw : raw_comments) {
    std::vector<std::string> tokens = segmenter.Segment(raw);

    // Word-level: positive / negative occurrence counts.
    double pos = static_cast<double>(model_->positive.CountIn(tokens));
    double neg = static_cast<double>(model_->negative.CountIn(tokens));
    sum_positive += pos;
    sum_abs_pos_minus_neg += std::fabs(pos - neg);

    // Word-level: positive 2-grams. G contains every bigram with at least
    // one positive word (paper §II-A2).
    size_t ngrams = 0;
    for (size_t t = 0; t + 1 < tokens.size(); ++t) {
      if (model_->positive.Contains(tokens[t]) ||
          model_->positive.Contains(tokens[t + 1])) {
        ++ngrams;
      }
    }
    sum_ngram += static_cast<double>(ngrams);
    if (tokens.size() >= 2) {
      // Paper formula: delta-count / (|C_i| * (|C_j| - 1)).
      sum_ngram_ratio += static_cast<double>(ngrams) /
                         (static_cast<double>(num_comments) *
                          static_cast<double>(tokens.size() - 1));
    }

    // Semantic.
    sum_sentiment += model_->sentiment.Score(tokens);

    // Structural.
    sum_entropy += text::TokenEntropy(tokens);
    sum_length_words += static_cast<double>(tokens.size());
    text::CommentStructure structure = text::AnalyzeStructure(raw);
    sum_punct += static_cast<double>(structure.punctuation_count);
    sum_punct_ratio += structure.punctuation_ratio;

    total_tokens += tokens.size();
    for (std::string& t : tokens) unique_tokens.insert(std::move(t));
  }

  double n = static_cast<double>(num_comments);
  auto set = [&out](FeatureId id, double v) {
    out[static_cast<size_t>(id)] = static_cast<float>(v);
  };
  set(FeatureId::kAveragePositiveNumber, sum_positive / n);
  set(FeatureId::kAveragePositiveNegativeNumber, sum_abs_pos_minus_neg / n);
  set(FeatureId::kUniqueWordRatio,
      total_tokens > 0 ? static_cast<double>(unique_tokens.size()) /
                             static_cast<double>(total_tokens)
                       : 0.0);
  set(FeatureId::kAverageSentiment, sum_sentiment / n);
  set(FeatureId::kAverageCommentEntropy, sum_entropy / n);
  set(FeatureId::kAverageCommentLength, sum_length_words / n);
  set(FeatureId::kSumCommentLength, sum_length_words);
  set(FeatureId::kSumPunctuationNumber, sum_punct);
  set(FeatureId::kAveragePunctuationRatio, sum_punct_ratio / n);
  set(FeatureId::kAverageNgramNumber, sum_ngram / n);
  set(FeatureId::kAverageNgramRatio, sum_ngram_ratio);
  // NaN/inf guard: no comment — however pathological its bytes — may leak a
  // non-finite feature into the classifier (GBDT threshold comparisons with
  // NaN silently take the right branch, mis-scoring the item).
  for (float& f : out) {
    if (!std::isfinite(f)) f = 0.0f;
  }
  return out;
}

FeatureVector FeatureExtractor::Extract(
    const collect::CollectedItem& item) const {
  std::vector<std::string> raw;
  raw.reserve(item.comments.size());
  for (const collect::CommentRecord& c : item.comments) {
    raw.push_back(c.content);
  }
  return ExtractFromComments(raw);
}

std::vector<FeatureVector> FeatureExtractor::ExtractAll(
    const std::vector<collect::CollectedItem>& items) const {
  std::vector<FeatureVector> out(items.size());
  if (items.empty()) return out;
  const ExtractorMetrics& metrics = ExtractorMetrics::Get();
  obs::ScopedTimer extract_timer(metrics.extract_latency);

  // One chunk runs entirely on one worker (see ThreadPool::ParallelFor), so
  // counts accumulate in chunk-locals and publish with one atomic add each.
  auto extract_chunk = [&](size_t begin, size_t end) {
    obs::ScopedTimer chunk_timer(metrics.chunk_latency);
    uint64_t comments = 0;
    for (size_t i = begin; i < end; ++i) {
      out[i] = Extract(items[i]);
      comments += items[i].comments.size();
    }
    metrics.items->Increment(end - begin);
    metrics.comments->Increment(comments);
    // One sentiment model evaluation per comment (ExtractFromComments).
    metrics.sentiment_evals->Increment(comments);
  };

  if (options_.num_threads <= 1) {
    extract_chunk(0, items.size());
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelForChunks(items.size(), extract_chunk);
  }
  double elapsed_seconds =
      static_cast<double>(extract_timer.ElapsedMicros()) / 1e6;
  if (elapsed_seconds > 0) {
    metrics.last_items_per_second->Set(
        static_cast<double>(items.size()) / elapsed_seconds);
  }
  return out;
}

Result<ml::Dataset> FeatureExtractor::BuildDataset(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<int>& labels) const {
  if (items.size() != labels.size()) {
    return Status::InvalidArgument("items/labels size mismatch");
  }
  std::vector<FeatureVector> features = ExtractAll(items);
  ml::Dataset dataset(FeatureNames());
  std::vector<float> row(kNumFeatures);
  for (size_t i = 0; i < items.size(); ++i) {
    row.assign(features[i].begin(), features[i].end());
    CATS_RETURN_NOT_OK(dataset.AddRow(row, labels[i]));
  }
  return dataset;
}

std::vector<std::string> FeatureExtractor::FeatureNames() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  for (std::string_view name : kFeatureNames) names.emplace_back(name);
  return names;
}

}  // namespace cats::core
