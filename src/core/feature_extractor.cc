#include "core/feature_extractor.h"

#include <cmath>
#include <algorithm>
#include <unordered_set>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "text/text_stats.h"
#include "text/token_ids.h"
#include "util/thread_pool.h"

namespace cats::core {
namespace {

/// Handles for the extractor metrics, resolved once per process.
struct ExtractorMetrics {
  obs::Counter* items;
  obs::Counter* comments;
  obs::Counter* sentiment_evals;
  obs::LatencyHistogram* extract_latency;
  obs::LatencyHistogram* chunk_latency;
  obs::Gauge* last_items_per_second;

  static const ExtractorMetrics& Get() {
    static const ExtractorMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new ExtractorMetrics{
          registry.GetCounter(obs::kExtractorItemsFeaturizedTotal),
          registry.GetCounter(obs::kExtractorCommentsProcessedTotal),
          registry.GetCounter(obs::kExtractorSentimentEvalsTotal),
          registry.GetLatencyHistogram(obs::kExtractorExtractLatencyMicros),
          registry.GetLatencyHistogram(obs::kExtractorChunkLatencyMicros),
          registry.GetGauge(obs::kExtractorLastItemsPerSecond)};
    }();
    return *metrics;
  }
};

/// Handles for the id-path segmentation metrics. Accumulated item-locally
/// and published with one atomic add per item.
struct SegmenterMetrics {
  obs::Counter* comments;
  obs::Counter* tokens;
  obs::Counter* oov_tokens;
  obs::Counter* irregular_tokens;

  static const SegmenterMetrics& Get() {
    static const SegmenterMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new SegmenterMetrics{
          registry.GetCounter(obs::kSegmenterCommentsTotal),
          registry.GetCounter(obs::kSegmenterTokensTotal),
          registry.GetCounter(obs::kSegmenterOovTokensTotal),
          registry.GetCounter(obs::kSegmenterIrregularTokensTotal)};
    }();
    return *metrics;
  }
};

/// Per-comment accumulators shared by both token paths. The id path adds
/// the same doubles in the same order as the string path, so the finalized
/// features are bit-identical — Finalize is the single tail both use.
struct CommentSums {
  double sum_positive = 0.0;  // sum_j |C_j ∩ P|
  double sum_abs_pos_minus_neg = 0.0;
  double sum_sentiment = 0.0;
  double sum_entropy = 0.0;
  double sum_length_words = 0.0;
  double sum_punct = 0.0;
  double sum_punct_ratio = 0.0;
  double sum_ngram = 0.0;
  double sum_ngram_ratio = 0.0;
  size_t total_tokens = 0;
};

FeatureVector Finalize(const CommentSums& sums, size_t num_comments,
                       size_t unique_tokens) {
  FeatureVector out{};
  double n = static_cast<double>(num_comments);
  auto set = [&out](FeatureId id, double v) {
    out[static_cast<size_t>(id)] = static_cast<float>(v);
  };
  set(FeatureId::kAveragePositiveNumber, sums.sum_positive / n);
  set(FeatureId::kAveragePositiveNegativeNumber,
      sums.sum_abs_pos_minus_neg / n);
  set(FeatureId::kUniqueWordRatio,
      sums.total_tokens > 0 ? static_cast<double>(unique_tokens) /
                                  static_cast<double>(sums.total_tokens)
                            : 0.0);
  set(FeatureId::kAverageSentiment, sums.sum_sentiment / n);
  set(FeatureId::kAverageCommentEntropy, sums.sum_entropy / n);
  set(FeatureId::kAverageCommentLength, sums.sum_length_words / n);
  set(FeatureId::kSumCommentLength, sums.sum_length_words);
  set(FeatureId::kSumPunctuationNumber, sums.sum_punct);
  set(FeatureId::kAveragePunctuationRatio, sums.sum_punct_ratio / n);
  set(FeatureId::kAverageNgramNumber, sums.sum_ngram / n);
  set(FeatureId::kAverageNgramRatio, sums.sum_ngram_ratio);
  // NaN/inf guard: no comment — however pathological its bytes — may leak a
  // non-finite feature into the classifier (GBDT threshold comparisons with
  // NaN silently take the right branch, mis-scoring the item).
  for (float& f : out) {
    if (!std::isfinite(f)) f = 0.0f;
  }
  return out;
}

/// Per-thread reusable buffers of the id path: the token arena plus the
/// per-item span/structure columns and the unique-id set. Everything is
/// grow-only and cleared per item, so steady-state extraction allocates
/// nothing.
struct IdScratch {
  text::TokenArena arena;
  std::vector<text::TokenSpan> spans;
  std::vector<text::CommentStructure> structures;
  std::vector<uint32_t> unique_ids;

  static IdScratch& Local() {
    thread_local IdScratch scratch;
    return scratch;
  }
};

}  // namespace

FeatureVector FeatureExtractor::ExtractFromComments(
    const std::vector<std::string>& raw_comments) const {
  if (raw_comments.empty()) return FeatureVector{};
  const TokenIndex* index = model_->token_index.get();
  if (options_.use_token_ids && index != nullptr) {
    return ExtractFromCommentsIds(raw_comments, *index);
  }
  return ExtractFromCommentsStrings(raw_comments);
}

FeatureVector FeatureExtractor::ExtractFromCommentsStrings(
    const std::vector<std::string>& raw_comments) const {
  size_t num_comments = raw_comments.size();
  text::Segmenter segmenter(&model_->dictionary);

  CommentSums sums;
  std::unordered_set<std::string> unique_tokens;

  for (const std::string& raw : raw_comments) {
    std::vector<std::string> tokens = segmenter.Segment(raw);

    // Word-level: positive / negative occurrence counts.
    double pos = static_cast<double>(model_->positive.CountIn(tokens));
    double neg = static_cast<double>(model_->negative.CountIn(tokens));
    sums.sum_positive += pos;
    sums.sum_abs_pos_minus_neg += std::fabs(pos - neg);

    // Word-level: positive 2-grams. G contains every bigram with at least
    // one positive word (paper §II-A2).
    size_t ngrams = 0;
    for (size_t t = 0; t + 1 < tokens.size(); ++t) {
      if (model_->positive.Contains(tokens[t]) ||
          model_->positive.Contains(tokens[t + 1])) {
        ++ngrams;
      }
    }
    sums.sum_ngram += static_cast<double>(ngrams);
    if (tokens.size() >= 2) {
      // Paper formula: delta-count / (|C_i| * (|C_j| - 1)).
      sums.sum_ngram_ratio += static_cast<double>(ngrams) /
                              (static_cast<double>(num_comments) *
                               static_cast<double>(tokens.size() - 1));
    }

    // Semantic.
    sums.sum_sentiment += model_->sentiment.Score(tokens);

    // Structural.
    sums.sum_entropy += text::TokenEntropy(tokens);
    sums.sum_length_words += static_cast<double>(tokens.size());
    text::CommentStructure structure = text::AnalyzeStructure(raw);
    sums.sum_punct += static_cast<double>(structure.punctuation_count);
    sums.sum_punct_ratio += structure.punctuation_ratio;

    sums.total_tokens += tokens.size();
    for (std::string& t : tokens) unique_tokens.insert(std::move(t));
  }
  return Finalize(sums, num_comments, unique_tokens.size());
}

FeatureVector FeatureExtractor::ExtractFromCommentsIds(
    const std::vector<std::string>& raw_comments,
    const TokenIndex& index) const {
  size_t num_comments = raw_comments.size();
  const text::IdSegmenter& segmenter = index.segmenter();
  IdScratch& scratch = IdScratch::Local();
  text::TokenArena& arena = scratch.arena;
  arena.Reset();
  scratch.spans.clear();
  scratch.structures.clear();
  scratch.unique_ids.clear();
  scratch.spans.reserve(num_comments);
  scratch.structures.resize(num_comments);

  // Pass 1 — columnar segmentation: every comment's ids land in the arena's
  // flat column; the pre-decode also yields the structural stats, replacing
  // the string path's second AnalyzeStructure scan over the raw bytes.
  for (size_t c = 0; c < num_comments; ++c) {
    size_t begin = arena.BeginComment();
    segmenter.SegmentToIds(raw_comments[c], &arena, &scratch.structures[c]);
    scratch.spans.push_back(arena.EndComment(begin));
  }

  // Pass 2 — per-comment accumulation over contiguous id spans, mirroring
  // the string path's arithmetic operation-for-operation (same doubles,
  // same order => bit-identical features).
  const nlp::LexiconIdSet& positive = index.positive();
  const nlp::LexiconIdSet& negative = index.negative();
  const nlp::SentimentIdTable& sentiment = index.sentiment();
  CommentSums sums;
  for (size_t c = 0; c < num_comments; ++c) {
    std::span<const uint32_t> ids = arena.SpanOf(scratch.spans[c]);

    double pos = static_cast<double>(positive.CountIn(ids, arena));
    double neg = static_cast<double>(negative.CountIn(ids, arena));
    sums.sum_positive += pos;
    sums.sum_abs_pos_minus_neg += std::fabs(pos - neg);

    size_t ngrams = 0;
    for (size_t t = 0; t + 1 < ids.size(); ++t) {
      if (positive.ContainsId(ids[t], arena) ||
          positive.ContainsId(ids[t + 1], arena)) {
        ++ngrams;
      }
    }
    sums.sum_ngram += static_cast<double>(ngrams);
    if (ids.size() >= 2) {
      sums.sum_ngram_ratio += static_cast<double>(ngrams) /
                              (static_cast<double>(num_comments) *
                               static_cast<double>(ids.size() - 1));
    }

    sums.sum_sentiment += sentiment.ScoreIds(ids, arena);

    sums.sum_entropy += text::TokenEntropyIds(ids);
    sums.sum_length_words += static_cast<double>(ids.size());
    const text::CommentStructure& structure = scratch.structures[c];
    sums.sum_punct += static_cast<double>(structure.punctuation_count);
    sums.sum_punct_ratio += structure.punctuation_ratio;

    sums.total_tokens += ids.size();
  }

  // Distinct-token count over the whole item: sort+unique on the flat id
  // column beats a per-token hash insert, and the count — the only thing
  // Finalize consumes — is order-independent. Ids biject with token byte
  // strings within one arena, so this equals the string path's
  // unique_tokens.size().
  scratch.unique_ids.assign(arena.ids().begin(), arena.ids().end());
  std::sort(scratch.unique_ids.begin(), scratch.unique_ids.end());
  size_t num_unique =
      static_cast<size_t>(std::unique(scratch.unique_ids.begin(),
                                      scratch.unique_ids.end()) -
                          scratch.unique_ids.begin());

  const SegmenterMetrics& metrics = SegmenterMetrics::Get();
  uint64_t oov = 0, irregular = 0;
  for (uint32_t id : arena.ids()) {
    if (text::IsCodepointId(id)) {
      ++oov;
    } else if (text::IsIrregularId(id)) {
      ++irregular;
    }
  }
  metrics.comments->Increment(num_comments);
  metrics.tokens->Increment(arena.ids().size());
  metrics.oov_tokens->Increment(oov);
  metrics.irregular_tokens->Increment(irregular);

  return Finalize(sums, num_comments, num_unique);
}

FeatureVector FeatureExtractor::Extract(
    const collect::CollectedItem& item) const {
  std::vector<std::string> raw;
  raw.reserve(item.comments.size());
  for (const collect::CommentRecord& c : item.comments) {
    raw.push_back(c.content);
  }
  return ExtractFromComments(raw);
}

std::vector<FeatureVector> FeatureExtractor::ExtractAll(
    const std::vector<collect::CollectedItem>& items) const {
  std::vector<FeatureVector> out(items.size());
  if (items.empty()) return out;
  const ExtractorMetrics& metrics = ExtractorMetrics::Get();
  obs::ScopedTimer extract_timer(metrics.extract_latency);

  // One chunk runs entirely on one worker (see ThreadPool::ParallelFor), so
  // counts accumulate in chunk-locals and publish with one atomic add each.
  auto extract_chunk = [&](size_t begin, size_t end) {
    obs::ScopedTimer chunk_timer(metrics.chunk_latency);
    uint64_t comments = 0;
    for (size_t i = begin; i < end; ++i) {
      out[i] = Extract(items[i]);
      comments += items[i].comments.size();
    }
    metrics.items->Increment(end - begin);
    metrics.comments->Increment(comments);
    // One sentiment model evaluation per comment (ExtractFromComments).
    metrics.sentiment_evals->Increment(comments);
  };

  if (options_.num_threads <= 1) {
    extract_chunk(0, items.size());
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelForChunks(items.size(), extract_chunk);
  }
  double elapsed_seconds =
      static_cast<double>(extract_timer.ElapsedMicros()) / 1e6;
  if (elapsed_seconds > 0) {
    metrics.last_items_per_second->Set(
        static_cast<double>(items.size()) / elapsed_seconds);
  }
  return out;
}

Result<ml::Dataset> FeatureExtractor::BuildDataset(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<int>& labels) const {
  if (items.size() != labels.size()) {
    return Status::InvalidArgument("items/labels size mismatch");
  }
  std::vector<FeatureVector> features = ExtractAll(items);
  ml::Dataset dataset(FeatureNames());
  std::vector<float> row(kNumFeatures);
  for (size_t i = 0; i < items.size(); ++i) {
    row.assign(features[i].begin(), features[i].end());
    CATS_RETURN_NOT_OK(dataset.AddRow(row, labels[i]));
  }
  return dataset;
}

std::vector<std::string> FeatureExtractor::FeatureNames() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  for (std::string_view name : kFeatureNames) names.emplace_back(name);
  return names;
}

}  // namespace cats::core
