#ifndef CATS_CORE_FEATURE_EXTRACTOR_H_
#define CATS_CORE_FEATURE_EXTRACTOR_H_

#include <array>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/feature_def.h"
#include "core/semantic_analyzer.h"
#include "ml/dataset.h"
#include "util/result.h"

namespace cats::core {

/// The 11-dimensional feature vector of one item.
using FeatureVector = std::array<float, kNumFeatures>;

struct FeatureExtractorOptions {
  size_t num_threads = 4;  // the paper's extractor is parallelized
  /// Route comment featurization through the token-id hot path (trie
  /// segmentation into a per-thread arena, id-span accumulation — see
  /// ARCHITECTURE.md "Text hot path") when the model carries a compiled
  /// TokenIndex. The legacy std::string path remains behind `false` for
  /// one PR so equivalence stays provable: both paths produce bit-identical
  /// features (pinned by tests/segmenter_diff_test.cc and
  /// tests/id_path_identity_test.cc).
  bool use_token_ids = true;
};

/// Computes Table II's features from an item's raw comments (paper §II-A):
/// word-level (positive counts, positive 2-grams), semantic (average
/// sentiment) and structural (entropy, lengths, punctuation, unique-word
/// ratio). Thread-safe once constructed; Extract* may be called
/// concurrently.
///
/// Observability: ExtractAll reports items/comments/sentiment-eval counts
/// and latency under the `extractor.*` metrics (docs/METRICS.md). Counts
/// are accumulated per ParallelFor chunk (one chunk per worker thread) and
/// published with one atomic add per chunk, so the per-comment hot loop
/// never touches a shared cache line.
class FeatureExtractor {
 public:
  FeatureExtractor(const SemanticModel* model,
                   FeatureExtractorOptions options)
      : model_(model), options_(options) {}

  explicit FeatureExtractor(const SemanticModel* model)
      : FeatureExtractor(model, FeatureExtractorOptions{}) {}

  /// Features of one item given its raw comment texts. Items with no
  /// comments yield all-zero features (the rule filter removes them before
  /// classification anyway).
  FeatureVector ExtractFromComments(
      const std::vector<std::string>& raw_comments) const;

  /// Features of one collected item.
  FeatureVector Extract(const collect::CollectedItem& item) const;

  /// Parallel extraction over a whole store, producing feature rows aligned
  /// with store.items().
  std::vector<FeatureVector> ExtractAll(
      const std::vector<collect::CollectedItem>& items) const;

  /// Builds a labeled ml::Dataset from items + ground-truth labels
  /// (labels[i] corresponds to items[i]).
  Result<ml::Dataset> BuildDataset(
      const std::vector<collect::CollectedItem>& items,
      const std::vector<int>& labels) const;

  /// Feature names as std::strings (for ml::Dataset construction).
  static std::vector<std::string> FeatureNames();

  const SemanticModel& model() const { return *model_; }
  const FeatureExtractorOptions& options() const { return options_; }

 private:
  FeatureVector ExtractFromCommentsStrings(
      const std::vector<std::string>& raw_comments) const;
  FeatureVector ExtractFromCommentsIds(
      const std::vector<std::string>& raw_comments,
      const TokenIndex& index) const;

  const SemanticModel* model_;  // not owned
  FeatureExtractorOptions options_;
};

}  // namespace cats::core

#endif  // CATS_CORE_FEATURE_EXTRACTOR_H_
