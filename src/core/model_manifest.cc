#include "core/model_manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "util/crc32.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace cats::core {
namespace {

constexpr const char* kMagicPrefix = "cats-model-manifest-v";

}  // namespace

std::string ModelManifest::Serialize() const {
  std::ostringstream out;
  out << kMagicPrefix << version << "\n";
  out << entries.size() << "\n";
  char crc_hex[9];
  for (const ManifestEntry& e : entries) {
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", e.crc32);
    out << crc_hex << " " << e.size << " " << e.file << "\n";
  }
  return out.str();
}

Result<ModelManifest> ModelManifest::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic) || magic.rfind(kMagicPrefix, 0) != 0) {
    return Status::Corruption("bad model manifest header");
  }
  ModelManifest manifest;
  const char* version_str = magic.c_str() + std::strlen(kMagicPrefix);
  char* end = nullptr;
  unsigned long version = std::strtoul(version_str, &end, 10);
  if (end == version_str || *end != '\0' || version > 1'000'000) {
    return Status::Corruption("bad model manifest version: " + magic);
  }
  manifest.version = static_cast<int>(version);
  size_t count = 0;
  if (!(in >> count) || count > 10'000) {
    return Status::Corruption("bad model manifest entry count");
  }
  manifest.entries.resize(count);
  for (ManifestEntry& e : manifest.entries) {
    std::string crc_hex;
    if (!(in >> crc_hex >> e.size >> e.file) || crc_hex.size() != 8) {
      return Status::Corruption("truncated model manifest entry");
    }
    char* hex_end = nullptr;
    e.crc32 =
        static_cast<uint32_t>(std::strtoul(crc_hex.c_str(), &hex_end, 16));
    if (hex_end != crc_hex.c_str() + crc_hex.size()) {
      return Status::Corruption("bad manifest checksum: " + crc_hex);
    }
  }
  std::string extra;
  if (in >> extra) {
    return Status::Corruption("trailing garbage in model manifest");
  }
  return manifest;
}

Result<ModelManifest> BuildManifest(const std::string& dir,
                                    const std::vector<std::string>& files) {
  ModelManifest manifest;
  manifest.entries.reserve(files.size());
  for (const std::string& file : files) {
    CATS_ASSIGN_OR_RETURN(std::string content,
                          ReadFileToString(dir + "/" + file));
    ManifestEntry e;
    e.file = file;
    e.size = content.size();
    e.crc32 = Crc32(content);
    manifest.entries.push_back(std::move(e));
  }
  return manifest;
}

Status WriteManifest(const std::string& dir, const ModelManifest& manifest) {
  return WriteStringToFileAtomic(dir + "/" + kManifestFileName,
                                 manifest.Serialize());
}

Result<ModelManifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  if (!std::filesystem::exists(path)) {
    return Status::Corruption(
        "model dir has no MANIFEST (partially written or pre-manifest): " +
        dir);
  }
  CATS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ModelManifest::Parse(content);
}

Status VerifyManifest(const std::string& dir, const ModelManifest& manifest) {
  if (manifest.version != kModelFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("unsupported model format version %d (supported: %d)",
                  manifest.version, kModelFormatVersion));
  }
  for (const ManifestEntry& e : manifest.entries) {
    const std::string path = dir + "/" + e.file;
    if (!std::filesystem::exists(path)) {
      return Status::NotFound("model file listed in MANIFEST is missing: " +
                              path);
    }
    CATS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    if (content.size() != e.size) {
      return Status::Corruption(StrFormat(
          "model file %s is %zu bytes, MANIFEST records %" PRIu64
          " (truncated or partially written)",
          path.c_str(), content.size(), e.size));
    }
    uint32_t crc = Crc32(content);
    if (crc != e.crc32) {
      return Status::Corruption(
          StrFormat("model file %s fails its checksum (crc32 %08x, MANIFEST "
                    "records %08x)",
                    path.c_str(), crc, e.crc32));
    }
  }
  return Status::OK();
}

}  // namespace cats::core
