#ifndef CATS_CORE_MODEL_MANIFEST_H_
#define CATS_CORE_MODEL_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace cats::core {

/// Version of the on-disk model directory layout. Bump when the file set
/// or any file's format changes incompatibly.
inline constexpr int kModelFormatVersion = 1;
inline constexpr const char* kManifestFileName = "MANIFEST";

/// One file covered by the manifest.
struct ManifestEntry {
  std::string file;     // name relative to the model dir
  uint64_t size = 0;    // exact byte count
  uint32_t crc32 = 0;   // util/crc32.h checksum of the whole file
};

/// The integrity record of a model directory. SaveModel writes every model
/// file first (each atomically), then the MANIFEST last — also atomically —
/// so a crash at any point leaves either a fully valid model or one whose
/// verification fails loudly; LoadModel refuses to parse anything until
/// every listed file matches its recorded size and CRC.
struct ModelManifest {
  int version = kModelFormatVersion;
  std::vector<ManifestEntry> entries;

  /// Text form:
  ///   cats-model-manifest-v<version>
  ///   <entry count>
  ///   <crc32 hex> <size> <file>
  std::string Serialize() const;
  static Result<ModelManifest> Parse(const std::string& text);
};

/// Reads and checksums `files` under `dir`, producing their manifest.
Result<ModelManifest> BuildManifest(const std::string& dir,
                                    const std::vector<std::string>& files);

/// Writes / reads `dir`/MANIFEST. WriteManifest is atomic (temp + rename);
/// ReadManifest returns Corruption for a missing or unparseable manifest —
/// a model dir without one is partially written by definition.
Status WriteManifest(const std::string& dir, const ModelManifest& manifest);
Result<ModelManifest> ReadManifest(const std::string& dir);

/// Checks every entry against the bytes on disk. Typed errors:
///  - FailedPrecondition: manifest version unsupported
///  - NotFound: a listed file is missing
///  - Corruption: size or CRC mismatch (truncated / bit-flipped / partial)
Status VerifyManifest(const std::string& dir, const ModelManifest& manifest);

}  // namespace cats::core

#endif  // CATS_CORE_MODEL_MANIFEST_H_
