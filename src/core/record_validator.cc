#include "core/record_validator.h"

#include <cmath>
#include <unordered_set>

#include "text/utf8.h"

namespace cats::core {
namespace {

struct IssueName {
  RecordIssue bit;
  std::string_view name;
};

constexpr IssueName kIssueNames[] = {
    {RecordIssue::kMissingComments, "missing_comments"},
    {RecordIssue::kMissingOrders, "missing_orders"},
    {RecordIssue::kAbsurdPrice, "absurd_price"},
    {RecordIssue::kCorruptCommentText, "corrupt_comment_text"},
    {RecordIssue::kOversizedComment, "oversized_comment"},
    {RecordIssue::kDuplicateCommentIds, "duplicate_comment_ids"},
    {RecordIssue::kMismatchedItemId, "mismatched_item_id"},
};

constexpr RecordIssue kPoisonMask =
    RecordIssue::kAbsurdPrice | RecordIssue::kCorruptCommentText |
    RecordIssue::kOversizedComment | RecordIssue::kDuplicateCommentIds |
    RecordIssue::kMismatchedItemId;

}  // namespace

std::string RecordIssuesToString(RecordIssue issues) {
  if (issues == RecordIssue::kNone) return "none";
  std::string out;
  for (const IssueName& entry : kIssueNames) {
    if (!HasIssue(issues, entry.bit)) continue;
    if (!out.empty()) out.push_back('|');
    out += entry.name;
  }
  return out;
}

std::string_view RecordVerdictName(RecordVerdict verdict) {
  switch (verdict) {
    case RecordVerdict::kClean:
      return "clean";
    case RecordVerdict::kDegraded:
      return "degraded";
    case RecordVerdict::kPoison:
      return "poison";
  }
  return "unknown";
}

bool Quarantine::Contains(uint64_t item_id) const {
  for (const QuarantineEntry& e : entries) {
    if (e.item_id == item_id) return true;
  }
  return false;
}

RecordValidation RecordValidator::Validate(
    const collect::CollectedItem& item) const {
  RecordValidation v;

  if (!std::isfinite(item.item.price) || item.item.price < 0.0 ||
      item.item.price > options_.max_price) {
    v.issues |= RecordIssue::kAbsurdPrice;
  }
  if (item.item.sales_volume < 0) {
    v.issues |= RecordIssue::kMissingOrders;
  }
  if (item.comments.empty()) {
    v.issues |= RecordIssue::kMissingComments;
  }

  std::unordered_set<uint64_t> seen_ids;
  seen_ids.reserve(item.comments.size());
  for (const collect::CommentRecord& c : item.comments) {
    if (!seen_ids.insert(c.comment_id).second) {
      v.issues |= RecordIssue::kDuplicateCommentIds;
    }
    if (c.item_id != item.item.item_id) {
      v.issues |= RecordIssue::kMismatchedItemId;
    }
    if (c.content.size() > options_.max_comment_bytes) {
      v.issues |= RecordIssue::kOversizedComment;
    } else if (!text::IsValidUtf8(c.content)) {
      // Oversized bodies are already poison; skip the UTF-8 scan for them.
      v.issues |= RecordIssue::kCorruptCommentText;
    }
  }

  if ((v.issues & kPoisonMask) != RecordIssue::kNone) {
    v.verdict = RecordVerdict::kPoison;
  } else if (v.issues != RecordIssue::kNone) {
    v.verdict = RecordVerdict::kDegraded;
  }
  return v;
}

}  // namespace cats::core
