#ifndef CATS_CORE_RECORD_VALIDATOR_H_
#define CATS_CORE_RECORD_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "collect/store.h"

namespace cats::core {

/// Issues a RecordValidator can find in one CollectedItem, as a bitmask so
/// a single record can carry several. Degraded issues mean a field is
/// missing but the rest of the record is trustworthy; poison issues mean
/// the record's content cannot be trusted at all and must be quarantined.
enum class RecordIssue : uint32_t {
  kNone = 0,
  // Degraded: the item can still be scored from imputed features.
  kMissingComments = 1u << 0,  // no comments collected
  kMissingOrders = 1u << 1,    // sales_volume < 0 (field-absent sentinel)
  // Poison: the record is quarantined, never featurized or scored.
  kAbsurdPrice = 1u << 2,        // non-finite, negative or implausibly huge
  kCorruptCommentText = 1u << 3, // comment content is not valid UTF-8
  kOversizedComment = 1u << 4,   // comment content past max_comment_bytes
  kDuplicateCommentIds = 1u << 5,// two comments share a comment_id
  kMismatchedItemId = 1u << 6,   // a comment claims a different item_id
};

constexpr RecordIssue operator|(RecordIssue a, RecordIssue b) {
  return static_cast<RecordIssue>(static_cast<uint32_t>(a) |
                                  static_cast<uint32_t>(b));
}
constexpr RecordIssue operator&(RecordIssue a, RecordIssue b) {
  return static_cast<RecordIssue>(static_cast<uint32_t>(a) &
                                  static_cast<uint32_t>(b));
}
inline RecordIssue& operator|=(RecordIssue& a, RecordIssue b) {
  return a = a | b;
}
constexpr bool HasIssue(RecordIssue issues, RecordIssue bit) {
  return (issues & bit) != RecordIssue::kNone;
}

/// "missing_comments|absurd_price"-style rendering for reports and logs.
std::string RecordIssuesToString(RecordIssue issues);

/// The three-way routing decision for one record.
enum class RecordVerdict : uint8_t {
  kClean = 0,    // full-confidence pipeline
  kDegraded,     // scored from imputed features, confidence-flagged
  kPoison,       // quarantined, excluded from scoring
};

std::string_view RecordVerdictName(RecordVerdict verdict);

struct RecordValidatorOptions {
  /// Prices above this are absurd (the simulator's catalog tops out around
  /// 1e4; real listings at 1e8 are data errors, not products).
  double max_price = 1e8;
  /// Comment bodies larger than this are poison, not reviews.
  size_t max_comment_bytes = 16 * 1024;
};

/// One quarantined record: which item, and why.
struct QuarantineEntry {
  uint64_t item_id = 0;
  RecordIssue issues = RecordIssue::kNone;
};

/// The per-run poison ledger, surfaced in DetectionReport so operators can
/// see exactly what was excluded and replay it after upstream fixes.
struct Quarantine {
  std::vector<QuarantineEntry> entries;

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }
  bool Contains(uint64_t item_id) const;
};

/// Classification of one item's validation result.
struct RecordValidation {
  RecordVerdict verdict = RecordVerdict::kClean;
  RecordIssue issues = RecordIssue::kNone;
};

/// Classifies CollectedItems as clean / degraded / poison before they reach
/// feature extraction. Stateless and cheap: one pass over the comments.
class RecordValidator {
 public:
  explicit RecordValidator(RecordValidatorOptions options)
      : options_(options) {}
  RecordValidator() : RecordValidator(RecordValidatorOptions{}) {}

  RecordValidation Validate(const collect::CollectedItem& item) const;

  const RecordValidatorOptions& options() const { return options_; }

 private:
  RecordValidatorOptions options_;
};

}  // namespace cats::core

#endif  // CATS_CORE_RECORD_VALIDATOR_H_
