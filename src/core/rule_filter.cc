#include "core/rule_filter.h"

namespace cats::core {

FilterReason RuleFilter::Evaluate(const collect::CollectedItem& item,
                                  const FeatureVector& features) const {
  if (item.comments.empty()) return FilterReason::kNoComments;
  if (item.item.sales_volume < options_.min_sales_volume) {
    return FilterReason::kLowSales;
  }
  if (options_.require_positive_signal) {
    float positives =
        features[static_cast<size_t>(FeatureId::kAveragePositiveNumber)];
    float ngrams =
        features[static_cast<size_t>(FeatureId::kAverageNgramNumber)];
    if (positives <= 0.0f && ngrams <= 0.0f) {
      return FilterReason::kNoPositiveSignal;
    }
  }
  return FilterReason::kKept;
}

std::vector<size_t> RuleFilter::FilterIndices(
    const std::vector<collect::CollectedItem>& items,
    const std::vector<FeatureVector>& features) const {
  std::vector<size_t> kept;
  kept.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (Evaluate(items[i], features[i]) == FilterReason::kKept) {
      kept.push_back(i);
    }
  }
  return kept;
}

}  // namespace cats::core
