#ifndef CATS_CORE_RULE_FILTER_H_
#define CATS_CORE_RULE_FILTER_H_

#include <cstdint>
#include <vector>

#include "collect/store.h"
#include "core/feature_def.h"
#include "core/feature_extractor.h"

namespace cats::core {

struct RuleFilterOptions {
  /// Items with fewer sales than this are dropped (paper: "filtering the
  /// e-commerce items of which the sales volumes are less than 5").
  int64_t min_sales_volume = 5;
  /// Drop items whose comments contain no positive words or positive
  /// n-grams (paper's second stage-1 rule).
  bool require_positive_signal = true;
};

/// Why an item was removed by stage 1.
enum class FilterReason : uint8_t {
  kKept = 0,
  kLowSales,
  kNoPositiveSignal,
  kNoComments,
};

/// Stage 1 of the detector (paper §II-B): cheap rules that discard items a
/// promotion could not plausibly be boosting, before the classifier runs.
class RuleFilter {
 public:
  explicit RuleFilter(RuleFilterOptions options) : options_(options) {}
  RuleFilter() : RuleFilter(RuleFilterOptions{}) {}

  /// Decision for one item given its already-extracted features.
  FilterReason Evaluate(const collect::CollectedItem& item,
                        const FeatureVector& features) const;

  /// Indices of items that survive the filter.
  std::vector<size_t> FilterIndices(
      const std::vector<collect::CollectedItem>& items,
      const std::vector<FeatureVector>& features) const;

  const RuleFilterOptions& options() const { return options_; }

 private:
  RuleFilterOptions options_;
};

}  // namespace cats::core

#endif  // CATS_CORE_RULE_FILTER_H_
