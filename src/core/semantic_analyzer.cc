#include "core/semantic_analyzer.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cats::core {
namespace {

Status SaveWordList(const std::string& path,
                    const std::vector<std::string>& words) {
  std::string content;
  for (const std::string& w : words) {
    content += w;
    content.push_back('\n');
  }
  // Atomic (temp + rename), like every model-file write: a crash mid-save
  // never leaves a truncated lexicon for LoadModel to half-parse.
  return WriteStringToFileAtomic(path, content);
}

Result<std::vector<std::string>> LoadWordList(const std::string& path) {
  CATS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::vector<std::string> words;
  for (const std::string& line : Split(content, '\n')) {
    if (!line.empty()) words.push_back(line);
  }
  return words;
}

}  // namespace

Status SaveSemanticModel(const SemanticModel& model, const std::string& dir) {
  CATS_RETURN_NOT_OK(model.sentiment.Save(dir + "/sentiment.model"));
  CATS_RETURN_NOT_OK(SaveWordList(dir + "/positive_lexicon.txt",
                                  model.positive.SortedWords()));
  CATS_RETURN_NOT_OK(SaveWordList(dir + "/negative_lexicon.txt",
                                  model.negative.SortedWords()));
  std::vector<std::string> dict_words(model.dictionary.words().begin(),
                                      model.dictionary.words().end());
  std::sort(dict_words.begin(), dict_words.end());
  return SaveWordList(dir + "/dictionary.txt", dict_words);
}

Result<SemanticModel> LoadSemanticModel(const std::string& dir) {
  SemanticModel model;
  CATS_ASSIGN_OR_RETURN(std::vector<std::string> dict_words,
                        LoadWordList(dir + "/dictionary.txt"));
  for (const std::string& w : dict_words) model.dictionary.AddWord(w);
  CATS_ASSIGN_OR_RETURN(std::vector<std::string> pos,
                        LoadWordList(dir + "/positive_lexicon.txt"));
  model.positive = nlp::Lexicon(std::move(pos));
  CATS_ASSIGN_OR_RETURN(std::vector<std::string> neg,
                        LoadWordList(dir + "/negative_lexicon.txt"));
  model.negative = nlp::Lexicon(std::move(neg));
  CATS_ASSIGN_OR_RETURN(model.sentiment,
                        nlp::SentimentModel::Load(dir + "/sentiment.model"));
  model.Compile();
  return model;
}

Result<SemanticModel> SemanticAnalyzer::Build(
    const std::vector<std::string>& corpus,
    text::SegmentationDictionary dictionary,
    const std::vector<std::string>& positive_seeds,
    const std::vector<std::string>& negative_seeds,
    const std::vector<std::pair<std::string, bool>>& sentiment_corpus) {
  if (corpus.empty()) {
    return Status::InvalidArgument("semantic analyzer needs a corpus");
  }
  if (positive_seeds.empty() || negative_seeds.empty()) {
    return Status::InvalidArgument("semantic analyzer needs seed words");
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::ScopedTimer build_timer(
      registry.GetLatencyHistogram(obs::kSemanticBuildLatencyMicros));

  SemanticModel model;
  model.dictionary = std::move(dictionary);

  // Segment the corpus once; word2vec and — via labels — the sentiment
  // model both consume token sequences. Segmentation is embarrassingly
  // parallel (Segmenter::Segment is const over a read-only dictionary), so
  // both loops fan out over the pool into pre-sized per-comment slots and
  // compact afterwards — output order is identical to the serial loop for
  // any thread count.
  text::Segmenter segmenter(&model.dictionary);
  size_t threads = options_.num_threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : options_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  std::vector<std::vector<std::string>> segmented(corpus.size());
  auto segment_corpus = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      segmented[i] = segmenter.Segment(corpus[i]);
    }
  };
  if (pool != nullptr && corpus.size() >= 2) {
    pool->ParallelForChunks(corpus.size(), segment_corpus);
  } else {
    segment_corpus(0, corpus.size());
  }
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(corpus.size());
  for (std::vector<std::string>& tokens : segmented) {
    if (!tokens.empty()) sentences.push_back(std::move(tokens));
  }

  registry.GetCounter(obs::kSemanticCommentsSegmentedTotal)
      ->Increment(corpus.size());
  registry.GetCounter(obs::kSemanticSentencesTrainedTotal)
      ->Increment(sentences.size());
  CATS_LOG(Info) << "semantic analyzer: training word2vec on "
                 << sentences.size() << " sentences";
  nlp::Word2Vec w2v(options_.word2vec);
  CATS_ASSIGN_OR_RETURN(nlp::EmbeddingStore embeddings,
                        w2v.Train(sentences));

  CATS_ASSIGN_OR_RETURN(
      model.positive,
      nlp::ExpandLexicon(embeddings, positive_seeds, options_.expansion));
  CATS_ASSIGN_OR_RETURN(
      model.negative,
      nlp::ExpandLexicon(embeddings, negative_seeds, options_.expansion));
  CATS_LOG(Info) << "semantic analyzer: |P|=" << model.positive.size()
                 << " |N|=" << model.negative.size();
  registry.GetGauge(obs::kSemanticLexiconPositiveSize)
      ->Set(static_cast<double>(model.positive.size()));
  registry.GetGauge(obs::kSemanticLexiconNegativeSize)
      ->Set(static_cast<double>(model.negative.size()));

  // Sentiment model on the labeled review corpus — same pre-sized-slot
  // fan-out as the word2vec corpus above.
  std::vector<std::vector<std::string>> sentiment_tokens(
      sentiment_corpus.size());
  auto segment_sentiment = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sentiment_tokens[i] = segmenter.Segment(sentiment_corpus[i].first);
    }
  };
  if (pool != nullptr && sentiment_corpus.size() >= 2) {
    pool->ParallelForChunks(sentiment_corpus.size(), segment_sentiment);
  } else {
    segment_sentiment(0, sentiment_corpus.size());
  }
  std::vector<nlp::SentimentExample> examples;
  examples.reserve(sentiment_corpus.size());
  for (size_t i = 0; i < sentiment_corpus.size(); ++i) {
    if (sentiment_tokens[i].empty()) continue;
    nlp::SentimentExample ex;
    ex.tokens = std::move(sentiment_tokens[i]);
    ex.positive = sentiment_corpus[i].second;
    examples.push_back(std::move(ex));
  }
  registry.GetCounter(obs::kSemanticCommentsSegmentedTotal)
      ->Increment(sentiment_corpus.size());
  registry.GetCounter(obs::kSemanticSentimentExamplesTotal)
      ->Increment(examples.size());
  model.sentiment = nlp::SentimentModel(options_.sentiment);
  CATS_RETURN_NOT_OK(model.sentiment.Train(examples));
  model.Compile();

  embeddings_ = std::make_unique<nlp::EmbeddingStore>(std::move(embeddings));
  return model;
}

}  // namespace cats::core
