#ifndef CATS_CORE_SEMANTIC_ANALYZER_H_
#define CATS_CORE_SEMANTIC_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/token_index.h"
#include "nlp/lexicon.h"
#include "nlp/sentiment.h"
#include "nlp/word2vec.h"
#include "text/segmenter.h"
#include "util/result.h"

namespace cats::core {

/// Everything the feature extractor needs from language understanding:
/// a segmenter dictionary, the expanded P/N lexicons, and the sentiment
/// scorer. Produced once per language by the SemanticAnalyzer and then
/// shared read-only across platforms (the paper trains these on Taobao
/// and reuses them on E-platform).
struct SemanticModel {
  text::SegmentationDictionary dictionary;
  nlp::Lexicon positive;   // P, Table I
  nlp::Lexicon negative;   // N, Table I
  nlp::SentimentModel sentiment;

  /// The compiled token-id view (trie segmenter + id-keyed lexicons +
  /// sentiment table). Null until Compile() runs; the feature extractor
  /// falls back to the legacy string path when absent. Shared so copies of
  /// the model reuse the same immutable index.
  std::shared_ptr<const TokenIndex> token_index;

  /// (Re)builds token_index from the current parts. Build, LoadSemanticModel
  /// and Cats::SetSemanticModel call this; call it again after mutating the
  /// dictionary/lexicons/sentiment by hand.
  void Compile() {
    token_index = TokenIndex::Build(dictionary, positive, negative, sentiment);
  }

  std::vector<std::string> Segment(std::string_view comment) const {
    text::Segmenter segmenter(&dictionary);
    return segmenter.Segment(comment);
  }
};

/// Persists / restores a SemanticModel under `dir` (sentiment.model,
/// positive_lexicon.txt, negative_lexicon.txt, dictionary.txt). `dir` must
/// exist for Save.
Status SaveSemanticModel(const SemanticModel& model, const std::string& dir);
Result<SemanticModel> LoadSemanticModel(const std::string& dir);

struct SemanticAnalyzerOptions {
  nlp::Word2VecOptions word2vec;
  nlp::LexiconExpansionOptions expansion;
  nlp::SentimentOptions sentiment;
  size_t num_seed_words = 5;
  /// Workers for the corpus segmentation loops in Build (0 = hardware
  /// concurrency, 1 = serial). Output order is preserved for any value:
  /// each comment's tokens land in a pre-sized slot and empties are
  /// compacted out afterwards.
  size_t num_threads = 4;
};

/// The paper's semantic analyzer (§II-B): trains word2vec on a large
/// comment corpus, expands positive/negative seed lexicons through
/// embedding k-NN, and provides the sentiment model.
class SemanticAnalyzer {
 public:
  explicit SemanticAnalyzer(SemanticAnalyzerOptions options)
      : options_(options) {}
  SemanticAnalyzer() : SemanticAnalyzer(SemanticAnalyzerOptions{}) {}

  /// Builds a complete SemanticModel.
  ///   corpus            raw (unsegmented) comments for word2vec
  ///   dictionary        segmentation dictionary for the language
  ///   positive_seeds /
  ///   negative_seeds    the 好评/差评-style seed words
  ///   sentiment_corpus  labeled (text, is_positive) review docs
  Result<SemanticModel> Build(
      const std::vector<std::string>& corpus,
      text::SegmentationDictionary dictionary,
      const std::vector<std::string>& positive_seeds,
      const std::vector<std::string>& negative_seeds,
      const std::vector<std::pair<std::string, bool>>& sentiment_corpus);

  /// Embeddings from the last Build (for Table I diagnostics).
  const nlp::EmbeddingStore* embeddings() const { return embeddings_.get(); }

 private:
  SemanticAnalyzerOptions options_;
  std::unique_ptr<nlp::EmbeddingStore> embeddings_;
};

}  // namespace cats::core

#endif  // CATS_CORE_SEMANTIC_ANALYZER_H_
