#include "core/token_index.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"

namespace cats::core {

std::shared_ptr<const TokenIndex> TokenIndex::Build(
    const text::SegmentationDictionary& dictionary,
    const nlp::Lexicon& positive, const nlp::Lexicon& negative,
    const nlp::SentimentModel& sentiment) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  auto index = std::shared_ptr<TokenIndex>(new TokenIndex());
  {
    obs::ScopedTimer timer(
        registry.GetLatencyHistogram(obs::kTextTrieBuildLatencyMicros));
    index->segmenter_ = text::IdSegmenter(dictionary);
    const std::vector<std::string>& dict_words =
        index->segmenter_.dict_words();
    index->positive_ = nlp::LexiconIdSet(positive, dict_words);
    index->negative_ = nlp::LexiconIdSet(negative, dict_words);
    index->sentiment_ = nlp::SentimentIdTable(sentiment, dict_words);
  }
  registry.GetGauge(obs::kTextTrieNodes)
      ->Set(static_cast<double>(index->segmenter_.trie().num_slots()));
  registry.GetGauge(obs::kTextTrieWords)
      ->Set(static_cast<double>(index->segmenter_.trie().num_words()));
  return index;
}

}  // namespace cats::core
