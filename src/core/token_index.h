#ifndef CATS_CORE_TOKEN_INDEX_H_
#define CATS_CORE_TOKEN_INDEX_H_

#include <memory>
#include <vector>

#include "nlp/lexicon.h"
#include "nlp/sentiment.h"
#include "text/id_segmenter.h"
#include "text/segmenter.h"

namespace cats::core {

/// The compiled token-id view of a SemanticModel: the double-array-trie
/// segmenter plus id-keyed projections of the P/N lexicons and the
/// sentiment vocabulary, all sharing one dict-id space (the sorted
/// dictionary word list). Built once per semantic model (SemanticModel::
/// Compile), immutable and thread-safe afterwards; the feature extractor's
/// id hot path runs entirely against this index with zero string hashing.
///
/// Self-contained by design: it copies what it needs from the model parts,
/// so a SemanticModel can be moved or copied freely without invalidating a
/// previously compiled index (shared_ptr semantics).
class TokenIndex {
 public:
  /// Compiles the index. Registers the `text.trie.*` gauges/latency and
  /// returns a shared handle.
  static std::shared_ptr<const TokenIndex> Build(
      const text::SegmentationDictionary& dictionary,
      const nlp::Lexicon& positive, const nlp::Lexicon& negative,
      const nlp::SentimentModel& sentiment);

  const text::IdSegmenter& segmenter() const { return segmenter_; }
  const nlp::LexiconIdSet& positive() const { return positive_; }
  const nlp::LexiconIdSet& negative() const { return negative_; }
  const nlp::SentimentIdTable& sentiment() const { return sentiment_; }

 private:
  TokenIndex() = default;

  text::IdSegmenter segmenter_;
  nlp::LexiconIdSet positive_;
  nlp::LexiconIdSet negative_;
  nlp::SentimentIdTable sentiment_;
};

}  // namespace cats::core

#endif  // CATS_CORE_TOKEN_INDEX_H_
