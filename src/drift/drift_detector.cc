#include "drift/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "ml/dataset.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cats::drift {
namespace {

struct DriftMetrics {
  obs::Gauge* psi;
  obs::Gauge* page_hinkley;
  obs::Gauge* status;
  obs::Counter* observations;
  obs::Counter* reference_resets;
  obs::Counter* warnings;
  obs::Counter* drifted;

  static const DriftMetrics& Get() {
    static const DriftMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* out = new DriftMetrics{};
      out->psi = reg.GetGauge(obs::kDriftPsi);
      out->page_hinkley = reg.GetGauge(obs::kDriftPageHinkley);
      out->status = reg.GetGauge(obs::kDriftStatus);
      out->observations = reg.GetCounter(obs::kDriftObservationsTotal);
      out->reference_resets = reg.GetCounter(obs::kDriftReferenceResetsTotal);
      out->warnings = reg.GetCounter(obs::kDriftWarningsTotal);
      out->drifted = reg.GetCounter(obs::kDriftDriftedTotal);
      return out;
    }();
    return *m;
  }
};

/// Floor for histogram fractions so PSI's log terms stay finite when a bin
/// empties out on one side.
constexpr double kPsiEpsilon = 1e-4;

}  // namespace

std::string_view DriftStatusName(DriftStatus status) {
  switch (status) {
    case DriftStatus::kStable:
      return "stable";
    case DriftStatus::kWarning:
      return "warning";
    case DriftStatus::kDrifted:
      return "drifted";
  }
  return "unknown";
}

DriftDetector::DriftDetector(const DriftDetectorOptions& options)
    : options_(options) {
  options_.window_size = std::max<size_t>(options_.window_size, 8);
  options_.min_observations =
      std::clamp<size_t>(options_.min_observations, 8, options_.window_size);
  options_.num_bins = std::clamp<size_t>(options_.num_bins, 2, 64);
  window_bins_.assign(options_.window_size, 0);
  counts_.assign(options_.num_bins, 0);
}

void DriftDetector::SetReference(const std::vector<double>& scores) {
  std::lock_guard<std::mutex> lock(mu_);
  has_reference_ = false;
  window_pos_ = 0;
  window_count_ = 0;
  std::fill(counts_.begin(), counts_.end(), 0u);
  ph_up_ = ph_up_min_ = ph_down_ = ph_down_min_ = 0.0;
  psi_ = 0.0;
  ph_stat_ = 0.0;
  observations_ = 0;  // per-reference; the registry counter stays cumulative
  status_.store(static_cast<int>(DriftStatus::kStable),
                std::memory_order_release);
  const auto& metrics = DriftMetrics::Get();
  metrics.psi->Set(0.0);
  metrics.page_hinkley->Set(0.0);
  metrics.status->Set(0.0);
  metrics.reference_resets->Increment();
  if (scores.empty()) return;

  // Quantile bin edges over the score column, learned with the same
  // BinMapper the histogram GBDT trains on. One feature, scores as rows.
  ml::Dataset ref(std::vector<std::string>{"score"});
  for (double s : scores) {
    (void)ref.AddRow({static_cast<float>(s)}, 0);
  }
  bin_mapper_ = ml::BinMapper::Build(ref, options_.num_bins);
  size_t bins = bin_mapper_.num_bins(0);
  ref_fraction_.assign(options_.num_bins, 0.0);
  double mean = 0.0;
  for (double s : scores) {
    size_t b = bin_mapper_.BinOf(0, static_cast<float>(s));
    ref_fraction_[std::min<size_t>(b, options_.num_bins - 1)] += 1.0;
    mean += s;
  }
  for (double& f : ref_fraction_) {
    f /= static_cast<double>(scores.size());
  }
  ref_mean_ = mean / static_cast<double>(scores.size());
  // A degenerate reference (all scores identical -> one bin) still arms the
  // Page-Hinkley test; PSI just sees a single full bin.
  (void)bins;
  has_reference_ = true;
}

bool DriftDetector::has_reference() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_reference_;
}

double DriftDetector::psi() const {
  std::lock_guard<std::mutex> lock(mu_);
  return psi_;
}

double DriftDetector::page_hinkley() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ph_stat_;
}

uint64_t DriftDetector::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

void DriftDetector::Observe(double score) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_reference_) return;
  ++observations_;
  DriftMetrics::Get().observations->Increment();

  uint8_t bin = static_cast<uint8_t>(std::min<size_t>(
      bin_mapper_.BinOf(0, static_cast<float>(score)), options_.num_bins - 1));
  if (window_count_ == options_.window_size) {
    --counts_[window_bins_[window_pos_]];
  } else {
    ++window_count_;
  }
  window_bins_[window_pos_] = bin;
  window_pos_ = (window_pos_ + 1) % options_.window_size;
  ++counts_[bin];

  // Two-sided Page-Hinkley on the deviation from the reference mean.
  double dev = score - ref_mean_;
  ph_up_ += dev - options_.ph_delta;
  ph_up_min_ = std::min(ph_up_min_, ph_up_);
  ph_down_ += -dev - options_.ph_delta;
  ph_down_min_ = std::min(ph_down_min_, ph_down_);

  RecomputeLocked();
}

void DriftDetector::ObserveBatch(const std::vector<double>& scores) {
  for (double s : scores) Observe(s);
}

void DriftDetector::RecomputeLocked() {
  if (window_count_ < options_.min_observations) return;

  double psi = 0.0;
  for (size_t b = 0; b < options_.num_bins; ++b) {
    double p = std::max(
        static_cast<double>(counts_[b]) / static_cast<double>(window_count_),
        kPsiEpsilon);
    double q = std::max(ref_fraction_[b], kPsiEpsilon);
    psi += (p - q) * std::log(p / q);
  }
  psi_ = psi;
  ph_stat_ = std::max(ph_up_ - ph_up_min_, ph_down_ - ph_down_min_);

  DriftStatus status = DriftStatus::kStable;
  if (psi_ >= options_.psi_drifted || ph_stat_ >= options_.ph_drifted) {
    status = DriftStatus::kDrifted;
  } else if (psi_ >= options_.psi_warning || ph_stat_ >= options_.ph_warning) {
    status = DriftStatus::kWarning;
  }

  const auto& metrics = DriftMetrics::Get();
  metrics.psi->Set(psi_);
  metrics.page_hinkley->Set(ph_stat_);
  metrics.status->Set(static_cast<double>(status));
  DriftStatus prev = static_cast<DriftStatus>(
      status_.exchange(static_cast<int>(status), std::memory_order_acq_rel));
  if (status > prev) {
    if (prev < DriftStatus::kWarning && status >= DriftStatus::kWarning) {
      metrics.warnings->Increment();
    }
    if (status == DriftStatus::kDrifted) metrics.drifted->Increment();
  }
}

}  // namespace cats::drift
