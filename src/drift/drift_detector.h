#ifndef CATS_DRIFT_DRIFT_DETECTOR_H_
#define CATS_DRIFT_DRIFT_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "ml/binning.h"

namespace cats::drift {

/// How far the live score distribution has wandered from the deploy-time
/// reference. ServeLoop surfaces this in `health` responses as a brownout
/// signal: kWarning means "watch it", kDrifted means "the served model is
/// stale — retrain".
enum class DriftStatus : int {
  kStable = 0,
  kWarning = 1,
  kDrifted = 2,
};

std::string_view DriftStatusName(DriftStatus status);

struct DriftDetectorOptions {
  /// Sliding window of most-recent scores the live histogram is built over.
  size_t window_size = 512;
  /// Observations required before the detector renders any verdict (a cold
  /// window of three requests is noise, not evidence).
  size_t min_observations = 128;
  /// Score-histogram bins (quantile boundaries learned from the reference
  /// via ml::BinMapper, so every bin holds equal reference mass).
  size_t num_bins = 10;
  /// Population-stability-index thresholds; the 0.10 / 0.25 industry
  /// convention for "shifting" / "shifted".
  double psi_warning = 0.10;
  double psi_drifted = 0.25;
  /// Page-Hinkley mean-shift test: per-observation drift allowance and the
  /// warning/alarm thresholds on the accumulated deviation statistic.
  double ph_delta = 0.005;
  double ph_warning = 4.0;
  double ph_drifted = 8.0;
};

/// Online score-distribution drift detector. Cheap enough to sit on the
/// serving hot path: one mutex-guarded bin update per scored item, PSI and
/// Page-Hinkley refreshed incrementally from running counts.
///
/// Two complementary detectors, worst verdict wins:
///  - PSI over the binned score histogram (window vs. reference) catches
///    shape changes even when the mean holds still;
///  - a two-sided Page-Hinkley test on the score mean catches slow
///    monotonic creep long before the histogram moves a whole bin.
///
/// Thread-safe. Publishes `drift.*` gauges/counters on every update.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorOptions& options);

  /// Installs the reference distribution (scores of the freshly deployed
  /// model on held-out probe data), (re)builds the quantile bin edges and
  /// clears the live window. Called at deploy and after every hot swap.
  void SetReference(const std::vector<double>& scores);

  /// Feeds one live score / a batch of live scores.
  void Observe(double score);
  void ObserveBatch(const std::vector<double>& scores);

  DriftStatus status() const {
    return static_cast<DriftStatus>(status_.load(std::memory_order_acquire));
  }
  bool has_reference() const;
  /// Latest PSI / Page-Hinkley statistics (0 until min_observations).
  double psi() const;
  double page_hinkley() const;
  uint64_t observations() const;

  const DriftDetectorOptions& options() const { return options_; }

 private:
  void RecomputeLocked();

  DriftDetectorOptions options_;
  mutable std::mutex mu_;
  // Reference: quantile bin edges (ml::BinMapper over the score column) and
  // per-bin mass, plus the reference mean for Page-Hinkley.
  ml::BinMapper bin_mapper_;
  std::vector<double> ref_fraction_;
  double ref_mean_ = 0.0;
  bool has_reference_ = false;
  // Live sliding window: ring buffer of bin indices + running bin counts.
  std::vector<uint8_t> window_bins_;
  size_t window_pos_ = 0;
  size_t window_count_ = 0;
  std::vector<uint32_t> counts_;
  // Page-Hinkley accumulators (two-sided).
  double ph_up_ = 0.0, ph_up_min_ = 0.0;
  double ph_down_ = 0.0, ph_down_min_ = 0.0;
  uint64_t observations_ = 0;
  double psi_ = 0.0;
  double ph_stat_ = 0.0;
  std::atomic<int> status_{0};
};

}  // namespace cats::drift

#endif  // CATS_DRIFT_DRIFT_DETECTOR_H_
