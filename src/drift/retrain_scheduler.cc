#include "drift/retrain_scheduler.h"

#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cats::drift {
namespace {

struct RetrainMetrics {
  obs::Counter* attempts;
  obs::Counter* successes;
  obs::Counter* rejections;
  obs::Gauge* window_examples;

  static const RetrainMetrics& Get() {
    static const RetrainMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* out = new RetrainMetrics{};
      out->attempts = reg.GetCounter(obs::kDriftRetrainAttemptsTotal);
      out->successes = reg.GetCounter(obs::kDriftRetrainSuccessTotal);
      out->rejections = reg.GetCounter(obs::kDriftRetrainRejectedTotal);
      out->window_examples = reg.GetGauge(obs::kDriftRetrainWindowExamples);
      return out;
    }();
    return *m;
  }
};

}  // namespace

RetrainScheduler::RetrainScheduler(const RetrainSchedulerOptions& options,
                                   fault::VirtualClock* clock,
                                   RetrainFn retrain)
    : options_(options), clock_(clock), retrain_(std::move(retrain)) {}

void RetrainScheduler::AddLabeled(collect::CollectedItem item, int label) {
  std::lock_guard<std::mutex> lock(mu_);
  items_.push_back(std::move(item));
  labels_.push_back(label);
  while (items_.size() > options_.window_capacity) {
    items_.pop_front();
    labels_.pop_front();
  }
}

RetrainScheduler::TickOutcome RetrainScheduler::Tick(DriftStatus status) {
  TickOutcome outcome;
  DriftStatus trigger = options_.retrain_on_warning ? DriftStatus::kWarning
                                                    : DriftStatus::kDrifted;
  if (status < trigger) return outcome;

  std::vector<collect::CollectedItem> items;
  std::vector<int> labels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() < options_.min_examples) return outcome;
    int64_t now = clock_->NowMicros();
    if (has_attempted_ &&
        now - last_attempt_micros_ < options_.cooldown_micros) {
      return outcome;
    }
    has_attempted_ = true;
    last_attempt_micros_ = now;
    ++attempts_;
    items.assign(items_.begin(), items_.end());
    labels.assign(labels_.begin(), labels_.end());
  }
  const auto& metrics = RetrainMetrics::Get();
  metrics.attempts->Increment();
  metrics.window_examples->Set(static_cast<double>(items.size()));

  outcome.attempted = true;
  outcome.status = retrain_(items, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (outcome.status.ok()) {
    ++successes_;
    metrics.successes->Increment();
  } else {
    // The candidate was rejected (fit failure or probe regression in the
    // swap path); the previous model keeps serving.
    ++rejections_;
    metrics.rejections->Increment();
  }
  return outcome;
}

size_t RetrainScheduler::window_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

uint64_t RetrainScheduler::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_;
}

uint64_t RetrainScheduler::successes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return successes_;
}

uint64_t RetrainScheduler::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

}  // namespace cats::drift
