#ifndef CATS_DRIFT_RETRAIN_SCHEDULER_H_
#define CATS_DRIFT_RETRAIN_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "collect/store.h"
#include "drift/drift_detector.h"
#include "fault/clock.h"
#include "util/result.h"

namespace cats::drift {

struct RetrainSchedulerOptions {
  /// Most-recent labeled examples retained (FIFO). Warm-start retraining
  /// fits on this window, so it tracks the *current* fraud mix instead of
  /// re-digesting the whole history.
  size_t window_capacity = 4096;
  /// Don't bother retraining on fewer examples than this.
  size_t min_examples = 64;
  /// Minimum spacing between retrain attempts — a drifted detector keeps
  /// reporting kDrifted until the model is actually swapped, and one
  /// retrain per tick would thrash.
  int64_t cooldown_micros = 60 * 1000 * 1000;
  /// Fire on kWarning too, not just kDrifted.
  bool retrain_on_warning = false;
};

/// Drives the self-healing half of the drift loop: accumulates a sliding
/// window of labeled (item, label) examples, and when the drift detector
/// reports trouble, fires the injected retrain callback (warm-start fit +
/// candidate save + ModelGateway swap, wired up by the caller). A rejected
/// candidate (callback error) leaves the old model serving and raises
/// `drift.retrain.rejected_total`; the cooldown still applies so a
/// persistently failing retrain can't spin.
///
/// Time comes from an injected fault::VirtualClock, so scheduler tests run
/// on FakeClock with zero sleeps. Thread-safe.
class RetrainScheduler {
 public:
  /// The retrain callback: fit/validate/deploy on the labeled window.
  /// Returning an error rejects the candidate.
  using RetrainFn = std::function<Status(
      const std::vector<collect::CollectedItem>& items,
      const std::vector<int>& labels)>;

  /// `clock` is borrowed and must outlive the scheduler.
  RetrainScheduler(const RetrainSchedulerOptions& options,
                   fault::VirtualClock* clock, RetrainFn retrain);

  /// Adds one labeled example to the window (evicting the oldest past
  /// capacity). In production labels arrive late (chargebacks, manual
  /// review); here the caller decides what ground truth to feed.
  void AddLabeled(collect::CollectedItem item, int label);

  struct TickOutcome {
    bool attempted = false;
    Status status;  // meaningful when attempted
  };

  /// Reacts to the detector's current verdict: possibly fires one retrain.
  /// Returns what happened so callers (and tests) don't have to scrape
  /// metrics.
  TickOutcome Tick(DriftStatus status);

  size_t window_size() const;
  uint64_t attempts() const;
  uint64_t successes() const;
  uint64_t rejections() const;

  const RetrainSchedulerOptions& options() const { return options_; }

 private:
  RetrainSchedulerOptions options_;
  fault::VirtualClock* clock_;  // not owned
  RetrainFn retrain_;

  mutable std::mutex mu_;
  std::deque<collect::CollectedItem> items_;
  std::deque<int> labels_;
  bool has_attempted_ = false;
  int64_t last_attempt_micros_ = 0;
  uint64_t attempts_ = 0;
  uint64_t successes_ = 0;
  uint64_t rejections_ = 0;
};

}  // namespace cats::drift

#endif  // CATS_DRIFT_RETRAIN_SCHEDULER_H_
