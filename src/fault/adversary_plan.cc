#include "fault/adversary_plan.h"

#include <algorithm>

#include "util/random.h"

namespace cats::fault {
namespace {

/// splitmix64 finalizer: spreads (seed, id) into an Rng seed so consecutive
/// shop/user ids draw independent decisions.
uint64_t MixSeed(uint64_t seed, uint64_t id) {
  uint64_t z = seed ^ (id + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Distinct Rng streams per decision type (same discipline as
// data_fault_plan.cc's 0xDA7A* family) so the campaign-spread draw cannot
// perturb the account-aging draw.
constexpr uint64_t kCampaignStream = 0xADB001;
constexpr uint64_t kAgingStream = 0xADB002;
constexpr uint64_t kAgedValueStream = 0xADB003;

}  // namespace

AdversaryProfile AdversaryProfile::None() { return AdversaryProfile{}; }

AdversaryProfile AdversaryProfile::Mild() {
  AdversaryProfile p;
  p.template_mutation_boost = 0.10;
  p.filler_words_mean = 6.0;
  p.positive_damp = 0.15;
  p.account_aging_prob = 0.20;
  return p;
}

AdversaryProfile AdversaryProfile::Hostile() {
  AdversaryProfile p;
  p.template_mutation_boost = 0.50;
  p.homograph_rotation_prob = 0.95;
  p.filler_words_mean = 0.0;  // padding backfires — see the header doc
  p.positive_damp = 0.80;
  p.duplicate_damp = 0.90;
  p.account_aging_prob = 0.80;
  p.ramp_days = 60;
  return p;
}

Result<AdversaryProfile> AdversaryProfile::FromName(std::string_view name) {
  if (name == "none") return None();
  if (name == "mild") return Mild();
  if (name == "hostile") return Hostile();
  return Status::InvalidArgument("unknown adversary profile: " +
                                 std::string(name));
}

double AdversaryPlan::StrengthAtDay(uint32_t day) const {
  if (profile_.ramp_days == 0) return 1.0;
  return std::min(1.0, static_cast<double>(day) /
                           static_cast<double>(profile_.ramp_days));
}

CampaignAdaptation AdversaryPlan::AdaptCampaign(uint64_t shop_id,
                                                uint32_t start_day) const {
  CampaignAdaptation adapt;
  if (!active()) return adapt;
  Rng rng(MixSeed(seed_, shop_id), kCampaignStream);
  // Per-shop competence spread: +/-20% around the ramp.
  double strength = StrengthAtDay(start_day) * rng.UniformDouble(0.8, 1.2);
  strength = std::clamp(strength, 0.0, 1.0);
  adapt.extra_jitter = profile_.template_mutation_boost * strength;
  adapt.homograph_to_neutral = profile_.homograph_rotation_prob * strength;
  adapt.filler_words_mean = profile_.filler_words_mean * strength;
  adapt.positive_scale = 1.0 - profile_.positive_damp * strength;
  adapt.duplicate_scale = 1.0 - profile_.duplicate_damp * strength;
  return adapt;
}

bool AdversaryPlan::ShouldAgeAccount(uint64_t user_id) const {
  if (profile_.account_aging_prob <= 0.0) return false;
  Rng rng(MixSeed(seed_, user_id), kAgingStream);
  return rng.Bernoulli(profile_.account_aging_prob);
}

double AdversaryPlan::AgedExpValue(uint64_t user_id, double log_mu,
                                   double log_sigma) const {
  Rng rng(MixSeed(seed_, user_id), kAgedValueStream);
  return rng.LogNormal(log_mu, log_sigma);
}

}  // namespace cats::fault
