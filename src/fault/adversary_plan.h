#ifndef CATS_FAULT_ADVERSARY_PLAN_H_
#define CATS_FAULT_ADVERSARY_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace cats::fault {

/// What one adapted campaign does differently from the baseline spam
/// playbook. All fields are *final* per-campaign knobs (already scaled by
/// the adaptation ramp); the platform layer applies them when instantiating
/// spam templates. The zero/one defaults are a strict no-op: generators must
/// draw exactly the same random sequence for a default-constructed
/// CampaignAdaptation as for the pre-adversary code path, so `none` runs
/// stay byte-identical.
struct CampaignAdaptation {
  /// Extra per-token template jitter (added to SpamCommentOptions::jitter),
  /// i.e. template mutation: adapted campaigns churn their copy so
  /// duplicate-text features decay.
  double extra_jitter = 0.0;
  /// Probability a template's homograph slot is rotated to a neutral alias
  /// instead — burning the lexicon's homograph signal.
  double homograph_to_neutral = 0.0;
  /// Mean count of neutral filler words padded onto each spam comment
  /// (Poisson), diluting positive-word density and entropy features.
  double filler_words_mean = 0.0;
  /// Multiplier on the positive-word probability (< 1 damps the sentiment
  /// signal the detector keys on). Multiplicative so 1.0 is draw-identical.
  double positive_scale = 1.0;
  /// Multiplier on the duplication-burst probability.
  double duplicate_scale = 1.0;

  bool active() const {
    return extra_jitter > 0.0 || homograph_to_neutral > 0.0 ||
           filler_words_mean > 0.0 || positive_scale != 1.0 ||
           duplicate_scale != 1.0;
  }
};

/// Full-strength knobs of an adaptive adversary. The plan below ramps these
/// in over simulated time: campaigns that start late in the window are more
/// adapted than early ones, which is what makes a model trained on the early
/// window *drift* rather than just underperform uniformly.
struct AdversaryProfile {
  /// CampaignAdaptation values at strength 1.0 (see that struct).
  double template_mutation_boost = 0.0;
  double homograph_rotation_prob = 0.0;
  double filler_words_mean = 0.0;
  /// Fraction *removed* from the positive-word probability at full strength
  /// (positive_scale = 1 - positive_damp * strength).
  double positive_damp = 0.0;
  /// Fraction removed from the duplication-burst probability.
  double duplicate_damp = 0.0;
  /// Probability a hired account is "aged": its userExpValue re-drawn from
  /// the benign distribution so it slips the rule filter's cheap-account
  /// signal. Decided once per user, not per campaign.
  double account_aging_prob = 0.0;
  /// Days until the adaptation ramp reaches full strength.
  uint32_t ramp_days = 90;

  bool active() const {
    return template_mutation_boost > 0.0 || homograph_rotation_prob > 0.0 ||
           filler_words_mean > 0.0 || positive_damp > 0.0 ||
           duplicate_damp > 0.0 || account_aging_prob > 0.0;
  }

  /// Baseline static fraud mix (the default everywhere).
  static AdversaryProfile None();
  /// A slow, partial adaptation: some template churn and filler padding.
  static AdversaryProfile Mild();
  /// The full playbook: heavy template mutation, near-total homograph
  /// rotation, strongly damped sentiment/duplication and aged sockpuppets.
  /// Deliberately no filler padding — padded spam drifts *away* from benign
  /// length/entropy statistics and gets easier to catch, so a competent
  /// adversary drops it (the mild profile keeps it as a half-measure).
  static AdversaryProfile Hostile();
  /// "none" | "mild" | "hostile" (the cats_cli --adversary-profile values).
  static Result<AdversaryProfile> FromName(std::string_view name);
};

/// A seeded source of per-campaign and per-account adversary decisions, the
/// model-plane sibling of FaultPlan (transport) and DataFaultPlan (records).
/// Like DataFaultPlan, every decision is a pure function of (profile, seed,
/// id) — no sequence state — so campaigns replanned under a different shop
/// iteration order adapt identically, and an adversarial run is
/// bit-reproducible from (config seed, profile name) alone.
class AdversaryPlan {
 public:
  AdversaryPlan(const AdversaryProfile& profile, uint64_t seed)
      : profile_(profile), seed_(seed) {}

  bool active() const { return profile_.active(); }

  /// Adaptation strength in [0, 1] at simulated day `day`: a linear ramp
  /// reaching 1 at profile().ramp_days.
  double StrengthAtDay(uint32_t day) const;

  /// Concrete knobs for the campaign of `shop_id` starting on `start_day`.
  /// Strength follows the ramp with a small per-shop spread (crews differ
  /// in competence).
  CampaignAdaptation AdaptCampaign(uint64_t shop_id, uint32_t start_day) const;

  /// Whether the hired account `user_id` has been aged to look established.
  bool ShouldAgeAccount(uint64_t user_id) const;

  /// The aged account's replacement userExpValue ~ exp(Normal(mu, sigma)),
  /// i.e. a draw from the benign distribution; the caller clips to the
  /// platform's legal range.
  double AgedExpValue(uint64_t user_id, double log_mu, double log_sigma) const;

  const AdversaryProfile& profile() const { return profile_; }

 private:
  AdversaryProfile profile_;
  uint64_t seed_;
};

}  // namespace cats::fault

#endif  // CATS_FAULT_ADVERSARY_PLAN_H_
