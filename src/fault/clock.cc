#include "fault/clock.h"

#include <chrono>
#include <thread>

namespace cats::fault {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::AdvanceMicros(int64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace cats::fault
