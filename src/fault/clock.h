#ifndef CATS_FAULT_CLOCK_H_
#define CATS_FAULT_CLOCK_H_

#include <cstdint>

namespace cats::fault {

/// Injectable time source so tests and benches run the pipeline at full
/// speed against a virtual clock while a real deployment would block.
/// Lives in the fault layer because it is the substrate every timing
/// fault (slow responses, backoff, breaker pauses) is scheduled against;
/// `collect/rate_limiter.h` re-exports the names for its callers.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  /// Current time in microseconds.
  virtual int64_t NowMicros() const = 0;
  /// Advances (fake) or sleeps (real) for `micros`.
  virtual void AdvanceMicros(int64_t micros) = 0;
};

/// Deterministic fake clock; AdvanceMicros is instantaneous.
class FakeClock : public VirtualClock {
 public:
  int64_t NowMicros() const override { return now_; }
  void AdvanceMicros(int64_t micros) override { now_ += micros; }

 private:
  int64_t now_ = 0;
};

/// Wall clock; AdvanceMicros really sleeps.
class SystemClock : public VirtualClock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;
};

}  // namespace cats::fault

#endif  // CATS_FAULT_CLOCK_H_
