#include "fault/data_fault_plan.h"

#include "util/random.h"

namespace cats::fault {
namespace {

/// splitmix64 finalizer: spreads (seed, id) into an Rng seed so consecutive
/// record ids draw independent decisions.
uint64_t MixSeed(uint64_t seed, uint64_t id) {
  uint64_t z = seed ^ (id + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Distinct Rng streams per decision type so e.g. the price draw cannot
// perturb the fault-kind draw.
constexpr uint64_t kItemStream = 0xDA7A01;
constexpr uint64_t kCommentStream = 0xDA7A02;
constexpr uint64_t kValueStream = 0xDA7A03;

}  // namespace

std::string_view DataFaultKindName(DataFaultKind kind) {
  switch (kind) {
    case DataFaultKind::kNone:
      return "none";
    case DataFaultKind::kDropComments:
      return "drop_comments";
    case DataFaultKind::kDropOrders:
      return "drop_orders";
    case DataFaultKind::kAbsurdPrice:
      return "absurd_price";
    case DataFaultKind::kCorruptText:
      return "corrupt_text";
    case DataFaultKind::kOversizeText:
      return "oversize_text";
    case DataFaultKind::kDuplicateCommentId:
      return "duplicate_comment_id";
  }
  return "unknown";
}

DataFaultProfile DataFaultProfile::None() { return DataFaultProfile{}; }

DataFaultProfile DataFaultProfile::Mild() {
  DataFaultProfile p;
  p.drop_comments_prob = 0.01;
  p.drop_orders_prob = 0.01;
  return p;
}

DataFaultProfile DataFaultProfile::Hostile() {
  DataFaultProfile p;
  p.drop_comments_prob = 0.05;
  p.drop_orders_prob = 0.05;
  p.absurd_price_prob = 0.04;
  p.corrupt_text_prob = 0.03;
  p.oversize_text_prob = 0.01;
  p.duplicate_comment_id_prob = 0.03;
  return p;
}

Result<DataFaultProfile> DataFaultProfile::FromName(std::string_view name) {
  if (name == "none") return None();
  if (name == "mild") return Mild();
  if (name == "hostile") return Hostile();
  return Status::InvalidArgument("unknown data-fault profile: " +
                                 std::string(name));
}

DataFaultKind DataFaultPlan::DecideItem(uint64_t item_id) const {
  Rng rng(MixSeed(seed_, item_id), kItemStream);
  double u = rng.UniformDouble();
  if (u < profile_.drop_comments_prob) return DataFaultKind::kDropComments;
  u -= profile_.drop_comments_prob;
  if (u < profile_.drop_orders_prob) return DataFaultKind::kDropOrders;
  u -= profile_.drop_orders_prob;
  if (u < profile_.absurd_price_prob) return DataFaultKind::kAbsurdPrice;
  return DataFaultKind::kNone;
}

DataFaultKind DataFaultPlan::DecideComment(uint64_t comment_id) const {
  Rng rng(MixSeed(seed_, comment_id), kCommentStream);
  double u = rng.UniformDouble();
  if (u < profile_.corrupt_text_prob) return DataFaultKind::kCorruptText;
  u -= profile_.corrupt_text_prob;
  if (u < profile_.oversize_text_prob) return DataFaultKind::kOversizeText;
  u -= profile_.oversize_text_prob;
  if (u < profile_.duplicate_comment_id_prob) {
    return DataFaultKind::kDuplicateCommentId;
  }
  return DataFaultKind::kNone;
}

double DataFaultPlan::AbsurdPrice(uint64_t item_id) const {
  Rng rng(MixSeed(seed_, item_id), kValueStream);
  // A listing-bot glitch: either a negative price or one many orders of
  // magnitude past anything the marketplace sells.
  if (rng.Bernoulli(0.25)) return -rng.UniformDouble(1.0, 1000.0);
  return rng.UniformDouble(1e9, 1e12);
}

std::string DataFaultPlan::CorruptText(std::string text,
                                       uint64_t comment_id) const {
  Rng rng(MixSeed(seed_, comment_id), kValueStream);
  if (!text.empty()) {
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
    text[pos] = static_cast<char>(0xFE);  // never valid in UTF-8
  }
  text.push_back(static_cast<char>(0x80));  // stray continuation byte
  return text;
}

std::string DataFaultPlan::OversizeText(std::string text,
                                        uint64_t /*comment_id*/) const {
  const size_t target = profile_.oversize_text_bytes + 1;
  text.reserve(target);
  while (text.size() < target) {
    text.append("spamspamspamspam");
  }
  return text;
}

}  // namespace cats::fault
