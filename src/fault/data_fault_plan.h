#ifndef CATS_FAULT_DATA_FAULT_PLAN_H_
#define CATS_FAULT_DATA_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace cats::fault {

/// What the simulated platform can do to the *content* of a record — the
/// dirty-data counterpart of the transport faults in fault_plan.h. The
/// paper's inputs (72.3M crawled comments, Listing 2 JSON) are public-domain
/// data where fields go missing and text arrives garbled; these kinds let
/// chaos tests emit exactly that and drive the detection pipeline's
/// quarantine / degraded paths the way chaos_crawl drives the crawler.
enum class DataFaultKind : int {
  kNone = 0,
  /// Item serves an empty comment list (degraded: features must be imputed).
  kDropComments,
  /// Item serves sales_volume = -1, the "field missing" sentinel (degraded).
  kDropOrders,
  /// Item price replaced with an absurd value (poison).
  kAbsurdPrice,
  /// Comment content corrupted into invalid UTF-8 (poison).
  kCorruptText,
  /// Comment content inflated past any plausible size (poison).
  kOversizeText,
  /// Comment id rewritten to collide with a sibling comment's id; the
  /// store's dedup silently drops the later record (data loss, not poison —
  /// the surviving item just has fewer comments).
  kDuplicateCommentId,
};
inline constexpr size_t kNumDataFaultKinds =
    static_cast<size_t>(DataFaultKind::kDuplicateCommentId) + 1;

std::string_view DataFaultKindName(DataFaultKind kind);

/// Per-kind rates. Item-level kinds (drop comments/orders, absurd price)
/// are mutually exclusive per item; comment-level kinds (corrupt, oversize,
/// duplicate id) are mutually exclusive per comment. Each group's sum must
/// be <= 1.
struct DataFaultProfile {
  double drop_comments_prob = 0.0;
  double drop_orders_prob = 0.0;
  double absurd_price_prob = 0.0;
  double corrupt_text_prob = 0.0;
  double oversize_text_prob = 0.0;
  double duplicate_comment_id_prob = 0.0;
  /// Corrupted comment bodies are padded past this size (must exceed the
  /// validator's max_comment_bytes for the fault to read as poison).
  size_t oversize_text_bytes = 48 * 1024;

  /// Perfectly clean records (the default everywhere).
  static DataFaultProfile None();
  /// Occasional missing fields only — the degraded path, no poison.
  static DataFaultProfile Mild();
  /// Every kind at once: missing fields, absurd prices, garbled and
  /// oversized text, colliding comment ids.
  static DataFaultProfile Hostile();
  /// "none" | "mild" | "hostile" (the cats_cli --data-fault-profile values).
  static Result<DataFaultProfile> FromName(std::string_view name);
};

/// A seeded source of per-record data-fault decisions. Unlike FaultPlan's
/// request schedule, every decision is a pure function of (profile, seed,
/// record id) — no sequence state — so a record re-served after a transport
/// retry, a duplicate or a repagination shift is corrupted the exact same
/// way every time, and chaos runs stay deterministic under any
/// interleaving of transport and data faults.
class DataFaultPlan {
 public:
  DataFaultPlan(const DataFaultProfile& profile, uint64_t seed)
      : profile_(profile), seed_(seed) {}

  /// Item-level decision: kNone, kDropComments, kDropOrders or kAbsurdPrice.
  DataFaultKind DecideItem(uint64_t item_id) const;

  /// Comment-level decision: kNone, kCorruptText, kOversizeText or
  /// kDuplicateCommentId.
  DataFaultKind DecideComment(uint64_t comment_id) const;

  /// The absurd replacement price for an item (huge, occasionally negative).
  double AbsurdPrice(uint64_t item_id) const;

  /// Corrupts `text` into definitely-invalid UTF-8 (overwrites a byte with
  /// 0xFE and appends a stray continuation byte — both unrepresentable in
  /// well-formed UTF-8, and both >= 0x20 so the JSON layer round-trips them).
  std::string CorruptText(std::string text, uint64_t comment_id) const;

  /// Pads `text` past profile().oversize_text_bytes.
  std::string OversizeText(std::string text, uint64_t comment_id) const;

  const DataFaultProfile& profile() const { return profile_; }

 private:
  DataFaultProfile profile_;
  uint64_t seed_;
};

}  // namespace cats::fault

#endif  // CATS_FAULT_DATA_FAULT_PLAN_H_
