#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.h"

namespace cats::fault {

namespace {

constexpr std::string_view kRateLimitPrefix =
    "429 rate limited; retry_after_micros=";

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRateLimit: return "rate_limit";
    case FaultKind::kServerError: return "server_error";
    case FaultKind::kTruncatedBody: return "truncated_body";
    case FaultKind::kGarbledBody: return "garbled_body";
    case FaultKind::kSlowResponse: return "slow_response";
    case FaultKind::kStaleTotalPages: return "stale_total_pages";
    case FaultKind::kRepaginationShift: return "repagination_shift";
    case FaultKind::kDuplicateRecord: return "duplicate_record";
  }
  return "unknown";
}

FaultProfile FaultProfile::None() {
  FaultProfile p;
  p.duplicate_record_prob = 0.0;
  p.server_error_prob = 0.0;
  return p;
}

FaultProfile FaultProfile::Mild() { return FaultProfile{}; }

FaultProfile FaultProfile::Hostile() {
  FaultProfile p;
  p.duplicate_record_prob = 0.03;
  p.server_error_prob = 0.03;
  p.server_error_burst_max = 3;
  p.rate_limit_prob = 0.02;
  p.truncate_body_prob = 0.01;
  p.garble_body_prob = 0.01;
  p.slow_response_prob = 0.02;
  p.stale_total_pages_prob = 0.05;
  p.repagination_shift_prob = 0.05;
  return p;
}

Result<FaultProfile> FaultProfile::FromName(std::string_view name) {
  if (name == "none") return None();
  if (name == "mild") return Mild();
  if (name == "hostile") return Hostile();
  return Status::InvalidArgument("unknown fault profile '" +
                                 std::string(name) +
                                 "' (expected none|mild|hostile)");
}

FaultDecision FaultPlan::NextRequest() {
  FaultDecision d;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    d.kind = FaultKind::kServerError;
    ++injected_[static_cast<size_t>(d.kind)];
    return d;
  }
  // One uniform draw against the cumulative probability ladder keeps the
  // schedule a single-stream function of the seed.
  double u = request_rng_.UniformDouble();
  double acc = 0.0;
  auto hit = [&](double p) {
    acc += p;
    return u < acc;
  };
  if (hit(profile_.server_error_prob)) {
    d.kind = FaultKind::kServerError;
    size_t burst = static_cast<size_t>(request_rng_.UniformInt(
        1, static_cast<int64_t>(std::max<size_t>(1,
                                    profile_.server_error_burst_max))));
    burst_remaining_ = burst - 1;
  } else if (hit(profile_.rate_limit_prob)) {
    d.kind = FaultKind::kRateLimit;
    d.retry_after_micros = request_rng_.UniformInt(
        profile_.retry_after_min_micros,
        std::max(profile_.retry_after_min_micros,
                 profile_.retry_after_max_micros));
  } else if (hit(profile_.truncate_body_prob)) {
    d.kind = FaultKind::kTruncatedBody;
    d.corruption_seed = request_rng_.NextU64();
  } else if (hit(profile_.garble_body_prob)) {
    d.kind = FaultKind::kGarbledBody;
    d.corruption_seed = request_rng_.NextU64();
  } else if (hit(profile_.slow_response_prob)) {
    d.kind = FaultKind::kSlowResponse;
    d.latency_micros = request_rng_.UniformInt(
        profile_.slow_latency_min_micros,
        std::max(profile_.slow_latency_min_micros,
                 profile_.slow_latency_max_micros));
  } else if (hit(profile_.stale_total_pages_prob)) {
    d.kind = FaultKind::kStaleTotalPages;
    d.stale_extra_pages = static_cast<size_t>(request_rng_.UniformInt(
        1, static_cast<int64_t>(std::max<size_t>(1,
                                    profile_.stale_extra_pages_max))));
  } else if (hit(profile_.repagination_shift_prob)) {
    d.kind = FaultKind::kRepaginationShift;
    d.shift = static_cast<size_t>(request_rng_.UniformInt(
        1, static_cast<int64_t>(std::max<size_t>(1,
                                    profile_.repagination_shift_max))));
  }
  if (d.kind != FaultKind::kNone) ++injected_[static_cast<size_t>(d.kind)];
  return d;
}

bool FaultPlan::NextRecordDuplicate() {
  if (!record_rng_.Bernoulli(profile_.duplicate_record_prob)) return false;
  ++injected_[static_cast<size_t>(FaultKind::kDuplicateRecord)];
  return true;
}

uint64_t FaultPlan::total_request_faults() const {
  uint64_t total = 0;
  for (size_t k = 1; k < kNumFaultKinds; ++k) {
    if (k == static_cast<size_t>(FaultKind::kDuplicateRecord)) continue;
    total += injected_[k];
  }
  return total;
}

std::string CorruptBody(std::string body, const FaultDecision& decision) {
  Rng rng(decision.corruption_seed, 0xC0DE);
  // Keep a proper prefix: a prefix of a complete JSON document is never
  // itself a complete document (pages are objects), so parsing must fail.
  size_t cut = body.empty()
                   ? 0
                   : rng.UniformU32(static_cast<uint32_t>(body.size()));
  body.resize(cut);
  if (decision.kind == FaultKind::kGarbledBody) {
    for (int i = 0; i < 8 && !body.empty(); ++i) {
      size_t pos = rng.UniformU32(static_cast<uint32_t>(body.size()));
      body[pos] = static_cast<char>(rng.UniformU32(256));
    }
    // Control-character junk: invalid as trailing garbage and invalid
    // inside any JSON token, so the result can never parse.
    body += "\x01\x02<garbled>";
  }
  return body;
}

std::string FormatRateLimited(int64_t retry_after_micros) {
  return StrFormat("%s%lld", std::string(kRateLimitPrefix).c_str(),
                   static_cast<long long>(retry_after_micros));
}

std::optional<int64_t> ParseRetryAfterMicros(std::string_view message) {
  if (message.substr(0, kRateLimitPrefix.size()) != kRateLimitPrefix) {
    return std::nullopt;
  }
  std::string digits(message.substr(kRateLimitPrefix.size()));
  if (digits.empty()) return std::nullopt;
  return static_cast<int64_t>(std::strtoll(digits.c_str(), nullptr, 10));
}

}  // namespace cats::fault
