#ifndef CATS_FAULT_FAULT_PLAN_H_
#define CATS_FAULT_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/random.h"
#include "util/result.h"

namespace cats::fault {

/// Everything the simulated platform can do to a request. One request gets
/// at most one fault (bursts excepted: a server-error burst pins the next
/// few requests). The kinds mirror what the paper's one-week live crawl
/// (§IV-A, three Scrapy servers) had to survive: throttling, 5xx bursts,
/// truncated transfers, proxies garbling bodies, pagination drifting under
/// concurrent writes.
enum class FaultKind : int {
  kNone = 0,
  /// HTTP 429 with a Retry-After hint the crawler must honor.
  kRateLimit,
  /// HTTP 503, possibly as a burst of consecutive failures.
  kServerError,
  /// Response body cut off mid-JSON (connection dropped).
  kTruncatedBody,
  /// Response body corrupted into definitely-invalid JSON.
  kGarbledBody,
  /// Response served correctly but late (virtual-clock latency).
  kSlowResponse,
  /// `total_pages` over-reported from a stale snapshot; later pages 404
  /// into OutOfRange and the crawler must treat that as a clean end.
  kStaleTotalPages,
  /// Page window shifted backward (records inserted upstream between
  /// fetches): earlier records are re-served, producing duplicates.
  kRepaginationShift,
  /// A record duplicated inline within one page (repagination at record
  /// granularity; the pre-fault-layer ApiOptions knob).
  kDuplicateRecord,
};
inline constexpr size_t kNumFaultKinds =
    static_cast<size_t>(FaultKind::kDuplicateRecord) + 1;

std::string_view FaultKindName(FaultKind kind);

/// Per-request decision drawn from a FaultPlan, with the parameters the
/// API needs to act it out.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int64_t retry_after_micros = 0;   // kRateLimit
  int64_t latency_micros = 0;       // kSlowResponse
  uint64_t corruption_seed = 0;     // kTruncatedBody / kGarbledBody
  size_t stale_extra_pages = 0;     // kStaleTotalPages
  size_t shift = 0;                 // kRepaginationShift
};

/// Fault rates and shapes. Probabilities are per request (per record for
/// `duplicate_record_prob`) and mutually exclusive: their sum must be <= 1.
struct FaultProfile {
  double duplicate_record_prob = 0.01;
  double server_error_prob = 0.004;
  size_t server_error_burst_max = 1;  // burst length drawn in [1, max]
  double rate_limit_prob = 0.0;
  int64_t retry_after_min_micros = 20'000;
  int64_t retry_after_max_micros = 200'000;
  double truncate_body_prob = 0.0;
  double garble_body_prob = 0.0;
  double slow_response_prob = 0.0;
  int64_t slow_latency_min_micros = 1'200'000;
  int64_t slow_latency_max_micros = 2'500'000;
  double stale_total_pages_prob = 0.0;
  size_t stale_extra_pages_max = 3;
  double repagination_shift_prob = 0.0;
  size_t repagination_shift_max = 2;

  /// A perfectly healthy platform (fault-free reference crawls).
  static FaultProfile None();
  /// The default background noise: transient 503s plus duplicate records,
  /// numerically identical to the pre-fault-layer ApiOptions defaults.
  static FaultProfile Mild();
  /// The full §IV-A weather: 429s, 5xx bursts, truncation, garbling, slow
  /// responses, stale pagination, repagination shifts.
  static FaultProfile Hostile();
  /// "none" | "mild" | "hostile" (the cats_cli --fault-profile values).
  static Result<FaultProfile> FromName(std::string_view name);
};

/// A seeded, schedule-driven source of per-request fault decisions. The
/// schedule is a pure function of (profile, seed, request sequence): two
/// plans with the same seed issue bit-identical decisions, which is what
/// makes chaos tests deterministic. Counters record what was injected so
/// tests can reconcile them against what the crawler observed.
class FaultPlan {
 public:
  FaultPlan(const FaultProfile& profile, uint64_t seed)
      : profile_(profile),
        request_rng_(seed, 0xFA01),
        record_rng_(seed, 0xFA02) {}

  /// Draws the decision for the next request, advancing the schedule.
  FaultDecision NextRequest();

  /// Per-record duplicate decision (kDuplicateRecord), drawn from an
  /// independent stream so record counts don't perturb request decisions.
  bool NextRecordDuplicate();

  const FaultProfile& profile() const { return profile_; }
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)];
  }
  /// Total injected faults, excluding kNone and kDuplicateRecord.
  uint64_t total_request_faults() const;

 private:
  FaultProfile profile_;
  Rng request_rng_;
  Rng record_rng_;
  size_t burst_remaining_ = 0;
  std::array<uint64_t, kNumFaultKinds> injected_{};
};

/// Applies a kTruncatedBody / kGarbledBody decision to a response body.
/// The output is guaranteed unparseable when `body` was a complete JSON
/// document: truncation keeps a proper prefix, garbling additionally flips
/// bytes and appends control-character junk (trailing garbage is a parse
/// error). That guarantee is what lets chaos tests assert exact
/// completeness: a corrupted page can never be silently accepted.
std::string CorruptBody(std::string body, const FaultDecision& decision);

/// 429 responses carry their Retry-After hint in the Status message (the
/// Status type has no header channel). Format/parse round-trip exactly.
std::string FormatRateLimited(int64_t retry_after_micros);
std::optional<int64_t> ParseRetryAfterMicros(std::string_view message);

}  // namespace cats::fault

#endif  // CATS_FAULT_FAULT_PLAN_H_
