#include "federate/federation.h"

#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "platform/api.h"

namespace cats::federate {
namespace {

/// Runs one shard end to end: generate the platform, stand up its API with
/// the shard's weather, crawl through the shard's own crawler, and bank
/// the ground truth the accounting and training stages need. Fully
/// self-contained (no shared mutable state), so shards run concurrently.
ShardReport RunShard(const ShardConfig& config,
                     const platform::SyntheticLanguage& language) {
  ShardReport report;
  report.platform_id = config.spec.profile.platform_id;

  platform::Marketplace market =
      platform::Marketplace::Generate(config.spec.market, &language);

  fault::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.page_size = config.page_size;
  api_options.profile = config.spec.profile;
  api_options.faults = config.spec.default_weather;
  api_options.data_faults = config.data_faults;
  api_options.seed = config.spec.api_seed;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&market, api_options);

  collect::Crawler crawler(&api, config.crawler, &clock);
  report.status = crawler.Crawl(&report.store, &report.checkpoint);
  report.stats = crawler.stats();

  report.truth_shops = market.shops().size();
  report.truth_items = market.items().size();
  report.truth_fraud_items = market.NumFraudItems();
  report.labels.reserve(market.items().size());
  for (const collect::CollectedItem& ci : report.store.items()) {
    report.labels[ci.item.item_id] =
        market.IsFraudItem(ci.item.item_id) ? 1 : 0;
  }
  report.sentiment_corpus =
      market.BuildSentimentCorpus(2000, config.spec.market.seed ^ 0x5E17);
  report.poisoned_items = api.data_poisoned_items().size();
  report.degraded_items = api.data_degraded_items().size();
  report.duplicate_comment_ids = api.data_duplicate_comment_ids();
  return report;
}

void MirrorShardMetrics(const ShardReport& report) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(obs::kFederationShardsTotal)->Increment();
  if (!report.ok()) {
    registry.GetCounter(obs::kFederationShardFailuresTotal)->Increment();
  }
  const std::string& id = report.platform_id;
  registry.GetCounter(obs::WithPlatform(obs::kFederationShardItemsTotal, id))
      ->Increment(report.stats.items);
  registry
      .GetCounter(obs::WithPlatform(obs::kFederationShardCommentsTotal, id))
      ->Increment(report.stats.comments);
  registry
      .GetCounter(obs::WithPlatform(obs::kFederationShardRequestsTotal, id))
      ->Increment(report.stats.requests);
  registry
      .GetCounter(obs::WithPlatform(obs::kFederationShardRetriesTotal, id))
      ->Increment(report.stats.retries);
  registry
      .GetCounter(obs::WithPlatform(obs::kFederationShardDuplicatesTotal, id))
      ->Increment(report.stats.duplicates_dropped);
}

}  // namespace

FederationReport CrawlFederation(const std::vector<ShardConfig>& shards,
                                 const platform::SyntheticLanguage& language,
                                 bool parallel) {
  obs::ScopedTimer timer(obs::MetricsRegistry::Global().GetLatencyHistogram(
      obs::kFederationCrawlLatencyMicros));
  FederationReport report;
  report.shards.resize(shards.size());
  if (parallel && shards.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
      workers.emplace_back([&, i] {
        report.shards[i] = RunShard(shards[i], language);
      });
    }
    for (std::thread& w : workers) w.join();
  } else {
    for (size_t i = 0; i < shards.size(); ++i) {
      report.shards[i] = RunShard(shards[i], language);
    }
  }
  for (const ShardReport& shard : report.shards) MirrorShardMetrics(shard);
  return report;
}

Result<std::vector<ShardConfig>> BuiltinShards(
    const std::vector<std::string>& platforms, double scale, uint64_t seed) {
  std::vector<ShardConfig> shards;
  shards.reserve(platforms.size());
  for (size_t i = 0; i < platforms.size(); ++i) {
    CATS_ASSIGN_OR_RETURN(platform::PlatformSpec spec,
                          platform::BuiltinPlatform(platforms[i], scale));
    ShardConfig shard;
    shard.spec = std::move(spec);
    if (seed != 0) {
      // Reseed deterministically per shard; keep markets distinct even
      // when the same platform appears twice.
      shard.spec.market.seed = seed + 0x9E3779B97F4A7C15ull * (i + 1);
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

MergedFederation MergeShards(const FederationReport& report) {
  MergedFederation merged;
  size_t total_items = 0;
  for (const ShardReport& shard : report.shards) {
    total_items += shard.store.items().size();
  }
  merged.items.reserve(total_items);
  merged.labels.reserve(total_items);
  merged.shard_of.reserve(total_items);
  for (size_t s = 0; s < report.shards.size(); ++s) {
    const ShardReport& shard = report.shards[s];
    const uint64_t offset = (s + 1) * kFederationIdStride;
    for (const collect::CollectedItem& ci : shard.store.items()) {
      collect::CollectedItem copy = ci;
      copy.item.item_id += offset;
      copy.item.shop_id += offset;
      for (collect::CommentRecord& c : copy.comments) {
        c.item_id += offset;
        c.comment_id += offset;
      }
      auto label = shard.labels.find(ci.item.item_id);
      merged.labels.push_back(
          label != shard.labels.end() ? label->second : 0);
      merged.shard_of.push_back(s);
      merged.items.push_back(std::move(copy));
    }
  }
  return merged;
}

}  // namespace cats::federate
