#ifndef CATS_FEDERATE_FEDERATION_H_
#define CATS_FEDERATE_FEDERATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "collect/crawler.h"
#include "collect/store.h"
#include "fault/data_fault_plan.h"
#include "platform/profile.h"
#include "util/status.h"

namespace cats::federate {

/// One crawler shard of the federation: a platform (wire profile + market
/// shape + its characteristic weather) plus the shard's own crawl tuning.
/// Each shard runs an independent Crawler — own fault plan, own backoff and
/// breaker state, own checkpoint — against its own MarketplaceApi.
struct ShardConfig {
  platform::PlatformSpec spec;
  collect::CrawlerOptions crawler;
  size_t page_size = 50;
  /// Per-shard record dirtiness, on top of the spec's transport weather.
  fault::DataFaultProfile data_faults = fault::DataFaultProfile::None();
};

/// What one shard's crawl produced: the normalized store, the crawl stats
/// and checkpoint, and the ground truth needed for exact per-platform
/// accounting (what the simulated platform actually holds vs. what the
/// crawl banked) and for training/evaluation labels.
struct ShardReport {
  std::string platform_id;
  Status status = Status::OK();
  collect::DataStore store;
  collect::CrawlStats stats;
  collect::CrawlCheckpoint checkpoint;
  /// Ground truth from the simulated marketplace.
  size_t truth_shops = 0;
  size_t truth_items = 0;
  size_t truth_fraud_items = 0;
  std::unordered_map<uint64_t, int> labels;  // item_id -> fraud label
  /// Sentiment training docs generated from this platform's own review
  /// culture (platform-local labeled corpus for the semantic analyzer).
  std::vector<std::pair<std::string, bool>> sentiment_corpus;
  /// Data-fault accounting from the API (what was served dirty).
  size_t poisoned_items = 0;
  size_t degraded_items = 0;
  uint64_t duplicate_comment_ids = 0;

  bool ok() const { return status.ok(); }
};

struct FederationReport {
  std::vector<ShardReport> shards;
  bool all_ok() const {
    for (const ShardReport& s : shards) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

/// Crawls every shard — concurrently when `parallel` (each shard is fully
/// self-contained: own API, clock, fault plan, crawler) — normalizing each
/// platform's wire dialect into canonical records. All platforms share
/// `language` (the paper's cross-platform premise: one language, many
/// marketplaces), which must outlive the call; Marketplace generation from
/// a shared language is read-only on it and thread-safe.
///
/// Mirrors per-shard volumes into the process registry under the
/// `federation.shard.*` names with a `{platform=<id>}` dimension.
FederationReport CrawlFederation(const std::vector<ShardConfig>& shards,
                                 const platform::SyntheticLanguage& language,
                                 bool parallel = true);

/// Builds the N shard configs for the named built-in platforms at `scale`
/// (platform/profile.h BuiltinPlatform). `seed` != 0 reseeds each market
/// deterministically per shard so two federations can differ end to end.
Result<std::vector<ShardConfig>> BuiltinShards(
    const std::vector<std::string>& platforms, double scale,
    uint64_t seed = 0);

/// Id-namespacing stride for merged stores: shard i's entity ids map to
/// id + (i+1) * kFederationIdStride, so records from different platforms
/// can never collide in the single detection plane. 2^40 leaves room for
/// both the simulator's dense ids and the id-prefix encodings.
inline constexpr uint64_t kFederationIdStride = 1ull << 40;

/// The federation's single detection plane input: every shard's items
/// merged into one vector with namespaced ids, plus aligned labels and the
/// owning shard index per item.
struct MergedFederation {
  std::vector<collect::CollectedItem> items;
  std::vector<int> labels;         // aligned with items
  std::vector<size_t> shard_of;    // aligned with items
};

MergedFederation MergeShards(const FederationReport& report);

}  // namespace cats::federate

#endif  // CATS_FEDERATE_FEDERATION_H_
