#include "federate/transfer_eval.h"

#include <algorithm>
#include <memory>

#include "ml/metrics.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "platform/language_model.h"
#include "platform/presets.h"

namespace cats::federate {

double TransferReport::MinInPlatformAuc() const {
  double min_auc = 1.0;
  const size_t n = platforms.size();
  for (size_t i = 0; i < n; ++i) min_auc = std::min(min_auc, AucAt(i, i));
  return min_auc;
}

double TransferReport::MinCrossAuc() const {
  double min_auc = 1.0;
  const size_t n = platforms.size();
  for (size_t t = 0; t < n; ++t) {
    for (size_t e = 0; e < n; ++e) {
      if (t != e) min_auc = std::min(min_auc, AucAt(t, e));
    }
  }
  return min_auc;
}

double TransferReport::MaxDegradation() const {
  double max_drop = 0.0;
  const size_t n = platforms.size();
  for (size_t t = 0; t < n; ++t) {
    for (size_t e = 0; e < n; ++e) {
      if (t != e) max_drop = std::max(max_drop, AucAt(e, e) - AucAt(t, e));
    }
  }
  return max_drop;
}

JsonValue TransferReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::String("federation_transfer"));
  JsonValue names = JsonValue::Array();
  for (const std::string& p : platforms) names.Append(JsonValue::String(p));
  doc.Set("platforms", std::move(names));
  JsonValue matrix = JsonValue::Array();
  for (const TransferCell& cell : cells) {
    JsonValue row = JsonValue::Object();
    row.Set("train", JsonValue::String(cell.train_platform));
    row.Set("eval", JsonValue::String(cell.eval_platform));
    row.Set("auc", JsonValue::Number(cell.auc));
    row.Set("items", JsonValue::Int(static_cast<int64_t>(cell.items)));
    matrix.Append(std::move(row));
  }
  doc.Set("matrix", std::move(matrix));
  JsonValue shards = JsonValue::Array();
  for (const ShardReport& shard : federation.shards) {
    JsonValue row = JsonValue::Object();
    row.Set("platform", JsonValue::String(shard.platform_id));
    row.Set("items",
            JsonValue::Int(static_cast<int64_t>(shard.store.items().size())));
    row.Set("comments",
            JsonValue::Int(static_cast<int64_t>(shard.store.num_comments())));
    row.Set("requests",
            JsonValue::Int(static_cast<int64_t>(shard.stats.requests)));
    shards.Append(std::move(row));
  }
  doc.Set("shards", std::move(shards));
  JsonValue summary = JsonValue::Object();
  summary.Set("min_in_platform_auc", JsonValue::Number(MinInPlatformAuc()));
  summary.Set("min_cross_platform_auc", JsonValue::Number(MinCrossAuc()));
  summary.Set("max_transfer_degradation",
              JsonValue::Number(MaxDegradation()));
  doc.Set("summary", std::move(summary));
  return doc;
}

Result<TransferReport> RunTransferEval(const TransferEvalOptions& options) {
  TransferReport report;
  report.platforms = options.platforms.empty()
                         ? platform::BuiltinPlatformNames()
                         : options.platforms;
  const size_t n = report.platforms.size();
  if (n == 0) {
    return Status::InvalidArgument("transfer-eval needs >= 1 platform");
  }

  platform::SyntheticLanguage language(platform::DefaultLanguageOptions());
  CATS_ASSIGN_OR_RETURN(
      std::vector<ShardConfig> shards,
      BuiltinShards(report.platforms, options.scale, options.seed));
  report.federation =
      CrawlFederation(shards, language, options.parallel_crawl);
  for (const ShardReport& shard : report.federation.shards) {
    if (!shard.ok()) {
      return Status::Internal("shard '" + shard.platform_id +
                              "' crawl failed: " +
                              shard.status.message());
    }
    if (shard.store.items().empty()) {
      return Status::Internal("shard '" + shard.platform_id +
                              "' crawled no items");
    }
  }

  // Train one full pipeline per platform: semantic model from that
  // platform's own crawled comments (vocabulary / culture skew included),
  // detector on that platform's ground-truth labels. Word2vec is pinned to
  // one thread: Hogwild's benign races would make the committed benchmark
  // non-reproducible.
  core::CatsOptions cats_options = options.cats;
  cats_options.semantic.word2vec.num_threads = 1;
  std::vector<std::unique_ptr<core::Cats>> detectors;
  detectors.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    const ShardReport& shard = report.federation.shards[t];
    std::vector<std::string> corpus;
    corpus.reserve(shard.store.num_comments());
    std::vector<int> labels;
    labels.reserve(shard.store.items().size());
    for (const collect::CollectedItem& ci : shard.store.items()) {
      auto it = shard.labels.find(ci.item.item_id);
      labels.push_back(it != shard.labels.end() ? it->second : 0);
      for (const collect::CommentRecord& c : ci.comments) {
        corpus.push_back(c.content);
      }
    }
    auto cats_system = std::make_unique<core::Cats>(cats_options);
    CATS_RETURN_NOT_OK(cats_system->BuildSemanticModel(
        corpus, language.BuildSegmentationDictionary(),
        language.PositiveSeeds(options.seed_words),
        language.NegativeSeeds(options.seed_words),
        shard.sentiment_corpus));
    CATS_RETURN_NOT_OK(
        cats_system->TrainDetector(shard.store.items(), labels));
    detectors.push_back(std::move(cats_system));
  }

  // Score every platform with every detector. Feature extraction depends
  // on the *training* platform's semantic model, so each cell extracts
  // through its own detector's extractor.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  report.cells.resize(n * n);
  double min_auc = 1.0;
  for (size_t t = 0; t < n; ++t) {
    for (size_t e = 0; e < n; ++e) {
      const ShardReport& eval_shard = report.federation.shards[e];
      std::vector<core::FeatureVector> features =
          detectors[t]->detector().extractor().ExtractAll(
              eval_shard.store.items());
      CATS_ASSIGN_OR_RETURN(std::vector<double> scores,
                            detectors[t]->detector().ScoreFeatures(features));
      std::vector<int> truth;
      truth.reserve(eval_shard.store.items().size());
      for (const collect::CollectedItem& ci : eval_shard.store.items()) {
        auto it = eval_shard.labels.find(ci.item.item_id);
        truth.push_back(it != eval_shard.labels.end() ? it->second : 0);
      }
      TransferCell& cell = report.cells[t * n + e];
      cell.train_platform = report.platforms[t];
      cell.eval_platform = report.platforms[e];
      cell.items = eval_shard.store.items().size();
      cell.auc = ml::RocAuc(truth, scores);
      min_auc = std::min(min_auc, cell.auc);
      registry.GetCounter(obs::kFederationTransferEvalsTotal)->Increment();
    }
  }
  registry.GetGauge(obs::kFederationTransferAucMin)->Set(min_auc);
  return report;
}

}  // namespace cats::federate
