#ifndef CATS_FEDERATE_TRANSFER_EVAL_H_
#define CATS_FEDERATE_TRANSFER_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cats.h"
#include "federate/federation.h"
#include "util/json.h"
#include "util/result.h"

namespace cats::federate {

/// Configuration for the cross-platform transfer evaluation: crawl N
/// platforms, train one detector per platform, score every platform with
/// every detector, and report the N x N AUC matrix. The paper's central
/// claim (§VII) is that the pipeline transfers across platforms; this is
/// the regression harness for it.
struct TransferEvalOptions {
  /// Built-in platform names (platform/profile.h); empty = all built-ins.
  std::vector<std::string> platforms;
  double scale = 0.02;
  /// 0 keeps each preset's own market seed; otherwise reseeds per shard.
  uint64_t seed = 0;
  /// Seed words per polarity for the lexicon expansion.
  size_t seed_words = 4;
  /// Pipeline options for the per-platform training runs. Word2vec is
  /// forced single-threaded regardless (Hogwild is non-deterministic;
  /// the committed BENCH_federation.json must reproduce bit for bit).
  core::CatsOptions cats;
  bool parallel_crawl = true;
};

/// One cell of the transfer matrix: the detector trained on
/// `train_platform` scored on `eval_platform`'s crawl.
struct TransferCell {
  std::string train_platform;
  std::string eval_platform;
  double auc = 0.0;
  size_t items = 0;  // evaluated items (the eval platform's crawl volume)
};

struct TransferReport {
  std::vector<std::string> platforms;
  /// N x N cells, row-major: cells[train * N + eval].
  std::vector<TransferCell> cells;
  /// Per-shard crawl accounting (items/comments banked per platform).
  FederationReport federation;

  double AucAt(size_t train_index, size_t eval_index) const {
    return cells[train_index * platforms.size() + eval_index].auc;
  }
  /// Worst diagonal cell (train == eval).
  double MinInPlatformAuc() const;
  /// Worst off-diagonal cell (train != eval).
  double MinCrossAuc() const;
  /// Worst transfer penalty: max over train != eval of
  /// (in-platform AUC of the eval platform) - (transfer AUC). Negative
  /// means transfer beat the local detector everywhere.
  double MaxDegradation() const;

  /// The BENCH_federation.json document (scripts/perf_gate.py
  /// --federation consumes this shape).
  JsonValue ToJson() const;
};

/// Runs the full evaluation. Deterministic for fixed options: the crawl is
/// virtual-clock driven, the markets are seeded, and word2vec runs
/// single-threaded.
Result<TransferReport> RunTransferEval(const TransferEvalOptions& options);

}  // namespace cats::federate

#endif  // CATS_FEDERATE_TRANSFER_EVAL_H_
