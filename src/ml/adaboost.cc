#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cats::ml {

Status AdaBoost::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t d = train.num_features();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("cannot fit adaboost on empty dataset");
  }
  stumps_.clear();

  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  // y in {-1, +1}.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = train.Label(i) == 1 ? 1.0 : -1.0;

  // Pre-sort rows per feature once.
  std::vector<std::vector<uint32_t>> sorted_rows(d);
  for (size_t f = 0; f < d; ++f) {
    sorted_rows[f].resize(n);
    std::iota(sorted_rows[f].begin(), sorted_rows[f].end(), 0);
    std::sort(sorted_rows[f].begin(), sorted_rows[f].end(),
              [&train, f](uint32_t a, uint32_t b) {
                return train.Value(a, f) < train.Value(b, f);
              });
  }

  for (size_t round = 0; round < options_.num_rounds; ++round) {
    // Find the stump minimizing weighted error. For a threshold scan with
    // polarity "+1 above", err = sum_{x<=t, y=+1} w + sum_{x>t, y=-1} w.
    Stump best;
    double best_err = 0.5;
    bool found = false;

    double total_pos_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (y[i] > 0) total_pos_weight += w[i];
    }

    for (size_t f = 0; f < d; ++f) {
      const auto& order = sorted_rows[f];
      // Start with threshold below all values: everything predicted
      // positive (polarity +1) -> err = weight of negatives.
      double err_above = 1.0 - total_pos_weight;
      // Consider boundary before the first row too (threshold = -inf is
      // equivalent to a constant classifier; skip it).
      for (size_t k = 0; k < n; ++k) {
        uint32_t row = order[k];
        // Move row to the "<= threshold" side.
        if (y[row] > 0) {
          err_above += w[row];   // positive now predicted negative
        } else {
          err_above -= w[row];   // negative now predicted negative (fixed)
        }
        if (k + 1 < n &&
            train.Value(order[k + 1], f) == train.Value(row, f)) {
          continue;  // not a value boundary
        }
        float threshold =
            k + 1 < n ? 0.5f * (train.Value(row, f) +
                                train.Value(order[k + 1], f))
                      : train.Value(row, f);
        // Polarity +1 error and its mirror.
        double candidates[2] = {err_above, 1.0 - err_above};
        for (int p = 0; p < 2; ++p) {
          if (candidates[p] < best_err) {
            best_err = candidates[p];
            best.feature = static_cast<int32_t>(f);
            best.threshold = threshold;
            best.polarity = p == 0 ? 1 : -1;
            found = true;
          }
        }
      }
    }
    if (!found || best_err <= 1e-12) {
      if (found) {
        best.alpha = 10.0;  // perfect stump: large but finite vote
        stumps_.push_back(best);
      }
      break;
    }

    best.alpha = 0.5 * std::log((1.0 - best_err) / best_err);
    stumps_.push_back(best);

    // Reweight and renormalize.
    double z = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double pred = train.Value(i, best.feature) > best.threshold
                        ? best.polarity
                        : -best.polarity;
      w[i] *= std::exp(-best.alpha * y[i] * pred);
      z += w[i];
    }
    if (z <= 0) break;
    for (double& wi : w) wi /= z;
  }
  if (stumps_.empty()) {
    return Status::Internal("adaboost found no usable stump");
  }
  return Status::OK();
}

double AdaBoost::PredictProba(const float* row) const {
  double score = 0.0;
  double total_alpha = 0.0;
  for (const Stump& s : stumps_) {
    score += s.Vote(row);
    total_alpha += std::fabs(s.alpha);
  }
  if (total_alpha <= 0) return 0.5;
  // Squash the normalized vote into (0, 1).
  return 1.0 / (1.0 + std::exp(-2.0 * score));
}

}  // namespace cats::ml
