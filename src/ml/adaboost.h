#ifndef CATS_ML_ADABOOST_H_
#define CATS_ML_ADABOOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace cats::ml {

struct AdaBoostOptions {
  size_t num_rounds = 80;
};

/// Discrete AdaBoost (Freund & Schapire) over depth-1 decision stumps — the
/// "AdaBoost" baseline of Table III. Each round fits the best
/// weighted-error stump, then reweights misclassified examples.
class AdaBoost : public Classifier {
 public:
  explicit AdaBoost(AdaBoostOptions options) : options_(options) {}
  AdaBoost() : AdaBoost(AdaBoostOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  std::string name() const override { return "AdaBoost"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<AdaBoost>(options_);
  }

  size_t num_stumps() const { return stumps_.size(); }

 private:
  struct Stump {
    int32_t feature = 0;
    float threshold = 0.0f;
    // +1: predict positive when x > threshold; -1: positive when x <= t.
    int polarity = 1;
    double alpha = 0.0;  // log-odds vote weight

    double Vote(const float* row) const {
      double side = row[feature] > threshold ? 1.0 : -1.0;
      return alpha * side * polarity;
    }
  };

  AdaBoostOptions options_;
  std::vector<Stump> stumps_;
};

}  // namespace cats::ml

#endif  // CATS_ML_ADABOOST_H_
