#include "ml/binning.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "util/thread_pool.h"

namespace cats::ml {

BinMapper BinMapper::Build(const Dataset& data, size_t max_bins) {
  max_bins = std::clamp<size_t>(max_bins, 2, kMaxBins);
  size_t n = data.num_rows();
  size_t d = data.num_features();
  BinMapper mapper;
  mapper.bounds_.resize(d);
  if (n == 0) return mapper;

  std::vector<float> values(n);
  for (size_t f = 0; f < d; ++f) {
    for (size_t i = 0; i < n; ++i) values[i] = data.Value(i, f);
    std::sort(values.begin(), values.end());

    std::vector<float>& bounds = mapper.bounds_[f];
    // Midpoints between adjacent distinct values are the exact-greedy
    // candidate thresholds; keep them all when they fit, else thin to even
    // row quantiles. push_if keeps the sequence strictly increasing even
    // when float midpoints collapse onto a neighbor.
    auto push_if = [&bounds](float b) {
      if (bounds.empty() || b > bounds.back()) bounds.push_back(b);
    };
    size_t distinct = 1;
    for (size_t i = 1; i < n; ++i) {
      if (values[i] != values[i - 1]) ++distinct;
    }
    if (distinct <= max_bins) {
      for (size_t i = 1; i < n; ++i) {
        if (values[i] != values[i - 1]) {
          push_if(0.5f * (values[i - 1] + values[i]));
        }
      }
    } else {
      for (size_t k = 1; k < max_bins; ++k) {
        size_t pos = k * n / max_bins;
        if (pos == 0 || values[pos] == values[pos - 1]) continue;
        push_if(0.5f * (values[pos - 1] + values[pos]));
      }
    }
    // The last bin must cover the feature's maximum so BinOf never runs
    // past the table (midpoints are all strictly below the max).
    push_if(values.back());
    if (bounds.empty()) bounds.push_back(values.back());  // constant feature
  }
  return mapper;
}

uint8_t BinMapper::BinOf(size_t feature, float value) const {
  const std::vector<float>& bounds = bounds_[feature];
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  if (i >= bounds.size()) i = bounds.size() - 1;
  return static_cast<uint8_t>(i);
}

std::vector<uint8_t> BinMapper::BinRows(const Dataset& data,
                                        ThreadPool* pool) const {
  size_t n = data.num_rows();
  size_t d = data.num_features();
  std::vector<uint8_t> binned(n * d);
  auto bin_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      uint8_t* row = binned.data() + i * d;
      for (size_t f = 0; f < d; ++f) row[f] = BinOf(f, data.Value(i, f));
    }
  };
  if (pool != nullptr && n >= 2) {
    pool->ParallelForChunks(n, bin_range);
  } else {
    bin_range(0, n);
  }
  return binned;
}

void BinMapper::AppendTo(std::ostream& out) const {
  out << "bins " << bounds_.size() << "\n";
  char buf[32];
  for (const std::vector<float>& bounds : bounds_) {
    out << bounds.size();
    for (float b : bounds) {
      // %.9g round-trips any float exactly, so save -> load -> save is
      // bit-identical (the model round-trip tests depend on that).
      std::snprintf(buf, sizeof(buf), "%.9g", b);
      out << " " << buf;
    }
    out << "\n";
  }
}

Result<BinMapper> BinMapper::ParseFrom(std::istream& in,
                                       size_t expected_features) {
  std::string tag;
  size_t num_features = 0;
  if (!(in >> tag >> num_features) || tag != "bins") {
    return Status::ParseError("bad bin mapper header");
  }
  if (num_features != expected_features) {
    return Status::ParseError("bin mapper feature count mismatch");
  }
  BinMapper mapper;
  mapper.bounds_.resize(num_features);
  for (std::vector<float>& bounds : mapper.bounds_) {
    size_t count = 0;
    if (!(in >> count) || count == 0 || count > kMaxBins) {
      return Status::ParseError("implausible bin count");
    }
    bounds.resize(count);
    for (size_t b = 0; b < count; ++b) {
      if (!(in >> bounds[b])) {
        return Status::ParseError("truncated bin boundaries");
      }
      if (!std::isfinite(bounds[b])) {
        return Status::ParseError("non-finite bin boundary");
      }
      if (b > 0 && bounds[b] <= bounds[b - 1]) {
        return Status::ParseError("non-increasing bin boundaries");
      }
    }
  }
  return mapper;
}

}  // namespace cats::ml
