#ifndef CATS_ML_BINNING_H_
#define CATS_ML_BINNING_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/dataset.h"
#include "util/result.h"

namespace cats {
class ThreadPool;
}  // namespace cats

namespace cats::ml {

/// Per-feature quantile binning for histogram-based tree training
/// (LightGBM-style). Build() chooses at most `max_bins` (<= 256, so a bin
/// index fits a uint8_t) boundaries per feature from the training values:
/// when a feature has few distinct values every distinct value gets its own
/// bin and the boundaries are the midpoints between adjacent distinct
/// values — exactly the candidate thresholds the exact-greedy scan
/// considers — otherwise boundaries are placed at even row quantiles.
///
/// Bin semantics: value v belongs to the first bin b with
/// v <= upper_bound(f, b); values above every boundary (e.g. unseen at
/// inference time) land in the last bin. A tree split "bin <= b" is
/// therefore equivalent to the float comparison "v <= upper_bound(f, b)",
/// which is what Gbdt stores in its nodes so inference needs no mapper.
class BinMapper {
 public:
  /// Hard cap: bin indices must fit uint8_t.
  static constexpr size_t kMaxBins = 256;

  BinMapper() = default;

  /// Learns boundaries from every row of `data`. `max_bins` is clamped to
  /// [2, kMaxBins].
  static BinMapper Build(const Dataset& data, size_t max_bins);

  bool empty() const { return bounds_.empty(); }
  size_t num_features() const { return bounds_.size(); }
  size_t num_bins(size_t feature) const { return bounds_[feature].size(); }

  /// Bin of `value` for `feature` (see class comment for the semantics).
  uint8_t BinOf(size_t feature, float value) const;

  /// Upper boundary of bin `bin` — the split threshold for "bin <= b".
  float UpperBound(size_t feature, size_t bin) const {
    return bounds_[feature][bin];
  }

  /// Pre-bins the whole dataset into a row-major n x d uint8 matrix,
  /// fanning row chunks out over `pool` when given (output slots are
  /// per-row, so the result is identical for any thread count).
  std::vector<uint8_t> BinRows(const Dataset& data, ThreadPool* pool) const;

  /// Text serialization, appended to a model stream:
  ///   bins <num_features>
  ///   <num_bins> <b0> <b1> ... per feature
  /// Boundaries are written with enough digits to round-trip exactly.
  void AppendTo(std::ostream& out) const;

  /// Parses the output of AppendTo. Rejects (ParseError) truncation,
  /// non-finite or non-increasing boundaries, and counts outside
  /// [1, kMaxBins]; `expected_features` must match the header count.
  static Result<BinMapper> ParseFrom(std::istream& in,
                                     size_t expected_features);

  bool operator==(const BinMapper& other) const {
    return bounds_ == other.bounds_;
  }

 private:
  // bounds_[f]: ascending bin upper boundaries; the last entry covers the
  // feature's maximum training value.
  std::vector<std::vector<float>> bounds_;
};

}  // namespace cats::ml

#endif  // CATS_ML_BINNING_H_
