#ifndef CATS_ML_CLASSIFIER_H_
#define CATS_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace cats::ml {

/// Abstract binary classifier. All six Table-III models implement this; the
/// detector and the cross-validation harness are written against it.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`; replaces any previous fit.
  virtual Status Fit(const Dataset& train) = 0;

  /// P(label = 1 | row). `row` has train.num_features() entries.
  virtual double PredictProba(const float* row) const = 0;

  /// Hard prediction at the 0.5 probability threshold.
  virtual int Predict(const float* row) const {
    return PredictProba(row) >= 0.5 ? 1 : 0;
  }

  /// Human-readable model name as it appears in the paper's Table III.
  virtual std::string name() const = 0;

  /// Fresh untrained copy with identical hyperparameters (for k-fold CV).
  virtual std::unique_ptr<Classifier> CloneUntrained() const = 0;

  /// Scores `num_rows` rows laid out contiguously at `rows` with `stride`
  /// floats between row starts. The base implementation is a serial loop;
  /// models with a cheaper batch path (ml::Gbdt fans rows over a
  /// ThreadPool) override it. Overrides must return exactly what the serial
  /// loop would: callers rely on batch == per-row bit equality.
  virtual std::vector<double> PredictProbaBatch(const float* rows,
                                                size_t num_rows,
                                                size_t stride) const {
    std::vector<double> out(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      out[i] = PredictProba(rows + i * stride);
    }
    return out;
  }

  /// Scores every row of `data` (through the batch path, so the detector
  /// and the cross-validation harness pick up parallel scoring for free).
  std::vector<double> PredictProbaAll(const Dataset& data) const {
    if (data.num_rows() == 0) return {};
    return PredictProbaBatch(data.Row(0), data.num_rows(),
                             data.num_features());
  }

  std::vector<int> PredictAll(const Dataset& data) const {
    std::vector<double> proba = PredictProbaAll(data);
    std::vector<int> out(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) {
      out[i] = proba[i] >= 0.5 ? 1 : 0;
    }
    return out;
  }
};

}  // namespace cats::ml

#endif  // CATS_ML_CLASSIFIER_H_
