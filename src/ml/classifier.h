#ifndef CATS_ML_CLASSIFIER_H_
#define CATS_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace cats::ml {

/// Abstract binary classifier. All six Table-III models implement this; the
/// detector and the cross-validation harness are written against it.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`; replaces any previous fit.
  virtual Status Fit(const Dataset& train) = 0;

  /// P(label = 1 | row). `row` has train.num_features() entries.
  virtual double PredictProba(const float* row) const = 0;

  /// Hard prediction at the 0.5 probability threshold.
  virtual int Predict(const float* row) const {
    return PredictProba(row) >= 0.5 ? 1 : 0;
  }

  /// Human-readable model name as it appears in the paper's Table III.
  virtual std::string name() const = 0;

  /// Fresh untrained copy with identical hyperparameters (for k-fold CV).
  virtual std::unique_ptr<Classifier> CloneUntrained() const = 0;

  /// Scores every row of `data`.
  std::vector<double> PredictProbaAll(const Dataset& data) const {
    std::vector<double> out(data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) {
      out[i] = PredictProba(data.Row(i));
    }
    return out;
  }

  std::vector<int> PredictAll(const Dataset& data) const {
    std::vector<int> out(data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) {
      out[i] = Predict(data.Row(i));
    }
    return out;
  }
};

}  // namespace cats::ml

#endif  // CATS_ML_CLASSIFIER_H_
