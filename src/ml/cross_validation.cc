#include "ml/cross_validation.h"

#include "ml/split.h"
#include "util/random.h"

namespace cats::ml {

Result<CrossValidationResult> CrossValidate(const Classifier& prototype,
                                            const Dataset& data, size_t folds,
                                            uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (data.num_rows() < folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  Rng rng(seed);
  std::vector<TrainTestIndices> splits = StratifiedKFold(data, folds, &rng);

  CrossValidationResult out;
  out.model_name = prototype.name();
  out.folds = folds;
  for (const TrainTestIndices& split : splits) {
    Dataset train = data.Select(split.train);
    Dataset test = data.Select(split.test);
    std::unique_ptr<Classifier> model = prototype.CloneUntrained();
    CATS_RETURN_NOT_OK(model->Fit(train));
    // One batched scoring pass feeds both the thresholded Table-III metrics
    // and the threshold-free AUC (models with a parallel PredictProbaBatch,
    // like the GBDT, score each fold through it).
    std::vector<double> proba = model->PredictProbaAll(test);
    std::vector<int> predicted(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) {
      predicted[i] = proba[i] >= 0.5 ? 1 : 0;
    }
    ClassificationMetrics m = ComputeMetrics(test.labels(), predicted);
    out.per_fold.push_back(m);
    out.precision += m.precision;
    out.recall += m.recall;
    out.f1 += m.f1;
    out.accuracy += m.accuracy;
    out.auc += RocAuc(test.labels(), proba);
  }
  double k = static_cast<double>(folds);
  out.precision /= k;
  out.recall /= k;
  out.f1 /= k;
  out.accuracy /= k;
  out.auc /= k;
  return out;
}

}  // namespace cats::ml
