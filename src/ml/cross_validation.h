#ifndef CATS_ML_CROSS_VALIDATION_H_
#define CATS_ML_CROSS_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/metrics.h"
#include "util/result.h"

namespace cats::ml {

/// Aggregated k-fold result for one model.
struct CrossValidationResult {
  std::string model_name;
  size_t folds = 0;
  // Mean across folds (the paper reports these in Table III).
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  /// Mean out-of-fold ROC AUC — threshold-free, so it is the stable metric
  /// for comparing split finders (exact vs histogram) whose 0.5-threshold
  /// precision/recall can wobble on near-boundary rows.
  double auc = 0.0;
  // Per-fold metrics for variance analysis.
  std::vector<ClassificationMetrics> per_fold;
};

/// Runs stratified k-fold cross-validation of `prototype` on `data`
/// (the paper's five-fold protocol for Table III). The prototype is cloned
/// untrained for each fold.
Result<CrossValidationResult> CrossValidate(const Classifier& prototype,
                                            const Dataset& data, size_t folds,
                                            uint64_t seed);

}  // namespace cats::ml

#endif  // CATS_ML_CROSS_VALIDATION_H_
