#include "ml/dataset.h"

#include <cstdlib>

#include "util/csv.h"
#include "util/string_util.h"

namespace cats::ml {

Status Dataset::AddRow(const std::vector<float>& features, int label) {
  if (features.size() != num_features()) {
    return Status::InvalidArgument(
        StrFormat("row width %zu != feature count %zu", features.size(),
                  num_features()));
  }
  if (label != 0 && label != 1) {
    return Status::InvalidArgument("label must be 0 or 1");
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
  return Status::OK();
}

size_t Dataset::CountLabel(int label) const {
  size_t n = 0;
  for (int l : labels_) {
    if (l == label) ++n;
  }
  return n;
}

Dataset Dataset::Select(const std::vector<size_t>& indices) const {
  Dataset out(feature_names_);
  out.data_.reserve(indices.size() * num_features());
  out.labels_.reserve(indices.size());
  for (size_t i : indices) {
    const float* row = Row(i);
    out.data_.insert(out.data_.end(), row, row + num_features());
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

std::vector<double> Dataset::Column(size_t feature) const {
  std::vector<double> out;
  out.reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    out.push_back(static_cast<double>(Value(i, feature)));
  }
  return out;
}

Status Dataset::SaveCsv(const std::string& path) const {
  CsvWriter writer(path);
  std::vector<std::string> header = feature_names_;
  header.push_back("label");
  writer.SetHeader(std::move(header));
  for (size_t i = 0; i < num_rows(); ++i) {
    std::vector<std::string> row;
    row.reserve(num_features() + 1);
    for (size_t f = 0; f < num_features(); ++f) {
      row.push_back(StrFormat("%.9g", Value(i, f)));
    }
    row.push_back(std::to_string(labels_[i]));
    writer.AddRow(std::move(row));
  }
  return writer.Flush();
}

Result<Dataset> Dataset::LoadCsv(const std::string& path) {
  CATS_ASSIGN_OR_RETURN(auto rows, ReadCsv(path));
  if (rows.empty()) return Status::ParseError("empty dataset csv: " + path);
  std::vector<std::string> header = rows[0];
  if (header.size() < 2 || header.back() != "label") {
    return Status::ParseError("dataset csv must end with a 'label' column");
  }
  header.pop_back();
  Dataset out(header);
  std::vector<float> features(header.size());
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size() + 1) {
      return Status::ParseError(
          StrFormat("row %zu has %zu fields, want %zu", r, row.size(),
                    header.size() + 1));
    }
    for (size_t f = 0; f < header.size(); ++f) {
      features[f] = std::strtof(row[f].c_str(), nullptr);
    }
    int label = std::atoi(row.back().c_str());
    CATS_RETURN_NOT_OK(out.AddRow(features, label));
  }
  return out;
}

}  // namespace cats::ml
