#ifndef CATS_ML_DATASET_H_
#define CATS_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cats::ml {

/// Dense row-major labeled dataset for binary classification. Label 1 is
/// the positive class (fraud). Feature names travel with the data so model
/// reports (Fig 7 feature importance) stay readable.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  /// Appends a row; the row width must equal num_features().
  Status AddRow(const std::vector<float>& features, int label);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return feature_names_.size(); }

  const float* Row(size_t i) const {
    return data_.data() + i * num_features();
  }
  int Label(size_t i) const { return labels_[i]; }
  float Value(size_t row, size_t feature) const {
    return data_[row * num_features() + feature];
  }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<int>& labels() const { return labels_; }

  size_t CountLabel(int label) const;

  /// Subset by row indices (copies).
  Dataset Select(const std::vector<size_t>& indices) const;

  /// One feature as a column vector.
  std::vector<double> Column(size_t feature) const;

  /// CSV round-trip (header = feature names + "label").
  Status SaveCsv(const std::string& path) const;
  static Result<Dataset> LoadCsv(const std::string& path);

 private:
  std::vector<std::string> feature_names_;
  std::vector<float> data_;
  std::vector<int> labels_;
};

}  // namespace cats::ml

#endif  // CATS_ML_DATASET_H_
