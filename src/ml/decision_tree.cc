#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cats::ml {
namespace {

double Gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const Dataset& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit tree on empty dataset");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<size_t> indices(train.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  BuildNode(train, indices, 0);
  return Status::OK();
}

int32_t DecisionTree::BuildNode(const Dataset& data,
                                std::vector<size_t>& indices, size_t depth) {
  depth_ = std::max(depth_, depth);
  double total = static_cast<double>(indices.size());
  double pos = 0.0;
  for (size_t i : indices) pos += data.Label(i);

  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].leaf_value = total > 0 ? static_cast<float>(pos / total)
                                         : 0.5f;

  bool can_split = depth < options_.max_depth &&
                   indices.size() >= options_.min_samples_split &&
                   pos > 0.0 && pos < total;
  if (!can_split) return node_id;

  double parent_impurity = Gini(pos, total);
  double best_gain = options_.min_impurity_decrease;
  int32_t best_feature = -1;
  float best_threshold = 0.0f;

  // Exact greedy: per feature, sort this node's rows by value and scan
  // boundaries between distinct values.
  std::vector<std::pair<float, int>> sorted;
  sorted.reserve(indices.size());
  for (size_t f = 0; f < data.num_features(); ++f) {
    sorted.clear();
    for (size_t i : indices) {
      sorted.emplace_back(data.Value(i, f), data.Label(i));
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    double left_pos = 0.0, left_n = 0.0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      left_pos += sorted[k].second;
      left_n += 1.0;
      if (sorted[k].first == sorted[k + 1].first) continue;
      double right_n = total - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double right_pos = pos - left_pos;
      double weighted =
          (left_n / total) * Gini(left_pos, left_n) +
          (right_n / total) * Gini(right_pos, right_n);
      double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        // Split at the midpoint of the boundary pair.
        best_threshold = 0.5f * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<size_t> left_idx, right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (size_t i : indices) {
    if (data.Value(i, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;  // degenerate

  // Free this node's index memory before recursing.
  indices.clear();
  indices.shrink_to_fit();

  int32_t left = BuildNode(data, left_idx, depth + 1);
  int32_t right = BuildNode(data, right_idx, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictProba(const float* row) const {
  if (nodes_.empty()) return 0.5;
  int32_t id = 0;
  for (;;) {
    const Node& node = nodes_[id];
    if (node.feature < 0) return node.leaf_value;
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

size_t DecisionTree::num_split_nodes() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.feature >= 0) ++n;
  }
  return n;
}

}  // namespace cats::ml
