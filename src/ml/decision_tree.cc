#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cats::ml {
namespace {

double Gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const Dataset& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit tree on empty dataset");
  }
  nodes_.clear();
  depth_ = 0;
  size_t n = train.num_rows();
  size_t d = train.num_features();
  if (d == 0) {
    // No features to split on: the tree is a single prior-probability leaf.
    double pos = 0.0;
    for (size_t i = 0; i < n; ++i) pos += train.Label(i);
    nodes_.emplace_back();
    nodes_[0].leaf_value = static_cast<float>(pos / static_cast<double>(n));
    return Status::OK();
  }
  // Pre-sort row indices per feature once; BuildNode used to re-sort every
  // feature at every node (O(n log n) per node per feature). Splits now
  // partition these lists order-preservingly, so children stay sorted for
  // free. Ties sort by row index, which keeps Fit deterministic.
  std::vector<std::vector<uint32_t>> lists(d);
  for (size_t f = 0; f < d; ++f) {
    lists[f].resize(n);
    std::iota(lists[f].begin(), lists[f].end(), 0);
    std::sort(lists[f].begin(), lists[f].end(),
              [&train, f](uint32_t a, uint32_t b) {
                float va = train.Value(a, f);
                float vb = train.Value(b, f);
                return va < vb || (va == vb && a < b);
              });
  }
  BuildNode(train, lists, 0);
  return Status::OK();
}

int32_t DecisionTree::BuildNode(const Dataset& data,
                                std::vector<std::vector<uint32_t>>& lists,
                                size_t depth) {
  depth_ = std::max(depth_, depth);
  const std::vector<uint32_t>& rows = lists.front();
  double total = static_cast<double>(rows.size());
  double pos = 0.0;
  for (uint32_t i : rows) pos += data.Label(i);

  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].leaf_value = total > 0 ? static_cast<float>(pos / total)
                                         : 0.5f;

  bool can_split = depth < options_.max_depth &&
                   rows.size() >= options_.min_samples_split &&
                   pos > 0.0 && pos < total;
  if (!can_split) return node_id;

  double parent_impurity = Gini(pos, total);
  double best_gain = options_.min_impurity_decrease;
  int32_t best_feature = -1;
  float best_threshold = 0.0f;

  // Exact greedy over the pre-sorted lists: scan boundaries between
  // distinct values. Equal-value runs contribute the same left-side sums
  // regardless of intra-run order, so this finds exactly the splits the
  // sort-per-node version did.
  for (size_t f = 0; f < data.num_features(); ++f) {
    const std::vector<uint32_t>& sorted = lists[f];
    if (data.Value(sorted.front(), f) == data.Value(sorted.back(), f)) {
      continue;
    }
    double left_pos = 0.0, left_n = 0.0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      float value = data.Value(sorted[k], f);
      float next = data.Value(sorted[k + 1], f);
      left_pos += data.Label(sorted[k]);
      left_n += 1.0;
      if (value == next) continue;
      double right_n = total - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double right_pos = pos - left_pos;
      double weighted =
          (left_n / total) * Gini(left_pos, left_n) +
          (right_n / total) * Gini(right_pos, right_n);
      double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        // Split at the midpoint of the boundary pair.
        best_threshold = 0.5f * (value + next);
      }
    }
  }
  if (best_feature < 0) return node_id;

  size_t bf = static_cast<size_t>(best_feature);
  std::vector<std::vector<uint32_t>> left_lists(lists.size());
  std::vector<std::vector<uint32_t>> right_lists(lists.size());
  for (size_t f = 0; f < lists.size(); ++f) {
    for (uint32_t i : lists[f]) {
      (data.Value(i, bf) <= best_threshold ? left_lists[f] : right_lists[f])
          .push_back(i);
    }
  }
  if (left_lists.front().empty() || right_lists.front().empty()) {
    return node_id;  // degenerate
  }

  // Free this node's index memory before recursing.
  lists.clear();
  lists.shrink_to_fit();

  int32_t left = BuildNode(data, left_lists, depth + 1);
  int32_t right = BuildNode(data, right_lists, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictProba(const float* row) const {
  if (nodes_.empty()) return 0.5;
  int32_t id = 0;
  for (;;) {
    const Node& node = nodes_[id];
    if (node.feature < 0) return node.leaf_value;
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

size_t DecisionTree::num_split_nodes() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.feature >= 0) ++n;
  }
  return n;
}

}  // namespace cats::ml
