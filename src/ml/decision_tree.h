#ifndef CATS_ML_DECISION_TREE_H_
#define CATS_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace cats::ml {

struct DecisionTreeOptions {
  size_t max_depth = 8;
  size_t min_samples_split = 10;
  size_t min_samples_leaf = 5;
  double min_impurity_decrease = 1e-7;
};

/// CART binary classification tree with Gini impurity and axis-aligned
/// threshold splits — the "Decision Tree" baseline of Table III.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options) : options_(options) {}
  DecisionTree() : DecisionTree(DecisionTreeOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  std::string name() const override { return "Decision Tree"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<DecisionTree>(options_);
  }

  /// Number of internal (split) nodes; 0 before Fit.
  size_t num_split_nodes() const;
  size_t depth() const { return depth_; }

 private:
  friend class DecisionTreeTestPeer;

  struct Node {
    // Internal node when feature >= 0; leaf otherwise.
    int32_t feature = -1;
    float threshold = 0.0f;      // go left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    float leaf_value = 0.0f;     // P(positive) at a leaf
  };

  // `lists[f]` holds this node's rows sorted by feature f — pre-sorted once
  // in Fit and partitioned (order-preserving) on every split, so no node
  // ever re-sorts.
  int32_t BuildNode(const Dataset& data,
                    std::vector<std::vector<uint32_t>>& lists, size_t depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  size_t depth_ = 0;
};

}  // namespace cats::ml

#endif  // CATS_ML_DECISION_TREE_H_
