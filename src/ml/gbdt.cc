#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>

#include "util/csv.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cats::ml {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// XGBoost structure score contribution of one side.
inline double SideScore(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

/// Shortest decimal that round-trips the exact float — model files must
/// re-load bit-identically (the determinism tests diff saved bytes).
std::string FloatStr(float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

std::string DoubleStr(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Batches below this stay serial: the per-row cost is ~µs, so spinning up
/// workers only pays for itself on real scoring batches.
constexpr size_t kMinParallelPredictRows = 256;

}  // namespace

size_t Gbdt::ResolvedThreads() const {
  // Capped at hardware concurrency: extra workers are pure scheduling
  // overhead (the per-level tasks are uniform), and the cap cannot change
  // results — work is assigned per feature into per-feature output slots,
  // identical no matter which worker computes them.
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  size_t t = options_.num_threads;
  if (t == 0 || t > hw) t = hw;
  return t;
}

Status Gbdt::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t d = train.num_features();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("cannot fit gbdt on empty dataset");
  }
  if (options_.base_score <= 0.0f || options_.base_score >= 1.0f) {
    return Status::InvalidArgument("base_score must be in (0, 1)");
  }
  trees_.clear();
  loss_curve_.clear();
  feature_names_ = train.feature_names();
  split_counts_.assign(d, 0);
  base_margin_ = std::log(options_.base_score / (1.0 - options_.base_score));
  return BoostRounds(train, options_.num_rounds, /*warm=*/false);
}

Status Gbdt::WarmStart(const Dataset& train, size_t extra_rounds) {
  if (trees_.empty()) {
    return Status::FailedPrecondition(
        "no ensemble to warm-start; Fit or Load a model first");
  }
  if (extra_rounds == 0) {
    return Status::InvalidArgument("warm-start needs extra_rounds > 0");
  }
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot warm-start gbdt on empty dataset");
  }
  if (train.num_features() != feature_names_.size()) {
    return Status::InvalidArgument(
        "warm-start dataset has " + std::to_string(train.num_features()) +
        " features, model expects " + std::to_string(feature_names_.size()));
  }
  // A v1 model file restores names but not split counts; make sure the
  // accumulator exists before the new trees add to it.
  if (split_counts_.size() != train.num_features()) {
    split_counts_.assign(train.num_features(), 0);
  }
  obs::MetricsRegistry::Global()
      .GetCounter(obs::kGbdtWarmStartsTotal)
      ->Increment();
  return BoostRounds(train, extra_rounds, /*warm=*/true);
}

Status Gbdt::BoostRounds(const Dataset& train, size_t rounds, bool warm) {
  size_t n = train.num_rows();
  size_t d = train.num_features();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* rounds_metric = registry.GetCounter(obs::kGbdtRoundsTotal);
  obs::LatencyHistogram* round_latency =
      registry.GetLatencyHistogram(obs::kGbdtRoundLatencyMicros);

  bool use_hist = options_.split_method == GbdtSplitMethod::kHistogram;
  size_t threads = ResolvedThreads();
  std::unique_ptr<ThreadPool> pool;
  if (use_hist && threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Per-method preprocessing, done once and reused by every tree: the exact
  // path pre-sorts row indices per feature; the histogram path learns the
  // quantile bin boundaries and pre-bins the whole dataset into uint8.
  std::vector<std::vector<uint32_t>> sorted_rows;
  std::vector<uint8_t> binned;
  if (use_hist) {
    obs::ScopedTimer bin_timer(
        registry.GetLatencyHistogram(obs::kGbdtHistBinBuildLatencyMicros));
    bin_mapper_ = BinMapper::Build(train, options_.max_bins);
    binned = bin_mapper_.BinRows(train, pool.get());
    // Transpose to feature-major [f * n + row]: every per-feature histogram
    // task then scans its bin indices sequentially instead of striding
    // through the row-major matrix, which is where the accumulation loop
    // spends its cache misses.
    std::vector<uint8_t> by_feature(binned.size());
    for (size_t r = 0; r < n; ++r) {
      for (size_t f = 0; f < d; ++f) by_feature[f * n + r] = binned[r * d + f];
    }
    binned = std::move(by_feature);
  } else {
    bin_mapper_ = BinMapper();
    sorted_rows.resize(d);
    for (size_t f = 0; f < d; ++f) {
      sorted_rows[f].resize(n);
      std::iota(sorted_rows[f].begin(), sorted_rows[f].end(), 0);
      std::sort(sorted_rows[f].begin(), sorted_rows[f].end(),
                [&train, f](uint32_t a, uint32_t b) {
                  return train.Value(a, f) < train.Value(b, f);
                });
    }
  }

  std::vector<double> margin(n, base_margin_);
  if (warm) {
    // Resume from the loaded ensemble's predictions: the new trees fit the
    // old model's residuals on the fresh window.
    for (size_t i = 0; i < n; ++i) margin[i] = PredictMargin(train.Row(i));
  }
  std::vector<double> grad(n), hess(n);
  std::vector<char> in_sample(n, 1);
  // Offsetting by the ensemble size gives each warm-start continuation a
  // fresh subsample stream; cold fits add 0, keeping models bit-identical
  // to the pre-warm-start implementation.
  Rng rng(options_.seed + trees_.size());

  std::vector<size_t> all_features(d);
  std::iota(all_features.begin(), all_features.end(), 0);

  // First-order grad and second-order hess of logistic loss at the initial
  // margin; after each round the fused update loop below refreshes them, so
  // every margin is pushed through the sigmoid exactly once per round.
  for (size_t i = 0; i < n; ++i) {
    double p = Sigmoid(margin[i]);
    grad[i] = p - static_cast<double>(train.Label(i));
    hess[i] = std::max(p * (1.0 - p), 1e-16);
  }

  for (size_t round = 0; round < rounds; ++round) {
    obs::ScopedTimer round_timer(round_latency);
    rounds_metric->Increment();
    // Row subsampling.
    if (options_.subsample < 1.0f) {
      for (size_t i = 0; i < n; ++i) {
        in_sample[i] = rng.Bernoulli(options_.subsample) ? 1 : 0;
      }
    }

    // Column subsampling.
    std::vector<size_t> features = all_features;
    if (options_.colsample < 1.0f && d > 1) {
      rng.Shuffle(&features);
      size_t keep = std::max<size_t>(
          1, static_cast<size_t>(options_.colsample * static_cast<float>(d)));
      features.resize(keep);
      std::sort(features.begin(), features.end());
    }

    Tree tree =
        use_hist
            ? BuildTreeHist(binned, grad, hess, in_sample, features,
                            pool.get())
            : BuildTree(train, grad, hess, in_sample, features, sorted_rows);
    // Update margins with the shrunken tree outputs.
    for (size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * TreePredict(tree, train.Row(i));
    }
    trees_.push_back(std::move(tree));

    // One sigmoid per row feeds both the round's loss and the next round's
    // grad/hess. Kept separate from the margin loop above: mixing the
    // branchy tree walk into this exp/log loop measurably slows both.
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double p = Sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(train.Label(i));
      hess[i] = std::max(p * (1.0 - p), 1e-16);
      p = std::clamp(p, 1e-12, 1.0 - 1e-12);
      loss -= train.Label(i) == 1 ? std::log(p) : std::log(1.0 - p);
    }
    loss_curve_.push_back(loss / static_cast<double>(n));
  }
  if (!loss_curve_.empty()) {
    registry.GetGauge(obs::kGbdtLastTrainingLoss)->Set(loss_curve_.back());
  }
  return Status::OK();
}

Gbdt::Tree Gbdt::BuildTree(
    const Dataset& data, const std::vector<double>& grad,
    const std::vector<double>& hess, const std::vector<char>& in_sample,
    const std::vector<size_t>& features,
    const std::vector<std::vector<uint32_t>>& sorted_rows) {
  size_t n = data.num_rows();
  Tree tree;
  tree.emplace_back();  // root placeholder

  // node_of[i]: current tree node of row i, or -1 if excluded.
  std::vector<int32_t> node_of(n);
  for (size_t i = 0; i < n; ++i) node_of[i] = in_sample[i] ? 0 : -1;

  struct NodeStats {
    double g = 0.0;
    double h = 0.0;
    // Best split found at the current level.
    double best_gain = 0.0;
    int32_t best_feature = -1;
    float best_threshold = 0.0f;
    // Scan state (reset per feature).
    double gl = 0.0;
    double hl = 0.0;
    float last_value = 0.0f;
    bool seen_any = false;
  };

  std::vector<int32_t> level_nodes = {0};
  std::vector<NodeStats> stats(1);
  for (size_t i = 0; i < n; ++i) {
    if (node_of[i] < 0) continue;
    stats[0].g += grad[i];
    stats[0].h += hess[i];
  }

  double lambda = options_.lambda;
  double gamma = options_.gamma;

  for (size_t depth = 0; depth < options_.max_depth && !level_nodes.empty();
       ++depth) {
    // node_slot[node_id] -> index into `stats` for this level.
    std::vector<int32_t> node_slot(tree.size(), -1);
    for (size_t s = 0; s < level_nodes.size(); ++s) {
      node_slot[level_nodes[s]] = static_cast<int32_t>(s);
      stats[s].best_gain = gamma;
      stats[s].best_feature = -1;
    }

    // Exact greedy scan: for each candidate feature, sweep all rows in
    // ascending feature order, maintaining per-node left-side aggregates.
    for (size_t f : features) {
      for (NodeStats& st : stats) {
        st.gl = 0.0;
        st.hl = 0.0;
        st.seen_any = false;
      }
      for (uint32_t row : sorted_rows[f]) {
        int32_t node = node_of[row];
        if (node < 0 || node_slot[node] < 0) continue;
        NodeStats& st = stats[node_slot[node]];
        float value = data.Value(row, f);
        if (st.seen_any && value != st.last_value) {
          // Candidate boundary between last_value and value.
          double gr = st.g - st.gl;
          double hr = st.h - st.hl;
          if (st.hl >= options_.min_child_weight &&
              hr >= options_.min_child_weight) {
            double gain = 0.5 * (SideScore(st.gl, st.hl, lambda) +
                                 SideScore(gr, hr, lambda) -
                                 SideScore(st.g, st.h, lambda));
            if (gain > st.best_gain) {
              st.best_gain = gain;
              st.best_feature = static_cast<int32_t>(f);
              st.best_threshold = 0.5f * (st.last_value + value);
            }
          }
        }
        st.gl += grad[row];
        st.hl += hess[row];
        st.last_value = value;
        st.seen_any = true;
      }
    }

    // Materialize the chosen splits; compute child stats.
    std::vector<int32_t> next_level;
    std::vector<NodeStats> next_stats;
    for (size_t s = 0; s < level_nodes.size(); ++s) {
      int32_t node_id = level_nodes[s];
      NodeStats& st = stats[s];
      if (st.best_feature < 0) {
        tree[node_id].value = static_cast<float>(-st.g / (st.h + lambda));
        continue;
      }
      int32_t left_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      int32_t right_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      tree[node_id].feature = st.best_feature;
      tree[node_id].threshold = st.best_threshold;
      tree[node_id].left = left_id;
      tree[node_id].right = right_id;
      ++split_counts_[static_cast<size_t>(st.best_feature)];

      next_level.push_back(left_id);
      next_stats.emplace_back();
      next_level.push_back(right_id);
      next_stats.emplace_back();
    }

    if (next_level.empty()) break;

    // Reassign rows to children and accumulate child G/H.
    std::vector<int32_t> slot_of_node(tree.size(), -1);
    for (size_t s = 0; s < next_level.size(); ++s) {
      slot_of_node[next_level[s]] = static_cast<int32_t>(s);
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t node = node_of[i];
      if (node < 0) continue;
      const Node& parent = tree[node];
      if (parent.feature < 0) {
        node_of[i] = -1;  // settled in a leaf
        continue;
      }
      int32_t child = data.Value(i, static_cast<size_t>(parent.feature)) <=
                              parent.threshold
                          ? parent.left
                          : parent.right;
      node_of[i] = child;
      NodeStats& st = next_stats[slot_of_node[child]];
      st.g += grad[i];
      st.h += hess[i];
    }

    level_nodes = std::move(next_level);
    stats = std::move(next_stats);
  }

  // Any nodes still pending at max depth become leaves.
  for (size_t s = 0; s < level_nodes.size(); ++s) {
    int32_t node_id = level_nodes[s];
    if (tree[node_id].feature < 0) {
      tree[node_id].value =
          static_cast<float>(-stats[s].g / (stats[s].h + lambda));
    }
  }
  return tree;
}

Gbdt::Tree Gbdt::BuildTreeHist(const std::vector<uint8_t>& binned,
                               const std::vector<double>& grad,
                               const std::vector<double>& hess,
                               const std::vector<char>& in_sample,
                               const std::vector<size_t>& features,
                               ThreadPool* pool) {
  // Determinism contract (see docs/ARCHITECTURE.md): the result must be
  // bit-identical for any thread count. Parallel work is therefore assigned
  // per FEATURE, not per row chunk: each (node, feature) histogram is
  // accumulated by exactly one task, always in ascending row order, into a
  // slot nobody else touches; split candidates land in per-(node, feature)
  // slots and are reduced serially in ascending feature order with a
  // strict > comparison (lowest feature index, then lowest bin, wins ties).
  size_t n = grad.size();
  size_t nf = features.size();  // candidate features after colsample
  double lambda = options_.lambda;
  double gamma = options_.gamma;
  double min_child = options_.min_child_weight;

  Tree tree;
  tree.emplace_back();  // root placeholder

  // Sampled rows in ascending index order. Each level keeps the rows of a
  // node contiguous; stable partition preserves ascending order inside each
  // child, so per-histogram accumulation order is fixed once and for all.
  std::vector<uint32_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (in_sample[i]) rows.push_back(static_cast<uint32_t>(i));
  }

  enum class HistSource : uint8_t { kFromRows, kSubtract };
  struct LevelNode {
    int32_t id = 0;           // tree node index
    size_t begin = 0;         // row range [begin, end) in `rows`
    size_t end = 0;
    double g = 0.0;
    double h = 0.0;
    HistSource source = HistSource::kFromRows;
    int32_t parent_slot = -1;   // previous-level slot (kSubtract only)
    int32_t sibling_slot = -1;  // current-level slot (kSubtract only)
  };
  struct SplitCand {
    double gain = 0.0;  // initialized to gamma per node below
    int32_t bin = -1;
  };

  std::vector<LevelNode> level(1);
  level[0].id = 0;
  level[0].begin = 0;
  level[0].end = rows.size();
  for (uint32_t r : rows) {
    level[0].g += grad[r];
    level[0].h += hess[r];
  }

  // Histograms: [slot][feature-pos][bin] -> (grad sum, hess sum). The
  // previous level's buffer is retained so a child can be derived as
  // parent - sibling instead of re-scanning its rows. The stride is sized
  // to the widest candidate feature, not the max_bins ceiling, so features
  // with few distinct values keep the hot histograms small and
  // cache-resident.
  size_t max_nb = 1;
  for (size_t f : features) max_nb = std::max(max_nb, bin_mapper_.num_bins(f));
  const size_t kHistStride = max_nb * 2;
  std::vector<double> cur_hist;
  std::vector<double> parent_hist;
  std::vector<SplitCand> cands;

  size_t hists_from_rows = 0;
  size_t hists_subtracted = 0;

  for (size_t depth = 0; depth < options_.max_depth && !level.empty();
       ++depth) {
    size_t num_slots = level.size();
    // No wholesale zeroing here: each task zeroes exactly the from-rows
    // slices it owns (subtraction slices are fully overwritten), so the
    // clear is parallel and touches only the live [0, 2*nb) range. The
    // buffer only ever grows — stale bytes from earlier levels/trees are
    // never read, because every slice is zeroed or overwritten before use.
    if (cur_hist.size() < num_slots * nf * kHistStride) {
      cur_hist.resize(num_slots * nf * kHistStride);
    }
    cands.assign(num_slots * nf, SplitCand{});

    // One task per candidate feature: build every node's histogram for that
    // feature (from rows or by subtraction), then search its splits.
    auto feature_task = [&](size_t fi) {
      size_t f = features[fi];
      size_t nb = bin_mapper_.num_bins(f);
      for (size_t s = 0; s < num_slots; ++s) {
        if (level[s].source != HistSource::kFromRows) continue;
        double* hist = &cur_hist[(s * nf + fi) * kHistStride];
        std::fill(hist, hist + 2 * nb, 0.0);
        const uint8_t* bins_f = binned.data() + f * n;
        for (size_t r = level[s].begin; r < level[s].end; ++r) {
          uint32_t row = rows[r];
          size_t b = bins_f[row];
          hist[2 * b] += grad[row];
          hist[2 * b + 1] += hess[row];
        }
      }
      // Subtraction second: the sibling's histogram for this feature was
      // just built above, inside this same task.
      for (size_t s = 0; s < num_slots; ++s) {
        if (level[s].source != HistSource::kSubtract) continue;
        double* hist = &cur_hist[(s * nf + fi) * kHistStride];
        const double* parent =
            &parent_hist[(static_cast<size_t>(level[s].parent_slot) * nf + fi) *
                         kHistStride];
        const double* sibling =
            &cur_hist[(static_cast<size_t>(level[s].sibling_slot) * nf + fi) *
                      kHistStride];
        for (size_t b = 0; b < 2 * nb; ++b) hist[b] = parent[b] - sibling[b];
      }
      // Split search over bins, ascending; strict > keeps the lowest bin on
      // equal gain.
      for (size_t s = 0; s < num_slots; ++s) {
        const LevelNode& node = level[s];
        const double* hist = &cur_hist[(s * nf + fi) * kHistStride];
        SplitCand cand;
        cand.gain = gamma;
        double gl = 0.0, hl = 0.0;
        double parent_score = SideScore(node.g, node.h, lambda);
        for (size_t b = 0; b + 1 < nb; ++b) {
          // An empty bin leaves (gl, hl) unchanged, so its candidate gain
          // equals the previous bin's and the strict > below would reject
          // it — skipping is exactly equivalent, and on deep nodes most
          // bins are empty.
          if (hist[2 * b] == 0.0 && hist[2 * b + 1] == 0.0) continue;
          gl += hist[2 * b];
          hl += hist[2 * b + 1];
          double gr = node.g - gl;
          double hr = node.h - hl;
          if (hl < min_child || hr < min_child) continue;
          double gain = 0.5 * (SideScore(gl, hl, lambda) +
                               SideScore(gr, hr, lambda) - parent_score);
          if (gain > cand.gain) {
            cand.gain = gain;
            cand.bin = static_cast<int32_t>(b);
          }
        }
        cands[s * nf + fi] = cand;
      }
    };

    if (pool != nullptr && nf >= 2) {
      // Batch features into at most one task per worker (contiguous
      // ranges): fewer submit/wake round-trips per level than one task per
      // feature. Grouping cannot change the result — every feature's work
      // is confined to its own slots no matter which task runs it.
      size_t groups = std::min(ResolvedThreads(), nf);
      for (size_t g = 0; g < groups; ++g) {
        size_t lo = g * nf / groups;
        size_t hi = (g + 1) * nf / groups;
        pool->Submit([&feature_task, lo, hi] {
          for (size_t fi = lo; fi < hi; ++fi) feature_task(fi);
        });
      }
      pool->Wait();
    } else {
      for (size_t fi = 0; fi < nf; ++fi) feature_task(fi);
    }
    for (const LevelNode& node : level) {
      (node.source == HistSource::kFromRows ? hists_from_rows
                                            : hists_subtracted) += nf;
    }

    // Serial reduction across features, ascending index (features is
    // sorted), strict > — ties go to the lowest feature index.
    std::vector<LevelNode> next_level;
    for (size_t s = 0; s < num_slots; ++s) {
      LevelNode& node = level[s];
      double best_gain = gamma;
      int32_t best_fi = -1;
      int32_t best_bin = -1;
      for (size_t fi = 0; fi < nf; ++fi) {
        const SplitCand& cand = cands[s * nf + fi];
        if (cand.bin >= 0 && cand.gain > best_gain) {
          best_gain = cand.gain;
          best_fi = static_cast<int32_t>(fi);
          best_bin = cand.bin;
        }
      }
      if (best_fi < 0) {
        tree[node.id].value = static_cast<float>(-node.g / (node.h + lambda));
        continue;
      }
      size_t f = features[static_cast<size_t>(best_fi)];
      // "bin <= b" == "value <= UpperBound(f, b)": trees store plain float
      // thresholds, so inference never needs the mapper.
      float threshold = bin_mapper_.UpperBound(f, static_cast<size_t>(best_bin));

      int32_t left_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      int32_t right_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      tree[node.id].feature = static_cast<int32_t>(f);
      tree[node.id].threshold = threshold;
      tree[node.id].left = left_id;
      tree[node.id].right = right_id;
      ++split_counts_[f];

      // Child G/H accumulated in ascending row order (same order the exact
      // path uses), then a stable partition keeps each child's rows sorted.
      const uint8_t* bins_f = binned.data() + f * n;
      double gl_child = 0.0, hl_child = 0.0;
      for (size_t r = node.begin; r < node.end; ++r) {
        uint32_t row = rows[r];
        if (bins_f[row] <= static_cast<uint8_t>(best_bin)) {
          gl_child += grad[row];
          hl_child += hess[row];
        }
      }
      auto mid = std::stable_partition(
          rows.begin() + static_cast<ptrdiff_t>(node.begin),
          rows.begin() + static_cast<ptrdiff_t>(node.end),
          [&](uint32_t row) {
            return bins_f[row] <= static_cast<uint8_t>(best_bin);
          });
      size_t split_at =
          static_cast<size_t>(mid - rows.begin());

      LevelNode left;
      left.id = left_id;
      left.begin = node.begin;
      left.end = split_at;
      left.g = gl_child;
      left.h = hl_child;
      LevelNode right;
      right.id = right_id;
      right.begin = split_at;
      right.end = node.end;
      right.g = node.g - gl_child;
      right.h = node.h - hl_child;

      // Histogram-subtraction trick: only the smaller child re-scans its
      // rows; the larger one is derived as parent - sibling.
      size_t left_count = left.end - left.begin;
      size_t right_count = right.end - right.begin;
      int32_t left_slot = static_cast<int32_t>(next_level.size());
      int32_t right_slot = left_slot + 1;
      if (left_count <= right_count) {
        left.source = HistSource::kFromRows;
        right.source = HistSource::kSubtract;
        right.parent_slot = static_cast<int32_t>(s);
        right.sibling_slot = left_slot;
      } else {
        right.source = HistSource::kFromRows;
        left.source = HistSource::kSubtract;
        left.parent_slot = static_cast<int32_t>(s);
        left.sibling_slot = right_slot;
      }
      next_level.push_back(left);
      next_level.push_back(right);
    }

    if (next_level.empty()) break;
    parent_hist.swap(cur_hist);
    level = std::move(next_level);
  }

  // Any nodes still pending at max depth become leaves.
  for (const LevelNode& node : level) {
    if (tree[node.id].feature < 0) {
      tree[node.id].value = static_cast<float>(-node.g / (node.h + lambda));
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (hists_from_rows > 0) {
    registry.GetCounter(obs::kGbdtHistHistogramsBuiltTotal)
        ->Increment(hists_from_rows);
  }
  if (hists_subtracted > 0) {
    registry.GetCounter(obs::kGbdtHistSubtractionsTotal)
        ->Increment(hists_subtracted);
  }
  return tree;
}

double Gbdt::TreePredict(const Tree& tree, const float* row) {
  int32_t id = 0;
  for (;;) {
    const Node& node = tree[id];
    if (node.feature < 0) return node.value;
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

double Gbdt::PredictMargin(const float* row) const {
  double margin = base_margin_;
  for (const Tree& tree : trees_) {
    margin += options_.learning_rate * TreePredict(tree, row);
  }
  return margin;
}

double Gbdt::PredictProba(const float* row) const {
  return Sigmoid(PredictMargin(row));
}

std::vector<double> Gbdt::PredictProbaBatch(const float* rows, size_t num_rows,
                                            size_t stride) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(obs::kGbdtPredictBatchRowsTotal)->Increment(num_rows);
  obs::ScopedTimer timer(
      registry.GetLatencyHistogram(obs::kGbdtPredictBatchLatencyMicros));

  std::vector<double> out(num_rows);
  auto score_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = PredictProba(rows + i * stride);
    }
  };
  size_t threads = ResolvedThreads();
  if (threads > 1 && num_rows >= kMinParallelPredictRows) {
    // One output slot per row: bit-identical to the serial loop for any
    // thread count, no synchronization on the data plane.
    ThreadPool pool(threads);
    pool.ParallelForChunks(num_rows, score_range);
  } else {
    score_range(0, num_rows);
  }
  return out;
}

Result<std::vector<double>> Gbdt::PredictBatch(const Dataset& data) const {
  if (trees_.empty()) return Status::FailedPrecondition("model not trained");
  if (data.num_features() != feature_names_.size()) {
    return Status::InvalidArgument("feature count mismatch in PredictBatch");
  }
  if (data.num_rows() == 0) return std::vector<double>{};
  return PredictProbaBatch(data.Row(0), data.num_rows(), data.num_features());
}

Status Gbdt::Save(const std::string& path) const {
  if (trees_.empty()) return Status::FailedPrecondition("model not trained");
  std::ostringstream out;
  out << "cats-gbdt-v2\n";
  out << FloatStr(options_.learning_rate) << " " << DoubleStr(base_margin_)
      << " " << feature_names_.size() << " " << trees_.size() << "\n";
  for (const std::string& name : feature_names_) out << name << "\n";
  for (uint64_t c : split_counts_) out << c << " ";
  out << "\n";
  for (const Tree& tree : trees_) {
    out << tree.size() << "\n";
    for (const Node& node : tree) {
      out << node.feature << " " << FloatStr(node.threshold) << " "
          << node.left << " " << node.right << " " << FloatStr(node.value)
          << "\n";
    }
  }
  // v2 carries the training-time quantization so a deployed artifact is a
  // complete record of how the model was built; exact-greedy models have no
  // mapper and say so explicitly.
  if (bin_mapper_.empty()) {
    out << "nobins\n";
  } else {
    bin_mapper_.AppendTo(out);
  }
  // Atomic (temp + rename): a crash mid-save leaves the previous model
  // intact, never a truncated file that could half-parse.
  return WriteStringToFileAtomic(path, out.str());
}

Result<Gbdt> Gbdt::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  if (!(in >> magic) || (magic != "cats-gbdt-v1" && magic != "cats-gbdt-v2")) {
    return Status::ParseError("bad gbdt model header in " + path);
  }
  bool has_bin_section = magic == "cats-gbdt-v2";
  // A truncated or bit-flipped file must produce a descriptive error, never
  // a model that walks out-of-bounds at predict time: counts are
  // plausibility-bounded, node indices validated against the tree, and any
  // bytes past the advertised structure are rejected.
  constexpr size_t kMaxFeatures = 1u << 16;
  constexpr size_t kMaxTrees = 1u << 20;
  constexpr size_t kMaxNodes = 1u << 24;
  Gbdt model;
  size_t num_features = 0, num_trees = 0;
  if (!(in >> model.options_.learning_rate >> model.base_margin_ >>
        num_features >> num_trees)) {
    return Status::ParseError("truncated gbdt header in " + path);
  }
  if (!std::isfinite(model.options_.learning_rate) ||
      !std::isfinite(model.base_margin_) || num_features == 0 ||
      num_features > kMaxFeatures || num_trees == 0 ||
      num_trees > kMaxTrees) {
    return Status::ParseError("implausible gbdt header in " + path);
  }
  model.feature_names_.resize(num_features);
  for (std::string& name : model.feature_names_) {
    if (!(in >> name)) {
      return Status::ParseError("truncated gbdt feature names in " + path);
    }
  }
  model.split_counts_.resize(num_features);
  for (uint64_t& c : model.split_counts_) {
    if (!(in >> c)) {
      return Status::ParseError("truncated gbdt split counts in " + path);
    }
  }
  model.trees_.resize(num_trees);
  for (Tree& tree : model.trees_) {
    size_t nodes = 0;
    if (!(in >> nodes) || nodes == 0 || nodes > kMaxNodes) {
      return Status::ParseError("bad gbdt tree header in " + path);
    }
    tree.resize(nodes);
    for (size_t id = 0; id < nodes; ++id) {
      Node& node = tree[id];
      if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
            node.value)) {
        return Status::ParseError("truncated gbdt tree nodes in " + path);
      }
      if (!std::isfinite(node.threshold) || !std::isfinite(node.value)) {
        return Status::ParseError("non-finite gbdt node in " + path);
      }
      if (node.feature >= 0) {
        // Fit emits children strictly after their parent, so requiring
        // id < left,right < nodes both bounds the indices and guarantees
        // TreePredict terminates on any accepted file.
        if (static_cast<size_t>(node.feature) >= num_features ||
            node.left <= static_cast<int32_t>(id) ||
            node.right <= static_cast<int32_t>(id) ||
            static_cast<size_t>(node.left) >= nodes ||
            static_cast<size_t>(node.right) >= nodes) {
          return Status::ParseError("out-of-bounds gbdt node indices in " +
                                    path);
        }
      }
    }
  }
  if (has_bin_section) {
    std::istream::pos_type section_pos = in.tellg();
    std::string tag;
    if (!(in >> tag)) {
      return Status::ParseError("missing gbdt bin section in " + path);
    }
    if (tag != "nobins") {
      in.clear();
      in.seekg(section_pos);
      Result<BinMapper> mapper = BinMapper::ParseFrom(in, num_features);
      if (!mapper.ok()) {
        return Status::ParseError(mapper.status().message() + " in " + path);
      }
      model.bin_mapper_ = std::move(mapper).value();
    }
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage after gbdt model in " + path);
  }
  return model;
}

}  // namespace cats::ml
