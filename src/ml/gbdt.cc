#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/csv.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "util/random.h"
#include "util/string_util.h"

namespace cats::ml {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// XGBoost structure score contribution of one side.
inline double SideScore(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

Status Gbdt::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t d = train.num_features();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("cannot fit gbdt on empty dataset");
  }
  if (options_.base_score <= 0.0f || options_.base_score >= 1.0f) {
    return Status::InvalidArgument("base_score must be in (0, 1)");
  }
  trees_.clear();
  loss_curve_.clear();
  feature_names_ = train.feature_names();
  split_counts_.assign(d, 0);
  base_margin_ = std::log(options_.base_score / (1.0 - options_.base_score));

  // Pre-sort row indices per feature once; reused by every tree.
  std::vector<std::vector<uint32_t>> sorted_rows(d);
  for (size_t f = 0; f < d; ++f) {
    sorted_rows[f].resize(n);
    std::iota(sorted_rows[f].begin(), sorted_rows[f].end(), 0);
    std::sort(sorted_rows[f].begin(), sorted_rows[f].end(),
              [&train, f](uint32_t a, uint32_t b) {
                return train.Value(a, f) < train.Value(b, f);
              });
  }

  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n), hess(n);
  std::vector<char> in_sample(n, 1);
  Rng rng(options_.seed);

  std::vector<size_t> all_features(d);
  std::iota(all_features.begin(), all_features.end(), 0);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* rounds_metric = registry.GetCounter(obs::kGbdtRoundsTotal);
  obs::LatencyHistogram* round_latency =
      registry.GetLatencyHistogram(obs::kGbdtRoundLatencyMicros);

  for (size_t round = 0; round < options_.num_rounds; ++round) {
    obs::ScopedTimer round_timer(round_latency);
    rounds_metric->Increment();
    // First-order grad and second-order hess of logistic loss.
    for (size_t i = 0; i < n; ++i) {
      double p = Sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(train.Label(i));
      hess[i] = std::max(p * (1.0 - p), 1e-16);
    }

    // Row subsampling.
    if (options_.subsample < 1.0f) {
      for (size_t i = 0; i < n; ++i) {
        in_sample[i] = rng.Bernoulli(options_.subsample) ? 1 : 0;
      }
    }

    // Column subsampling.
    std::vector<size_t> features = all_features;
    if (options_.colsample < 1.0f && d > 1) {
      rng.Shuffle(&features);
      size_t keep = std::max<size_t>(
          1, static_cast<size_t>(options_.colsample * static_cast<float>(d)));
      features.resize(keep);
      std::sort(features.begin(), features.end());
    }

    Tree tree = BuildTree(train, grad, hess, in_sample, features, sorted_rows);
    // Update margins with the shrunken tree outputs.
    for (size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * TreePredict(tree, train.Row(i));
    }
    trees_.push_back(std::move(tree));

    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double p = Sigmoid(margin[i]);
      p = std::clamp(p, 1e-12, 1.0 - 1e-12);
      loss -= train.Label(i) == 1 ? std::log(p) : std::log(1.0 - p);
    }
    loss_curve_.push_back(loss / static_cast<double>(n));
  }
  if (!loss_curve_.empty()) {
    registry.GetGauge(obs::kGbdtLastTrainingLoss)->Set(loss_curve_.back());
  }
  return Status::OK();
}

Gbdt::Tree Gbdt::BuildTree(
    const Dataset& data, const std::vector<double>& grad,
    const std::vector<double>& hess, const std::vector<char>& in_sample,
    const std::vector<size_t>& features,
    const std::vector<std::vector<uint32_t>>& sorted_rows) {
  size_t n = data.num_rows();
  Tree tree;
  tree.emplace_back();  // root placeholder

  // node_of[i]: current tree node of row i, or -1 if excluded.
  std::vector<int32_t> node_of(n);
  for (size_t i = 0; i < n; ++i) node_of[i] = in_sample[i] ? 0 : -1;

  struct NodeStats {
    double g = 0.0;
    double h = 0.0;
    // Best split found at the current level.
    double best_gain = 0.0;
    int32_t best_feature = -1;
    float best_threshold = 0.0f;
    // Scan state (reset per feature).
    double gl = 0.0;
    double hl = 0.0;
    float last_value = 0.0f;
    bool seen_any = false;
  };

  std::vector<int32_t> level_nodes = {0};
  std::vector<NodeStats> stats(1);
  for (size_t i = 0; i < n; ++i) {
    if (node_of[i] < 0) continue;
    stats[0].g += grad[i];
    stats[0].h += hess[i];
  }

  double lambda = options_.lambda;
  double gamma = options_.gamma;

  for (size_t depth = 0; depth < options_.max_depth && !level_nodes.empty();
       ++depth) {
    // node_slot[node_id] -> index into `stats` for this level.
    std::vector<int32_t> node_slot(tree.size(), -1);
    for (size_t s = 0; s < level_nodes.size(); ++s) {
      node_slot[level_nodes[s]] = static_cast<int32_t>(s);
      stats[s].best_gain = gamma;
      stats[s].best_feature = -1;
    }

    // Exact greedy scan: for each candidate feature, sweep all rows in
    // ascending feature order, maintaining per-node left-side aggregates.
    for (size_t f : features) {
      for (NodeStats& st : stats) {
        st.gl = 0.0;
        st.hl = 0.0;
        st.seen_any = false;
      }
      for (uint32_t row : sorted_rows[f]) {
        int32_t node = node_of[row];
        if (node < 0 || node_slot[node] < 0) continue;
        NodeStats& st = stats[node_slot[node]];
        float value = data.Value(row, f);
        if (st.seen_any && value != st.last_value) {
          // Candidate boundary between last_value and value.
          double gr = st.g - st.gl;
          double hr = st.h - st.hl;
          if (st.hl >= options_.min_child_weight &&
              hr >= options_.min_child_weight) {
            double gain = 0.5 * (SideScore(st.gl, st.hl, lambda) +
                                 SideScore(gr, hr, lambda) -
                                 SideScore(st.g, st.h, lambda));
            if (gain > st.best_gain) {
              st.best_gain = gain;
              st.best_feature = static_cast<int32_t>(f);
              st.best_threshold = 0.5f * (st.last_value + value);
            }
          }
        }
        st.gl += grad[row];
        st.hl += hess[row];
        st.last_value = value;
        st.seen_any = true;
      }
    }

    // Materialize the chosen splits; compute child stats.
    std::vector<int32_t> next_level;
    std::vector<NodeStats> next_stats;
    for (size_t s = 0; s < level_nodes.size(); ++s) {
      int32_t node_id = level_nodes[s];
      NodeStats& st = stats[s];
      if (st.best_feature < 0) {
        tree[node_id].value = static_cast<float>(-st.g / (st.h + lambda));
        continue;
      }
      int32_t left_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      int32_t right_id = static_cast<int32_t>(tree.size());
      tree.emplace_back();
      tree[node_id].feature = st.best_feature;
      tree[node_id].threshold = st.best_threshold;
      tree[node_id].left = left_id;
      tree[node_id].right = right_id;
      ++split_counts_[static_cast<size_t>(st.best_feature)];

      next_level.push_back(left_id);
      next_stats.emplace_back();
      next_level.push_back(right_id);
      next_stats.emplace_back();
    }

    if (next_level.empty()) break;

    // Reassign rows to children and accumulate child G/H.
    std::vector<int32_t> slot_of_node(tree.size(), -1);
    for (size_t s = 0; s < next_level.size(); ++s) {
      slot_of_node[next_level[s]] = static_cast<int32_t>(s);
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t node = node_of[i];
      if (node < 0) continue;
      const Node& parent = tree[node];
      if (parent.feature < 0) {
        node_of[i] = -1;  // settled in a leaf
        continue;
      }
      int32_t child = data.Value(i, static_cast<size_t>(parent.feature)) <=
                              parent.threshold
                          ? parent.left
                          : parent.right;
      node_of[i] = child;
      NodeStats& st = next_stats[slot_of_node[child]];
      st.g += grad[i];
      st.h += hess[i];
    }

    level_nodes = std::move(next_level);
    stats = std::move(next_stats);
  }

  // Any nodes still pending at max depth become leaves.
  for (size_t s = 0; s < level_nodes.size(); ++s) {
    int32_t node_id = level_nodes[s];
    if (tree[node_id].feature < 0) {
      tree[node_id].value =
          static_cast<float>(-stats[s].g / (stats[s].h + lambda));
    }
  }
  return tree;
}

double Gbdt::TreePredict(const Tree& tree, const float* row) {
  int32_t id = 0;
  for (;;) {
    const Node& node = tree[id];
    if (node.feature < 0) return node.value;
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

double Gbdt::PredictMargin(const float* row) const {
  double margin = base_margin_;
  for (const Tree& tree : trees_) {
    margin += options_.learning_rate * TreePredict(tree, row);
  }
  return margin;
}

double Gbdt::PredictProba(const float* row) const {
  return Sigmoid(PredictMargin(row));
}

Status Gbdt::Save(const std::string& path) const {
  if (trees_.empty()) return Status::FailedPrecondition("model not trained");
  std::ostringstream out;
  out << "cats-gbdt-v1\n";
  out << options_.learning_rate << " " << base_margin_ << " "
      << feature_names_.size() << " " << trees_.size() << "\n";
  for (const std::string& name : feature_names_) out << name << "\n";
  for (uint64_t c : split_counts_) out << c << " ";
  out << "\n";
  for (const Tree& tree : trees_) {
    out << tree.size() << "\n";
    for (const Node& node : tree) {
      out << node.feature << " " << node.threshold << " " << node.left << " "
          << node.right << " " << node.value << "\n";
    }
  }
  // Atomic (temp + rename): a crash mid-save leaves the previous model
  // intact, never a truncated file that could half-parse.
  return WriteStringToFileAtomic(path, out.str());
}

Result<Gbdt> Gbdt::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  if (!(in >> magic) || magic != "cats-gbdt-v1") {
    return Status::ParseError("bad gbdt model header in " + path);
  }
  // A truncated or bit-flipped file must produce a descriptive error, never
  // a model that walks out-of-bounds at predict time: counts are
  // plausibility-bounded, node indices validated against the tree, and any
  // bytes past the advertised structure are rejected.
  constexpr size_t kMaxFeatures = 1u << 16;
  constexpr size_t kMaxTrees = 1u << 20;
  constexpr size_t kMaxNodes = 1u << 24;
  Gbdt model;
  size_t num_features = 0, num_trees = 0;
  if (!(in >> model.options_.learning_rate >> model.base_margin_ >>
        num_features >> num_trees)) {
    return Status::ParseError("truncated gbdt header in " + path);
  }
  if (!std::isfinite(model.options_.learning_rate) ||
      !std::isfinite(model.base_margin_) || num_features == 0 ||
      num_features > kMaxFeatures || num_trees == 0 ||
      num_trees > kMaxTrees) {
    return Status::ParseError("implausible gbdt header in " + path);
  }
  model.feature_names_.resize(num_features);
  for (std::string& name : model.feature_names_) {
    if (!(in >> name)) {
      return Status::ParseError("truncated gbdt feature names in " + path);
    }
  }
  model.split_counts_.resize(num_features);
  for (uint64_t& c : model.split_counts_) {
    if (!(in >> c)) {
      return Status::ParseError("truncated gbdt split counts in " + path);
    }
  }
  model.trees_.resize(num_trees);
  for (Tree& tree : model.trees_) {
    size_t nodes = 0;
    if (!(in >> nodes) || nodes == 0 || nodes > kMaxNodes) {
      return Status::ParseError("bad gbdt tree header in " + path);
    }
    tree.resize(nodes);
    for (size_t id = 0; id < nodes; ++id) {
      Node& node = tree[id];
      if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
            node.value)) {
        return Status::ParseError("truncated gbdt tree nodes in " + path);
      }
      if (!std::isfinite(node.threshold) || !std::isfinite(node.value)) {
        return Status::ParseError("non-finite gbdt node in " + path);
      }
      if (node.feature >= 0) {
        // Fit emits children strictly after their parent, so requiring
        // id < left,right < nodes both bounds the indices and guarantees
        // TreePredict terminates on any accepted file.
        if (static_cast<size_t>(node.feature) >= num_features ||
            node.left <= static_cast<int32_t>(id) ||
            node.right <= static_cast<int32_t>(id) ||
            static_cast<size_t>(node.left) >= nodes ||
            static_cast<size_t>(node.right) >= nodes) {
          return Status::ParseError("out-of-bounds gbdt node indices in " +
                                    path);
        }
      }
    }
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage after gbdt model in " + path);
  }
  return model;
}

}  // namespace cats::ml
