#ifndef CATS_ML_GBDT_H_
#define CATS_ML_GBDT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/binning.h"
#include "ml/classifier.h"
#include "util/result.h"

namespace cats {
class ThreadPool;
}  // namespace cats

namespace cats::ml {

/// How Fit searches for split thresholds.
enum class GbdtSplitMethod : uint8_t {
  /// Exact greedy: sweep every row in pre-sorted feature order at every
  /// tree level. Exhaustive, serial, O(rows) per node per feature.
  kExact = 0,
  /// Histogram: quantize every feature into <= max_bins bins once per Fit
  /// (ml::BinMapper), accumulate per-bin gradient/hessian stats and search
  /// splits over bins. Per-feature histogram build + split search fan out
  /// over a ThreadPool; the sibling of the smaller child is derived by
  /// histogram subtraction (sibling = parent - child). Bit-deterministic
  /// for any num_threads: each (node, feature) histogram is accumulated by
  /// exactly one task in ascending row order, and ties between equal-gain
  /// splits break toward the lowest feature index, then the lowest bin.
  kHistogram,
};

struct GbdtOptions {
  size_t num_rounds = 120;       // boosting iterations
  size_t max_depth = 4;
  float learning_rate = 0.15f;   // eta
  float lambda = 1.0f;           // L2 on leaf weights
  float gamma = 0.0f;            // minimum split gain
  float min_child_weight = 1.0f; // minimum hessian sum per child
  float subsample = 0.9f;        // row sampling per tree
  float colsample = 1.0f;        // feature sampling per tree
  float base_score = 0.5f;       // initial P(positive)
  uint64_t seed = 7;
  /// Histogram is the production default; kExact remains selectable so the
  /// equivalence tests can pin the two paths against each other.
  GbdtSplitMethod split_method = GbdtSplitMethod::kHistogram;
  /// Histogram bins per feature (2..256). 128 keeps five-fold AUC on the
  /// paper's 11-feature data within 0.003 of exact greedy (64 drifts past
  /// 0.005; 256 closes the gap to 0.0004 but scans twice the bins); see
  /// BENCH_ml.json for the measured speed/quality trade.
  size_t max_bins = 128;
  /// Workers for histogram building / split search and PredictProbaBatch.
  /// 0 = hardware concurrency; 1 = fully serial (no pool). Values above
  /// hardware concurrency are capped to it — never a behavior change, the
  /// trained model is bit-identical for every setting.
  size_t num_threads = 4;
};

/// Gradient-boosted decision trees with second-order (gradient + hessian)
/// split finding, L2 leaf regularization and minimum-gain pruning — a
/// from-scratch reimplementation of the XGBoost algorithm (Chen & Guestrin,
/// KDD'16) that CATS' detector uses as its binary classifier.
///
/// Objective: logistic loss. Split gain and leaf weights follow the XGBoost
/// formulas: gain = 1/2 [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma,
/// leaf weight = -G/(H+l).
///
/// Training supports two split finders (GbdtSplitMethod): the exact greedy
/// scan of the original implementation and the histogram-binned parallel
/// path (see docs/ARCHITECTURE.md, "Training plane & parallelism").
class Gbdt : public Classifier {
 public:
  explicit Gbdt(GbdtOptions options) : options_(options) {}
  Gbdt() : Gbdt(GbdtOptions{}) {}

  Status Fit(const Dataset& train) override;

  /// Continues boosting from the current ensemble: `extra_rounds` new trees
  /// fit against the residuals of the existing model on `train` (typically
  /// a recent window, not the original training set). This is the
  /// drift-recovery path — a warm start adapts in a fraction of a full
  /// refit's rounds because the old trees already carry the stable
  /// structure. The dataset's feature count must match the ensemble;
  /// quantile bins are re-learned from `train` (safe: trees store plain
  /// float thresholds, so old trees are unaffected). Split counts keep
  /// accumulating and the loss curve is appended to. Requires a trained or
  /// loaded model.
  Status WarmStart(const Dataset& train, size_t extra_rounds);

  double PredictProba(const float* row) const override;
  std::string name() const override { return "Xgboost"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<Gbdt>(options_);
  }

  /// Batched scoring: fans contiguous row chunks out over a ThreadPool
  /// (options_.num_threads workers) with one output slot per row, so the
  /// result is bit-identical to calling PredictProba per row, for any
  /// thread count. Small batches stay serial. Reports `gbdt.predict.batch.*`
  /// metrics.
  std::vector<double> PredictProbaBatch(const float* rows, size_t num_rows,
                                        size_t stride) const override;

  /// PredictProbaBatch over a whole dataset; fails on feature-count skew.
  Result<std::vector<double>> PredictBatch(const Dataset& data) const;

  /// Raw margin (log-odds) before the sigmoid.
  double PredictMargin(const float* row) const;

  /// Split-count feature importance — the measure in the paper's Fig 7
  /// ("the times this feature is split during the construction of the
  /// Xgboost model"). Indexed by feature id.
  const std::vector<uint64_t>& feature_split_counts() const {
    return split_counts_;
  }

  /// Names captured from the training dataset, aligned with split counts.
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  size_t num_trees() const { return trees_.size(); }

  /// Training-set logistic loss after each round (for convergence tests).
  const std::vector<double>& training_loss_curve() const {
    return loss_curve_;
  }

  /// The quantile bin boundaries of the last histogram Fit (empty for
  /// kExact models). Persisted with the model so a deployed artifact
  /// records exactly how its training features were quantized.
  const BinMapper& bin_mapper() const { return bin_mapper_; }

  /// Text-format model persistence (deploy-once, score-everywhere — the
  /// paper pre-trains on Taobao's D0 and ships the model to E-platform).
  /// Writes format v2 (v1 plus the bin-boundary block); Load accepts both
  /// v1 and v2 files.
  Status Save(const std::string& path) const;
  static Result<Gbdt> Load(const std::string& path);

 private:
  struct Node {
    int32_t feature = -1;   // -1 => leaf
    float threshold = 0.0f; // left when x <= threshold
    int32_t left = -1;
    int32_t right = -1;
    float value = 0.0f;     // leaf weight
  };
  using Tree = std::vector<Node>;

  Tree BuildTree(const Dataset& data, const std::vector<double>& grad,
                 const std::vector<double>& hess,
                 const std::vector<char>& in_sample,
                 const std::vector<size_t>& features,
                 const std::vector<std::vector<uint32_t>>& sorted_rows);

  /// `binned` is feature-major: bin of (row, feature f) at [f * n + row].
  Tree BuildTreeHist(const std::vector<uint8_t>& binned,
                     const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<char>& in_sample,
                     const std::vector<size_t>& features, ThreadPool* pool);

  static double TreePredict(const Tree& tree, const float* row);

  /// The shared boosting loop behind Fit and WarmStart: preprocesses
  /// `train` for the configured split method, seeds per-row margins (from
  /// base_margin_ cold, from the existing ensemble warm) and appends
  /// `rounds` trees.
  Status BoostRounds(const Dataset& train, size_t rounds, bool warm);

  /// options_.num_threads with 0 resolved to hardware concurrency.
  size_t ResolvedThreads() const;

  GbdtOptions options_;
  std::vector<Tree> trees_;
  std::vector<uint64_t> split_counts_;
  std::vector<std::string> feature_names_;
  std::vector<double> loss_curve_;
  double base_margin_ = 0.0;
  BinMapper bin_mapper_;
};

}  // namespace cats::ml

#endif  // CATS_ML_GBDT_H_
