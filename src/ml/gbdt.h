#ifndef CATS_ML_GBDT_H_
#define CATS_ML_GBDT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/result.h"

namespace cats::ml {

struct GbdtOptions {
  size_t num_rounds = 120;       // boosting iterations
  size_t max_depth = 4;
  float learning_rate = 0.15f;   // eta
  float lambda = 1.0f;           // L2 on leaf weights
  float gamma = 0.0f;            // minimum split gain
  float min_child_weight = 1.0f; // minimum hessian sum per child
  float subsample = 0.9f;        // row sampling per tree
  float colsample = 1.0f;        // feature sampling per tree
  float base_score = 0.5f;       // initial P(positive)
  uint64_t seed = 7;
};

/// Gradient-boosted decision trees with second-order (gradient + hessian)
/// split finding, L2 leaf regularization and minimum-gain pruning — a
/// from-scratch reimplementation of the XGBoost algorithm (Chen & Guestrin,
/// KDD'16) that CATS' detector uses as its binary classifier.
///
/// Objective: logistic loss. Split gain and leaf weights follow the XGBoost
/// formulas: gain = 1/2 [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma,
/// leaf weight = -G/(H+l).
class Gbdt : public Classifier {
 public:
  explicit Gbdt(GbdtOptions options) : options_(options) {}
  Gbdt() : Gbdt(GbdtOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  std::string name() const override { return "Xgboost"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<Gbdt>(options_);
  }

  /// Raw margin (log-odds) before the sigmoid.
  double PredictMargin(const float* row) const;

  /// Split-count feature importance — the measure in the paper's Fig 7
  /// ("the times this feature is split during the construction of the
  /// Xgboost model"). Indexed by feature id.
  const std::vector<uint64_t>& feature_split_counts() const {
    return split_counts_;
  }

  /// Names captured from the training dataset, aligned with split counts.
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  size_t num_trees() const { return trees_.size(); }

  /// Training-set logistic loss after each round (for convergence tests).
  const std::vector<double>& training_loss_curve() const {
    return loss_curve_;
  }

  /// Text-format model persistence (deploy-once, score-everywhere — the
  /// paper pre-trains on Taobao's D0 and ships the model to E-platform).
  Status Save(const std::string& path) const;
  static Result<Gbdt> Load(const std::string& path);

 private:
  struct Node {
    int32_t feature = -1;   // -1 => leaf
    float threshold = 0.0f; // left when x <= threshold
    int32_t left = -1;
    int32_t right = -1;
    float value = 0.0f;     // leaf weight
  };
  using Tree = std::vector<Node>;

  Tree BuildTree(const Dataset& data, const std::vector<double>& grad,
                 const std::vector<double>& hess,
                 const std::vector<char>& in_sample,
                 const std::vector<size_t>& features,
                 const std::vector<std::vector<uint32_t>>& sorted_rows);

  static double TreePredict(const Tree& tree, const float* row);

  GbdtOptions options_;
  std::vector<Tree> trees_;
  std::vector<uint64_t> split_counts_;
  std::vector<std::string> feature_names_;
  std::vector<double> loss_curve_;
  double base_margin_ = 0.0;
};

}  // namespace cats::ml

#endif  // CATS_ML_GBDT_H_
