#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/string_util.h"

namespace cats::ml {

void ConfusionMatrix::Add(int truth, int predicted) {
  if (truth == 1) {
    if (predicted == 1) {
      ++true_positive;
    } else {
      ++false_negative;
    }
  } else {
    if (predicted == 1) {
      ++false_positive;
    } else {
      ++true_negative;
    }
  }
}

std::string ClassificationMetrics::ToString() const {
  return StrFormat(
      "precision=%.4f recall=%.4f f1=%.4f accuracy=%.4f "
      "(tp=%llu fp=%llu tn=%llu fn=%llu)",
      precision, recall, f1, accuracy,
      static_cast<unsigned long long>(confusion.true_positive),
      static_cast<unsigned long long>(confusion.false_positive),
      static_cast<unsigned long long>(confusion.true_negative),
      static_cast<unsigned long long>(confusion.false_negative));
}

ClassificationMetrics ComputeMetrics(const std::vector<int>& truth,
                                     const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size());
  ClassificationMetrics m;
  for (size_t i = 0; i < truth.size(); ++i) {
    m.confusion.Add(truth[i], predicted[i]);
  }
  const ConfusionMatrix& c = m.confusion;
  double tp = static_cast<double>(c.true_positive);
  double fp = static_cast<double>(c.false_positive);
  double tn = static_cast<double>(c.true_negative);
  double fn = static_cast<double>(c.false_negative);
  m.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  m.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  m.accuracy = c.total() > 0 ? (tp + tn) / static_cast<double>(c.total()) : 0.0;
  return m;
}

ClassificationMetrics ComputeMetricsFromScores(
    const std::vector<int>& truth, const std::vector<double>& scores,
    double threshold) {
  assert(truth.size() == scores.size());
  std::vector<int> predicted(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    predicted[i] = scores[i] >= threshold ? 1 : 0;
  }
  return ComputeMetrics(truth, predicted);
}

double RocAuc(const std::vector<int>& truth,
              const std::vector<double>& scores) {
  assert(truth.size() == scores.size());
  size_t n = truth.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tied scores, then use the Mann-Whitney identity.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                      1.0;  // ranks are 1-based
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos = 0.0, rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (truth[k] == 1) {
      pos += 1.0;
      rank_sum += rank[k];
    }
  }
  double neg = static_cast<double>(n) - pos;
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

}  // namespace cats::ml
