#ifndef CATS_ML_METRICS_H_
#define CATS_ML_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cats::ml {

/// Binary confusion counts with the fraud class as positive.
struct ConfusionMatrix {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t true_negative = 0;
  uint64_t false_negative = 0;

  void Add(int truth, int predicted);
  uint64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
};

/// The paper's headline numbers: precision, recall, F-score, accuracy.
struct ClassificationMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  ConfusionMatrix confusion;

  std::string ToString() const;
};

/// Metrics from parallel truth/prediction label vectors.
ClassificationMetrics ComputeMetrics(const std::vector<int>& truth,
                                     const std::vector<int>& predicted);

/// Metrics from scores thresholded at `threshold`.
ClassificationMetrics ComputeMetricsFromScores(
    const std::vector<int>& truth, const std::vector<double>& scores,
    double threshold = 0.5);

/// Area under the ROC curve via the rank statistic (ties averaged).
double RocAuc(const std::vector<int>& truth, const std::vector<double>& scores);

}  // namespace cats::ml

#endif  // CATS_ML_METRICS_H_
