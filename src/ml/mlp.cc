#include "ml/mlp.h"

#include <cmath>
#include <numeric>

#include "util/random.h"

namespace cats::ml {

Status Mlp::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  input_dim_ = train.num_features();
  if (n == 0 || input_dim_ == 0) {
    return Status::InvalidArgument("cannot fit mlp on empty dataset");
  }
  CATS_RETURN_NOT_OK(scaler_.Fit(train));
  Dataset scaled = scaler_.Transform(train);

  size_t h = options_.hidden_units;
  Rng rng(options_.seed);
  auto glorot = [&rng](size_t fan_in, size_t fan_out) {
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    return rng.UniformDouble(-limit, limit);
  };
  w1_.resize(h * input_dim_);
  for (double& w : w1_) w = glorot(input_dim_, h);
  b1_.assign(h, 0.0);
  w2_.resize(h);
  for (double& w : w2_) w = glorot(h, 1);
  b2_ = 0.0;

  std::vector<double> vw1(w1_.size(), 0.0), vb1(h, 0.0), vw2(h, 0.0);
  double vb2 = 0.0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(h);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double lr = options_.learning_rate /
                (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const float* x = scaled.Row(idx);
      double y = scaled.Label(idx);
      double p = Forward(x, &hidden);
      double delta_out = p - y;  // dLoss/dz2 for logistic loss + sigmoid

      // Output layer updates (momentum SGD with L2).
      for (size_t j = 0; j < h; ++j) {
        double g = delta_out * hidden[j] + options_.l2 * w2_[j];
        vw2[j] = options_.momentum * vw2[j] - lr * g;
        w2_[j] += vw2[j];
      }
      vb2 = options_.momentum * vb2 - lr * delta_out;
      b2_ += vb2;

      // Hidden layer.
      for (size_t j = 0; j < h; ++j) {
        if (hidden[j] <= 0.0) continue;  // ReLU gate
        double delta_h = delta_out * w2_[j];
        double* wrow = w1_.data() + j * input_dim_;
        double* vrow = vw1.data() + j * input_dim_;
        for (size_t k = 0; k < input_dim_; ++k) {
          double g = delta_h * x[k] + options_.l2 * wrow[k];
          vrow[k] = options_.momentum * vrow[k] - lr * g;
          wrow[k] += vrow[k];
        }
        vb1[j] = options_.momentum * vb1[j] - lr * delta_h;
        b1_[j] += vb1[j];
      }
    }
  }
  return Status::OK();
}

double Mlp::Forward(const float* scaled_row, std::vector<double>* hidden) const {
  size_t h = w2_.size();
  double z2 = b2_;
  for (size_t j = 0; j < h; ++j) {
    const double* wrow = w1_.data() + j * input_dim_;
    double z = b1_[j];
    for (size_t k = 0; k < input_dim_; ++k) z += wrow[k] * scaled_row[k];
    double a = z > 0.0 ? z : 0.0;
    (*hidden)[j] = a;
    z2 += w2_[j] * a;
  }
  return 1.0 / (1.0 + std::exp(-z2));
}

double Mlp::PredictProba(const float* row) const {
  std::vector<float> scaled(row, row + input_dim_);
  scaler_.TransformRow(scaled.data());
  std::vector<double> hidden(w2_.size());
  return Forward(scaled.data(), &hidden);
}

}  // namespace cats::ml
