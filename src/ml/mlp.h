#ifndef CATS_ML_MLP_H_
#define CATS_ML_MLP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace cats::ml {

struct MlpOptions {
  size_t hidden_units = 16;
  size_t epochs = 40;
  double learning_rate = 0.02;
  double momentum = 0.9;
  double l2 = 1e-5;
  uint64_t seed = 13;
};

/// One-hidden-layer perceptron (ReLU hidden, sigmoid output) trained with
/// SGD + momentum on logistic loss — the "Neural Network" baseline of
/// Table III. Inputs are standardized internally.
class Mlp : public Classifier {
 public:
  explicit Mlp(MlpOptions options) : options_(options) {}
  Mlp() : Mlp(MlpOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  std::string name() const override { return "Neural Network"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<Mlp>(options_);
  }

 private:
  double Forward(const float* scaled_row, std::vector<double>* hidden) const;

  MlpOptions options_;
  StandardScaler scaler_;
  size_t input_dim_ = 0;
  // w1: hidden x input, b1: hidden, w2: hidden, b2: scalar.
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
};

}  // namespace cats::ml

#endif  // CATS_ML_MLP_H_
