#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace cats::ml {

Status GaussianNaiveBayes::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  dim_ = train.num_features();
  if (n == 0 || dim_ == 0) {
    return Status::InvalidArgument("cannot fit naive bayes on empty dataset");
  }
  size_t pos = train.CountLabel(1);
  size_t neg = n - pos;
  if (pos == 0 || neg == 0) {
    return Status::FailedPrecondition(
        "naive bayes needs both classes in training data");
  }
  log_prior_pos_ = std::log(static_cast<double>(pos) / n);
  log_prior_neg_ = std::log(static_cast<double>(neg) / n);

  mean_pos_.assign(dim_, 0.0);
  var_pos_.assign(dim_, 0.0);
  mean_neg_.assign(dim_, 0.0);
  var_neg_.assign(dim_, 0.0);

  double max_var = 0.0;
  for (size_t f = 0; f < dim_; ++f) {
    RunningStats sp, sn, all;
    for (size_t i = 0; i < n; ++i) {
      double v = train.Value(i, f);
      all.Add(v);
      (train.Label(i) == 1 ? sp : sn).Add(v);
    }
    mean_pos_[f] = sp.mean();
    var_pos_[f] = sp.variance();
    mean_neg_[f] = sn.mean();
    var_neg_[f] = sn.variance();
    max_var = std::max(max_var, all.variance());
  }
  double floor = std::max(options_.var_smoothing * max_var, 1e-12);
  for (size_t f = 0; f < dim_; ++f) {
    var_pos_[f] = std::max(var_pos_[f], floor);
    var_neg_[f] = std::max(var_neg_[f], floor);
  }
  return Status::OK();
}

double GaussianNaiveBayes::PredictProba(const float* row) const {
  if (dim_ == 0) return 0.5;
  double lp = log_prior_pos_, ln = log_prior_neg_;
  for (size_t f = 0; f < dim_; ++f) {
    double x = row[f];
    double dp = x - mean_pos_[f];
    double dn = x - mean_neg_[f];
    lp += -0.5 * (std::log(2.0 * M_PI * var_pos_[f]) + dp * dp / var_pos_[f]);
    ln += -0.5 * (std::log(2.0 * M_PI * var_neg_[f]) + dn * dn / var_neg_[f]);
  }
  double m = std::max(lp, ln);
  double ep = std::exp(lp - m), en = std::exp(ln - m);
  return ep / (ep + en);
}

}  // namespace cats::ml
