#ifndef CATS_ML_NAIVE_BAYES_H_
#define CATS_ML_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace cats::ml {

struct GaussianNbOptions {
  /// Variance floor as a fraction of the largest feature variance
  /// (sklearn's var_smoothing).
  double var_smoothing = 1e-9;
};

/// Gaussian Naive Bayes over the 11 numeric features — the "Naive Bayes"
/// baseline of Table III. Each feature is modeled as class-conditional
/// normal; log-posteriors combine under the independence assumption.
class GaussianNaiveBayes : public Classifier {
 public:
  explicit GaussianNaiveBayes(GaussianNbOptions options) : options_(options) {}
  GaussianNaiveBayes() : GaussianNaiveBayes(GaussianNbOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  std::string name() const override { return "Naive Bayes"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<GaussianNaiveBayes>(options_);
  }

 private:
  GaussianNbOptions options_;
  size_t dim_ = 0;
  double log_prior_pos_ = 0.0, log_prior_neg_ = 0.0;
  std::vector<double> mean_pos_, var_pos_, mean_neg_, var_neg_;
};

}  // namespace cats::ml

#endif  // CATS_ML_NAIVE_BAYES_H_
