#include "ml/scaler.h"

#include <cmath>

#include "util/stats.h"

namespace cats::ml {

Status StandardScaler::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty dataset");
  }
  size_t f = data.num_features();
  mean_.assign(f, 0.0f);
  stddev_.assign(f, 1.0f);
  for (size_t j = 0; j < f; ++j) {
    RunningStats rs;
    for (size_t i = 0; i < data.num_rows(); ++i) {
      rs.Add(static_cast<double>(data.Value(i, j)));
    }
    mean_[j] = static_cast<float>(rs.mean());
    double sd = rs.stddev();
    stddev_[j] = sd > 1e-12 ? static_cast<float>(sd) : 1.0f;
  }
  return Status::OK();
}

void StandardScaler::TransformRow(float* row) const {
  for (size_t j = 0; j < mean_.size(); ++j) {
    row[j] = (row[j] - mean_[j]) / stddev_[j];
  }
}

Dataset StandardScaler::Transform(const Dataset& data) const {
  Dataset out(data.feature_names());
  std::vector<float> row(data.num_features());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const float* src = data.Row(i);
    row.assign(src, src + data.num_features());
    TransformRow(row.data());
    // AddRow cannot fail here: width matches and labels are already valid.
    (void)out.AddRow(row, data.Label(i));
  }
  return out;
}

}  // namespace cats::ml
