#ifndef CATS_ML_SCALER_H_
#define CATS_ML_SCALER_H_

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace cats::ml {

/// Per-feature standardization (zero mean, unit variance), fit on training
/// data only. SVM, the MLP and Gaussian NB are scale-sensitive; tree models
/// are not and skip this.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Learns means and stddevs from `data`.
  Status Fit(const Dataset& data);

  bool fitted() const { return !mean_.empty(); }
  size_t num_features() const { return mean_.size(); }

  /// Standardizes one row in place.
  void TransformRow(float* row) const;

  /// Returns a standardized copy of the dataset.
  Dataset Transform(const Dataset& data) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

}  // namespace cats::ml

#endif  // CATS_ML_SCALER_H_
