#include "ml/split.h"

#include <algorithm>
#include <cassert>

namespace cats::ml {
namespace {

/// Row indices of each class, shuffled.
std::pair<std::vector<size_t>, std::vector<size_t>> ShuffledByClass(
    const Dataset& data, Rng* rng) {
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    (data.Label(i) == 1 ? pos : neg).push_back(i);
  }
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  return {std::move(pos), std::move(neg)};
}

}  // namespace

TrainTestIndices StratifiedSplit(const Dataset& data, double test_fraction,
                                 Rng* rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  auto [pos, neg] = ShuffledByClass(data, rng);
  TrainTestIndices out;
  auto distribute = [&](const std::vector<size_t>& idx) {
    size_t n_test = static_cast<size_t>(
        static_cast<double>(idx.size()) * test_fraction + 0.5);
    for (size_t i = 0; i < idx.size(); ++i) {
      (i < n_test ? out.test : out.train).push_back(idx[i]);
    }
  };
  distribute(pos);
  distribute(neg);
  rng->Shuffle(&out.train);
  rng->Shuffle(&out.test);
  return out;
}

std::vector<TrainTestIndices> StratifiedKFold(const Dataset& data, size_t k,
                                              Rng* rng) {
  assert(k >= 2);
  auto [pos, neg] = ShuffledByClass(data, rng);

  // fold_of[i] for each class, round-robin so fold sizes differ by <= 1.
  std::vector<std::vector<size_t>> fold_members(k);
  auto deal = [&](const std::vector<size_t>& idx) {
    for (size_t i = 0; i < idx.size(); ++i) {
      fold_members[i % k].push_back(idx[i]);
    }
  };
  deal(pos);
  deal(neg);

  std::vector<TrainTestIndices> out(k);
  for (size_t f = 0; f < k; ++f) {
    out[f].test = fold_members[f];
    for (size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      out[f].train.insert(out[f].train.end(), fold_members[g].begin(),
                          fold_members[g].end());
    }
    rng->Shuffle(&out[f].train);
    rng->Shuffle(&out[f].test);
  }
  return out;
}

}  // namespace cats::ml
