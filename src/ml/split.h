#ifndef CATS_ML_SPLIT_H_
#define CATS_ML_SPLIT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace cats::ml {

/// Row-index split into train and test.
struct TrainTestIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffled train/test split preserving the class ratio in both parts.
TrainTestIndices StratifiedSplit(const Dataset& data, double test_fraction,
                                 Rng* rng);

/// Stratified k folds for cross-validation (the paper's five-fold protocol,
/// §II-B): each fold is a test set, the complement trains.
std::vector<TrainTestIndices> StratifiedKFold(const Dataset& data, size_t k,
                                              Rng* rng);

}  // namespace cats::ml

#endif  // CATS_ML_SPLIT_H_
