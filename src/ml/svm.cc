#include "ml/svm.h"

#include <cmath>

#include "util/random.h"

namespace cats::ml {

Status LinearSvm::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t d = train.num_features();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("cannot fit svm on empty dataset");
  }
  CATS_RETURN_NOT_OK(scaler_.Fit(train));
  Dataset scaled = scaler_.Transform(train);

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  Rng rng(options_.seed);
  double lambda = options_.lambda;
  uint64_t t = 0;

  size_t total_steps = options_.epochs * n;
  for (size_t step = 0; step < total_steps; ++step) {
    ++t;
    size_t i = rng.UniformU32(static_cast<uint32_t>(n));
    const float* row = scaled.Row(i);
    double y = scaled.Label(i) == 1 ? 1.0 : -1.0;
    double eta = 1.0 / (lambda * static_cast<double>(t));

    double margin = bias_;
    for (size_t j = 0; j < d; ++j) margin += weights_[j] * row[j];

    // w <- (1 - eta*lambda) w  [+ eta*y*x when the hinge is active]
    double shrink = 1.0 - eta * lambda;
    for (size_t j = 0; j < d; ++j) weights_[j] *= shrink;
    if (y * margin < 1.0) {
      for (size_t j = 0; j < d; ++j) weights_[j] += eta * y * row[j];
      bias_ += eta * y;  // unregularized bias
    }
  }
  return Status::OK();
}

double LinearSvm::Margin(const float* row) const {
  std::vector<float> scaled(row, row + weights_.size());
  scaler_.TransformRow(scaled.data());
  double margin = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    margin += weights_[j] * scaled[j];
  }
  return margin;
}

int LinearSvm::Predict(const float* row) const {
  return Margin(row) >= options_.decision_margin ? 1 : 0;
}

double LinearSvm::PredictProba(const float* row) const {
  // Sigmoid squashing of the (shifted) margin; a lightweight stand-in for
  // Platt scaling adequate for ranking and thresholding.
  double m = Margin(row) - options_.decision_margin;
  return 1.0 / (1.0 + std::exp(-options_.proba_scale * m));
}

}  // namespace cats::ml
