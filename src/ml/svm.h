#ifndef CATS_ML_SVM_H_
#define CATS_ML_SVM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace cats::ml {

struct SvmOptions {
  double lambda = 1e-4;       // Pegasos regularization
  size_t epochs = 30;         // passes over the data
  uint64_t seed = 11;
  /// Decision threshold on the margin. Positive values trade recall for
  /// precision; the high-precision/low-recall Table-III behaviour of the
  /// paper's SVM corresponds to a conservative margin.
  double decision_margin = 0.0;
  /// Platt-style scale for mapping margins to pseudo-probabilities.
  double proba_scale = 2.0;
};

/// Linear soft-margin SVM trained with Pegasos (primal stochastic
/// sub-gradient; Shalev-Shwartz et al. 2011) — the "SVM" baseline of
/// Table III. Features are standardized internally (fit on training data).
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(SvmOptions options) : options_(options) {}
  LinearSvm() : LinearSvm(SvmOptions{}) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const float* row) const override;
  int Predict(const float* row) const override;
  std::string name() const override { return "SVM"; }
  std::unique_ptr<Classifier> CloneUntrained() const override {
    return std::make_unique<LinearSvm>(options_);
  }

  /// Signed decision margin w.x + b for a raw (unstandardized) row.
  double Margin(const float* row) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  SvmOptions options_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace cats::ml

#endif  // CATS_ML_SVM_H_
