#include "nlp/embedding.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cats::nlp {

void EmbeddingStore::Add(std::string word, const std::vector<float>& vector) {
  if (vector.size() != dim_) return;
  auto it = index_.find(word);
  float norm = 0.0f;
  for (float v : vector) norm += v * v;
  norm = std::sqrt(norm);
  if (norm <= 0.0f) norm = 1.0f;

  if (it != index_.end()) {
    float* row = data_.data() + it->second * dim_;
    for (size_t d = 0; d < dim_; ++d) row[d] = vector[d] / norm;
    return;
  }
  size_t row = words_.size();
  index_.emplace(word, row);
  words_.push_back(std::move(word));
  data_.resize((row + 1) * dim_);
  float* dst = data_.data() + row * dim_;
  for (size_t d = 0; d < dim_; ++d) dst[d] = vector[d] / norm;
}

bool EmbeddingStore::Contains(std::string_view word) const {
  return index_.count(std::string(word)) > 0;
}

Result<std::vector<float>> EmbeddingStore::Vector(
    std::string_view word) const {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    return Status::NotFound("unknown word: " + std::string(word));
  }
  const float* row = RowPtr(it->second);
  return std::vector<float>(row, row + dim_);
}

Result<float> EmbeddingStore::Cosine(std::string_view a,
                                     std::string_view b) const {
  auto ia = index_.find(std::string(a));
  auto ib = index_.find(std::string(b));
  if (ia == index_.end()) {
    return Status::NotFound("unknown word: " + std::string(a));
  }
  if (ib == index_.end()) {
    return Status::NotFound("unknown word: " + std::string(b));
  }
  const float* ra = RowPtr(ia->second);
  const float* rb = RowPtr(ib->second);
  float dot = 0.0f;
  for (size_t d = 0; d < dim_; ++d) dot += ra[d] * rb[d];
  return dot;
}

Result<size_t> EmbeddingStore::RowOf(std::string_view word) const {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    return Status::NotFound("unknown word: " + std::string(word));
  }
  return it->second;
}

Result<std::vector<Neighbor>> EmbeddingStore::NearestNeighbors(
    std::string_view word, size_t k) const {
  return NearestNeighbors(word, k, nullptr);
}

Result<std::vector<Neighbor>> EmbeddingStore::NearestNeighbors(
    std::string_view word, size_t k, ThreadPool* pool) const {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    return Status::NotFound("unknown word: " + std::string(word));
  }
  size_t self = it->second;
  const float* query = RowPtr(self);
  size_t n = words_.size();

  // Similarity scan into one slot per row — no string copies, no shared
  // accumulator, safe to chunk over the pool.
  std::vector<float> sims(n);
  auto score_range = [&](size_t begin, size_t end) {
    for (size_t row = begin; row < end; ++row) {
      const float* r = RowPtr(row);
      float dot = 0.0f;
      for (size_t d = 0; d < dim_; ++d) dot += query[d] * r[d];
      sims[row] = dot;
    }
  };
  // Below a few hundred rows the scan is cheaper than waking the workers.
  constexpr size_t kMinParallelRows = 512;
  if (pool != nullptr && n >= kMinParallelRows) {
    pool->ParallelForChunks(n, score_range);
  } else {
    score_range(0, n);
  }
  sims[self] = -std::numeric_limits<float>::infinity();  // exclude the query

  // Rank by (similarity desc, row asc): the row tie-break makes the result
  // independent of how the scan was chunked (and of partial_sort's
  // instability on equal similarities).
  size_t top = std::min(k, n - 1);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(top), order.end(),
                    [&sims](uint32_t a, uint32_t b) {
                      return sims[a] > sims[b] ||
                             (sims[a] == sims[b] && a < b);
                    });
  std::vector<Neighbor> result;
  result.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    result.push_back(Neighbor{words_[order[i]], sims[order[i]]});
  }
  return result;
}

Status EmbeddingStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open: " + path);
  out << words_.size() << " " << dim_ << "\n";
  for (size_t row = 0; row < words_.size(); ++row) {
    out << words_[row];
    const float* r = RowPtr(row);
    for (size_t d = 0; d < dim_; ++d) out << " " << r[d];
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  size_t n = 0, dim = 0;
  if (!(in >> n >> dim) || dim == 0) {
    return Status::ParseError("bad embedding header in " + path);
  }
  EmbeddingStore store(dim);
  std::vector<float> vec(dim);
  for (size_t i = 0; i < n; ++i) {
    std::string word;
    if (!(in >> word)) return Status::ParseError("truncated embedding file");
    for (size_t d = 0; d < dim; ++d) {
      if (!(in >> vec[d])) {
        return Status::ParseError("truncated vector for word " + word);
      }
    }
    store.Add(std::move(word), vec);
  }
  return store;
}

}  // namespace cats::nlp
