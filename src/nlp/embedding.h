#ifndef CATS_NLP_EMBEDDING_H_
#define CATS_NLP_EMBEDDING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cats {
class ThreadPool;
}  // namespace cats

namespace cats::nlp {

/// A neighbor returned by k-NN search.
struct Neighbor {
  std::string word;
  float similarity = 0.0f;  // cosine
};

/// Dense word-embedding store with cosine k-NN. Word2Vec training produces
/// one of these; the lexicon expander then walks the neighbor graph from the
/// seed words exactly as the paper describes.
class EmbeddingStore {
 public:
  EmbeddingStore(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return words_.size(); }

  /// Adds a word vector; the vector is L2-normalized internally so cosine
  /// reduces to a dot product.
  void Add(std::string word, const std::vector<float>& vector);

  bool Contains(std::string_view word) const;

  /// Normalized vector of `word`, or error if unknown.
  Result<std::vector<float>> Vector(std::string_view word) const;

  /// Row index of `word`, or NotFound. Pair with RowData for copy-free
  /// access on hot paths (Vector copies).
  Result<size_t> RowOf(std::string_view word) const;

  /// Borrowed pointer to the L2-normalized row (dim() floats); valid until
  /// the next Add.
  const float* RowData(size_t row) const { return RowPtr(row); }

  /// Cosine similarity of two stored words.
  Result<float> Cosine(std::string_view a, std::string_view b) const;

  /// The `k` nearest words to `word` by cosine (excluding `word` itself).
  /// With a pool, the vocabulary similarity scan fans out over row chunks
  /// into a per-row slot buffer; ranking is by (similarity desc, row asc),
  /// so serial and parallel calls return identical results for any thread
  /// count.
  Result<std::vector<Neighbor>> NearestNeighbors(std::string_view word,
                                                 size_t k) const;
  Result<std::vector<Neighbor>> NearestNeighbors(std::string_view word,
                                                 size_t k,
                                                 ThreadPool* pool) const;

  const std::vector<std::string>& words() const { return words_; }

  /// Plain-text save/load ("word v1 v2 ... vd" per line, like the original
  /// word2vec tool's text format).
  Status Save(const std::string& path) const;
  static Result<EmbeddingStore> Load(const std::string& path);

 private:
  const float* RowPtr(size_t row) const { return data_.data() + row * dim_; }

  size_t dim_;
  std::vector<std::string> words_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<float> data_;  // row-major, L2-normalized rows
};

}  // namespace cats::nlp

#endif  // CATS_NLP_EMBEDDING_H_
