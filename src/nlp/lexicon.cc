#include "nlp/lexicon.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <thread>

#include "text/utf8.h"
#include "util/thread_pool.h"

namespace cats::nlp {

Lexicon::Lexicon(std::vector<std::string> words) {
  for (std::string& w : words) words_.insert(std::move(w));
}

size_t Lexicon::CountIn(const std::vector<std::string>& tokens) const {
  size_t n = 0;
  for (const std::string& t : tokens) {
    if (Contains(t)) ++n;
  }
  return n;
}

std::vector<std::string> Lexicon::SortedWords() const {
  std::vector<std::string> out(words_.begin(), words_.end());
  std::sort(out.begin(), out.end());
  return out;
}

LexiconIdSet::LexiconIdSet(const Lexicon& lexicon,
                           const std::vector<std::string>& dict_words) {
  dict_member_.resize(dict_words.size(), 0);
  for (size_t i = 0; i < dict_words.size(); ++i) {
    if (lexicon.Contains(dict_words[i])) dict_member_[i] = 1;
  }
  for (const std::string& word : lexicon.words()) {
    if (text::IsValidUtf8(word)) {
      if (text::CodepointCount(word) == 1) {
        size_t pos = 0;
        uint32_t cp = text::DecodeOne(word, &pos);
        size_t slot = cp >> 6;
        if (slot >= codepoint_bits_.size()) {
          codepoint_bits_.resize(slot + 1, 0);
        }
        codepoint_bits_[slot] |= uint64_t{1} << (cp & 63);
      }
    } else {
      irregular_.insert(word);
    }
  }
}

Result<Lexicon> ExpandLexicon(const EmbeddingStore& embeddings,
                              const std::vector<std::string>& seeds,
                              const LexiconExpansionOptions& options) {
  if (seeds.empty()) {
    return Status::InvalidArgument("lexicon expansion needs at least one seed");
  }
  Lexicon lexicon;
  // The vocabulary similarity scans dominate the expansion; give the k-NN
  // queries a pool. Everything else (the BFS, the centroid filter) stays
  // serial, so the result is identical to the fully serial scan.
  size_t threads = options.num_threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : options.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // frontier holds (word, depth); BFS over the neighbor graph.
  std::deque<std::pair<std::string, size_t>> frontier;
  // Running (unnormalized) centroid of accepted in-vocabulary words, with
  // its squared norm cached on every update — the per-candidate cosine
  // used to recompute it from scratch (same additions, same order, so the
  // cached float is bit-identical to the inline recomputation).
  std::vector<float> centroid(embeddings.dim(), 0.0f);
  size_t centroid_members = 0;
  float centroid_norm_sq = 0.0f;
  auto add_to_centroid = [&](const std::string& word) {
    auto row = embeddings.RowOf(word);
    if (!row.ok()) return;
    const float* vec = embeddings.RowData(*row);
    for (size_t d = 0; d < centroid.size(); ++d) centroid[d] += vec[d];
    ++centroid_members;
    centroid_norm_sq = 0.0f;
    for (size_t d = 0; d < centroid.size(); ++d) {
      centroid_norm_sq += centroid[d] * centroid[d];
    }
  };
  auto centroid_cosine = [&](const std::string& word) -> float {
    if (centroid_members == 0) return 1.0f;
    auto row = embeddings.RowOf(word);
    if (!row.ok()) return -1.0f;
    const float* vec = embeddings.RowData(*row);
    float dot = 0.0f;
    for (size_t d = 0; d < centroid.size(); ++d) dot += centroid[d] * vec[d];
    return centroid_norm_sq > 0 ? dot / std::sqrt(centroid_norm_sq) : 1.0f;
  };

  for (const std::string& seed : seeds) {
    lexicon.Insert(seed);
    frontier.emplace_back(seed, 0);
    add_to_centroid(seed);
  }

  while (!frontier.empty() && lexicon.size() < options.max_words) {
    auto [word, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= options.max_iterations) continue;
    if (!embeddings.Contains(word)) continue;  // seeds may be OOV

    auto neighbors = embeddings.NearestNeighbors(word, options.k, pool.get());
    if (!neighbors.ok()) continue;
    for (const Neighbor& n : *neighbors) {
      if (n.similarity < options.min_similarity) break;  // sorted descending
      if (lexicon.Contains(n.word)) continue;
      if (options.use_centroid_filter &&
          centroid_cosine(n.word) < options.min_centroid_similarity) {
        continue;
      }
      lexicon.Insert(n.word);
      add_to_centroid(n.word);
      frontier.emplace_back(n.word, depth + 1);
      if (lexicon.size() >= options.max_words) break;
    }
  }
  return lexicon;
}

}  // namespace cats::nlp
