#include "nlp/lexicon.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace cats::nlp {

Lexicon::Lexicon(std::vector<std::string> words) {
  for (std::string& w : words) words_.insert(std::move(w));
}

size_t Lexicon::CountIn(const std::vector<std::string>& tokens) const {
  size_t n = 0;
  for (const std::string& t : tokens) {
    if (Contains(t)) ++n;
  }
  return n;
}

std::vector<std::string> Lexicon::SortedWords() const {
  std::vector<std::string> out(words_.begin(), words_.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<Lexicon> ExpandLexicon(const EmbeddingStore& embeddings,
                              const std::vector<std::string>& seeds,
                              const LexiconExpansionOptions& options) {
  if (seeds.empty()) {
    return Status::InvalidArgument("lexicon expansion needs at least one seed");
  }
  Lexicon lexicon;
  // frontier holds (word, depth); BFS over the neighbor graph.
  std::deque<std::pair<std::string, size_t>> frontier;
  // Running (unnormalized) centroid of accepted in-vocabulary words.
  std::vector<float> centroid(embeddings.dim(), 0.0f);
  size_t centroid_members = 0;
  auto add_to_centroid = [&](const std::string& word) {
    auto vec = embeddings.Vector(word);
    if (!vec.ok()) return;
    for (size_t d = 0; d < centroid.size(); ++d) centroid[d] += (*vec)[d];
    ++centroid_members;
  };
  auto centroid_cosine = [&](const std::string& word) -> float {
    if (centroid_members == 0) return 1.0f;
    auto vec = embeddings.Vector(word);
    if (!vec.ok()) return -1.0f;
    float dot = 0.0f, norm = 0.0f;
    for (size_t d = 0; d < centroid.size(); ++d) {
      dot += centroid[d] * (*vec)[d];
      norm += centroid[d] * centroid[d];
    }
    return norm > 0 ? dot / std::sqrt(norm) : 1.0f;
  };

  for (const std::string& seed : seeds) {
    lexicon.Insert(seed);
    frontier.emplace_back(seed, 0);
    add_to_centroid(seed);
  }

  while (!frontier.empty() && lexicon.size() < options.max_words) {
    auto [word, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= options.max_iterations) continue;
    if (!embeddings.Contains(word)) continue;  // seeds may be OOV

    auto neighbors = embeddings.NearestNeighbors(word, options.k);
    if (!neighbors.ok()) continue;
    for (const Neighbor& n : *neighbors) {
      if (n.similarity < options.min_similarity) break;  // sorted descending
      if (lexicon.Contains(n.word)) continue;
      if (options.use_centroid_filter &&
          centroid_cosine(n.word) < options.min_centroid_similarity) {
        continue;
      }
      lexicon.Insert(n.word);
      add_to_centroid(n.word);
      frontier.emplace_back(n.word, depth + 1);
      if (lexicon.size() >= options.max_words) break;
    }
  }
  return lexicon;
}

}  // namespace cats::nlp
