#ifndef CATS_NLP_LEXICON_H_
#define CATS_NLP_LEXICON_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "nlp/embedding.h"
#include "text/token_ids.h"
#include "util/result.h"

namespace cats::nlp {

/// A polarity word set (the paper's P or N, Table I).
class Lexicon {
 public:
  Lexicon() = default;
  explicit Lexicon(std::vector<std::string> words);

  void Insert(std::string_view word) { words_.insert(std::string(word)); }
  bool Contains(std::string_view word) const {
    return words_.count(std::string(word)) > 0;
  }
  size_t size() const { return words_.size(); }

  /// Counts tokens of `tokens` that are members (occurrence count, not
  /// distinct-type count).
  size_t CountIn(const std::vector<std::string>& tokens) const;

  /// Members in deterministic (sorted) order, for printing Table I.
  std::vector<std::string> SortedWords() const;

  const std::unordered_set<std::string>& words() const { return words_; }

 private:
  std::unordered_set<std::string> words_;
};

/// Token-id view of a Lexicon for the id hot path: membership of a token id
/// is a flat-array / bitmap probe instead of a string hash. Built once per
/// semantic model (core::TokenIndex) against the segmenter's sorted word
/// list; read-only and thread-safe afterwards.
///
/// A segmenter token is a dictionary word, a single codepoint, or a
/// malformed byte slice — so membership decomposes into a per-dict-id byte
/// vector, a codepoint bitmap, and the (rare, usually empty) set of lexicon
/// members that are themselves invalid UTF-8. Lexicon words reachable by
/// none of these (valid multi-codepoint non-dictionary strings) can never
/// equal a token in either path and need no representation.
class LexiconIdSet {
 public:
  LexiconIdSet() = default;
  /// `dict_words` is the segmenter's sorted word list (dict id -> word).
  LexiconIdSet(const Lexicon& lexicon,
               const std::vector<std::string>& dict_words);

  /// == lexicon.Contains(token bytes of `id`).
  bool ContainsId(uint32_t id, const text::TokenArena& arena) const {
    if (text::IsDictId(id)) return dict_member_[id] != 0;
    if (text::IsCodepointId(id)) return ContainsCodepoint(
        text::CodepointOfId(id));
    if (irregular_.empty()) return false;
    return irregular_.count(std::string(arena.IrregularBytes(id))) > 0;
  }

  /// == lexicon.CountIn(tokens) over the span's tokens.
  size_t CountIn(std::span<const uint32_t> ids,
                 const text::TokenArena& arena) const {
    size_t n = 0;
    for (uint32_t id : ids) {
      if (ContainsId(id, arena)) ++n;
    }
    return n;
  }

 private:
  bool ContainsCodepoint(uint32_t cp) const {
    size_t word = cp >> 6;
    return word < codepoint_bits_.size() &&
           (codepoint_bits_[word] >> (cp & 63) & 1u) != 0;
  }

  std::vector<uint8_t> dict_member_;     // indexed by dict id
  std::vector<uint64_t> codepoint_bits_; // bitmap over codepoints
  std::unordered_set<std::string> irregular_;
};

/// Controls the iterative k-NN expansion.
struct LexiconExpansionOptions {
  size_t k = 10;                 // neighbors per query word
  float min_similarity = 0.5f;   // cosine acceptance threshold
  size_t max_words = 200;        // the paper caps P and N at ~200 words
  size_t max_iterations = 4;     // BFS depth from the seeds
  /// Additionally require candidates to be similar to the centroid of the
  /// already-accepted set. Suppresses embedding-space hub words (frequent
  /// neutral words are "near everything") without stopping genuine
  /// polarity words; essential on small corpora.
  bool use_centroid_filter = true;
  float min_centroid_similarity = 0.35f;
  /// Workers for the per-query vocabulary similarity scans (0 = hardware
  /// concurrency, 1 = serial). The expansion result is identical for any
  /// value — see EmbeddingStore::NearestNeighbors.
  size_t num_threads = 4;
};

/// Expands a seed word list into a full lexicon by iteratively searching the
/// k-nearest embedding neighbors of accepted words — the construction of
/// P and N in the paper (§II-A2). Returns the expanded lexicon (seeds
/// included, even if missing from the embedding).
Result<Lexicon> ExpandLexicon(const EmbeddingStore& embeddings,
                              const std::vector<std::string>& seeds,
                              const LexiconExpansionOptions& options);

}  // namespace cats::nlp

#endif  // CATS_NLP_LEXICON_H_
