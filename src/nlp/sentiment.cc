#include "nlp/sentiment.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "text/utf8.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace cats::nlp {

Status SentimentModel::Train(const std::vector<SentimentExample>& examples) {
  word_stats_.clear();
  total_positive_tokens_ = 0;
  total_negative_tokens_ = 0;
  size_t pos_docs = 0, neg_docs = 0;
  for (const SentimentExample& ex : examples) {
    if (ex.positive) {
      ++pos_docs;
    } else {
      ++neg_docs;
    }
    for (const std::string& t : ex.tokens) {
      WordStats& ws = word_stats_[t];
      if (ex.positive) {
        ++ws.positive_count;
        ++total_positive_tokens_;
      } else {
        ++ws.negative_count;
        ++total_negative_tokens_;
      }
    }
  }
  if (pos_docs == 0 || neg_docs == 0) {
    return Status::FailedPrecondition(
        "sentiment training needs both positive and negative examples");
  }
  trained_ = true;
  return Status::OK();
}

double SentimentModel::Score(const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, options_.length_normalize);
}

double SentimentModel::ScoreRaw(
    const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, /*length_normalize=*/false);
}

double SentimentModel::ScoreImpl(const std::vector<std::string>& tokens,
                                 bool length_normalize) const {
  double log_prior_pos = std::log(options_.prior_positive);
  double log_prior_neg = std::log(1.0 - options_.prior_positive);
  if (tokens.empty() || !trained_) {
    double odds = log_prior_pos - log_prior_neg;
    return 1.0 / (1.0 + std::exp(-odds));
  }

  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;

  double ll_pos = 0.0, ll_neg = 0.0;
  for (const std::string& t : tokens) {
    auto it = word_stats_.find(t);
    double cp = options_.smoothing;
    double cn = options_.smoothing;
    if (it != word_stats_.end()) {
      cp += static_cast<double>(it->second.positive_count);
      cn += static_cast<double>(it->second.negative_count);
    }
    ll_pos += std::log(cp / denom_pos);
    ll_neg += std::log(cn / denom_neg);
  }
  if (length_normalize) {
    double n = static_cast<double>(tokens.size());
    ll_pos /= n;
    ll_neg /= n;
  }
  double odds = (ll_pos + log_prior_pos) - (ll_neg + log_prior_neg);
  return 1.0 / (1.0 + std::exp(-odds));
}

double SentimentModel::WordLogOdds(const std::string& word) const {
  if (!trained_) return 0.0;
  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;
  double cp = options_.smoothing;
  double cn = options_.smoothing;
  auto it = word_stats_.find(word);
  if (it != word_stats_.end()) {
    cp += static_cast<double>(it->second.positive_count);
    cn += static_cast<double>(it->second.negative_count);
  }
  return std::log(cp / denom_pos) - std::log(cn / denom_neg);
}

Status SentimentModel::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  std::ostringstream out;
  out << "cats-sentiment-v1\n";
  out << options_.smoothing << " " << options_.prior_positive << " "
      << (options_.length_normalize ? 1 : 0) << "\n";
  out << total_positive_tokens_ << " " << total_negative_tokens_ << " "
      << word_stats_.size() << "\n";
  // Sorted by word, so saving is canonical: the same model always produces
  // the same bytes regardless of hash-map iteration order, and a clean
  // save -> load -> save round-trip is bit-identical.
  std::vector<const std::pair<const std::string, WordStats>*> sorted;
  sorted.reserve(word_stats_.size());
  for (const auto& entry : word_stats_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    out << entry->first << " " << entry->second.positive_count << " "
        << entry->second.negative_count << "\n";
  }
  // Atomic (temp + rename): a crash mid-save never leaves a partial file.
  return WriteStringToFileAtomic(path, out.str());
}

Result<SentimentModel> SentimentModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  if (!(in >> magic) || magic != "cats-sentiment-v1") {
    return Status::ParseError("bad sentiment model header in " + path);
  }
  constexpr size_t kMaxVocab = 1u << 24;
  SentimentOptions options;
  int normalize = 1;
  size_t vocab = 0;
  SentimentModel model;
  if (!(in >> options.smoothing >> options.prior_positive >> normalize)) {
    return Status::ParseError("truncated sentiment model options in " + path);
  }
  if (!std::isfinite(options.smoothing) || options.smoothing <= 0.0 ||
      !std::isfinite(options.prior_positive) || options.prior_positive <= 0.0 ||
      options.prior_positive >= 1.0) {
    return Status::ParseError("implausible sentiment model options in " +
                              path);
  }
  options.length_normalize = normalize != 0;
  model.options_ = options;
  if (!(in >> model.total_positive_tokens_ >> model.total_negative_tokens_ >>
        vocab) ||
      vocab > kMaxVocab) {
    return Status::ParseError("truncated sentiment model counts in " + path);
  }
  for (size_t i = 0; i < vocab; ++i) {
    std::string word;
    WordStats ws;
    if (!(in >> word >> ws.positive_count >> ws.negative_count)) {
      return Status::ParseError("truncated sentiment model vocabulary in " +
                                path);
    }
    model.word_stats_.emplace(std::move(word), ws);
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage after sentiment model in " +
                              path);
  }
  model.trained_ = true;
  return model;
}

SentimentIdTable::SentimentIdTable(const SentimentModel& model,
                                   const std::vector<std::string>& dict_words) {
  const SentimentOptions& options = model.options();
  trained_ = model.trained();
  length_normalize_ = options.length_normalize;
  log_prior_positive_ = std::log(options.prior_positive);
  log_prior_negative_ = std::log(1.0 - options.prior_positive);
  if (!trained_) return;

  // Exactly ScoreImpl's arithmetic, hoisted out of the per-token loop: the
  // same smoothing addition, division and log over the same doubles, so
  // every precomputed contribution is the bit the string path would sum.
  const auto& stats = model.word_stats();
  double v = static_cast<double>(stats.size()) + 1.0;
  double denom_pos = static_cast<double>(model.total_positive_tokens()) +
                     options.smoothing * v;
  double denom_neg = static_cast<double>(model.total_negative_tokens()) +
                     options.smoothing * v;
  auto log_likelihood = [&](const SentimentModel::WordStats& ws) {
    double cp = options.smoothing + static_cast<double>(ws.positive_count);
    double cn = options.smoothing + static_cast<double>(ws.negative_count);
    return LogLikelihood{std::log(cp / denom_pos), std::log(cn / denom_neg)};
  };
  unknown_ = log_likelihood(SentimentModel::WordStats{});

  dict_.reserve(dict_words.size());
  for (const std::string& word : dict_words) {
    auto it = stats.find(word);
    dict_.push_back(it == stats.end() ? unknown_ : log_likelihood(it->second));
  }
  // Vocabulary words reachable as non-dict tokens: single codepoints (OOV /
  // punctuation emissions) and malformed byte strings (irregular tokens).
  // Anything else in the vocabulary can only ever be matched as a
  // dictionary word, which the flat array above already covers.
  for (const auto& [word, ws] : stats) {
    if (text::IsValidUtf8(word)) {
      if (text::CodepointCount(word) == 1) {
        size_t pos = 0;
        codepoints_.emplace(text::DecodeOne(word, &pos), log_likelihood(ws));
      }
    } else {
      irregular_.emplace(word, log_likelihood(ws));
    }
  }
}

SentimentIdTable::LogLikelihood SentimentIdTable::LookupId(
    uint32_t id, const text::TokenArena& arena) const {
  if (text::IsDictId(id)) return dict_[id];
  if (text::IsCodepointId(id)) {
    auto it = codepoints_.find(text::CodepointOfId(id));
    return it == codepoints_.end() ? unknown_ : it->second;
  }
  if (irregular_.empty()) return unknown_;
  auto it = irregular_.find(std::string(arena.IrregularBytes(id)));
  return it == irregular_.end() ? unknown_ : it->second;
}

double SentimentIdTable::ScoreIds(std::span<const uint32_t> ids,
                                  const text::TokenArena& arena) const {
  if (ids.empty() || !trained_) {
    double odds = log_prior_positive_ - log_prior_negative_;
    return 1.0 / (1.0 + std::exp(-odds));
  }
  double ll_pos = 0.0, ll_neg = 0.0;
  for (uint32_t id : ids) {
    LogLikelihood ll = LookupId(id, arena);
    ll_pos += ll.positive;
    ll_neg += ll.negative;
  }
  if (length_normalize_) {
    double n = static_cast<double>(ids.size());
    ll_pos /= n;
    ll_neg /= n;
  }
  double odds = (ll_pos + log_prior_positive_) - (ll_neg + log_prior_negative_);
  return 1.0 / (1.0 + std::exp(-odds));
}

}  // namespace cats::nlp
