#include "nlp/sentiment.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace cats::nlp {

Status SentimentModel::Train(const std::vector<SentimentExample>& examples) {
  word_stats_.clear();
  total_positive_tokens_ = 0;
  total_negative_tokens_ = 0;
  size_t pos_docs = 0, neg_docs = 0;
  for (const SentimentExample& ex : examples) {
    if (ex.positive) {
      ++pos_docs;
    } else {
      ++neg_docs;
    }
    for (const std::string& t : ex.tokens) {
      WordStats& ws = word_stats_[t];
      if (ex.positive) {
        ++ws.positive_count;
        ++total_positive_tokens_;
      } else {
        ++ws.negative_count;
        ++total_negative_tokens_;
      }
    }
  }
  if (pos_docs == 0 || neg_docs == 0) {
    return Status::FailedPrecondition(
        "sentiment training needs both positive and negative examples");
  }
  trained_ = true;
  return Status::OK();
}

double SentimentModel::Score(const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, options_.length_normalize);
}

double SentimentModel::ScoreRaw(
    const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, /*length_normalize=*/false);
}

double SentimentModel::ScoreImpl(const std::vector<std::string>& tokens,
                                 bool length_normalize) const {
  double log_prior_pos = std::log(options_.prior_positive);
  double log_prior_neg = std::log(1.0 - options_.prior_positive);
  if (tokens.empty() || !trained_) {
    double odds = log_prior_pos - log_prior_neg;
    return 1.0 / (1.0 + std::exp(-odds));
  }

  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;

  double ll_pos = 0.0, ll_neg = 0.0;
  for (const std::string& t : tokens) {
    auto it = word_stats_.find(t);
    double cp = options_.smoothing;
    double cn = options_.smoothing;
    if (it != word_stats_.end()) {
      cp += static_cast<double>(it->second.positive_count);
      cn += static_cast<double>(it->second.negative_count);
    }
    ll_pos += std::log(cp / denom_pos);
    ll_neg += std::log(cn / denom_neg);
  }
  if (length_normalize) {
    double n = static_cast<double>(tokens.size());
    ll_pos /= n;
    ll_neg /= n;
  }
  double odds = (ll_pos + log_prior_pos) - (ll_neg + log_prior_neg);
  return 1.0 / (1.0 + std::exp(-odds));
}

double SentimentModel::WordLogOdds(const std::string& word) const {
  if (!trained_) return 0.0;
  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;
  double cp = options_.smoothing;
  double cn = options_.smoothing;
  auto it = word_stats_.find(word);
  if (it != word_stats_.end()) {
    cp += static_cast<double>(it->second.positive_count);
    cn += static_cast<double>(it->second.negative_count);
  }
  return std::log(cp / denom_pos) - std::log(cn / denom_neg);
}

Status SentimentModel::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  std::ostringstream out;
  out << "cats-sentiment-v1\n";
  out << options_.smoothing << " " << options_.prior_positive << " "
      << (options_.length_normalize ? 1 : 0) << "\n";
  out << total_positive_tokens_ << " " << total_negative_tokens_ << " "
      << word_stats_.size() << "\n";
  // Sorted by word, so saving is canonical: the same model always produces
  // the same bytes regardless of hash-map iteration order, and a clean
  // save -> load -> save round-trip is bit-identical.
  std::vector<const std::pair<const std::string, WordStats>*> sorted;
  sorted.reserve(word_stats_.size());
  for (const auto& entry : word_stats_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    out << entry->first << " " << entry->second.positive_count << " "
        << entry->second.negative_count << "\n";
  }
  // Atomic (temp + rename): a crash mid-save never leaves a partial file.
  return WriteStringToFileAtomic(path, out.str());
}

Result<SentimentModel> SentimentModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  if (!(in >> magic) || magic != "cats-sentiment-v1") {
    return Status::ParseError("bad sentiment model header in " + path);
  }
  constexpr size_t kMaxVocab = 1u << 24;
  SentimentOptions options;
  int normalize = 1;
  size_t vocab = 0;
  SentimentModel model;
  if (!(in >> options.smoothing >> options.prior_positive >> normalize)) {
    return Status::ParseError("truncated sentiment model options in " + path);
  }
  if (!std::isfinite(options.smoothing) || options.smoothing <= 0.0 ||
      !std::isfinite(options.prior_positive) || options.prior_positive <= 0.0 ||
      options.prior_positive >= 1.0) {
    return Status::ParseError("implausible sentiment model options in " +
                              path);
  }
  options.length_normalize = normalize != 0;
  model.options_ = options;
  if (!(in >> model.total_positive_tokens_ >> model.total_negative_tokens_ >>
        vocab) ||
      vocab > kMaxVocab) {
    return Status::ParseError("truncated sentiment model counts in " + path);
  }
  for (size_t i = 0; i < vocab; ++i) {
    std::string word;
    WordStats ws;
    if (!(in >> word >> ws.positive_count >> ws.negative_count)) {
      return Status::ParseError("truncated sentiment model vocabulary in " +
                                path);
    }
    model.word_stats_.emplace(std::move(word), ws);
  }
  std::string extra;
  if (in >> extra) {
    return Status::ParseError("trailing garbage after sentiment model in " +
                              path);
  }
  model.trained_ = true;
  return model;
}

}  // namespace cats::nlp
