#include "nlp/sentiment.h"

#include <cmath>
#include <fstream>

#include "util/string_util.h"

namespace cats::nlp {

Status SentimentModel::Train(const std::vector<SentimentExample>& examples) {
  word_stats_.clear();
  total_positive_tokens_ = 0;
  total_negative_tokens_ = 0;
  size_t pos_docs = 0, neg_docs = 0;
  for (const SentimentExample& ex : examples) {
    if (ex.positive) {
      ++pos_docs;
    } else {
      ++neg_docs;
    }
    for (const std::string& t : ex.tokens) {
      WordStats& ws = word_stats_[t];
      if (ex.positive) {
        ++ws.positive_count;
        ++total_positive_tokens_;
      } else {
        ++ws.negative_count;
        ++total_negative_tokens_;
      }
    }
  }
  if (pos_docs == 0 || neg_docs == 0) {
    return Status::FailedPrecondition(
        "sentiment training needs both positive and negative examples");
  }
  trained_ = true;
  return Status::OK();
}

double SentimentModel::Score(const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, options_.length_normalize);
}

double SentimentModel::ScoreRaw(
    const std::vector<std::string>& tokens) const {
  return ScoreImpl(tokens, /*length_normalize=*/false);
}

double SentimentModel::ScoreImpl(const std::vector<std::string>& tokens,
                                 bool length_normalize) const {
  double log_prior_pos = std::log(options_.prior_positive);
  double log_prior_neg = std::log(1.0 - options_.prior_positive);
  if (tokens.empty() || !trained_) {
    double odds = log_prior_pos - log_prior_neg;
    return 1.0 / (1.0 + std::exp(-odds));
  }

  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;

  double ll_pos = 0.0, ll_neg = 0.0;
  for (const std::string& t : tokens) {
    auto it = word_stats_.find(t);
    double cp = options_.smoothing;
    double cn = options_.smoothing;
    if (it != word_stats_.end()) {
      cp += static_cast<double>(it->second.positive_count);
      cn += static_cast<double>(it->second.negative_count);
    }
    ll_pos += std::log(cp / denom_pos);
    ll_neg += std::log(cn / denom_neg);
  }
  if (length_normalize) {
    double n = static_cast<double>(tokens.size());
    ll_pos /= n;
    ll_neg /= n;
  }
  double odds = (ll_pos + log_prior_pos) - (ll_neg + log_prior_neg);
  return 1.0 / (1.0 + std::exp(-odds));
}

double SentimentModel::WordLogOdds(const std::string& word) const {
  if (!trained_) return 0.0;
  double v = static_cast<double>(word_stats_.size()) + 1.0;
  double denom_pos =
      static_cast<double>(total_positive_tokens_) + options_.smoothing * v;
  double denom_neg =
      static_cast<double>(total_negative_tokens_) + options_.smoothing * v;
  double cp = options_.smoothing;
  double cn = options_.smoothing;
  auto it = word_stats_.find(word);
  if (it != word_stats_.end()) {
    cp += static_cast<double>(it->second.positive_count);
    cn += static_cast<double>(it->second.negative_count);
  }
  return std::log(cp / denom_pos) - std::log(cn / denom_neg);
}

Status SentimentModel::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open: " + path);
  out << "cats-sentiment-v1\n";
  out << options_.smoothing << " " << options_.prior_positive << " "
      << (options_.length_normalize ? 1 : 0) << "\n";
  out << total_positive_tokens_ << " " << total_negative_tokens_ << " "
      << word_stats_.size() << "\n";
  for (const auto& [word, ws] : word_stats_) {
    out << word << " " << ws.positive_count << " " << ws.negative_count
        << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<SentimentModel> SentimentModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  if (!(in >> magic) || magic != "cats-sentiment-v1") {
    return Status::ParseError("bad sentiment model header in " + path);
  }
  SentimentOptions options;
  int normalize = 1;
  size_t vocab = 0;
  SentimentModel model;
  if (!(in >> options.smoothing >> options.prior_positive >> normalize)) {
    return Status::ParseError("truncated sentiment model options");
  }
  options.length_normalize = normalize != 0;
  model.options_ = options;
  if (!(in >> model.total_positive_tokens_ >> model.total_negative_tokens_ >>
        vocab)) {
    return Status::ParseError("truncated sentiment model counts");
  }
  for (size_t i = 0; i < vocab; ++i) {
    std::string word;
    WordStats ws;
    if (!(in >> word >> ws.positive_count >> ws.negative_count)) {
      return Status::ParseError("truncated sentiment model vocabulary");
    }
    model.word_stats_.emplace(std::move(word), ws);
  }
  model.trained_ = true;
  return model;
}

}  // namespace cats::nlp
