#ifndef CATS_NLP_SENTIMENT_H_
#define CATS_NLP_SENTIMENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cats::nlp {

/// A labeled training document for the sentiment model.
struct SentimentExample {
  std::vector<std::string> tokens;
  bool positive = false;
};

struct SentimentOptions {
  double smoothing = 1.0;     // Laplace add-k
  double prior_positive = 0.5;
  /// When true, Score() length-normalizes the log-likelihoods (geometric
  /// mean per token). Raw multinomial NB saturates to 0/1 on long comments;
  /// normalization yields the graded [0,1] sentiment values of the paper's
  /// Fig 1. SnowNLP-style raw scoring is available with false.
  bool length_normalize = true;
};

/// Word-level multinomial Naive Bayes sentiment scorer — the stand-in for
/// SnowNLP's sentiment module, which is itself a Bayes classifier trained on
/// e-commerce review corpora. Score() returns P(positive | comment) in
/// [0, 1]; larger = more positive, matching the paper's convention.
class SentimentModel {
 public:
  explicit SentimentModel(SentimentOptions options) : options_(options) {}
  SentimentModel() : SentimentModel(SentimentOptions{}) {}

  /// Trains from labeled examples. Fails when either class is empty.
  Status Train(const std::vector<SentimentExample>& examples);

  /// Sentiment of a segmented comment. Unknown words contribute only
  /// smoothing mass. Returns the prior for an empty token list.
  double Score(const std::vector<std::string>& tokens) const;

  /// Raw (un-normalized) multinomial NB posterior — SnowNLP's behaviour.
  /// Saturates toward 0/1 on long documents; use for hard positive/negative
  /// classification (the paper's ">99.8% of fraud comments are positive").
  double ScoreRaw(const std::vector<std::string>& tokens) const;

  bool trained() const { return trained_; }
  size_t vocabulary_size() const { return word_stats_.size(); }

  /// Log-odds contribution of a single word (diagnostics / tests).
  double WordLogOdds(const std::string& word) const;

  Status Save(const std::string& path) const;
  static Result<SentimentModel> Load(const std::string& path);

 private:
  double ScoreImpl(const std::vector<std::string>& tokens,
                   bool length_normalize) const;

  struct WordStats {
    uint64_t positive_count = 0;
    uint64_t negative_count = 0;
  };

  SentimentOptions options_;
  bool trained_ = false;
  std::unordered_map<std::string, WordStats> word_stats_;
  uint64_t total_positive_tokens_ = 0;
  uint64_t total_negative_tokens_ = 0;
};

}  // namespace cats::nlp

#endif  // CATS_NLP_SENTIMENT_H_
