#ifndef CATS_NLP_SENTIMENT_H_
#define CATS_NLP_SENTIMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/token_ids.h"
#include "util/result.h"
#include "util/status.h"

namespace cats::nlp {

/// A labeled training document for the sentiment model.
struct SentimentExample {
  std::vector<std::string> tokens;
  bool positive = false;
};

struct SentimentOptions {
  double smoothing = 1.0;     // Laplace add-k
  double prior_positive = 0.5;
  /// When true, Score() length-normalizes the log-likelihoods (geometric
  /// mean per token). Raw multinomial NB saturates to 0/1 on long comments;
  /// normalization yields the graded [0,1] sentiment values of the paper's
  /// Fig 1. SnowNLP-style raw scoring is available with false.
  bool length_normalize = true;
};

/// Word-level multinomial Naive Bayes sentiment scorer — the stand-in for
/// SnowNLP's sentiment module, which is itself a Bayes classifier trained on
/// e-commerce review corpora. Score() returns P(positive | comment) in
/// [0, 1]; larger = more positive, matching the paper's convention.
class SentimentModel {
 public:
  explicit SentimentModel(SentimentOptions options) : options_(options) {}
  SentimentModel() : SentimentModel(SentimentOptions{}) {}

  /// Trains from labeled examples. Fails when either class is empty.
  Status Train(const std::vector<SentimentExample>& examples);

  /// Sentiment of a segmented comment. Unknown words contribute only
  /// smoothing mass. Returns the prior for an empty token list.
  double Score(const std::vector<std::string>& tokens) const;

  /// Raw (un-normalized) multinomial NB posterior — SnowNLP's behaviour.
  /// Saturates toward 0/1 on long documents; use for hard positive/negative
  /// classification (the paper's ">99.8% of fraud comments are positive").
  double ScoreRaw(const std::vector<std::string>& tokens) const;

  bool trained() const { return trained_; }
  size_t vocabulary_size() const { return word_stats_.size(); }

  /// Log-odds contribution of a single word (diagnostics / tests).
  double WordLogOdds(const std::string& word) const;

  Status Save(const std::string& path) const;
  static Result<SentimentModel> Load(const std::string& path);

  struct WordStats {
    uint64_t positive_count = 0;
    uint64_t negative_count = 0;
  };

  /// Read access for SentimentIdTable, which precomputes per-token
  /// log-likelihoods so the id hot path skips the per-token string hash.
  const SentimentOptions& options() const { return options_; }
  const std::unordered_map<std::string, WordStats>& word_stats() const {
    return word_stats_;
  }
  uint64_t total_positive_tokens() const { return total_positive_tokens_; }
  uint64_t total_negative_tokens() const { return total_negative_tokens_; }

 private:
  double ScoreImpl(const std::vector<std::string>& tokens,
                   bool length_normalize) const;

  SentimentOptions options_;
  bool trained_ = false;
  std::unordered_map<std::string, WordStats> word_stats_;
  uint64_t total_positive_tokens_ = 0;
  uint64_t total_negative_tokens_ = 0;
};

/// Token-id view of a SentimentModel: per-token log-likelihood contributions
/// precomputed per dictionary id (flat array) / single codepoint (map) /
/// irregular byte string (map), so ScoreIds sums doubles straight off the
/// id span with no string construction or vocabulary hash lookups.
///
/// Bit-identity contract: for any id span that is token-for-token bijective
/// with a string token sequence (the segmenter invariant, text/token_ids.h),
/// ScoreIds returns exactly SentimentModel::Score's double — same
/// precomputed per-token values, summed in the same order, finished by the
/// same normalization and sigmoid expressions.
class SentimentIdTable {
 public:
  SentimentIdTable() = default;
  /// `dict_words` is the segmenter's sorted word list (dict id -> word).
  SentimentIdTable(const SentimentModel& model,
                   const std::vector<std::string>& dict_words);

  /// == model.Score(tokens) for the tokens the span represents.
  double ScoreIds(std::span<const uint32_t> ids,
                  const text::TokenArena& arena) const;

 private:
  struct LogLikelihood {
    double positive = 0.0;
    double negative = 0.0;
  };
  LogLikelihood LookupId(uint32_t id, const text::TokenArena& arena) const;

  bool trained_ = false;
  bool length_normalize_ = true;
  double log_prior_positive_ = 0.0;
  double log_prior_negative_ = 0.0;
  LogLikelihood unknown_{};                      // word not in the vocabulary
  std::vector<LogLikelihood> dict_;              // indexed by dict id
  std::unordered_map<uint32_t, LogLikelihood> codepoints_;
  std::unordered_map<std::string, LogLikelihood> irregular_;
};

}  // namespace cats::nlp

#endif  // CATS_NLP_SENTIMENT_H_
