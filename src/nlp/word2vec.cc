#include "nlp/word2vec.h"

#include <atomic>
#include <cmath>
#include <thread>

#include "util/logging.h"
#include "util/random.h"

namespace cats::nlp {
namespace {

/// Precomputed sigmoid table, as in the reference word2vec implementation.
class SigmoidTable {
 public:
  SigmoidTable() {
    for (size_t i = 0; i < kSize; ++i) {
      double x = (static_cast<double>(i) / kSize * 2.0 - 1.0) * kMaxExp;
      table_[i] = static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
  }

  float operator()(float x) const {
    if (x >= kMaxExp) return 1.0f;
    if (x <= -kMaxExp) return 0.0f;
    size_t i = static_cast<size_t>((x + kMaxExp) / (2.0f * kMaxExp) * kSize);
    if (i >= kSize) i = kSize - 1;
    return table_[i];
  }

 private:
  static constexpr float kMaxExp = 6.0f;
  static constexpr size_t kSize = 1000;
  float table_[kSize];
};

}  // namespace

Result<EmbeddingStore> Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  // --- Build and prune the vocabulary. ---
  vocab_ = text::Vocabulary();
  for (const auto& sentence : sentences) vocab_.AddSentence(sentence);
  vocab_.PruneAndSortByFrequency(options_.min_count);
  size_t vocab_size = vocab_.size();
  if (vocab_size == 0) {
    return Status::FailedPrecondition(
        "word2vec corpus has no word above min_count");
  }

  // Encode corpus to ids once.
  std::vector<std::vector<int32_t>> encoded;
  encoded.reserve(sentences.size());
  uint64_t total_tokens = 0;
  for (const auto& sentence : sentences) {
    std::vector<int32_t> ids = vocab_.Encode(sentence);
    total_tokens += ids.size();
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }
  if (encoded.empty()) {
    return Status::FailedPrecondition("word2vec corpus has no usable sentence");
  }

  // --- Allocate weights. ---
  size_t dim = options_.dim;
  std::vector<float> input((size_t)vocab_size * dim);
  std::vector<float> output((size_t)vocab_size * dim, 0.0f);
  Rng init_rng(options_.seed);
  for (float& w : input) {
    w = (static_cast<float>(init_rng.UniformDouble()) - 0.5f) / dim;
  }

  // Negative-sampling table: unigram^0.75.
  std::vector<double> neg_weights(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) {
    neg_weights[i] =
        std::pow(static_cast<double>(vocab_.CountOf(static_cast<int32_t>(i))),
                 0.75);
  }
  AliasSampler neg_sampler(neg_weights);

  // Subsampling keep-probabilities (Mikolov eq. 5 variant).
  std::vector<float> keep_prob(vocab_size, 1.0f);
  if (options_.subsample_t > 0) {
    for (size_t i = 0; i < vocab_size; ++i) {
      double f = static_cast<double>(vocab_.CountOf(static_cast<int32_t>(i))) /
                 static_cast<double>(vocab_.total_tokens());
      double keep = (std::sqrt(f / options_.subsample_t) + 1.0) *
                    (options_.subsample_t / f);
      keep_prob[i] = static_cast<float>(std::min(1.0, keep));
    }
  }

  static const SigmoidTable sigmoid;
  std::atomic<uint64_t> pair_count{0};
  uint64_t approx_total_pairs =
      std::max<uint64_t>(1, total_tokens * options_.window * options_.epochs);

  size_t num_threads = std::max<size_t>(1, options_.num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);

  // Each worker owns a contiguous slice of sentences for every epoch.
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(options_.seed + 7919 * (t + 1), 0x1234 + t);
      std::vector<float> grad(dim);
      size_t begin = encoded.size() * t / num_threads;
      size_t end = encoded.size() * (t + 1) / num_threads;
      uint64_t local_pairs = 0;

      for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        for (size_t s = begin; s < end; ++s) {
          // Apply frequent-word subsampling per epoch.
          std::vector<int32_t> sent;
          sent.reserve(encoded[s].size());
          for (int32_t id : encoded[s]) {
            if (keep_prob[id] >= 1.0f ||
                rng.UniformDouble() < keep_prob[id]) {
              sent.push_back(id);
            }
          }
          if (sent.size() < 2) continue;

          for (size_t center = 0; center < sent.size(); ++center) {
            // Linear LR decay on global progress (approximate, lock-free).
            uint64_t done = pair_count.load(std::memory_order_relaxed);
            float progress = static_cast<float>(done) /
                             static_cast<float>(approx_total_pairs);
            float lr = options_.initial_lr * (1.0f - progress);
            if (lr < options_.min_lr) lr = options_.min_lr;

            size_t window = 1 + rng.UniformU32(
                                    static_cast<uint32_t>(options_.window));
            size_t lo = center >= window ? center - window : 0;
            size_t hi = std::min(sent.size() - 1, center + window);
            int32_t center_id = sent[center];
            float* v_in = input.data() + (size_t)center_id * dim;

            for (size_t ctx = lo; ctx <= hi; ++ctx) {
              if (ctx == center) continue;
              int32_t context_id = sent[ctx];
              ++local_pairs;
              for (size_t d = 0; d < dim; ++d) grad[d] = 0.0f;

              // One positive + `negatives` negative updates.
              for (size_t n = 0; n <= options_.negatives; ++n) {
                int32_t target;
                float label;
                if (n == 0) {
                  target = context_id;
                  label = 1.0f;
                } else {
                  target = static_cast<int32_t>(neg_sampler.Sample(&rng));
                  if (target == context_id) continue;
                  label = 0.0f;
                }
                float* v_out = output.data() + (size_t)target * dim;
                float dot = 0.0f;
                for (size_t d = 0; d < dim; ++d) dot += v_in[d] * v_out[d];
                float g = (label - sigmoid(dot)) * lr;
                for (size_t d = 0; d < dim; ++d) {
                  grad[d] += g * v_out[d];
                  v_out[d] += g * v_in[d];
                }
              }
              for (size_t d = 0; d < dim; ++d) v_in[d] += grad[d];

              if ((local_pairs & 0x3FF) == 0) {
                pair_count.fetch_add(0x400, std::memory_order_relaxed);
              }
            }
          }
        }
      }
      pair_count.fetch_add(local_pairs & 0x3FF, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  trained_pairs_ = pair_count.load();

  // --- Export input vectors. ---
  EmbeddingStore store(dim);
  std::vector<float> row(dim);
  for (size_t i = 0; i < vocab_size; ++i) {
    const float* src = input.data() + i * dim;
    row.assign(src, src + dim);
    store.Add(vocab_.WordOf(static_cast<int32_t>(i)), row);
  }
  return store;
}

}  // namespace cats::nlp
