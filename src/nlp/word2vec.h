#ifndef CATS_NLP_WORD2VEC_H_
#define CATS_NLP_WORD2VEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nlp/embedding.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace cats::nlp {

/// Hyperparameters for skip-gram negative-sampling training.
struct Word2VecOptions {
  size_t dim = 64;              // embedding dimensionality
  size_t window = 5;            // max context window (sampled per center)
  size_t negatives = 5;         // negative samples per positive pair
  size_t epochs = 3;            // passes over the corpus
  float initial_lr = 0.05f;     // linearly decayed to min_lr
  float min_lr = 1e-4f;
  uint64_t min_count = 3;       // prune rarer words
  double subsample_t = 1e-4;    // frequent-word subsampling threshold; 0=off
  size_t num_threads = 4;       // Hogwild workers
  uint64_t seed = 20190402;     // ICDE'19 vintage
};

/// Skip-gram word2vec with negative sampling (Mikolov et al. 2013),
/// implemented from scratch. Substitutes for the TensorFlow word2vec the
/// paper's semantic analyzer trains on 70M Taobao comments; here it trains
/// on the simulated comment corpus and feeds the lexicon expansion of
/// Table I.
///
/// Training is lock-free across threads (Hogwild): concurrent updates race
/// benignly on the shared weight matrices, as in the reference C
/// implementation.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options) : options_(options) {}

  /// Trains on `sentences` (each a sequence of word tokens) and returns the
  /// input-embedding store. Fails if the corpus has no trainable word.
  Result<EmbeddingStore> Train(
      const std::vector<std::vector<std::string>>& sentences);

  /// Vocabulary built during the last Train call (post-pruning).
  const text::Vocabulary& vocabulary() const { return vocab_; }

  /// Total (center, context) pairs consumed during the last Train call.
  uint64_t trained_pairs() const { return trained_pairs_; }

 private:
  Word2VecOptions options_;
  text::Vocabulary vocab_;
  uint64_t trained_pairs_ = 0;
};

}  // namespace cats::nlp

#endif  // CATS_NLP_WORD2VEC_H_
