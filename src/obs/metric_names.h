#ifndef CATS_OBS_METRIC_NAMES_H_
#define CATS_OBS_METRIC_NAMES_H_

#include <string>
#include <string_view>

namespace cats::obs {

/// Canonical names of every metric the pipeline emits, in one place so the
/// instrumented stages, the docs (docs/METRICS.md) and the docs-check script
/// (scripts/check_metrics_docs.sh) cannot drift apart. Convention:
/// `<stage>.<what>[_total|_micros]` — `_total` for monotonic counters,
/// `_micros` for latency histograms in microseconds; bare names are gauges
/// or value histograms.
///
/// Adding a metric: declare its name here, register it through
/// MetricsRegistry, and document it in docs/METRICS.md (the docs-check
/// ctest step fails the build otherwise).

// --- collect::Crawler (paper §IV-A data collector) ---
inline constexpr std::string_view kCrawlerRequestsTotal =
    "crawler.requests_total";
inline constexpr std::string_view kCrawlerRetriesTotal =
    "crawler.retries_total";
inline constexpr std::string_view kCrawlerPagesFetchedTotal =
    "crawler.pages_fetched_total";
inline constexpr std::string_view kCrawlerShopsTotal = "crawler.shops_total";
inline constexpr std::string_view kCrawlerItemsTotal = "crawler.items_total";
inline constexpr std::string_view kCrawlerCommentsTotal =
    "crawler.comments_total";
inline constexpr std::string_view kCrawlerDuplicatesDroppedTotal =
    "crawler.duplicates_dropped_total";
inline constexpr std::string_view kCrawlerRateLimiterStallMicrosTotal =
    "crawler.rate_limiter_stall_micros_total";
inline constexpr std::string_view kCrawlerCrawlLatencyMicros =
    "crawler.crawl_latency_micros";
// Fault observations: injected adversity the crawler saw and survived.
inline constexpr std::string_view kCrawlerFaultsRateLimitedTotal =
    "crawler.faults.rate_limited_total";
inline constexpr std::string_view kCrawlerFaultsServerErrorsTotal =
    "crawler.faults.server_errors_total";
inline constexpr std::string_view kCrawlerFaultsMalformedBodiesTotal =
    "crawler.faults.malformed_bodies_total";
inline constexpr std::string_view kCrawlerFaultsSlowResponsesTotal =
    "crawler.faults.slow_responses_total";
inline constexpr std::string_view kCrawlerPaginationProbesTotal =
    "crawler.pagination_probes_total";
inline constexpr std::string_view kCrawlerBackoffMicros =
    "crawler.backoff_micros";
inline constexpr std::string_view kCrawlerBreakerState =
    "crawler.breaker_state";
inline constexpr std::string_view kCrawlerBreakerOpensTotal =
    "crawler.breaker_opens_total";
inline constexpr std::string_view kCrawlerBreakerPausedMicrosTotal =
    "crawler.breaker_paused_micros_total";

// --- core::SemanticAnalyzer (paper §II-B semantic analyzer) ---
inline constexpr std::string_view kSemanticCommentsSegmentedTotal =
    "semantic.comments_segmented_total";
inline constexpr std::string_view kSemanticSentencesTrainedTotal =
    "semantic.sentences_trained_total";
inline constexpr std::string_view kSemanticSentimentExamplesTotal =
    "semantic.sentiment_examples_total";
inline constexpr std::string_view kSemanticLexiconPositiveSize =
    "semantic.lexicon_positive_size";
inline constexpr std::string_view kSemanticLexiconNegativeSize =
    "semantic.lexicon_negative_size";
inline constexpr std::string_view kSemanticBuildLatencyMicros =
    "semantic.build_latency_micros";

// --- core::TokenIndex / text::IdSegmenter (token-id hot path) ---
// Trie shape gauges are set when a semantic model compiles its TokenIndex;
// segmenter.* counters accumulate per item inside the id-path extractor
// (one atomic add per item, never per token).
inline constexpr std::string_view kTextTrieNodes = "text.trie.nodes";
inline constexpr std::string_view kTextTrieWords = "text.trie.words";
inline constexpr std::string_view kTextTrieBuildLatencyMicros =
    "text.trie.build_latency_micros";
inline constexpr std::string_view kSegmenterCommentsTotal =
    "segmenter.comments_total";
inline constexpr std::string_view kSegmenterTokensTotal =
    "segmenter.tokens_total";
inline constexpr std::string_view kSegmenterOovTokensTotal =
    "segmenter.oov_tokens_total";
inline constexpr std::string_view kSegmenterIrregularTokensTotal =
    "segmenter.irregular_tokens_total";

// --- core::FeatureExtractor / ExtendedFeatures (paper §II-A features) ---
inline constexpr std::string_view kExtractorItemsFeaturizedTotal =
    "extractor.items_featurized_total";
inline constexpr std::string_view kExtractorCommentsProcessedTotal =
    "extractor.comments_processed_total";
inline constexpr std::string_view kExtractorSentimentEvalsTotal =
    "extractor.sentiment_evals_total";
inline constexpr std::string_view kExtractorExtractLatencyMicros =
    "extractor.extract_latency_micros";
inline constexpr std::string_view kExtractorChunkLatencyMicros =
    "extractor.chunk_latency_micros";
inline constexpr std::string_view kExtractorLastItemsPerSecond =
    "extractor.last_items_per_second";

// --- core::Detector (paper §II-B two-stage detector) ---
inline constexpr std::string_view kDetectorItemsScannedTotal =
    "detector.items_scanned_total";
inline constexpr std::string_view kDetectorItemsRuleFilteredTotal =
    "detector.items_rule_filtered_total";
inline constexpr std::string_view kDetectorFilteredLowSalesTotal =
    "detector.items_filtered_low_sales_total";
inline constexpr std::string_view kDetectorFilteredNoSignalTotal =
    "detector.items_filtered_no_signal_total";
inline constexpr std::string_view kDetectorFilteredNoCommentsTotal =
    "detector.items_filtered_no_comments_total";
inline constexpr std::string_view kDetectorItemsClassifiedTotal =
    "detector.items_classified_total";
inline constexpr std::string_view kDetectorItemsFlaggedTotal =
    "detector.items_flagged_total";
inline constexpr std::string_view kDetectorScoreHistogram =
    "detector.score_histogram";
inline constexpr std::string_view kDetectorDetectLatencyMicros =
    "detector.detect_latency_micros";
inline constexpr std::string_view kDetectorTrainLatencyMicros =
    "detector.train_latency_micros";
// Robustness: record validation verdicts (clean / degraded / poison).
inline constexpr std::string_view kDetectorItemsQuarantinedTotal =
    "detector.items_quarantined_total";
inline constexpr std::string_view kDetectorItemsDegradedTotal =
    "detector.items_degraded_total";
inline constexpr std::string_view kDetectorQuarantineAbsurdPriceTotal =
    "detector.quarantine.absurd_price_total";
inline constexpr std::string_view kDetectorQuarantineCorruptTextTotal =
    "detector.quarantine.corrupt_text_total";
inline constexpr std::string_view kDetectorQuarantineOversizedCommentTotal =
    "detector.quarantine.oversized_comment_total";
inline constexpr std::string_view kDetectorQuarantineDuplicateCommentIdsTotal =
    "detector.quarantine.duplicate_comment_ids_total";
inline constexpr std::string_view kDetectorQuarantineMismatchedItemIdTotal =
    "detector.quarantine.mismatched_item_id_total";
inline constexpr std::string_view kDetectorDegradedMissingCommentsTotal =
    "detector.degraded.missing_comments_total";
inline constexpr std::string_view kDetectorDegradedMissingOrdersTotal =
    "detector.degraded.missing_orders_total";

// --- core::Cats model persistence (SaveModel / LoadModel) ---
inline constexpr std::string_view kModelSavesTotal = "model.saves_total";
inline constexpr std::string_view kModelSaveFailuresTotal =
    "model.save_failures_total";
inline constexpr std::string_view kModelLoadsTotal = "model.loads_total";
inline constexpr std::string_view kModelLoadFailuresTotal =
    "model.load_failures_total";

// --- pipeline::StreamingCats (streaming execution plane) ---
inline constexpr std::string_view kPipelineRunsTotal = "pipeline.runs_total";
inline constexpr std::string_view kPipelineStopsTotal =
    "pipeline.stops_total";
inline constexpr std::string_view kPipelineItemsStreamedTotal =
    "pipeline.items_streamed_total";
inline constexpr std::string_view kPipelineBatchesStagedTotal =
    "pipeline.batches_staged_total";
inline constexpr std::string_view kPipelineBatchItems =
    "pipeline.batch_items";
inline constexpr std::string_view kPipelineRunLatencyMicros =
    "pipeline.run_latency_micros";
inline constexpr std::string_view kPipelineStageLatencyMicros =
    "pipeline.stage_latency_micros";
inline constexpr std::string_view kPipelineScoreLatencyMicros =
    "pipeline.score_latency_micros";
inline constexpr std::string_view kPipelineLastItemsPerSecond =
    "pipeline.last_items_per_second";
// Per-queue depth / throughput / stall signals (util::BoundedQueue).
inline constexpr std::string_view kPipelineIngestDepth =
    "pipeline.ingest.depth";
inline constexpr std::string_view kPipelineIngestPushedTotal =
    "pipeline.ingest.pushed_total";
inline constexpr std::string_view kPipelineIngestPushStallMicrosTotal =
    "pipeline.ingest.push_stall_micros_total";
inline constexpr std::string_view kPipelineIngestPopStallMicrosTotal =
    "pipeline.ingest.pop_stall_micros_total";
inline constexpr std::string_view kPipelineStagedDepth =
    "pipeline.staged.depth";
inline constexpr std::string_view kPipelineStagedPushedTotal =
    "pipeline.staged.pushed_total";
inline constexpr std::string_view kPipelineStagedPushStallMicrosTotal =
    "pipeline.staged.push_stall_micros_total";
inline constexpr std::string_view kPipelineStagedPopStallMicrosTotal =
    "pipeline.staged.pop_stall_micros_total";

// --- serve::ServeLoop / TcpServer (online scoring server) ---
// Request accounting. Invariants (asserted by tests/serve_chaos_test.cc):
// received == accepted + overload_rejected + rejected, and once the loop
// stopped, accepted == ok + error + shed.
inline constexpr std::string_view kServeRequestsReceivedTotal =
    "serve.requests_received_total";
inline constexpr std::string_view kServeRequestsAcceptedTotal =
    "serve.requests_accepted_total";
inline constexpr std::string_view kServeRequestsOverloadRejectedTotal =
    "serve.requests_overload_rejected_total";
inline constexpr std::string_view kServeRequestsRejectedTotal =
    "serve.requests_rejected_total";
inline constexpr std::string_view kServeRequestsOkTotal =
    "serve.requests_ok_total";
inline constexpr std::string_view kServeRequestsErrorTotal =
    "serve.requests_error_total";
inline constexpr std::string_view kServeRequestsShedTotal =
    "serve.requests_shed_total";
inline constexpr std::string_view kServeRequestLatencyMicros =
    "serve.request_latency_micros";
inline constexpr std::string_view kServeScoreBatchLatencyMicros =
    "serve.score_batch_latency_micros";
inline constexpr std::string_view kServeBatchRequests =
    "serve.batch_requests";
// SLO gauges: bucket upper bounds of the request-latency quantiles,
// refreshed after every completed request.
inline constexpr std::string_view kServeSloP50Micros = "serve.slo.p50_micros";
inline constexpr std::string_view kServeSloP99Micros = "serve.slo.p99_micros";
// Admission queue signals (util::BoundedQueue).
inline constexpr std::string_view kServeAdmissionDepth =
    "serve.admission.depth";
inline constexpr std::string_view kServeAdmissionPushedTotal =
    "serve.admission.pushed_total";
inline constexpr std::string_view kServeAdmissionPushStallMicrosTotal =
    "serve.admission.push_stall_micros_total";
inline constexpr std::string_view kServeAdmissionPopStallMicrosTotal =
    "serve.admission.pop_stall_micros_total";
inline constexpr std::string_view kServeItemCacheSize =
    "serve.item_cache_size";
// Model hot-swap (serve::ModelGateway).
inline constexpr std::string_view kServeModelGeneration =
    "serve.model.generation";
inline constexpr std::string_view kServeModelSwapsTotal =
    "serve.model.swaps_total";
inline constexpr std::string_view kServeModelSwapFailuresTotal =
    "serve.model.swap_failures_total";
inline constexpr std::string_view kServeModelSwapLatencyMicros =
    "serve.model.swap_latency_micros";
// TCP transport (serve::TcpServer).
inline constexpr std::string_view kServeTcpConnectionsOpenedTotal =
    "serve.tcp.connections_opened_total";
inline constexpr std::string_view kServeTcpConnectionsActive =
    "serve.tcp.connections_active";
inline constexpr std::string_view kServeTcpFramesReadTotal =
    "serve.tcp.frames_read_total";
inline constexpr std::string_view kServeTcpFrameErrorsTotal =
    "serve.tcp.frame_errors_total";
// Slow-client guard: connections closed for blowing the per-connection
// recv/send deadline, and connections refused at the max-connection cap.
inline constexpr std::string_view kServeTcpTimeoutsTotal =
    "serve.tcp.timeouts_total";
inline constexpr std::string_view kServeTcpConnRejectedTotal =
    "serve.tcp.conn_rejected_total";
// Epoll reactor transport (serve::EpollReactor, the default
// TcpTransport::kReactor): event-loop wakeups across all shards, vectored
// response flushes that could not write everything they offered (the
// write-side backpressure signal), and the per-connection buffer
// high-water mark (read residue + pending responses, worst connection
// seen since start).
inline constexpr std::string_view kServeTcpLoopWakeupsTotal =
    "serve.tcp.loop_wakeups_total";
inline constexpr std::string_view kServeTcpWritevPartialsTotal =
    "serve.tcp.writev_partials_total";
inline constexpr std::string_view kServeTcpBufferHighWaterBytes =
    "serve.tcp.buffer_high_water_bytes";

// --- ml::Gbdt (the detector's boosted-tree classifier) ---
inline constexpr std::string_view kGbdtRoundsTotal = "gbdt.rounds_total";
inline constexpr std::string_view kGbdtRoundLatencyMicros =
    "gbdt.round_latency_micros";
inline constexpr std::string_view kGbdtLastTrainingLoss =
    "gbdt.last_training_loss";
// Histogram training path (GbdtSplitMethod::kHistogram).
inline constexpr std::string_view kGbdtHistBinBuildLatencyMicros =
    "gbdt.hist.bin_build_latency_micros";
inline constexpr std::string_view kGbdtHistHistogramsBuiltTotal =
    "gbdt.hist.histograms_built_total";
inline constexpr std::string_view kGbdtHistSubtractionsTotal =
    "gbdt.hist.subtractions_total";
// Batched scoring (Gbdt::PredictProbaBatch / PredictBatch).
inline constexpr std::string_view kGbdtPredictBatchRowsTotal =
    "gbdt.predict.batch.rows_total";
inline constexpr std::string_view kGbdtPredictBatchLatencyMicros =
    "gbdt.predict.batch.latency_micros";
// Warm-start continuation (Gbdt::WarmStart): boosting resumed on top of a
// loaded ensemble instead of a from-scratch Fit.
inline constexpr std::string_view kGbdtWarmStartsTotal =
    "gbdt.warm_starts_total";

// --- platform adaptive adversary (fault::AdversaryPlan) ---
// Emitted by the simulator while generating an adversarial marketplace, so
// chaos/arms-race runs can report how much adaptation was actually injected.
inline constexpr std::string_view kAdversaryCampaignsAdaptedTotal =
    "adversary.campaigns_adapted_total";
inline constexpr std::string_view kAdversaryAccountsAgedTotal =
    "adversary.accounts_aged_total";
inline constexpr std::string_view kAdversaryLastStrength =
    "adversary.last_strength";

// --- drift::DriftDetector / RetrainScheduler (model-plane robustness) ---
// Score-distribution shift over a sliding window vs. the deploy-time
// reference: PSI over binned score histograms plus a two-sided Page-Hinkley
// mean-shift statistic. `drift.status` encodes the typed DriftStatus
// (0 = stable, 1 = warning, 2 = drifted).
inline constexpr std::string_view kDriftPsi = "drift.psi";
inline constexpr std::string_view kDriftPageHinkley = "drift.page_hinkley";
inline constexpr std::string_view kDriftStatus = "drift.status";
inline constexpr std::string_view kDriftObservationsTotal =
    "drift.observations_total";
inline constexpr std::string_view kDriftReferenceResetsTotal =
    "drift.reference_resets_total";
inline constexpr std::string_view kDriftWarningsTotal =
    "drift.warnings_total";
inline constexpr std::string_view kDriftDriftedTotal = "drift.drifted_total";
// Self-healing retrain loop: attempts fired by the scheduler, candidates
// that passed the probe and were swapped in, candidates rejected (the old
// model keeps serving), and the labeled-window size at the last attempt.
inline constexpr std::string_view kDriftRetrainAttemptsTotal =
    "drift.retrain.attempts_total";
inline constexpr std::string_view kDriftRetrainSuccessTotal =
    "drift.retrain.success_total";
inline constexpr std::string_view kDriftRetrainRejectedTotal =
    "drift.retrain.rejected_total";
inline constexpr std::string_view kDriftRetrainWindowExamples =
    "drift.retrain.window_examples";

// --- federate::CrawlFederation / RunTransferEval (federation plane) ---
// Per-shard counters carry a `{platform=<id>}` dimension via WithPlatform;
// the bare names below are what docs/METRICS.md documents.
inline constexpr std::string_view kFederationShardsTotal =
    "federation.shards_total";
inline constexpr std::string_view kFederationShardFailuresTotal =
    "federation.shard_failures_total";
inline constexpr std::string_view kFederationCrawlLatencyMicros =
    "federation.crawl_latency_micros";
inline constexpr std::string_view kFederationShardItemsTotal =
    "federation.shard.items_total";
inline constexpr std::string_view kFederationShardCommentsTotal =
    "federation.shard.comments_total";
inline constexpr std::string_view kFederationShardRequestsTotal =
    "federation.shard.requests_total";
inline constexpr std::string_view kFederationShardRetriesTotal =
    "federation.shard.retries_total";
inline constexpr std::string_view kFederationShardDuplicatesTotal =
    "federation.shard.duplicates_dropped_total";
inline constexpr std::string_view kFederationTransferEvalsTotal =
    "federation.transfer_evals_total";
inline constexpr std::string_view kFederationTransferAucMin =
    "federation.transfer.auc_min";

/// Appends the per-platform dimension to a base metric name:
/// `crawler.items_total` -> `crawler.items_total{platform=bazaar}`.
/// The registry treats each dimensioned name as its own series; dashboards
/// strip the brace suffix to aggregate. Keep the base name a constant from
/// this header so the docs check still sees every metric family.
inline std::string WithPlatform(std::string_view base,
                                std::string_view platform_id) {
  std::string name(base);
  name += "{platform=";
  name += platform_id;
  name += "}";
  return name;
}

}  // namespace cats::obs

#endif  // CATS_OBS_METRIC_NAMES_H_
