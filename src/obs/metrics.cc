#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace cats::obs {

// --- LatencyHistogram ---

LatencyHistogram::LatencyHistogram(std::string name,
                                   std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  std::sort(bounds_.begin(), bounds_.end());
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void LatencyHistogram::Observe(double value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<double> LatencyHistogram::DefaultLatencyBoundsMicros() {
  return {100,    250,    500,    1000,    2500,    5000,    10000,
          25000,  50000,  100000, 250000,  500000,  1000000, 2500000,
          5000000, 10000000};
}

std::vector<double> LatencyHistogram::UniformBounds(double lo, double hi,
                                                    size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double width = (hi - lo) / static_cast<double>(n);
  for (size_t i = 1; i <= n; ++i) {
    bounds.push_back(lo + width * static_cast<double>(i));
  }
  return bounds;
}

// --- snapshots ---

double HistogramSnapshot::Mean() const {
  return total_count > 0 ? sum / static_cast<double>(total_count) : 0.0;
}

double HistogramSnapshot::QuantileUpperBound(double q) const {
  if (total_count == 0 || bounds.empty()) return 0.0;
  double target = q * static_cast<double>(total_count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target && counts[i] > 0) {
      return bounds[std::min(i, bounds.size() - 1)];
    }
  }
  return bounds.back();
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue counters_obj = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_obj.Set(name, JsonValue::Int(static_cast<int64_t>(value)));
  }
  JsonValue gauges_obj = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_obj.Set(name, JsonValue::Number(value));
  }
  JsonValue histograms_obj = JsonValue::Object();
  for (const HistogramSnapshot& h : histograms) {
    JsonValue entry = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (double b : h.bounds) bounds.Append(JsonValue::Number(b));
    JsonValue counts = JsonValue::Array();
    for (uint64_t c : h.counts) {
      counts.Append(JsonValue::Int(static_cast<int64_t>(c)));
    }
    entry.Set("bounds", std::move(bounds));
    entry.Set("counts", std::move(counts));
    entry.Set("count", JsonValue::Int(static_cast<int64_t>(h.total_count)));
    entry.Set("sum", JsonValue::Number(h.sum));
    histograms_obj.Set(h.name, std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("counters", std::move(counters_obj));
  root.Set("gauges", std::move(gauges_obj));
  root.Set("histograms", std::move(histograms_obj));
  return root;
}

std::string MetricsSnapshot::ToTable() const {
  TablePrinter table({"metric", "type", "value", "details"});
  for (const auto& [name, value] : counters) {
    table.AddRow({name, "counter", StrFormat("%llu",
                 static_cast<unsigned long long>(value)), ""});
  }
  for (const auto& [name, value] : gauges) {
    table.AddRow({name, "gauge", StrFormat("%.4g", value), ""});
  }
  for (const HistogramSnapshot& h : histograms) {
    table.AddRow(
        {h.name, "histogram",
         StrFormat("%llu", static_cast<unsigned long long>(h.total_count)),
         StrFormat("mean=%.4g p50<=%.4g p95<=%.4g", h.Mean(),
                   h.QuantileUpperBound(0.50), h.QuantileUpperBound(0.95))});
  }
  return table.ToString();
}

// --- MetricsRegistry ---

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<LatencyHistogram>(new LatencyHistogram(
                          std::string(name), std::move(bounds))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(
    std::string_view name) {
  return GetHistogram(name, LatencyHistogram::DefaultLatencyBoundsMicros());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = hist->bounds();
    h.counts.reserve(hist->bounds().size() + 1);
    for (size_t i = 0; i <= hist->bounds().size(); ++i) {
      h.counts.push_back(hist->bucket_count(i));
    }
    h.total_count = hist->total_count();
    h.sum = hist->sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

std::string MetricsRegistry::DumpJson() const {
  return Snapshot().ToJson().Serialize();
}

std::string MetricsRegistry::DumpTable() const { return Snapshot().ToTable(); }

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->value_.store(0);
  for (auto& [name, gauge] : gauges_) gauge->value_.store(0.0);
  for (auto& [name, hist] : histograms_) {
    for (size_t i = 0; i <= hist->bounds_.size(); ++i) {
      hist->counts_[i].store(0);
    }
    hist->total_.store(0);
    hist->sum_.store(0.0);
  }
}

}  // namespace cats::obs
