#ifndef CATS_OBS_METRICS_H_
#define CATS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace cats::obs {

/// Monotonically increasing counter. The hot path is one relaxed atomic
/// add — safe to hit from every ThreadPool worker concurrently; increments
/// are never lost (tests/obs_metrics_test.cc proves exact summation).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement (queue depth, throughput of
/// the most recent batch, final training loss). Set/Add are lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with lock-free observation: bucket i counts
/// observations <= bounds[i] (first matching bound), plus one overflow
/// bucket for values above the last bound. Bounds are fixed at registration
/// so concurrent snapshots never see a resizing bucket array. Despite the
/// name it is value-agnostic — the detector records classification scores
/// through the same type (see kDetectorScoreHistogram).
class LatencyHistogram {
 public:
  void Observe(double value);

  /// Default exponential latency grid, 100us .. 10s, for *_micros metrics.
  static std::vector<double> DefaultLatencyBoundsMicros();
  /// `n` equal-width buckets spanning [lo, hi] (plus overflow above hi).
  static std::vector<double> UniformBounds(double lo, double hi, size_t n);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i; i == bounds().size() is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const;

 private:
  friend class MetricsRegistry;
  LatencyHistogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> total_{0};
  // Kahan-free double sum via CAS; precise enough for mean reporting.
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, for export and delta arithmetic.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  uint64_t total_count = 0;
  double sum = 0.0;

  double Mean() const;
  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  /// returns the last finite bound for overflow-bucket hits.
  double QuantileUpperBound(double q) const;
};

/// Point-in-time copy of the whole registry. Name-sorted for deterministic
/// export; DumpJson/DumpTable below are rendered from this.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  uint64_t CounterValue(std::string_view name) const;  // 0 when absent
  double GaugeValue(std::string_view name) const;      // 0.0 when absent
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  JsonValue ToJson() const;
  /// Aligned table via util/table_printer.h: one row per metric, histograms
  /// summarized as count/mean/p50/p95.
  std::string ToTable() const;
};

/// Process-wide home of every metric handle. Handle creation (GetCounter /
/// GetGauge / GetHistogram) takes the registry mutex and is expected at
/// construction time of the instrumented stage; the returned pointers are
/// stable for the registry's lifetime and their mutation methods are
/// lock-free, so the pipeline hot path never contends on the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline stages register into. Leaked on
  /// purpose so handles stay valid through static destruction.
  static MetricsRegistry& Global();

  /// Returns the existing metric of that name or registers a new one.
  /// Re-registering a histogram keeps the original bounds.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name,
                                 std::vector<double> bounds);
  /// Histogram with DefaultLatencyBoundsMicros().
  LatencyHistogram* GetLatencyHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Snapshot().ToJson().Serialize() — parses back with util/json.h.
  std::string DumpJson() const;
  /// Snapshot().ToTable() — human-readable aligned table.
  std::string DumpTable() const;

  /// Zeroes every value but keeps registrations and handles valid. For
  /// tests and benches that measure per-run deltas from a clean slate.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace cats::obs

#endif  // CATS_OBS_METRICS_H_
