#include "obs/stage_trace.h"

#include "util/string_util.h"

namespace cats::obs {
namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

JsonValue NodeToJson(const TraceNode& node) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::String(node.name));
  obj.Set("wall_micros", JsonValue::Int(node.wall_micros));
  obj.Set("items", JsonValue::Int(static_cast<int64_t>(node.items)));
  JsonValue children = JsonValue::Array();
  for (const TraceNode& child : node.children) {
    children.Append(NodeToJson(child));
  }
  obj.Set("children", std::move(children));
  return obj;
}

void NodeToString(const TraceNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%s  %.3f ms", node.name.c_str(),
                    static_cast<double>(node.wall_micros) / 1e3);
  if (node.items > 0) {
    *out += StrFormat("  (%llu items)",
                      static_cast<unsigned long long>(node.items));
  }
  *out += '\n';
  for (const TraceNode& child : node.children) {
    NodeToString(child, depth + 1, out);
  }
}

}  // namespace

const TraceNode* TraceNode::FindChild(std::string_view child_name) const {
  for (const TraceNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

JsonValue PipelineTrace::ToJson() const { return NodeToJson(root_); }

std::string PipelineTrace::ToString() const {
  std::string out;
  for (const TraceNode& stage : root_.children) {
    NodeToString(stage, 0, &out);
  }
  return out;
}

StageTrace::StageTrace(PipelineTrace* trace, std::string name,
                       LatencyHistogram* latency)
    : trace_(trace),
      latency_(latency),
      start_(std::chrono::steady_clock::now()) {
  TraceNode* parent = trace_->open_.back();
  parent->children.push_back(TraceNode{std::move(name), 0, 0, {}});
  node_ = &parent->children.back();
  trace_->open_.push_back(node_);
}

StageTrace::~StageTrace() {
  node_->wall_micros = MicrosSince(start_);
  trace_->open_.pop_back();
  if (latency_ != nullptr) {
    latency_->Observe(static_cast<double>(node_->wall_micros));
  }
}

void StageTrace::AddItems(uint64_t n) { node_->items += n; }

int64_t StageTrace::ElapsedMicros() const { return MicrosSince(start_); }

ScopedTimer::~ScopedTimer() {
  if (latency_ != nullptr) {
    latency_->Observe(static_cast<double>(MicrosSince(start_)));
  }
}

int64_t ScopedTimer::ElapsedMicros() const { return MicrosSince(start_); }

}  // namespace cats::obs
