#ifndef CATS_OBS_STAGE_TRACE_H_
#define CATS_OBS_STAGE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace cats::obs {

/// One timed stage in a pipeline run: wall time, how many items the stage
/// handled, and the sub-stages that ran inside it.
struct TraceNode {
  std::string name;
  int64_t wall_micros = 0;
  uint64_t items = 0;
  std::vector<TraceNode> children;

  const TraceNode* FindChild(std::string_view child_name) const;
};

/// The stage tree of one pipeline run (root children = top-level stages).
/// Built by StageTrace scopes; carried by value in results (e.g.
/// core::DetectionReport::trace) so callers can attribute a run's wall time
/// stage by stage. Single-threaded: open/close stages from one thread only
/// (workers inside a stage report through Counter/LatencyHistogram handles
/// instead — those are the thread-safe path).
class PipelineTrace {
 public:
  PipelineTrace() { open_.push_back(&root_); }
  PipelineTrace(const PipelineTrace& other) : root_(other.root_) {
    open_.push_back(&root_);
  }
  PipelineTrace& operator=(const PipelineTrace& other) {
    root_ = other.root_;
    open_.assign(1, &root_);
    return *this;
  }
  PipelineTrace(PipelineTrace&& other) noexcept
      : root_(std::move(other.root_)) {
    open_.push_back(&root_);
    other.open_.assign(1, &other.root_);
  }
  PipelineTrace& operator=(PipelineTrace&& other) noexcept {
    root_ = std::move(other.root_);
    open_.assign(1, &root_);
    other.open_.assign(1, &other.root_);
    return *this;
  }

  const TraceNode& root() const { return root_; }

  /// {"name": ..., "wall_micros": ..., "items": ..., "children": [...]}.
  JsonValue ToJson() const;
  /// Indented tree, one stage per line with millis and item counts.
  std::string ToString() const;

 private:
  friend class StageTrace;
  TraceNode root_{"pipeline", 0, 0, {}};
  std::vector<TraceNode*> open_;  // ancestor chain; back() = open stage
};

/// RAII stage scope: opens a child under the trace's currently open stage,
/// records wall time on destruction, optionally mirrors the latency into a
/// registry histogram so per-run traces and cross-run histograms stay in
/// sync from a single instrumentation point. Nest freely:
///
///   obs::PipelineTrace trace;
///   {
///     obs::StageTrace detect(&trace, "detect");
///     { obs::StageTrace extract(&trace, "extract_features"); ... }
///     { obs::StageTrace classify(&trace, "classify"); ... }
///   }
class StageTrace {
 public:
  StageTrace(PipelineTrace* trace, std::string name,
             LatencyHistogram* latency = nullptr);
  ~StageTrace();

  StageTrace(const StageTrace&) = delete;
  StageTrace& operator=(const StageTrace&) = delete;

  /// Attributes `n` processed items to this stage.
  void AddItems(uint64_t n);

  /// Microseconds since the scope opened (the stage stays open).
  int64_t ElapsedMicros() const;

 private:
  PipelineTrace* trace_;
  TraceNode* node_;  // valid while this scope is open (LIFO nesting)
  LatencyHistogram* latency_;
  std::chrono::steady_clock::time_point start_;
};

/// Minimal RAII timer for code that only wants a histogram sample (no
/// trace tree) — replaces the hand-rolled Stopwatch blocks in bench/.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* latency)
      : latency_(latency), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  int64_t ElapsedMicros() const;

 private:
  LatencyHistogram* latency_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cats::obs

#endif  // CATS_OBS_STAGE_TRACE_H_
