#include "pipeline/streaming_cats.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/bounded_queue.h"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cats::pipeline {
namespace {

/// Lowers the calling thread's scheduling priority by `nice_delta` (see
/// StreamingOptions::compute_nice). No-op off Linux or when delta <= 0;
/// best-effort (an EPERM just leaves default priority).
void DeprioritizeComputeThread(int nice_delta) {
#if defined(__linux__)
  if (nice_delta > 0) {
    setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                nice_delta);
  }
#else
  (void)nice_delta;
#endif
}

/// Stable handles for every pipeline.* metric (handle creation takes the
/// registry mutex; resolve them once per process).
struct PipelineMetrics {
  obs::Counter* runs_total;
  obs::Counter* stops_total;
  obs::Counter* items_streamed_total;
  obs::Counter* batches_staged_total;
  obs::LatencyHistogram* batch_items;
  obs::LatencyHistogram* run_latency_micros;
  obs::LatencyHistogram* stage_latency_micros;
  obs::LatencyHistogram* score_latency_micros;
  obs::Gauge* last_items_per_second;
  util::BoundedQueueMetrics ingest;
  util::BoundedQueueMetrics staged;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      auto* m = new PipelineMetrics{
          r.GetCounter(obs::kPipelineRunsTotal),
          r.GetCounter(obs::kPipelineStopsTotal),
          r.GetCounter(obs::kPipelineItemsStreamedTotal),
          r.GetCounter(obs::kPipelineBatchesStagedTotal),
          r.GetLatencyHistogram(obs::kPipelineBatchItems),
          r.GetLatencyHistogram(obs::kPipelineRunLatencyMicros),
          r.GetLatencyHistogram(obs::kPipelineStageLatencyMicros),
          r.GetLatencyHistogram(obs::kPipelineScoreLatencyMicros),
          r.GetGauge(obs::kPipelineLastItemsPerSecond),
          util::BoundedQueueMetrics{
              r.GetGauge(obs::kPipelineIngestDepth),
              r.GetCounter(obs::kPipelineIngestPushedTotal),
              r.GetCounter(obs::kPipelineIngestPushStallMicrosTotal),
              r.GetCounter(obs::kPipelineIngestPopStallMicrosTotal)},
          util::BoundedQueueMetrics{
              r.GetGauge(obs::kPipelineStagedDepth),
              r.GetCounter(obs::kPipelineStagedPushedTotal),
              r.GetCounter(obs::kPipelineStagedPushStallMicrosTotal),
              r.GetCounter(obs::kPipelineStagedPopStallMicrosTotal)}};
      return m;
    }();
    return *metrics;
  }
};

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Worker-interleaving makes arrival order nondeterministic; sorting by
/// item_id restores a canonical report (ids are unique per store).
void NormalizeReport(core::DetectionReport* report) {
  auto by_id = [](const core::Detection& a, const core::Detection& b) {
    return a.item_id < b.item_id;
  };
  std::sort(report->detections.begin(), report->detections.end(), by_id);
  std::sort(report->degraded_detections.begin(),
            report->degraded_detections.end(), by_id);
  std::sort(report->quarantine.entries.begin(),
            report->quarantine.entries.end(),
            [](const core::QuarantineEntry& a, const core::QuarantineEntry& b) {
              return a.item_id < b.item_id;
            });
}

/// What the feed leg (crawl or replay) reports back to the pipeline body.
struct FeedOutcome {
  Status status = Status::OK();
  collect::CrawlStats stats;
  bool stopped = false;
  size_t items_streamed = 0;
};

}  // namespace

StreamingCats::StreamingCats(const core::Detector* detector,
                             StreamingOptions options)
    : detector_(detector), options_(options) {
  if (options_.max_batch_items < 1) options_.max_batch_items = 1;
  if (options_.num_stage_workers < 1) options_.num_stage_workers = 1;
}

template <typename FeedFn>
Result<StreamingReport> StreamingCats::RunPipeline(FeedFn&& feed) {
  if (!detector_->trained()) {
    return Status::FailedPrecondition(
        "StreamingCats: detector is not trained");
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  const auto run_start = std::chrono::steady_clock::now();
  stop_.store(false, std::memory_order_relaxed);

  util::BoundedQueue<collect::CollectedItem> ingest(options_.ingest_capacity,
                                                    metrics.ingest);
  util::BoundedQueue<core::StagedBatch> staged(options_.staged_capacity,
                                               metrics.staged);

  // Staging workers: pop adaptive micro-batches from ingest, run the
  // pre-scoring stages (validate -> extract -> rule filter), push the
  // staged result downstream. Each worker owns a serial extractor sharing
  // the detector's semantic model — parallelism comes from workers, not
  // nested pools (this box may be single-core; the win is overlapping this
  // compute with the crawl's I/O waits, not fanning it out).
  std::vector<std::thread> workers;
  workers.reserve(options_.num_stage_workers);
  for (size_t w = 0; w < options_.num_stage_workers; ++w) {
    workers.emplace_back([&] {
      DeprioritizeComputeThread(options_.compute_nice);
      // Inherit the detector's extractor options (notably the token-id
      // hot-path toggle) — only the nested pool is disabled.
      core::FeatureExtractorOptions serial_options =
          detector_->extractor().options();
      serial_options.num_threads = 1;
      core::FeatureExtractor serial_extractor(
          &detector_->extractor().model(), serial_options);
      std::vector<collect::CollectedItem> batch;
      while (ingest.PopBatch(&batch, options_.max_batch_items)) {
        const auto stage_start = std::chrono::steady_clock::now();
        core::StagedBatch result = detector_->StageForScoring(
            batch, /*trace=*/nullptr, &serial_extractor);
        metrics.stage_latency_micros->Observe(
            static_cast<double>(ElapsedMicros(stage_start)));
        metrics.batch_items->Observe(static_cast<double>(batch.size()));
        metrics.batches_staged_total->Increment();
        if (!staged.Push(std::move(result))) break;
      }
    });
  }

  // Single scorer: merges staged batches into one report as they complete.
  // One thread because the classifier's batch path owns a thread pool and
  // the merge must be serialized anyway.
  core::DetectionReport report;
  std::thread scorer([&] {
    DeprioritizeComputeThread(options_.compute_nice);
    while (std::optional<core::StagedBatch> batch = staged.Pop()) {
      const auto score_start = std::chrono::steady_clock::now();
      detector_->ScoreStagedBatch(*batch, &report);
      metrics.score_latency_micros->Observe(
          static_cast<double>(ElapsedMicros(score_start)));
    }
  });

  // Feed on the calling thread; then drain stage by stage. Order matters:
  // close ingest -> workers finish every accepted item -> join workers ->
  // close staged -> scorer finishes every staged batch -> join scorer.
  // Nothing accepted into a queue is ever dropped.
  FeedOutcome fed = feed(&ingest);
  ingest.Close();
  for (std::thread& worker : workers) worker.join();
  staged.Close();
  scorer.join();

  NormalizeReport(&report);
  core::Detector::MirrorReportMetrics(report);

  const int64_t run_micros = ElapsedMicros(run_start);
  metrics.run_latency_micros->Observe(static_cast<double>(run_micros));
  metrics.runs_total->Increment();
  metrics.items_streamed_total->Increment(fed.items_streamed);
  if (fed.stopped) metrics.stops_total->Increment();
  if (run_micros > 0) {
    metrics.last_items_per_second->Set(static_cast<double>(
        fed.items_streamed / (static_cast<double>(run_micros) / 1e6)));
  }

  StreamingReport out;
  out.report = std::move(report);
  out.crawl_status = std::move(fed.status);
  out.crawl_stats = fed.stats;
  out.stopped = fed.stopped;
  out.items_streamed = fed.items_streamed;
  return out;
}

Result<StreamingReport> StreamingCats::Run(collect::Crawler* crawler,
                                           collect::DataStore* store,
                                           collect::CrawlCheckpoint* checkpoint) {
  return RunPipeline(
      [&](util::BoundedQueue<collect::CollectedItem>* ingest) {
        FeedOutcome outcome;
        crawler->set_item_sink([&](const collect::CollectedItem& item) {
          // Copy: the store's item vector may reallocate as the crawl
          // continues, and workers outlive the sink call. Push BEFORE
          // checking the stop flag: the crawler has already marked this
          // item's walk complete, so a resumed crawl will not re-offer it
          // — refusing it here would lose it forever.
          if (!ingest->Push(item)) return false;
          ++outcome.items_streamed;
          return !stop_.load(std::memory_order_relaxed);
        });
        outcome.status = crawler->Crawl(store, checkpoint);
        crawler->set_item_sink(nullptr);
        outcome.stats = crawler->stats();
        outcome.stopped = crawler->canceled();
        return outcome;
      });
}

Result<StreamingReport> StreamingCats::RunOnItems(
    const std::vector<collect::CollectedItem>& items) {
  return RunPipeline(
      [&](util::BoundedQueue<collect::CollectedItem>* ingest) {
        FeedOutcome outcome;
        for (const collect::CollectedItem& item : items) {
          if (!ingest->Push(item)) break;
          ++outcome.items_streamed;
          if (stop_.load(std::memory_order_relaxed)) {
            outcome.stopped = true;
            break;
          }
        }
        return outcome;
      });
}

}  // namespace cats::pipeline
