#ifndef CATS_PIPELINE_STREAMING_CATS_H_
#define CATS_PIPELINE_STREAMING_CATS_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "collect/crawler.h"
#include "collect/store.h"
#include "core/detector.h"
#include "util/result.h"

namespace cats::pipeline {

/// Knobs of the streaming execution plane. Defaults target the repo's
/// test/bench scales; a production deployment sizes queues against the
/// crawl rate (see docs/ARCHITECTURE.md "Streaming plane" for the sizing
/// contract).
struct StreamingOptions {
  /// Items buffered between the crawl thread and the staging workers.
  /// When staging falls behind, the queue fills and the crawl thread
  /// blocks in Push — backpressure reaches all the way to the collector,
  /// exactly like a 429 storm slows it from the other side.
  size_t ingest_capacity = 256;
  /// Staged micro-batches buffered ahead of the single scorer thread.
  size_t staged_capacity = 32;
  /// Micro-batch ceiling: a staging worker pops at most this many items in
  /// one wait (util::BoundedQueue::PopBatch), so batch size adapts between
  /// 1 (crawl-bound) and the ceiling (stage-bound).
  size_t max_batch_items = 64;
  /// Concurrent staging workers (validate + extract + rule filter). Each
  /// runs a serial feature extractor — parallelism comes from workers, not
  /// nested pools.
  size_t num_stage_workers = 2;
  /// Nice delta applied to the compute threads (staging workers + scorer)
  /// on platforms that support per-thread priorities (Linux). The ingest
  /// thread faces the remote platform's rate window: every cycle compute
  /// steals from it during a crawl burst stretches the crawl and leaves
  /// the throttle/backoff sleeps with no backlog to score. Deprioritizing
  /// compute keeps ingest ahead, so compute soaks the crawl's idle windows
  /// instead of competing with its bursts. 0 disables; results are
  /// unaffected either way (scheduling only).
  int compute_nice = 10;
};

/// Outcome of one streaming run.
struct StreamingReport {
  /// Merged detection report, order-normalized: detections,
  /// degraded_detections and quarantine entries are sorted by item_id so
  /// the report is deterministic regardless of worker interleaving (and
  /// directly comparable against a sorted sequential report).
  core::DetectionReport report;
  /// Outcome of the crawl leg. A non-OK status (e.g. retry budget
  /// exhausted) does not void the report: everything ingested before the
  /// abort was still staged, scored and merged, and the checkpoint resumes
  /// the remainder.
  Status crawl_status;
  /// Stats of the crawl leg (when a crawler was involved).
  collect::CrawlStats crawl_stats;
  /// True when RequestStop() cut the run short (checkpoint resumable).
  bool stopped = false;
  /// Items that entered the ingest queue.
  size_t items_streamed = 0;
};

/// The streaming execution plane: runs the paper's four stages — collector,
/// semantic analysis + feature extraction (inside Detector staging), and
/// stage-2 classification — as concurrent workers connected by bounded
/// queues, so crawl I/O, analysis and scoring overlap instead of running as
/// sequential batch phases:
///
///   crawl thread -> [ingest queue] -> staging workers -> [staged queue]
///                                                      -> scorer thread
///
/// Result-identical to the sequential path: both run the exact same
/// Detector::StageForScoring / ScoreStagedBatch code per item, so for the
/// same collected items the merged report equals `Detector::Detect`'s
/// (order-normalized; verified in tests/streaming_cats_test.cc).
///
/// Shutdown protocol: Close(ingest) -> workers drain and exit -> workers
/// joined -> Close(staged) -> scorer drains and exits. Every item accepted
/// into a queue is scored; nothing is lost between stages. RequestStop()
/// (any thread) triggers the same drain after cancelling the crawl at the
/// next item boundary, leaving the CrawlCheckpoint resumable.
///
/// Observability: `pipeline.*` metrics (docs/METRICS.md) — per-queue
/// depth/throughput/stall, batch-size and stage-latency histograms, and a
/// run-level items/s gauge.
class StreamingCats {
 public:
  /// `detector` must be trained (or loaded) and outlive this object.
  StreamingCats(const core::Detector* detector, StreamingOptions options);
  explicit StreamingCats(const core::Detector* detector)
      : StreamingCats(detector, StreamingOptions{}) {}

  /// Crawls (or resumes) through `crawler` into `store`, scoring items as
  /// their comment walks complete. The calling thread runs the crawl leg;
  /// staging and scoring run on internal threads that are joined before
  /// returning. The crawler's item sink is owned by this call and cleared
  /// on exit.
  Result<StreamingReport> Run(collect::Crawler* crawler,
                              collect::DataStore* store,
                              collect::CrawlCheckpoint* checkpoint);

  /// Streams an already-collected item set through the same plane (replay
  /// mode — `cats_cli detect --streaming`, benches). crawl_status is OK
  /// and crawl_stats empty.
  Result<StreamingReport> RunOnItems(
      const std::vector<collect::CollectedItem>& items);

  /// Requests a graceful shutdown of an in-flight Run from any thread:
  /// the crawl cancels at the next item boundary, queues drain, and Run
  /// returns a valid report covering everything ingested so far.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  const StreamingOptions& options() const { return options_; }

 private:
  /// The shared pipeline body: `feed` pushes items into the ingest queue
  /// (returning its leg's status) while workers stage and the scorer
  /// merges; used by both Run and RunOnItems.
  template <typename FeedFn>
  Result<StreamingReport> RunPipeline(FeedFn&& feed);

  const core::Detector* detector_;  // not owned
  StreamingOptions options_;
  std::atomic<bool> stop_{false};
};

}  // namespace cats::pipeline

#endif  // CATS_PIPELINE_STREAMING_CATS_H_
