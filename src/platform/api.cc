#include "platform/api.h"

#include <cstdlib>

#include "util/json.h"
#include "util/string_util.h"

namespace cats::platform {
namespace {

/// Paginates a range of size `total`: returns [begin, end) of `page` and the
/// page count.
struct PageRange {
  size_t begin = 0;
  size_t end = 0;
  size_t total_pages = 0;
};

PageRange Paginate(size_t total, size_t page, size_t page_size) {
  PageRange r;
  r.total_pages = (total + page_size - 1) / page_size;
  if (r.total_pages == 0) r.total_pages = 1;
  r.begin = std::min(total, page * page_size);
  r.end = std::min(total, r.begin + page_size);
  return r;
}

/// Applies the repagination-shift fault: the window's start slides
/// backward (records inserted upstream between page fetches), re-serving
/// the tail of the previous page. Only overlap, never gaps — the
/// completeness invariant chaos tests assert depends on that.
size_t ShiftedBegin(const PageRange& r, const fault::FaultDecision& f) {
  if (f.kind != fault::FaultKind::kRepaginationShift || r.begin == 0) {
    return r.begin;
  }
  return r.begin > f.shift ? r.begin - f.shift : 0;
}

std::string WrapPage(size_t page, size_t total_pages,
                     const fault::FaultDecision& f, JsonValue data) {
  if (f.kind == fault::FaultKind::kStaleTotalPages) {
    total_pages += f.stale_extra_pages;
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("page", JsonValue::Int(static_cast<int64_t>(page)));
  doc.Set("total_pages", JsonValue::Int(static_cast<int64_t>(total_pages)));
  doc.Set("data", std::move(data));
  return doc.Serialize();
}

/// Parses "<prefix><number><suffix>" routes; dst receives the number.
bool ConsumeUint(std::string_view* s, uint64_t* dst) {
  size_t i = 0;
  uint64_t v = 0;
  while (i < s->size() && (*s)[i] >= '0' && (*s)[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>((*s)[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  *dst = v;
  s->remove_prefix(i);
  return true;
}

}  // namespace

Result<std::string> MarketplaceApi::Get(std::string_view path) {
  ++request_count_;
  fault::FaultDecision fault = plan_.NextRequest();
  switch (fault.kind) {
    case fault::FaultKind::kServerError:
      ++injected_failures_;
      return Status::Unavailable("503 service unavailable (injected)");
    case fault::FaultKind::kRateLimit:
      ++injected_failures_;
      return Status::Unavailable(
          fault::FormatRateLimited(fault.retry_after_micros));
    case fault::FaultKind::kSlowResponse:
      if (options_.clock != nullptr) {
        options_.clock->AdvanceMicros(fault.latency_micros);
      }
      break;
    default:
      break;
  }

  // Split query string.
  size_t page = 0;
  std::string_view route = path;
  size_t qpos = path.find('?');
  if (qpos != std::string_view::npos) {
    route = path.substr(0, qpos);
    std::string_view query = path.substr(qpos + 1);
    if (StartsWith(query, "page=")) {
      page = static_cast<size_t>(
          std::strtoull(std::string(query.substr(5)).c_str(), nullptr, 10));
    } else {
      return Status::InvalidArgument("unsupported query: " +
                                     std::string(query));
    }
  }

  Result<std::string> body = Status::NotFound("no route for " +
                                              std::string(path));
  bool routed = false;
  if (route == "/shops") {
    body = ServeShops(page, fault);
    routed = true;
  } else if (StartsWith(route, "/shops/")) {
    std::string_view rest = route.substr(7);
    uint64_t shop_id = 0;
    if (ConsumeUint(&rest, &shop_id) && rest == "/items") {
      body = ServeItems(shop_id, page, fault);
      routed = true;
    }
  } else if (StartsWith(route, "/items/")) {
    std::string_view rest = route.substr(7);
    uint64_t item_id = 0;
    if (ConsumeUint(&rest, &item_id) && rest == "/comments") {
      body = ServeComments(item_id, page, fault);
      routed = true;
    }
  }
  if (!routed || !body.ok()) return body;
  if (fault.kind == fault::FaultKind::kTruncatedBody ||
      fault.kind == fault::FaultKind::kGarbledBody) {
    ++corrupted_bodies_;
    return fault::CorruptBody(std::move(body).value(), fault);
  }
  return body;
}

Result<std::string> MarketplaceApi::ServeShops(size_t page,
                                               const fault::FaultDecision& f) {
  const auto& shops = marketplace_->shops();
  PageRange r = Paginate(shops.size(), page, options_.page_size);
  if (page >= r.total_pages) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  JsonValue data = JsonValue::Array();
  auto append = [&data](const Shop& s) {
    JsonValue rec = JsonValue::Object();
    rec.Set("shop_id", JsonValue::String(std::to_string(s.id)));
    rec.Set("shop_url", JsonValue::String(s.url));
    rec.Set("shop_name", JsonValue::String(s.name));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    append(shops[i]);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(shops[i]);
    }
  }
  return WrapPage(page, r.total_pages, f, std::move(data));
}

Result<std::string> MarketplaceApi::ServeItems(uint64_t shop_id, size_t page,
                                               const fault::FaultDecision& f) {
  if (shop_id >= marketplace_->shops().size()) {
    return Status::NotFound(StrFormat("no shop %llu",
                                      static_cast<unsigned long long>(
                                          shop_id)));
  }
  const auto& item_ids = marketplace_->ItemsOfShop(shop_id);
  PageRange r = Paginate(item_ids.size(), page, options_.page_size);
  if (page >= r.total_pages) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  JsonValue data = JsonValue::Array();
  auto append = [&](const Item& item) {
    // Data faults mutate record content; decisions are keyed on the item id
    // alone, so a record re-served after a retry or repagination shift is
    // mutated identically every time.
    double price = item.price;
    int64_t sales_volume = item.sales_volume;
    switch (data_plan_.DecideItem(item.id)) {
      case fault::DataFaultKind::kDropOrders:
        sales_volume = -1;  // "field missing" sentinel
        data_degraded_items_.insert(item.id);
        break;
      case fault::DataFaultKind::kAbsurdPrice:
        price = data_plan_.AbsurdPrice(item.id);
        data_poisoned_items_.insert(item.id);
        break;
      case fault::DataFaultKind::kDropComments:
        data_degraded_items_.insert(item.id);
        break;
      default:
        break;
    }
    JsonValue rec = JsonValue::Object();
    rec.Set("item_id", JsonValue::String(std::to_string(item.id)));
    rec.Set("shop_id", JsonValue::String(std::to_string(item.shop_id)));
    rec.Set("item_name", JsonValue::String(item.name));
    rec.Set("price", JsonValue::Number(price));
    rec.Set("sales_volume", JsonValue::Int(sales_volume));
    rec.Set("category",
            JsonValue::String(std::string(ItemCategoryName(item.category))));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    const Item& item = marketplace_->items()[item_ids[i]];
    append(item);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(item);
    }
  }
  return WrapPage(page, r.total_pages, f, std::move(data));
}

Result<std::string> MarketplaceApi::ServeComments(
    uint64_t item_id, size_t page, const fault::FaultDecision& f) {
  if (item_id >= marketplace_->items().size()) {
    return Status::NotFound(StrFormat("no item %llu",
                                      static_cast<unsigned long long>(
                                          item_id)));
  }
  const auto& comment_indices = marketplace_->CommentIndicesOfItem(item_id);
  size_t served_total = comment_indices.size();
  // A drop-comments data fault serves a consistently empty comment list —
  // the item looks legitimately review-less on every fetch and retry.
  const bool drop_comments =
      data_plan_.DecideItem(item_id) == fault::DataFaultKind::kDropComments;
  if (drop_comments) {
    served_total = 0;
    data_degraded_items_.insert(item_id);
  }
  PageRange r = Paginate(served_total, page, options_.page_size);
  if (page >= r.total_pages && page > 0) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  JsonValue data = JsonValue::Array();
  auto append = [&](const Comment& c) {
    std::string content = c.content;
    uint64_t comment_id = c.id;
    switch (data_plan_.DecideComment(c.id)) {
      case fault::DataFaultKind::kCorruptText:
        content = data_plan_.CorruptText(std::move(content), c.id);
        data_poisoned_items_.insert(c.item_id);
        break;
      case fault::DataFaultKind::kOversizeText:
        content = data_plan_.OversizeText(std::move(content), c.id);
        data_poisoned_items_.insert(c.item_id);
        break;
      case fault::DataFaultKind::kDuplicateCommentId:
        // Rewrite the id to collide with the item's first comment; the
        // store dedups the later record away (silent data loss). The first
        // comment itself is never rewritten, so the item keeps >= 1.
        if (!comment_indices.empty() &&
            marketplace_->comments()[comment_indices[0]].id != c.id) {
          comment_id = marketplace_->comments()[comment_indices[0]].id;
          ++data_duplicate_comment_ids_;
        }
        break;
      default:
        break;
    }
    const User& user = marketplace_->users()[c.user_id];
    JsonValue rec = JsonValue::Object();
    rec.Set("item_id", JsonValue::String(std::to_string(c.item_id)));
    rec.Set("comment_id", JsonValue::String(std::to_string(comment_id)));
    rec.Set("comment_content", JsonValue::String(content));
    rec.Set("nickname", JsonValue::String(user.nickname));
    // Listing 2 serializes userExpValue as a string.
    rec.Set("userExpValue", JsonValue::String(std::to_string(user.exp_value)));
    rec.Set("client_information",
            JsonValue::String(std::string(ClientTypeName(c.client))));
    rec.Set("date", JsonValue::String(c.date));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    const Comment& c = marketplace_->comments()[comment_indices[i]];
    append(c);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(c);
    }
  }
  return WrapPage(page, r.total_pages, f, std::move(data));
}

}  // namespace cats::platform
