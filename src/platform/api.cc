#include "platform/api.h"

#include <cstdlib>

#include "util/json.h"
#include "util/string_util.h"

namespace cats::platform {
namespace {

/// Paginates a range of size `total`: returns [begin, end) of `page` and the
/// page count.
struct PageRange {
  size_t begin = 0;
  size_t end = 0;
  size_t total_pages = 0;
};

PageRange Paginate(size_t total, size_t page, size_t page_size) {
  PageRange r;
  r.total_pages = (total + page_size - 1) / page_size;
  if (r.total_pages == 0) r.total_pages = 1;
  r.begin = std::min(total, page * page_size);
  r.end = std::min(total, r.begin + page_size);
  return r;
}

/// Applies the repagination-shift fault: the window's start slides
/// backward (records inserted upstream between page fetches), re-serving
/// the tail of the previous page. Only overlap, never gaps — the
/// completeness invariant chaos tests assert depends on that.
size_t ShiftedBegin(const PageRange& r, const fault::FaultDecision& f) {
  if (f.kind != fault::FaultKind::kRepaginationShift || r.begin == 0) {
    return r.begin;
  }
  return r.begin > f.shift ? r.begin - f.shift : 0;
}

/// Builds the page envelope in the profile's pagination dialect, applying
/// the stale-total fault: page-number and offset styles over-report the
/// total, the cursor style emits a next_cursor pointing past the real end —
/// either way the crawler's next probe answers OutOfRange.
std::string WrapPage(const PlatformProfile& p, size_t page, size_t total_pages,
                     size_t page_size, const fault::FaultDecision& f,
                     JsonValue data) {
  if (f.kind == fault::FaultKind::kStaleTotalPages) {
    total_pages += f.stale_extra_pages;
  }
  JsonValue inner = JsonValue::Object();
  switch (p.pagination) {
    case PaginationStyle::kPageNumber:
      inner.Set(p.envelope.key_page, JsonValue::Int(static_cast<int64_t>(page)));
      inner.Set(p.envelope.key_total_pages,
                JsonValue::Int(static_cast<int64_t>(total_pages)));
      break;
    case PaginationStyle::kOffsetLimit:
      inner.Set(p.envelope.key_offset,
                JsonValue::Int(static_cast<int64_t>(page * page_size)));
      inner.Set(p.envelope.key_total,
                JsonValue::Int(static_cast<int64_t>(total_pages * page_size)));
      break;
    case PaginationStyle::kCursorToken:
      inner.Set(p.envelope.key_cursor, JsonValue::String(p.CursorForPage(page)));
      inner.Set(p.envelope.key_next_cursor,
                JsonValue::String(page + 1 < total_pages
                                      ? p.CursorForPage(page + 1)
                                      : std::string()));
      break;
  }
  inner.Set(p.envelope.key_data, std::move(data));
  if (p.envelope.wrapper.empty()) return inner.Serialize();
  JsonValue outer = JsonValue::Object();
  if (!p.envelope.status_key.empty()) {
    outer.Set(p.envelope.status_key, JsonValue::Int(p.envelope.status_value));
  }
  outer.Set(p.envelope.wrapper, std::move(inner));
  return outer.Serialize();
}

/// Parses "<prefix><number><suffix>" routes; dst receives the number.
bool ConsumeUint(std::string_view* s, uint64_t* dst) {
  size_t i = 0;
  uint64_t v = 0;
  while (i < s->size() && (*s)[i] >= '0' && (*s)[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>((*s)[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  *dst = v;
  s->remove_prefix(i);
  return true;
}

/// Consumes a path id in the profile's wire style (plain digits, or
/// prefix + digits for kPrefixedString).
bool ConsumePathId(const PlatformProfile& p, const std::string& prefix,
                   std::string_view* s, uint64_t* dst) {
  if (p.id_style == IdWireStyle::kPrefixedString) {
    if (s->substr(0, prefix.size()) != prefix) return false;
    s->remove_prefix(prefix.size());
  }
  return ConsumeUint(s, dst);
}

/// Resolves the query string to a page index per the profile's pagination
/// style. The canonical dialect keeps its historical leniency (strtoull on
/// the value); structural violations are InvalidArgument.
Result<size_t> ParsePageQuery(const PlatformProfile& p, std::string_view query,
                              size_t page_size) {
  const Status unsupported =
      Status::InvalidArgument("unsupported query: " + std::string(query));
  switch (p.pagination) {
    case PaginationStyle::kPageNumber: {
      const std::string want = p.query_page + "=";
      if (!StartsWith(query, want)) return unsupported;
      return static_cast<size_t>(std::strtoull(
          std::string(query.substr(want.size())).c_str(), nullptr, 10));
    }
    case PaginationStyle::kOffsetLimit: {
      const std::string off_key = p.query_offset + "=";
      if (!StartsWith(query, off_key)) return unsupported;
      query.remove_prefix(off_key.size());
      size_t amp = query.find('&');
      if (amp == std::string_view::npos) return unsupported;
      uint64_t offset = std::strtoull(
          std::string(query.substr(0, amp)).c_str(), nullptr, 10);
      std::string_view rest = query.substr(amp + 1);
      const std::string lim_key = p.query_limit + "=";
      if (!StartsWith(rest, lim_key)) return unsupported;
      uint64_t limit = std::strtoull(
          std::string(rest.substr(lim_key.size())).c_str(), nullptr, 10);
      if (limit != page_size || offset % page_size != 0) {
        return Status::InvalidArgument(
            StrFormat("unsupported window offset=%llu limit=%llu",
                      static_cast<unsigned long long>(offset),
                      static_cast<unsigned long long>(limit)));
      }
      return static_cast<size_t>(offset / page_size);
    }
    case PaginationStyle::kCursorToken: {
      const std::string cur_key = p.query_cursor + "=";
      if (!StartsWith(query, cur_key)) return unsupported;
      std::string_view token = query.substr(cur_key.size());
      if (token.empty()) return size_t{0};
      if (!StartsWith(token, p.cursor_prefix)) {
        return Status::InvalidArgument("bad cursor token: " +
                                       std::string(token));
      }
      token.remove_prefix(p.cursor_prefix.size());
      uint64_t page = 0;
      std::string_view digits = token;
      if (!ConsumeUint(&digits, &page) || !digits.empty()) {
        return Status::InvalidArgument("bad cursor token: " +
                                       std::string(token));
      }
      return static_cast<size_t>(page);
    }
  }
  return unsupported;
}

}  // namespace

Result<std::string> MarketplaceApi::Get(std::string_view path) {
  ++request_count_;
  fault::FaultDecision fault = plan_.NextRequest();
  switch (fault.kind) {
    case fault::FaultKind::kServerError:
      ++injected_failures_;
      return Status::Unavailable("503 service unavailable (injected)");
    case fault::FaultKind::kRateLimit:
      ++injected_failures_;
      return Status::Unavailable(
          fault::FormatRateLimited(fault.retry_after_micros));
    case fault::FaultKind::kSlowResponse:
      if (options_.clock != nullptr) {
        options_.clock->AdvanceMicros(fault.latency_micros);
      }
      break;
    default:
      break;
  }

  // Split query string and resolve it to a page index in the profile's
  // pagination dialect.
  const PlatformProfile& prof = options_.profile;
  size_t page = 0;
  std::string_view route = path;
  size_t qpos = path.find('?');
  if (qpos != std::string_view::npos) {
    route = path.substr(0, qpos);
    Result<size_t> parsed_page =
        ParsePageQuery(prof, path.substr(qpos + 1), options_.page_size);
    if (!parsed_page.ok()) return parsed_page.status();
    page = *parsed_page;
  }

  Result<std::string> body = Status::NotFound("no route for " +
                                              std::string(path));
  bool routed = false;
  const std::string shops_route = "/" + prof.shops_segment;
  const std::string shops_prefix = shops_route + "/";
  const std::string items_prefix = "/" + prof.items_segment + "/";
  const std::string items_suffix = "/" + prof.items_segment;
  const std::string comments_suffix = "/" + prof.comments_segment;
  if (route == shops_route) {
    body = ServeShops(page, fault);
    routed = true;
  } else if (StartsWith(route, shops_prefix)) {
    std::string_view rest = route.substr(shops_prefix.size());
    uint64_t shop_id = 0;
    if (ConsumePathId(prof, prof.shop_id_prefix, &rest, &shop_id) &&
        rest == items_suffix) {
      body = ServeItems(shop_id, page, fault);
      routed = true;
    }
  } else if (StartsWith(route, items_prefix)) {
    std::string_view rest = route.substr(items_prefix.size());
    uint64_t item_id = 0;
    if (ConsumePathId(prof, prof.item_id_prefix, &rest, &item_id) &&
        rest == comments_suffix) {
      body = ServeComments(item_id, page, fault);
      routed = true;
    }
  }
  if (!routed || !body.ok()) return body;
  if (fault.kind == fault::FaultKind::kTruncatedBody ||
      fault.kind == fault::FaultKind::kGarbledBody) {
    ++corrupted_bodies_;
    return fault::CorruptBody(std::move(body).value(), fault);
  }
  return body;
}

Result<std::string> MarketplaceApi::ServeShops(size_t page,
                                               const fault::FaultDecision& f) {
  const auto& shops = marketplace_->shops();
  PageRange r = Paginate(shops.size(), page, options_.page_size);
  if (page >= r.total_pages) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  const PlatformProfile& prof = options_.profile;
  JsonValue data = JsonValue::Array();
  auto append = [&](const Shop& s) {
    JsonValue rec = JsonValue::Object();
    rec.Set(prof.shop.id, prof.EncodeId(s.id, prof.shop_id_prefix));
    rec.Set(prof.shop.url, JsonValue::String(s.url));
    rec.Set(prof.shop.name, JsonValue::String(s.name));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    append(shops[i]);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(shops[i]);
    }
  }
  return WrapPage(prof, page, r.total_pages, options_.page_size, f,
                  std::move(data));
}

Result<std::string> MarketplaceApi::ServeItems(uint64_t shop_id, size_t page,
                                               const fault::FaultDecision& f) {
  if (shop_id >= marketplace_->shops().size()) {
    return Status::NotFound(StrFormat("no shop %llu",
                                      static_cast<unsigned long long>(
                                          shop_id)));
  }
  const auto& item_ids = marketplace_->ItemsOfShop(shop_id);
  PageRange r = Paginate(item_ids.size(), page, options_.page_size);
  if (page >= r.total_pages) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  JsonValue data = JsonValue::Array();
  auto append = [&](const Item& item) {
    // Data faults mutate record content; decisions are keyed on the item id
    // alone, so a record re-served after a retry or repagination shift is
    // mutated identically every time.
    double price = item.price;
    int64_t sales_volume = item.sales_volume;
    switch (data_plan_.DecideItem(item.id)) {
      case fault::DataFaultKind::kDropOrders:
        sales_volume = -1;  // "field missing" sentinel
        data_degraded_items_.insert(item.id);
        break;
      case fault::DataFaultKind::kAbsurdPrice:
        price = data_plan_.AbsurdPrice(item.id);
        data_poisoned_items_.insert(item.id);
        break;
      case fault::DataFaultKind::kDropComments:
        data_degraded_items_.insert(item.id);
        break;
      default:
        break;
    }
    const PlatformProfile& prof = options_.profile;
    JsonValue rec = JsonValue::Object();
    rec.Set(prof.item.id, prof.EncodeId(item.id, prof.item_id_prefix));
    rec.Set(prof.item.shop_id,
            prof.EncodeId(item.shop_id, prof.shop_id_prefix));
    rec.Set(prof.item.name, JsonValue::String(item.name));
    rec.Set(prof.item.price, JsonValue::Number(price));
    rec.Set(prof.item.sales, JsonValue::Int(sales_volume));
    rec.Set(prof.item.category,
            JsonValue::String(std::string(ItemCategoryName(item.category))));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    const Item& item = marketplace_->items()[item_ids[i]];
    append(item);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(item);
    }
  }
  return WrapPage(options_.profile, page, r.total_pages, options_.page_size,
                  f, std::move(data));
}

Result<std::string> MarketplaceApi::ServeComments(
    uint64_t item_id, size_t page, const fault::FaultDecision& f) {
  if (item_id >= marketplace_->items().size()) {
    return Status::NotFound(StrFormat("no item %llu",
                                      static_cast<unsigned long long>(
                                          item_id)));
  }
  const auto& comment_indices = marketplace_->CommentIndicesOfItem(item_id);
  size_t served_total = comment_indices.size();
  // A drop-comments data fault serves a consistently empty comment list —
  // the item looks legitimately review-less on every fetch and retry.
  const bool drop_comments =
      data_plan_.DecideItem(item_id) == fault::DataFaultKind::kDropComments;
  if (drop_comments) {
    served_total = 0;
    data_degraded_items_.insert(item_id);
  }
  PageRange r = Paginate(served_total, page, options_.page_size);
  if (page >= r.total_pages && page > 0) {
    return Status::OutOfRange(StrFormat("page %zu past end", page));
  }
  JsonValue data = JsonValue::Array();
  auto append = [&](const Comment& c) {
    std::string content = c.content;
    uint64_t comment_id = c.id;
    switch (data_plan_.DecideComment(c.id)) {
      case fault::DataFaultKind::kCorruptText:
        content = data_plan_.CorruptText(std::move(content), c.id);
        data_poisoned_items_.insert(c.item_id);
        break;
      case fault::DataFaultKind::kOversizeText:
        content = data_plan_.OversizeText(std::move(content), c.id);
        data_poisoned_items_.insert(c.item_id);
        break;
      case fault::DataFaultKind::kDuplicateCommentId:
        // Rewrite the id to collide with the item's first comment; the
        // store dedups the later record away (silent data loss). The first
        // comment itself is never rewritten, so the item keeps >= 1.
        if (!comment_indices.empty() &&
            marketplace_->comments()[comment_indices[0]].id != c.id) {
          comment_id = marketplace_->comments()[comment_indices[0]].id;
          ++data_duplicate_comment_ids_;
        }
        break;
      default:
        break;
    }
    const User& user = marketplace_->users()[c.user_id];
    const PlatformProfile& prof = options_.profile;
    JsonValue rec = JsonValue::Object();
    rec.Set(prof.comment.item_id,
            prof.EncodeId(c.item_id, prof.item_id_prefix));
    rec.Set(prof.comment.id,
            prof.EncodeId(comment_id, prof.comment_id_prefix));
    rec.Set(prof.comment.content, JsonValue::String(content));
    rec.Set(prof.comment.nickname, JsonValue::String(user.nickname));
    // Canonically a string (Listing 2); other platforms run their own
    // scales — jademall multiplies points, bazaar buckets into levels.
    rec.Set(prof.comment.reputation, prof.EncodeReputation(user.exp_value));
    rec.Set(prof.comment.client,
            JsonValue::String(
                prof.EncodeClient(ClientTypeName(c.client))));
    rec.Set(prof.comment.date, prof.EncodeDate(c.date));
    data.Append(std::move(rec));
  };
  size_t begin = ShiftedBegin(r, f);
  injected_duplicates_ += r.begin - begin;
  for (size_t i = begin; i < r.end; ++i) {
    const Comment& c = marketplace_->comments()[comment_indices[i]];
    append(c);
    if (plan_.NextRecordDuplicate()) {
      ++injected_duplicates_;
      append(c);
    }
  }
  return WrapPage(options_.profile, page, r.total_pages, options_.page_size,
                  f, std::move(data));
}

}  // namespace cats::platform
