#ifndef CATS_PLATFORM_API_H_
#define CATS_PLATFORM_API_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/clock.h"
#include "fault/fault_plan.h"
#include "platform/marketplace.h"
#include "util/result.h"

namespace cats::platform {

struct ApiOptions {
  size_t page_size = 50;
  /// Deterministic fault schedule the API draws from (fault/fault_plan.h).
  /// Defaults to FaultProfile::Mild() — the background noise (transient
  /// 503s, duplicated records) every crawl used to see; set to
  /// FaultProfile::None() for clean-room crawls, Hostile() for chaos runs.
  fault::FaultProfile faults = fault::FaultProfile::Mild();
  uint64_t seed = 99;
  /// Clock slow-response faults advance; nullptr disables latency
  /// injection (the other fault kinds don't need a clock).
  fault::VirtualClock* clock = nullptr;
};

/// The public web surface of a marketplace: paginated JSON endpoints over
/// exactly the public-domain data the paper's crawler scrapes (§IV-A).
/// Ground-truth fields (is_fraud, hired, from_campaign) are never serialized.
///
/// Routes:
///   /shops?page=K                  -> shop_id, shop_url, shop_name
///   /shops/<id>/items?page=K      -> item_id, item_name, price,
///                                     sales_volume, category
///   /items/<id>/comments?page=K   -> item_id, comment_id, comment_content,
///                                     nickname, userExpValue,
///                                     client_information, date
/// Responses: {"page":K,"total_pages":N,"data":[...]}.
///
/// Every request consults the seeded fault::FaultPlan, which can answer
/// with 429s (Retry-After in the Status message), 5xx bursts, truncated or
/// garbled bodies, slow responses, stale total_pages, repagination shifts,
/// and duplicated records — the weather the paper's week-long live crawl
/// ran in.
class MarketplaceApi {
 public:
  MarketplaceApi(const Marketplace* marketplace, ApiOptions options)
      : marketplace_(marketplace),
        options_(options),
        plan_(options.faults, options.seed) {}

  explicit MarketplaceApi(const Marketplace* marketplace)
      : MarketplaceApi(marketplace, ApiOptions{}) {}

  /// Handles one GET. Returns the JSON body (possibly corrupted by a
  /// content fault), or Unavailable on an injected 503/429, or NotFound /
  /// InvalidArgument / OutOfRange for bad routes and past-the-end pages.
  Result<std::string> Get(std::string_view path);

  uint64_t request_count() const { return request_count_; }
  /// Injected 503 + 429 responses.
  uint64_t injected_failures() const { return injected_failures_; }
  /// Records served more than once (inline duplicates + repagination
  /// overlap).
  uint64_t injected_duplicates() const { return injected_duplicates_; }
  /// Bodies actually corrupted (a scheduled corruption does not manifest
  /// when the request errors out first, e.g. a past-the-end page).
  uint64_t corrupted_bodies() const { return corrupted_bodies_; }
  size_t page_size() const { return options_.page_size; }
  const fault::FaultPlan& fault_plan() const { return plan_; }

 private:
  Result<std::string> ServeShops(size_t page, const fault::FaultDecision& f);
  Result<std::string> ServeItems(uint64_t shop_id, size_t page,
                                 const fault::FaultDecision& f);
  Result<std::string> ServeComments(uint64_t item_id, size_t page,
                                    const fault::FaultDecision& f);

  const Marketplace* marketplace_;  // not owned
  ApiOptions options_;
  fault::FaultPlan plan_;
  uint64_t request_count_ = 0;
  uint64_t injected_failures_ = 0;
  uint64_t injected_duplicates_ = 0;
  uint64_t corrupted_bodies_ = 0;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_API_H_
