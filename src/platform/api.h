#ifndef CATS_PLATFORM_API_H_
#define CATS_PLATFORM_API_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "platform/marketplace.h"
#include "util/random.h"
#include "util/result.h"

namespace cats::platform {

struct ApiOptions {
  size_t page_size = 50;
  /// Probability a page contains a duplicated record (real platforms
  /// repaginate under writes; the collector's duplicate filter must cope).
  double duplicate_record_prob = 0.01;
  /// Probability a request transiently fails with 503 (the crawler retries).
  double transient_failure_prob = 0.004;
  uint64_t seed = 99;
};

/// The public web surface of a marketplace: paginated JSON endpoints over
/// exactly the public-domain data the paper's crawler scrapes (§IV-A).
/// Ground-truth fields (is_fraud, hired, from_campaign) are never serialized.
///
/// Routes:
///   /shops?page=K                  -> shop_id, shop_url, shop_name
///   /shops/<id>/items?page=K      -> item_id, item_name, price,
///                                     sales_volume, category
///   /items/<id>/comments?page=K   -> item_id, comment_id, comment_content,
///                                     nickname, userExpValue,
///                                     client_information, date
/// Responses: {"page":K,"total_pages":N,"data":[...]}.
class MarketplaceApi {
 public:
  MarketplaceApi(const Marketplace* marketplace, ApiOptions options)
      : marketplace_(marketplace),
        options_(options),
        rng_(options.seed, 0xA71) {}

  explicit MarketplaceApi(const Marketplace* marketplace)
      : MarketplaceApi(marketplace, ApiOptions{}) {}

  /// Handles one GET. Returns the JSON body, or Unavailable on an injected
  /// transient failure, or NotFound / InvalidArgument for bad routes.
  Result<std::string> Get(std::string_view path);

  uint64_t request_count() const { return request_count_; }
  uint64_t injected_failures() const { return injected_failures_; }
  uint64_t injected_duplicates() const { return injected_duplicates_; }
  size_t page_size() const { return options_.page_size; }

 private:
  Result<std::string> ServeShops(size_t page);
  Result<std::string> ServeItems(uint64_t shop_id, size_t page);
  Result<std::string> ServeComments(uint64_t item_id, size_t page);

  const Marketplace* marketplace_;  // not owned
  ApiOptions options_;
  Rng rng_;
  uint64_t request_count_ = 0;
  uint64_t injected_failures_ = 0;
  uint64_t injected_duplicates_ = 0;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_API_H_
