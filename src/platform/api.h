#ifndef CATS_PLATFORM_API_H_
#define CATS_PLATFORM_API_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

#include "fault/clock.h"
#include "fault/data_fault_plan.h"
#include "fault/fault_plan.h"
#include "platform/marketplace.h"
#include "platform/profile.h"
#include "util/result.h"

namespace cats::platform {

struct ApiOptions {
  size_t page_size = 50;
  /// The platform's wire identity (platform/profile.h): route names,
  /// pagination convention, envelope shape, field names and value
  /// encodings. The default is the canonical (paper Listing 2) wire,
  /// byte-identical to the pre-profile MarketplaceApi.
  PlatformProfile profile;
  /// Deterministic fault schedule the API draws from (fault/fault_plan.h).
  /// Defaults to FaultProfile::Mild() — the background noise (transient
  /// 503s, duplicated records) every crawl used to see; set to
  /// FaultProfile::None() for clean-room crawls, Hostile() for chaos runs.
  fault::FaultProfile faults = fault::FaultProfile::Mild();
  /// Content-level dirty data (fault/data_fault_plan.h): missing fields,
  /// absurd prices, garbled / oversized comment text, colliding comment
  /// ids. Defaults to none — records are clean unless a chaos run opts in.
  fault::DataFaultProfile data_faults = fault::DataFaultProfile::None();
  uint64_t seed = 99;
  /// Clock slow-response faults advance; nullptr disables latency
  /// injection (the other fault kinds don't need a clock).
  fault::VirtualClock* clock = nullptr;
};

/// The public web surface of a marketplace: paginated JSON endpoints over
/// exactly the public-domain data the paper's crawler scrapes (§IV-A).
/// Ground-truth fields (is_fraud, hired, from_campaign) are never serialized.
///
/// Canonical routes (ApiOptions::profile renames every segment, field and
/// encoding per platform — see platform/profile.h):
///   /shops?page=K                  -> shop_id, shop_url, shop_name
///   /shops/<id>/items?page=K      -> item_id, item_name, price,
///                                     sales_volume, category
///   /items/<id>/comments?page=K   -> item_id, comment_id, comment_content,
///                                     nickname, userExpValue,
///                                     client_information, date
/// Canonical responses: {"page":K,"total_pages":N,"data":[...]}; other
/// profiles paginate by offset/limit or cursor token and may nest the
/// envelope under a wrapper key.
///
/// Every request consults the seeded fault::FaultPlan, which can answer
/// with 429s (Retry-After in the Status message), 5xx bursts, truncated or
/// garbled bodies, slow responses, stale total_pages, repagination shifts,
/// and duplicated records — the weather the paper's week-long live crawl
/// ran in.
class MarketplaceApi {
 public:
  MarketplaceApi(const Marketplace* marketplace, ApiOptions options)
      : marketplace_(marketplace),
        options_(options),
        plan_(options.faults, options.seed),
        data_plan_(options.data_faults, options.seed) {}

  explicit MarketplaceApi(const Marketplace* marketplace)
      : MarketplaceApi(marketplace, ApiOptions{}) {}

  /// Handles one GET. Returns the JSON body (possibly corrupted by a
  /// content fault), or Unavailable on an injected 503/429, or NotFound /
  /// InvalidArgument / OutOfRange for bad routes and past-the-end pages.
  Result<std::string> Get(std::string_view path);

  uint64_t request_count() const { return request_count_; }
  /// Injected 503 + 429 responses.
  uint64_t injected_failures() const { return injected_failures_; }
  /// Records served more than once (inline duplicates + repagination
  /// overlap).
  uint64_t injected_duplicates() const { return injected_duplicates_; }
  /// Bodies actually corrupted (a scheduled corruption does not manifest
  /// when the request errors out first, e.g. a past-the-end page).
  uint64_t corrupted_bodies() const { return corrupted_bodies_; }
  size_t page_size() const { return options_.page_size; }
  const PlatformProfile& profile() const { return options_.profile; }
  const fault::FaultPlan& fault_plan() const { return plan_; }
  const fault::DataFaultPlan& data_fault_plan() const { return data_plan_; }

  /// Ground truth for chaos tests: item ids actually served with poison
  /// content (absurd price, corrupt / oversized comment text) and with
  /// degraded content (dropped comments or orders). A scheduled data fault
  /// that never manifests (e.g. corruption on a comment of an item whose
  /// whole comment list was dropped) is not recorded.
  const std::unordered_set<uint64_t>& data_poisoned_items() const {
    return data_poisoned_items_;
  }
  const std::unordered_set<uint64_t>& data_degraded_items() const {
    return data_degraded_items_;
  }
  /// Comment records served under a sibling's comment_id (the store's
  /// dedup silently drops them — data loss, not poison).
  uint64_t data_duplicate_comment_ids() const {
    return data_duplicate_comment_ids_;
  }

 private:
  Result<std::string> ServeShops(size_t page, const fault::FaultDecision& f);
  Result<std::string> ServeItems(uint64_t shop_id, size_t page,
                                 const fault::FaultDecision& f);
  Result<std::string> ServeComments(uint64_t item_id, size_t page,
                                    const fault::FaultDecision& f);

  const Marketplace* marketplace_;  // not owned
  ApiOptions options_;
  fault::FaultPlan plan_;
  fault::DataFaultPlan data_plan_;
  uint64_t request_count_ = 0;
  uint64_t injected_failures_ = 0;
  uint64_t injected_duplicates_ = 0;
  uint64_t corrupted_bodies_ = 0;
  std::unordered_set<uint64_t> data_poisoned_items_;
  std::unordered_set<uint64_t> data_degraded_items_;
  uint64_t data_duplicate_comment_ids_ = 0;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_API_H_
