#include "platform/campaign.h"

#include <algorithm>
#include <unordered_set>

namespace cats::platform {

CampaignPlan CampaignEngine::Plan(
    uint64_t shop_id, std::vector<uint64_t> item_ids, uint32_t start_day,
    Rng* rng, const fault::CampaignAdaptation& adaptation) const {
  CampaignPlan plan;
  plan.shop_id = shop_id;
  plan.item_ids = std::move(item_ids);
  plan.start_day = start_day;
  plan.stealth = rng->Bernoulli(options_.stealth_campaign_prob);
  plan.adaptation = adaptation;

  // Recruit a crew from the shared workforce, weighted by activity so the
  // most active accounts join many campaigns.
  std::unordered_set<uint64_t> seen;
  size_t want = std::min(options_.crew_size, population_->num_hired());
  size_t attempts = 0;
  while (seen.size() < want && attempts < want * 50) {
    seen.insert(population_->SampleHiredWeighted(rng));
    ++attempts;
  }
  plan.crew.assign(seen.begin(), seen.end());
  std::sort(plan.crew.begin(), plan.crew.end());

  size_t num_templates = std::max<size_t>(
      1, generator_->spam_options().template_pool_size);
  plan.templates.reserve(num_templates);
  for (size_t t = 0; t < num_templates; ++t) {
    plan.templates.push_back(
        generator_->GenerateSpamTemplate(rng, plan.stealth, plan.adaptation));
  }
  return plan;
}

ClientType CampaignEngine::SampleClient(Rng* rng) const {
  double u = rng->UniformDouble();
  double acc = 0.0;
  for (int c = 0; c < 4; ++c) {
    acc += options_.client_probs[c];
    if (u < acc) return static_cast<ClientType>(c);
  }
  return ClientType::kWechat;
}

std::vector<Comment> CampaignEngine::EmitSpamComments(const CampaignPlan& plan,
                                                      uint64_t item_id,
                                                      Rng* rng) const {
  std::vector<Comment> out;
  double mean = options_.mean_spam_comments_per_item *
                (plan.stealth ? options_.stealth_volume_factor : 1.0);
  int64_t count = std::max<int64_t>(1, rng->Poisson(mean));
  out.reserve(static_cast<size_t>(count));
  for (int64_t k = 0; k < count; ++k) {
    uint64_t user =
        plan.crew.empty()
            ? population_->SampleHiredWeighted(rng)
            : plan.crew[rng->UniformU32(
                  static_cast<uint32_t>(plan.crew.size()))];
    size_t repeats = 1;
    while (rng->Bernoulli(options_.repeat_purchase_prob) && repeats < 6) {
      ++repeats;  // the same account buys again within the burst
    }
    for (size_t r = 0; r < repeats && out.size() < static_cast<size_t>(count);
         ++r) {
      Comment c;
      c.item_id = item_id;
      c.user_id = user;
      const auto& tmpl = plan.templates[rng->UniformU32(
          static_cast<uint32_t>(plan.templates.size()))];
      c.content = generator_->GenerateSpamFromTemplate(tmpl, rng, plan.stealth,
                                                       plan.adaptation);
      c.client = SampleClient(rng);
      c.from_campaign = true;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace cats::platform
