#ifndef CATS_PLATFORM_CAMPAIGN_H_
#define CATS_PLATFORM_CAMPAIGN_H_

#include <cstdint>
#include <vector>

#include "platform/comment_generator.h"
#include "platform/entities.h"
#include "platform/population.h"
#include "util/random.h"

namespace cats::platform {

struct CampaignOptions {
  /// Hired accounts recruited per campaign; the workforce pool is shared
  /// across campaigns, which is what creates the paper's risky-user pairs
  /// (83,745 pairs drawn from 1,056 accounts).
  size_t crew_size = 30;
  /// Spam comments inserted per target item, Poisson mean.
  double mean_spam_comments_per_item = 11.0;
  /// Probability a crew member buys the same item again immediately
  /// (the paper finds 20% of risky users repeat-purchase; extreme cases
  /// exceed 400 buys, which emerges from heavy-tailed crew activity).
  double repeat_purchase_prob = 0.22;
  /// Client mix of campaign orders: web-heavy (paper Fig 12a).
  /// Order: web, android, iphone, wechat.
  double client_probs[4] = {0.55, 0.25, 0.12, 0.08};
  /// Campaign burst length in days.
  uint32_t burst_days = 7;
  /// Fraction of campaigns run in stealth mode (organic-looking templates,
  /// fewer insertions) — the detector's recall ceiling.
  double stealth_campaign_prob = 0.30;
  /// Spam-volume multiplier for stealth campaigns.
  double stealth_volume_factor = 0.55;
};

/// One malicious merchant's promotion campaign: a crew of hired accounts, a
/// pool of promotional comment templates, and a start date.
struct CampaignPlan {
  uint64_t shop_id = 0;
  std::vector<uint64_t> item_ids;             // targeted (fraud) items
  std::vector<uint64_t> crew;                 // hired user ids
  std::vector<std::vector<uint32_t>> templates;
  uint32_t start_day = 0;
  bool stealth = false;
  /// Adversarial knobs (default-inactive: baseline behavior, identical
  /// random sequence). Set by AdversaryPlan::AdaptCampaign for adapted runs.
  fault::CampaignAdaptation adaptation;
};

/// Plans campaigns and emits their fraudulent orders/comments.
class CampaignEngine {
 public:
  CampaignEngine(const CampaignOptions& options,
                 const CommentGenerator* generator,
                 const Population* population)
      : options_(options), generator_(generator), population_(population) {}

  /// Assembles a campaign for `shop_id` targeting `item_ids`. `adaptation`
  /// carries the adversary's per-campaign knobs (default: baseline fraud).
  CampaignPlan Plan(uint64_t shop_id, std::vector<uint64_t> item_ids,
                    uint32_t start_day, Rng* rng,
                    const fault::CampaignAdaptation& adaptation) const;
  CampaignPlan Plan(uint64_t shop_id, std::vector<uint64_t> item_ids,
                    uint32_t start_day, Rng* rng) const {
    return Plan(shop_id, std::move(item_ids), start_day, rng,
                fault::CampaignAdaptation{});
  }

  /// Emits the spam comments for one target item of the plan. Comment ids
  /// and dates are assigned by the caller (the marketplace owns the id
  /// space); here user, client, text and ground-truth flags are filled in.
  std::vector<Comment> EmitSpamComments(const CampaignPlan& plan,
                                        uint64_t item_id, Rng* rng) const;

  /// Samples a campaign-order client (web-heavy).
  ClientType SampleClient(Rng* rng) const;

  const CampaignOptions& options() const { return options_; }

 private:
  CampaignOptions options_;
  const CommentGenerator* generator_;  // not owned
  const Population* population_;       // not owned
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_CAMPAIGN_H_
