#include "platform/comment_generator.h"

#include <algorithm>

namespace cats::platform {

uint32_t CommentGenerator::SampleBenignWord(double quality, Polarity* prev,
                                            Rng* rng) const {
  // Polarity chaining: an evaluative word tends to continue its phrase.
  if (*prev != Polarity::kNeutral &&
      rng->Bernoulli(benign_.polarity_chain_prob)) {
    return *prev == Polarity::kPositive ? language_->SamplePositive(rng)
                                        : language_->SampleNegative(rng);
  }
  double p_pos = benign_.positive_base + benign_.positive_gain * quality;
  double p_neg = benign_.negative_gain * (1.0 - quality);
  double u = rng->UniformDouble();
  uint32_t id;
  if (u < p_pos) {
    id = language_->SamplePositive(rng);
    *prev = Polarity::kPositive;
  } else if (u < p_pos + p_neg) {
    id = language_->SampleNegative(rng);
    *prev = Polarity::kNegative;
  } else {
    id = language_->SampleNeutral(rng);
    *prev = Polarity::kNeutral;
  }
  return id;
}

std::string CommentGenerator::Render(const std::vector<uint32_t>& word_ids,
                                     double punctuation_prob,
                                     Rng* rng) const {
  std::string out;
  out.reserve(word_ids.size() * 7);
  for (size_t i = 0; i < word_ids.size(); ++i) {
    out += language_->word(word_ids[i]).text;
    bool last = i + 1 == word_ids.size();
    if (last) {
      out += "\xE3\x80\x82";  // 。 sentence-final
    } else if (rng->Bernoulli(punctuation_prob)) {
      out += language_->SamplePunctuation(rng);
    }
  }
  return out;
}

std::string CommentGenerator::GenerateBenign(double quality, Rng* rng) const {
  if (rng->Bernoulli(benign_.enthusiast_prob * quality)) {
    // Genuine gushing review: long, positive, punctuated, some repetition.
    double p = 1.0 / benign_.enthusiast_mean_length;
    size_t length = std::clamp<size_t>(
        static_cast<size_t>(rng->Geometric(p)), 8, benign_.max_length_words);
    std::vector<uint32_t> ids;
    ids.reserve(length + 4);
    for (size_t i = 0; i < length; ++i) {
      uint32_t id = rng->Bernoulli(benign_.enthusiast_positive_prob)
                        ? language_->SamplePositive(rng)
                        : language_->SampleNeutral(rng);
      ids.push_back(id);
      if (rng->Bernoulli(benign_.enthusiast_duplicate_prob)) {
        ids.push_back(id);
      }
    }
    return Render(ids, benign_.enthusiast_punctuation_prob, rng);
  }
  size_t length;
  if (rng->Bernoulli(benign_.short_comment_prob)) {
    length = 2 + rng->UniformU32(2);  // 2-3 words
  } else {
    double p = 1.0 / benign_.mean_length_words;
    length = static_cast<size_t>(rng->Geometric(p));
    length = std::clamp<size_t>(length, 1, benign_.max_length_words);
  }
  std::vector<uint32_t> ids;
  ids.reserve(length);
  Polarity prev = Polarity::kNeutral;
  for (size_t i = 0; i < length; ++i) {
    ids.push_back(SampleBenignWord(quality, &prev, rng));
  }
  return Render(ids, benign_.punctuation_prob, rng);
}

std::vector<uint32_t> CommentGenerator::GenerateSpamTemplate(
    Rng* rng, bool stealth, const fault::CampaignAdaptation& adapt) const {
  double mean = stealth ? spam_.stealth_mean_length_words
                        : spam_.mean_length_words;
  double positive =
      (stealth ? spam_.stealth_positive_prob : spam_.positive_prob) *
      adapt.positive_scale;
  double p = 1.0 / mean;
  size_t length = static_cast<size_t>(rng->Geometric(p));
  size_t min_len = stealth ? 4 : spam_.min_length_words;
  length = std::clamp(length, min_len, spam_.max_length_words);
  std::vector<uint32_t> ids;
  ids.reserve(length);
  bool prev_positive = false;
  for (size_t i = 0; i < length; ++i) {
    bool emit_positive =
        rng->Bernoulli(positive) ||
        (prev_positive && rng->Bernoulli(spam_.polarity_chain_prob));
    if (emit_positive) {
      if (rng->Bernoulli(spam_.homograph_within_positive)) {
        // Adapted campaigns rotate burned homograph aliases to neutral
        // words. The extra draw is gated on the knob so inactive
        // adaptations stay byte-identical to the baseline sequence.
        if (adapt.homograph_to_neutral > 0.0 &&
            rng->Bernoulli(adapt.homograph_to_neutral)) {
          ids.push_back(language_->SampleNeutral(rng));
        } else {
          ids.push_back(language_->SampleHomograph(rng));
        }
      } else {
        ids.push_back(language_->SamplePositive(rng));
      }
    } else {
      ids.push_back(language_->SampleNeutral(rng));
    }
    prev_positive = emit_positive;
  }
  return ids;
}

std::string CommentGenerator::GenerateSpamFromTemplate(
    const std::vector<uint32_t>& tmpl, Rng* rng, bool stealth,
    const fault::CampaignAdaptation& adapt) const {
  double positive =
      (stealth ? spam_.stealth_positive_prob : spam_.positive_prob) *
      adapt.positive_scale;
  double duplicate = (stealth ? spam_.stealth_duplicate_burst_prob
                              : spam_.duplicate_burst_prob) *
                     adapt.duplicate_scale;
  double punctuation =
      stealth ? spam_.stealth_punctuation_prob : spam_.punctuation_prob;
  double jitter = spam_.jitter_prob + adapt.extra_jitter;
  std::vector<uint32_t> ids;
  ids.reserve(tmpl.size() + 8);
  for (uint32_t id : tmpl) {
    if (rng->Bernoulli(jitter)) {
      if (rng->Bernoulli(0.5)) continue;  // drop
      // Replace with a fresh positive or neutral word.
      id = rng->Bernoulli(positive) ? language_->SamplePositive(rng)
                                    : language_->SampleNeutral(rng);
    }
    ids.push_back(id);
    // Promotional copy repeats its selling-point words.
    if (rng->Bernoulli(duplicate)) {
      size_t repeats = 1 + rng->UniformU32(2);
      for (size_t r = 0; r < repeats; ++r) ids.push_back(id);
    }
  }
  if (ids.empty()) ids.push_back(language_->SamplePositive(rng));
  // Neutral filler padding: adapted spam buries its pitch in mundane text
  // to dilute the positive-density and entropy features.
  if (adapt.filler_words_mean > 0.0) {
    int64_t filler = rng->Poisson(adapt.filler_words_mean);
    for (int64_t k = 0; k < filler; ++k) {
      ids.push_back(language_->SampleNeutral(rng));
    }
  }
  return Render(ids, punctuation, rng);
}

std::string CommentGenerator::GenerateSentimentTrainingDoc(bool positive,
                                                           Rng* rng) const {
  size_t length = 4 + rng->UniformU32(16);
  std::vector<uint32_t> ids;
  ids.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    double u = rng->UniformDouble();
    if (positive) {
      if (u < 0.45) {
        ids.push_back(language_->SamplePositive(rng));
      } else if (u < 0.48) {
        ids.push_back(language_->SampleNegative(rng));
      } else {
        ids.push_back(language_->SampleNeutral(rng));
      }
    } else {
      if (u < 0.45) {
        ids.push_back(language_->SampleNegative(rng));
      } else if (u < 0.48) {
        ids.push_back(language_->SamplePositive(rng));
      } else {
        ids.push_back(language_->SampleNeutral(rng));
      }
    }
  }
  return Render(ids, 0.08, rng);
}

}  // namespace cats::platform
