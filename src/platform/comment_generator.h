#ifndef CATS_PLATFORM_COMMENT_GENERATOR_H_
#define CATS_PLATFORM_COMMENT_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/adversary_plan.h"
#include "platform/language_model.h"
#include "util/random.h"

namespace cats::platform {

/// Tunables for organic (benign-user) comments.
struct BenignCommentOptions {
  double mean_length_words = 9.0;    // geometric length
  size_t max_length_words = 60;
  double short_comment_prob = 0.12;  // "书很好。"-style 2-3 word reviews
  double punctuation_prob = 0.07;    // punctuation after each word
  /// Polarity mixing as a function of item quality q in [0,1]:
  /// P(positive word) = positive_base + positive_gain * q,
  /// P(negative word) = negative_gain * (1 - q).
  double positive_base = 0.10;
  double positive_gain = 0.22;
  double negative_gain = 0.28;
  /// Evaluative words arrive in phrases ("质量很好很满意"): after a
  /// polarity word, the next word repeats that polarity with this
  /// probability. This intra-window co-occurrence is what lets word2vec
  /// cluster sentiment words (Table I).
  double polarity_chain_prob = 0.65;
  /// Some genuine shoppers write long, gushing, punctuation-heavy reviews
  /// of items they love; these organic comments look promotional and are
  /// the main source of detector false positives. Probability scales with
  /// item quality: enthusiast_prob * q.
  double enthusiast_prob = 0.06;
  double enthusiast_mean_length = 26.0;
  double enthusiast_positive_prob = 0.31;
  double enthusiast_punctuation_prob = 0.13;
  double enthusiast_duplicate_prob = 0.06;
};

/// Tunables for campaign (hired-spammer) comments.
struct SpamCommentOptions {
  double mean_length_words = 34.0;
  size_t min_length_words = 12;
  size_t max_length_words = 90;
  double punctuation_prob = 0.16;
  double positive_prob = 0.40;       // positive word probability per slot
  double homograph_within_positive = 0.12;
  double duplicate_burst_prob = 0.18;  // repeat the previous word 1-3 times
  /// Template jitter: probability a template token is replaced or dropped
  /// when a comment is instantiated from it.
  double jitter_prob = 0.15;
  size_t template_pool_size = 4;     // templates per campaign
  /// Phrase chaining, as in benign text (see BenignCommentOptions).
  double polarity_chain_prob = 0.65;
  /// Stealth campaigns imitate organic reviews: shorter, fewer positive
  /// words, less duplication — the detector's main source of false
  /// negatives. These parameters replace the ones above when a campaign is
  /// planned in stealth mode.
  double stealth_mean_length_words = 12.0;
  double stealth_positive_prob = 0.20;
  double stealth_punctuation_prob = 0.09;
  double stealth_duplicate_burst_prob = 0.06;
};

/// Generates organic and promotional comment text over a shared synthetic
/// language. Produces the raw unsegmented strings that the crawler later
/// collects; all paper-visible structure (length, punctuation, duplication,
/// polarity mix) originates here.
class CommentGenerator {
 public:
  CommentGenerator(const SyntheticLanguage* language,
                   BenignCommentOptions benign, SpamCommentOptions spam)
      : language_(language), benign_(benign), spam_(spam) {}

  explicit CommentGenerator(const SyntheticLanguage* language)
      : CommentGenerator(language, BenignCommentOptions{},
                         SpamCommentOptions{}) {}

  /// An organic comment for an item of latent quality `quality`.
  std::string GenerateBenign(double quality, Rng* rng) const;

  /// A promotion template: the token-id skeleton shared by one campaign's
  /// hired comments. Stealth templates imitate organic writing; an active
  /// `adapt` (adversarial campaigns) damps the positive-word density and
  /// rotates homograph slots to neutral aliases. A default-constructed
  /// adaptation draws the exact same random sequence as the plain overload.
  std::vector<uint32_t> GenerateSpamTemplate(
      Rng* rng, bool stealth, const fault::CampaignAdaptation& adapt) const;
  std::vector<uint32_t> GenerateSpamTemplate(Rng* rng, bool stealth) const {
    return GenerateSpamTemplate(rng, stealth, fault::CampaignAdaptation{});
  }
  std::vector<uint32_t> GenerateSpamTemplate(Rng* rng) const {
    return GenerateSpamTemplate(rng, /*stealth=*/false);
  }

  /// Instantiates a template with jitter, duplication bursts and
  /// punctuation into final comment text. An active `adapt` mutates the
  /// template harder, damps duplication bursts and pads neutral filler.
  std::string GenerateSpamFromTemplate(
      const std::vector<uint32_t>& tmpl, Rng* rng, bool stealth,
      const fault::CampaignAdaptation& adapt) const;
  std::string GenerateSpamFromTemplate(const std::vector<uint32_t>& tmpl,
                                       Rng* rng, bool stealth) const {
    return GenerateSpamFromTemplate(tmpl, rng, stealth,
                                    fault::CampaignAdaptation{});
  }
  std::string GenerateSpamFromTemplate(const std::vector<uint32_t>& tmpl,
                                       Rng* rng) const {
    return GenerateSpamFromTemplate(tmpl, rng, /*stealth=*/false);
  }

  /// Labeled review for training the sentiment model (positive reviews are
  /// positive-word-heavy and vice versa).
  std::string GenerateSentimentTrainingDoc(bool positive, Rng* rng) const;

  const BenignCommentOptions& benign_options() const { return benign_; }
  const SpamCommentOptions& spam_options() const { return spam_; }

 private:
  uint32_t SampleBenignWord(double quality, Polarity* prev, Rng* rng) const;
  std::string Render(const std::vector<uint32_t>& word_ids,
                     double punctuation_prob, Rng* rng) const;

  const SyntheticLanguage* language_;  // not owned
  BenignCommentOptions benign_;
  SpamCommentOptions spam_;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_COMMENT_GENERATOR_H_
