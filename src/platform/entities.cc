#include "platform/entities.h"

namespace cats::platform {

std::string_view ClientTypeName(ClientType c) {
  switch (c) {
    case ClientType::kWeb:
      return "Web";
    case ClientType::kAndroid:
      return "Android";
    case ClientType::kIphone:
      return "iPhone";
    case ClientType::kWechat:
      return "WeChat";
  }
  return "Unknown";
}

std::string_view ItemCategoryName(ItemCategory c) {
  switch (c) {
    case ItemCategory::kMensClothing:
      return "men's clothing";
    case ItemCategory::kWomensClothing:
      return "women's clothing";
    case ItemCategory::kMensShoes:
      return "men's shoes";
    case ItemCategory::kWomensShoes:
      return "women's shoes";
    case ItemCategory::kComputerOffice:
      return "computer & office";
    case ItemCategory::kPhoneAccessories:
      return "phone & accessories";
    case ItemCategory::kFoodGrocery:
      return "food & grocery";
    case ItemCategory::kSportsOutdoors:
      return "sports & outdoors";
  }
  return "unknown";
}

}  // namespace cats::platform
