#ifndef CATS_PLATFORM_ENTITIES_H_
#define CATS_PLATFORM_ENTITIES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cats::platform {

/// Order-source clients observable in public comment records (paper §V,
/// order aspect / Fig 12).
enum class ClientType : uint8_t { kWeb = 0, kAndroid, kIphone, kWechat };

std::string_view ClientTypeName(ClientType c);

/// The eight Taobao categories CATS was deployed on (paper §VI).
enum class ItemCategory : uint8_t {
  kMensClothing = 0,
  kWomensClothing,
  kMensShoes,
  kWomensShoes,
  kComputerOffice,
  kPhoneAccessories,
  kFoodGrocery,
  kSportsOutdoors,
};

inline constexpr size_t kNumItemCategories = 8;

std::string_view ItemCategoryName(ItemCategory c);

/// An e-commerce account. `exp_value` mirrors E-platform's userExpValue
/// reliability score (min 100, max 27,158,720 per the paper). `hired` is
/// simulator ground truth (whether the account belongs to the promotion
/// workforce) and is never exposed through the public API.
struct User {
  uint64_t id = 0;
  std::string nickname;       // anonymized, e.g. "0***莉"
  int64_t exp_value = 100;
  bool hired = false;         // ground truth, hidden from the pipeline
};

/// Paper's userExpValue bounds.
inline constexpr int64_t kMinUserExpValue = 100;
inline constexpr int64_t kMaxUserExpValue = 27'158'720;

/// A third-party shop.
struct Shop {
  uint64_t id = 0;
  std::string name;
  std::string url;
  bool malicious = false;     // ground truth: runs promotion campaigns
};

/// An item listing. `quality` drives organic comment sentiment; `is_fraud`
/// is ground truth (targeted by a promotion campaign).
struct Item {
  uint64_t id = 0;
  uint64_t shop_id = 0;
  std::string name;
  double price = 0.0;
  ItemCategory category = ItemCategory::kMensClothing;
  int64_t sales_volume = 0;
  double quality = 0.5;       // latent, in [0, 1]
  bool is_fraud = false;      // ground truth, hidden from the pipeline
};

/// One purchase + its comment — the public record of Listing 2. Every
/// order on the simulated platforms carries a comment (only buyers can
/// comment, so client == order source).
struct Comment {
  uint64_t id = 0;
  uint64_t item_id = 0;
  uint64_t user_id = 0;
  std::string content;        // unsegmented CJK-style text
  ClientType client = ClientType::kAndroid;
  std::string date;           // "YYYY-MM-DD HH:MM:SS"
  bool from_campaign = false; // ground truth, hidden from the pipeline
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_ENTITIES_H_
