#include "platform/language_model.h"

#include <cassert>
#include <unordered_set>

#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::platform {
namespace {

/// Draws a fresh unique word of 1-3 CJK codepoints. Two-codepoint words
/// dominate, matching Chinese word-length statistics.
std::string GenerateWordText(Rng* rng,
                             std::unordered_set<std::string>* taken) {
  for (;;) {
    double u = rng->UniformDouble();
    size_t len = u < 0.15 ? 1 : (u < 0.85 ? 2 : 3);
    std::string word;
    for (size_t i = 0; i < len; ++i) {
      uint32_t cp = 0x4E00 + rng->UniformU32(0x2000);
      text::AppendCodepoint(cp, &word);
    }
    if (taken->insert(word).second) return word;
  }
}

/// Swaps one codepoint of `base` for a fresh one — the 好评→好坪 homograph.
std::string MakeHomograph(const std::string& base, Rng* rng,
                          std::unordered_set<std::string>* taken) {
  std::vector<uint32_t> cps = text::DecodeString(base);
  for (;;) {
    std::vector<uint32_t> variant = cps;
    size_t pos = rng->UniformU32(static_cast<uint32_t>(variant.size()));
    variant[pos] = 0x4E00 + rng->UniformU32(0x2000);
    std::string word = text::EncodeString(variant);
    if (word != base && taken->insert(word).second) return word;
  }
}

ZipfDistribution MakeZipf(size_t n, double s) {
  return ZipfDistribution(static_cast<uint32_t>(n > 0 ? n : 1), s);
}

}  // namespace

SyntheticLanguage::SyntheticLanguage(LanguageOptions options)
    : options_(options),
      any_dist_(1, 1.0),       // placeholders, rebuilt below
      neutral_dist_(1, 1.0),
      positive_dist_(1, 1.0),
      negative_dist_(1, 1.0) {
  assert(options_.vocabulary_size > 0);
  Rng rng(options_.seed, 0xBEEF);
  std::unordered_set<std::string> taken;
  words_.reserve(options_.vocabulary_size + options_.homograph_bases);

  for (size_t i = 0; i < options_.vocabulary_size; ++i) {
    LanguageWord w;
    w.text = GenerateWordText(&rng, &taken);
    // Skip rank 0/1 for polarity so the most common fillers stay neutral.
    if (i >= 2 && i % options_.positive_period == 2) {
      w.polarity = Polarity::kPositive;
    } else if (i >= 2 && i % options_.negative_period == 5) {
      w.polarity = Polarity::kNegative;
    }
    uint32_t id = static_cast<uint32_t>(words_.size());
    switch (w.polarity) {
      case Polarity::kNeutral:
        neutral_ids_.push_back(id);
        break;
      case Polarity::kPositive:
        positive_ids_.push_back(id);
        break;
      case Polarity::kNegative:
        negative_ids_.push_back(id);
        break;
    }
    words_.push_back(std::move(w));
  }

  // Homograph aliases of the most frequent positive words.
  size_t bases = std::min(options_.homograph_bases, positive_ids_.size());
  for (size_t b = 0; b < bases; ++b) {
    const LanguageWord& base = words_[positive_ids_[b]];
    LanguageWord w;
    w.text = MakeHomograph(base.text, &rng, &taken);
    w.polarity = Polarity::kPositive;
    w.spam_homograph = true;
    homograph_ids_.push_back(static_cast<uint32_t>(words_.size()));
    words_.push_back(std::move(w));
  }

  double s = options_.zipf_exponent;
  any_dist_ = MakeZipf(options_.vocabulary_size, s);
  neutral_dist_ = MakeZipf(neutral_ids_.size(), s);
  positive_dist_ = MakeZipf(positive_ids_.size(), s);
  negative_dist_ = MakeZipf(negative_ids_.size(), s);
}

uint32_t SyntheticLanguage::SampleFromClass(
    const std::vector<uint32_t>& members, const ZipfDistribution& dist,
    Rng* rng) const {
  assert(!members.empty());
  return members[dist.Sample(rng)];
}

uint32_t SyntheticLanguage::SampleNeutral(Rng* rng) const {
  return SampleFromClass(neutral_ids_, neutral_dist_, rng);
}

uint32_t SyntheticLanguage::SamplePositive(Rng* rng) const {
  return SampleFromClass(positive_ids_, positive_dist_, rng);
}

uint32_t SyntheticLanguage::SampleNegative(Rng* rng) const {
  return SampleFromClass(negative_ids_, negative_dist_, rng);
}

uint32_t SyntheticLanguage::SampleHomograph(Rng* rng) const {
  assert(!homograph_ids_.empty());
  return homograph_ids_[rng->UniformU32(
      static_cast<uint32_t>(homograph_ids_.size()))];
}

uint32_t SyntheticLanguage::SampleAny(Rng* rng) const {
  return any_dist_.Sample(rng);
}

std::vector<std::string> SyntheticLanguage::PositiveSeeds(size_t count) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < count && i < positive_ids_.size(); ++i) {
    out.push_back(words_[positive_ids_[i]].text);
  }
  return out;
}

std::vector<std::string> SyntheticLanguage::NegativeSeeds(size_t count) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < count && i < negative_ids_.size(); ++i) {
    out.push_back(words_[negative_ids_[i]].text);
  }
  return out;
}

Polarity SyntheticLanguage::PolarityOf(const std::string& word) const {
  for (const LanguageWord& w : words_) {
    if (w.text == word) return w.polarity;
  }
  return Polarity::kNeutral;
}

text::SegmentationDictionary SyntheticLanguage::BuildSegmentationDictionary()
    const {
  text::SegmentationDictionary dict;
  for (const LanguageWord& w : words_) dict.AddWord(w.text);
  return dict;
}

std::string SyntheticLanguage::SamplePunctuation(Rng* rng) const {
  const auto& marks = text::CjkPunctuationMarks();
  uint32_t cp = marks[rng->UniformU32(static_cast<uint32_t>(marks.size()))];
  return text::EncodeCodepoint(cp);
}

}  // namespace cats::platform
