#ifndef CATS_PLATFORM_LANGUAGE_MODEL_H_
#define CATS_PLATFORM_LANGUAGE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/segmenter.h"
#include "util/random.h"

namespace cats::platform {

/// Word polarity in the synthetic language.
enum class Polarity : uint8_t { kNeutral = 0, kPositive, kNegative };

/// A word of the synthetic language.
struct LanguageWord {
  std::string text;        // 1-3 CJK codepoints, unsegmented in comments
  Polarity polarity = Polarity::kNeutral;
  bool spam_homograph = false;  // codepoint-swapped alias of a positive seed
};

struct LanguageOptions {
  size_t vocabulary_size = 4000;
  double zipf_exponent = 1.05;
  /// One word in `positive_period` is positive, likewise negative; defaults
  /// give ~8% positive and ~8% negative vocabulary.
  size_t positive_period = 12;
  size_t negative_period = 12;
  /// Number of top positive words that get homograph spam aliases
  /// (simulating 好评 -> 好坪/好平, paper Table I).
  size_t homograph_bases = 6;
  uint64_t seed = 42;
};

/// Deterministic synthetic CJK-like language shared by all simulated
/// platforms (Taobao-sim and E-platform-sim both serve Chinese-speaking
/// users, paper §VII). Words are short codepoint strings rendered without
/// separators, so the real FMM segmenter is exercised end to end.
///
/// Substitutes for: the natural Chinese of the paper's 70M-comment corpus.
/// Preserved behaviour: Zipfian frequencies, polarity-bearing words, spam
/// homograph variants that only occur in promotional text.
class SyntheticLanguage {
 public:
  explicit SyntheticLanguage(LanguageOptions options);

  const std::vector<LanguageWord>& words() const { return words_; }
  size_t vocabulary_size() const { return words_.size(); }

  /// Sampling by polarity class; frequency within a class is Zipfian by the
  /// class's own rank order. Returns an index into words().
  uint32_t SampleNeutral(Rng* rng) const;
  uint32_t SamplePositive(Rng* rng) const;
  uint32_t SampleNegative(Rng* rng) const;
  /// Samples a spam homograph alias (spam text only).
  uint32_t SampleHomograph(Rng* rng) const;
  /// Samples from the full vocabulary (background distribution).
  uint32_t SampleAny(Rng* rng) const;

  const LanguageWord& word(uint32_t index) const { return words_[index]; }

  /// Positive / negative seed words for the lexicon expansion (the most
  /// frequent polarity words — the 好评/差评 analogues).
  std::vector<std::string> PositiveSeeds(size_t count) const;
  std::vector<std::string> NegativeSeeds(size_t count) const;

  /// Ground-truth polarity of a word string (for validating expanded
  /// lexicons in tests/benches). Homographs count as positive.
  Polarity PolarityOf(const std::string& word) const;

  /// A segmentation dictionary covering the whole vocabulary (homographs
  /// included) — the analogue of a segmenter's stock dictionary.
  text::SegmentationDictionary BuildSegmentationDictionary() const;

  /// A random fullwidth punctuation mark, UTF-8 encoded.
  std::string SamplePunctuation(Rng* rng) const;

 private:
  uint32_t SampleFromClass(const std::vector<uint32_t>& members,
                           const ZipfDistribution& dist, Rng* rng) const;

  LanguageOptions options_;
  std::vector<LanguageWord> words_;
  std::vector<uint32_t> neutral_ids_;
  std::vector<uint32_t> positive_ids_;   // excludes homographs
  std::vector<uint32_t> negative_ids_;
  std::vector<uint32_t> homograph_ids_;
  ZipfDistribution any_dist_;
  ZipfDistribution neutral_dist_;
  ZipfDistribution positive_dist_;
  ZipfDistribution negative_dist_;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_LANGUAGE_MODEL_H_
