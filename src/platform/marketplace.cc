#include "platform/marketplace.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace cats::platform {
namespace {

/// Days per month for the simulated window starting 2017-09-01.
constexpr uint32_t kWindowDays = 120;

struct AdversaryMetrics {
  obs::Counter* campaigns_adapted;
  obs::Counter* accounts_aged;
  obs::Gauge* last_strength;

  static const AdversaryMetrics& Get() {
    static const AdversaryMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* out = new AdversaryMetrics{};
      out->campaigns_adapted =
          reg.GetCounter(obs::kAdversaryCampaignsAdaptedTotal);
      out->accounts_aged = reg.GetCounter(obs::kAdversaryAccountsAgedTotal);
      out->last_strength = reg.GetGauge(obs::kAdversaryLastStrength);
      return out;
    }();
    return *m;
  }
};

}  // namespace

Marketplace Marketplace::Generate(const MarketplaceConfig& config,
                                  const SyntheticLanguage* language) {
  Rng rng(config.seed, 0xCA75);
  Marketplace m(config, language, rng);
  return m;
}

Marketplace::Marketplace(const MarketplaceConfig& config,
                         const SyntheticLanguage* language, Rng rng)
    : config_(config),
      language_(language),
      generator_(language, config.benign_comments, config.spam_comments),
      population_(config.population, &rng),
      engine_(config.campaign, &generator_, &population_),
      adversary_plan_(config.adversary, config.seed),
      rng_(rng) {
  GenerateShopsAndItems(&rng_);
  GenerateOrganicComments(&rng_);
  RunCampaigns(&rng_);
  FinalizeSalesVolumes(&rng_);
}

ClientType Marketplace::SampleBenignClient(Rng* rng) const {
  double u = rng->UniformDouble();
  double acc = 0.0;
  for (int c = 0; c < 4; ++c) {
    acc += config_.benign_client_probs[c];
    if (u < acc) return static_cast<ClientType>(c);
  }
  return ClientType::kWechat;
}

std::string Marketplace::FormatDate(uint32_t day,
                                    uint32_t second_of_day) const {
  // Window starts 2017-09-01; roll through month lengths.
  static constexpr uint32_t kMonthDays[] = {30, 31, 30, 31, 31, 28};
  static constexpr uint32_t kMonthNums[] = {9, 10, 11, 12, 1, 2};
  uint32_t year = 2017;
  uint32_t remaining = day;
  for (size_t m = 0; m < 6; ++m) {
    if (remaining < kMonthDays[m]) {
      uint32_t month = kMonthNums[m];
      if (month <= 2) year = 2018;
      return StrFormat("%u-%02u-%02u %02u:%02u:%02u", year, month,
                       remaining + 1, second_of_day / 3600,
                       (second_of_day / 60) % 60, second_of_day % 60);
    }
    remaining -= kMonthDays[m];
  }
  return StrFormat("2018-02-28 00:00:%02u", second_of_day % 60);
}

void Marketplace::GenerateShopsAndItems(Rng* rng) {
  size_t num_campaign_shops = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(config_.num_fraud_items) /
                       config_.fraud_items_per_campaign_mean)));
  if (config_.num_fraud_items == 0) num_campaign_shops = 0;
  size_t num_normal_shops = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(config_.num_normal_items) /
                       config_.items_per_shop_mean)));

  auto make_item_name = [this, rng]() {
    std::string name = language_->word(language_->SampleNeutral(rng)).text;
    name += language_->word(language_->SampleAny(rng)).text;
    return name;
  };

  size_t total_shops = num_normal_shops + num_campaign_shops;
  shops_.reserve(total_shops);
  shop_items_.resize(total_shops);
  items_.reserve(config_.num_normal_items + config_.num_fraud_items);

  auto add_item = [&](uint64_t shop_id, bool fraud) {
    Item item;
    item.id = items_.size();
    item.shop_id = shop_id;
    item.name = make_item_name();
    item.price = rng->LogNormal(3.5, 1.0);
    item.category = static_cast<ItemCategory>(
        rng->UniformU32(static_cast<uint32_t>(kNumItemCategories)));
    item.quality = fraud ? rng->Beta(config_.fraud_quality_alpha,
                                     config_.fraud_quality_beta)
                         : rng->Beta(config_.normal_quality_alpha,
                                     config_.normal_quality_beta);
    item.is_fraud = fraud;
    shop_items_[shop_id].push_back(item.id);
    items_.push_back(std::move(item));
    if (fraud) ++num_fraud_items_;
  };

  // Normal shops with normal items, distributed round-robin with jitter.
  for (size_t s = 0; s < num_normal_shops; ++s) {
    Shop shop;
    shop.id = shops_.size();
    shop.name = language_->word(language_->SampleNeutral(rng)).text + "店";
    shop.url = StrFormat("https://shop%llu.%s.example",
                         static_cast<unsigned long long>(shop.id),
                         config_.name.c_str());
    shop.malicious = false;
    shops_.push_back(std::move(shop));
  }
  for (size_t i = 0; i < config_.num_normal_items; ++i) {
    add_item(rng->UniformU32(static_cast<uint32_t>(num_normal_shops)), false);
  }

  // Malicious shops: their fraud items plus a little legitimate inventory.
  size_t fraud_left = config_.num_fraud_items;
  for (size_t s = 0; s < num_campaign_shops; ++s) {
    Shop shop;
    shop.id = shops_.size();
    shop.name = language_->word(language_->SampleNeutral(rng)).text + "店";
    shop.url = StrFormat("https://shop%llu.%s.example",
                         static_cast<unsigned long long>(shop.id),
                         config_.name.c_str());
    shop.malicious = true;
    uint64_t shop_id = shop.id;
    shops_.push_back(std::move(shop));

    size_t quota = std::min<size_t>(
        fraud_left,
        std::max<int64_t>(
            1, rng->Poisson(config_.fraud_items_per_campaign_mean)));
    if (s + 1 == num_campaign_shops) quota = fraud_left;  // take the rest
    for (size_t k = 0; k < quota; ++k) add_item(shop_id, true);
    fraud_left -= quota;
    size_t cover = 1 + rng->UniformU32(3);  // legitimate cover items
    for (size_t k = 0; k < cover; ++k) add_item(shop_id, false);
  }
  item_comments_.resize(items_.size());
}

void Marketplace::GenerateOrganicComments(Rng* rng) {
  for (Item& item : items_) {
    double mean = item.is_fraud ? config_.mean_organic_comments_fraud
                                : config_.mean_organic_comments_normal;
    // Popularity modulation: heavy-tailed item popularity.
    double popularity = rng->LogNormal(0.0, 0.7);
    int64_t count = rng->Poisson(mean * popularity);
    if (!item.is_fraud && rng->Bernoulli(config_.low_sales_prob)) {
      count = rng->UniformU32(3);  // nearly dead listing
    }
    for (int64_t k = 0; k < count; ++k) {
      Comment c;
      c.id = comments_.size();
      c.item_id = item.id;
      c.user_id =
          item.is_fraud && rng->Bernoulli(config_.fraud_organic_lowrep_prob)
              ? population_.SampleBenignLowReputation(rng)
              : population_.SampleBenign(rng);
      c.content = generator_.GenerateBenign(item.quality, rng);
      c.client = SampleBenignClient(rng);
      c.date = FormatDate(rng->UniformU32(kWindowDays),
                          rng->UniformU32(86400));
      c.from_campaign = false;
      item_comments_[item.id].push_back(static_cast<uint32_t>(c.id));
      comments_.push_back(std::move(c));
    }
  }
}

void Marketplace::RunCampaigns(Rng* rng) {
  for (const Shop& shop : shops_) {
    if (!shop.malicious) continue;
    std::vector<uint64_t> targets;
    for (uint64_t item_id : shop_items_[shop.id]) {
      if (items_[item_id].is_fraud) targets.push_back(item_id);
    }
    if (targets.empty()) continue;
    uint32_t start_day =
        rng->UniformU32(kWindowDays - engine_.options().burst_days);
    fault::CampaignAdaptation adaptation;
    if (adversary_plan_.active()) {
      // Campaigns later in the window are more adapted (the ramp is what
      // turns a static fraud mix into concept drift). All adversary
      // decisions draw from the plan's own hash-seeded streams, never from
      // the shared generation rng, so `none` runs stay byte-identical.
      adaptation = adversary_plan_.AdaptCampaign(shop.id, start_day);
      const auto& metrics = AdversaryMetrics::Get();
      if (adaptation.active()) {
        metrics.campaigns_adapted->Increment();
        metrics.last_strength->Set(adversary_plan_.StrengthAtDay(start_day));
      }
    }
    CampaignPlan plan = engine_.Plan(shop.id, targets, start_day, rng,
                                     adaptation);
    if (adversary_plan_.active()) {
      // Sockpuppet aging: crew accounts re-drawn into the benign
      // userExpValue range slip the rule filter's cheap-account signal.
      // Decisions are per-user pure hashes, so an account shared by many
      // campaigns ages exactly once and to the same value.
      for (uint64_t user_id : plan.crew) {
        if (!adversary_plan_.ShouldAgeAccount(user_id)) continue;
        double aged = adversary_plan_.AgedExpValue(
            user_id, config_.population.benign_log_mu,
            config_.population.benign_log_sigma);
        aged = std::clamp(aged, static_cast<double>(kMinUserExpValue),
                          static_cast<double>(kMaxUserExpValue));
        int64_t value = static_cast<int64_t>(aged);
        if (population_.user(user_id).exp_value != value) {
          population_.SetUserExpValue(user_id, value);
          AdversaryMetrics::Get().accounts_aged->Increment();
        }
      }
    }
    for (uint64_t item_id : plan.item_ids) {
      std::vector<Comment> spam = engine_.EmitSpamComments(plan, item_id, rng);
      for (Comment& c : spam) {
        c.id = comments_.size();
        c.date = FormatDate(
            plan.start_day + rng->UniformU32(engine_.options().burst_days),
            rng->UniformU32(86400));
        item_comments_[item_id].push_back(static_cast<uint32_t>(c.id));
        comments_.push_back(std::move(c));
      }
    }
    campaigns_.push_back(std::move(plan));
  }
}

void Marketplace::FinalizeSalesVolumes(Rng* rng) {
  // Only buyers can comment, so sales >= comments; some buyers stay silent.
  for (Item& item : items_) {
    size_t commented = item_comments_[item.id].size();
    item.sales_volume =
        static_cast<int64_t>(commented) +
        rng->Poisson(0.35 * static_cast<double>(commented) + 0.5);
  }
}

std::vector<std::pair<std::string, bool>> Marketplace::BuildSentimentCorpus(
    size_t count, uint64_t seed) const {
  Rng rng(seed, 0x5E47);
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bool positive = (i % 2) == 0;
    out.emplace_back(generator_.GenerateSentimentTrainingDoc(positive, &rng),
                     positive);
  }
  return out;
}

}  // namespace cats::platform
