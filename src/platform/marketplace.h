#ifndef CATS_PLATFORM_MARKETPLACE_H_
#define CATS_PLATFORM_MARKETPLACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/adversary_plan.h"
#include "platform/campaign.h"
#include "platform/comment_generator.h"
#include "platform/entities.h"
#include "platform/language_model.h"
#include "platform/population.h"
#include "util/random.h"
#include "util/result.h"

namespace cats::platform {

/// Workload shape of one simulated platform. Presets (presets.h) derive
/// these from the paper's dataset tables (IV, V and §IV-A) at a chosen
/// scale factor.
struct MarketplaceConfig {
  std::string name = "marketplace";
  size_t num_normal_items = 2000;
  size_t num_fraud_items = 120;
  double items_per_shop_mean = 15.0;
  /// Fraud items targeted per malicious-merchant campaign.
  double fraud_items_per_campaign_mean = 4.0;
  /// Organic comment volume (Poisson mean, modulated by item popularity).
  double mean_organic_comments_normal = 11.0;
  double mean_organic_comments_fraud = 3.0;
  /// Fraction of items with almost no sales (exercise the rule filter's
  /// sales-volume < 5 branch).
  double low_sales_prob = 0.06;
  /// Probability an organic buyer of a FRAUD item comes from the benign
  /// population's least-reliable slice: promoted bargain listings draw
  /// newer shoppers (paper Fig 11's low-userExpValue buyer skew).
  double fraud_organic_lowrep_prob = 0.25;
  /// Item quality Beta parameters (normal vs fraud items; fraud targets
  /// are typically mediocre goods needing promotion).
  double normal_quality_alpha = 4.0, normal_quality_beta = 2.0;
  double fraud_quality_alpha = 2.0, fraud_quality_beta = 3.0;
  /// Client mix of organic orders: app-heavy (paper Fig 12b).
  /// Order: web, android, iphone, wechat.
  double benign_client_probs[4] = {0.14, 0.45, 0.31, 0.10};
  PopulationOptions population;
  CampaignOptions campaign;
  BenignCommentOptions benign_comments;
  SpamCommentOptions spam_comments;
  /// Adaptive-adversary profile (fault::AdversaryProfile). The default
  /// (`none`) is inactive and generation stays byte-identical to the
  /// pre-adversary simulator; `mild`/`hostile` ramp campaign adaptation in
  /// over the simulated window (see fault/adversary_plan.h).
  fault::AdversaryProfile adversary;
  uint64_t seed = 20170901;
};

/// A fully generated platform: users, shops, items and comment/order
/// records, plus ground truth. The public "web" API (api.h) exposes only
/// the public-domain slice of this to the crawler.
class Marketplace {
 public:
  /// Generates a marketplace over a shared language.
  static Marketplace Generate(const MarketplaceConfig& config,
                              const SyntheticLanguage* language);

  const std::string& name() const { return config_.name; }
  const MarketplaceConfig& config() const { return config_; }
  const SyntheticLanguage& language() const { return *language_; }

  const std::vector<User>& users() const { return population_.users(); }
  const Population& population() const { return population_; }
  const std::vector<Shop>& shops() const { return shops_; }
  const std::vector<Item>& items() const { return items_; }
  const std::vector<Comment>& comments() const { return comments_; }

  /// Comment indices (into comments()) of one item.
  const std::vector<uint32_t>& CommentIndicesOfItem(uint64_t item_id) const {
    return item_comments_[item_id];
  }

  /// Item ids of one shop.
  const std::vector<uint64_t>& ItemsOfShop(uint64_t shop_id) const {
    return shop_items_[shop_id];
  }

  /// Ground truth (never exposed through the public API).
  bool IsFraudItem(uint64_t item_id) const {
    return items_[item_id].is_fraud;
  }
  size_t NumFraudItems() const { return num_fraud_items_; }

  /// The campaigns that were injected (ground truth, for forensics tests).
  const std::vector<CampaignPlan>& campaigns() const { return campaigns_; }

  /// Builds a labeled sentiment-training corpus in this marketplace's
  /// language (`count` docs, half positive) — the stand-in for SnowNLP's
  /// shipped training data.
  std::vector<std::pair<std::string, bool>> BuildSentimentCorpus(
      size_t count, uint64_t seed) const;

 private:
  Marketplace(const MarketplaceConfig& config,
              const SyntheticLanguage* language, Rng rng);

  void GenerateShopsAndItems(Rng* rng);
  void GenerateOrganicComments(Rng* rng);
  void RunCampaigns(Rng* rng);
  void FinalizeSalesVolumes(Rng* rng);

  ClientType SampleBenignClient(Rng* rng) const;
  std::string FormatDate(uint32_t day, uint32_t second_of_day) const;

  MarketplaceConfig config_;
  const SyntheticLanguage* language_;  // not owned
  CommentGenerator generator_;
  Population population_;
  CampaignEngine engine_;
  fault::AdversaryPlan adversary_plan_;
  Rng rng_;

  std::vector<Shop> shops_;
  std::vector<Item> items_;
  std::vector<Comment> comments_;
  std::vector<std::vector<uint32_t>> item_comments_;
  std::vector<std::vector<uint64_t>> shop_items_;
  std::vector<CampaignPlan> campaigns_;
  size_t num_fraud_items_ = 0;
};

}  // namespace cats::platform

#endif  // CATS_PLATFORM_MARKETPLACE_H_
