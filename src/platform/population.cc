#include "platform/population.h"

#include <algorithm>
#include <cmath>

#include "text/utf8.h"

namespace cats::platform {

std::string MakeNickname(Rng* rng) {
  // First visible character: digit, latin letter, or CJK.
  std::string out;
  double u = rng->UniformDouble();
  if (u < 0.3) {
    out.push_back(static_cast<char>('0' + rng->UniformU32(10)));
  } else if (u < 0.5) {
    out.push_back(static_cast<char>('a' + rng->UniformU32(26)));
  } else {
    text::AppendCodepoint(0x4E00 + rng->UniformU32(0x2000), &out);
  }
  out += "***";
  text::AppendCodepoint(0x4E00 + rng->UniformU32(0x2000), &out);
  return out;
}

namespace {

int64_t ClipExpValue(double v) {
  if (v < static_cast<double>(kMinUserExpValue)) return kMinUserExpValue;
  if (v > static_cast<double>(kMaxUserExpValue)) return kMaxUserExpValue;
  return static_cast<int64_t>(v);
}

}  // namespace

int64_t SampleBenignExpValue(const PopulationOptions& options, Rng* rng) {
  return ClipExpValue(
      rng->LogNormal(options.benign_log_mu, options.benign_log_sigma));
}

int64_t SampleHiredExpValue(const PopulationOptions& options, Rng* rng) {
  if (rng->Bernoulli(options.hired_min_value_prob)) return kMinUserExpValue;
  return ClipExpValue(
      rng->LogNormal(options.hired_log_mu, options.hired_log_sigma));
}

Population::Population(const PopulationOptions& options, Rng* rng) {
  num_benign_ = options.num_benign_users;
  users_.reserve(options.num_benign_users + options.num_hired_users);
  for (size_t i = 0; i < options.num_benign_users; ++i) {
    User u;
    u.id = users_.size();
    u.nickname = MakeNickname(rng);
    u.exp_value = SampleBenignExpValue(options, rng);
    u.hired = false;
    users_.push_back(std::move(u));
  }
  hired_activity_.reserve(options.num_hired_users);
  for (size_t i = 0; i < options.num_hired_users; ++i) {
    User u;
    u.id = users_.size();
    u.nickname = MakeNickname(rng);
    u.exp_value = SampleHiredExpValue(options, rng);
    u.hired = true;
    users_.push_back(std::move(u));
    // Pareto-style activity: w = (1 - U)^(-alpha).
    double draw = rng->UniformDouble();
    hired_activity_.push_back(
        std::pow(1.0 - draw, -options.hired_activity_alpha));
  }
  // Cumulative weights for weighted sampling.
  hired_cdf_.resize(hired_activity_.size());
  double acc = 0.0;
  for (size_t i = 0; i < hired_activity_.size(); ++i) {
    acc += hired_activity_[i];
    hired_cdf_[i] = acc;
  }

  benign_by_exp_.resize(num_benign_);
  for (size_t i = 0; i < num_benign_; ++i) benign_by_exp_[i] = i;
  std::sort(benign_by_exp_.begin(), benign_by_exp_.end(),
            [this](uint64_t a, uint64_t b) {
              return users_[a].exp_value < users_[b].exp_value;
            });
}

uint64_t Population::SampleBenignLowReputation(Rng* rng) const {
  if (benign_by_exp_.empty()) return 0;
  size_t slice = std::max<size_t>(1, benign_by_exp_.size() * 3 / 20);  // bottom 15%
  return benign_by_exp_[rng->UniformU32(static_cast<uint32_t>(slice))];
}

uint64_t Population::SampleBenign(Rng* rng) const {
  return rng->UniformU32(static_cast<uint32_t>(num_benign_));
}

uint64_t Population::SampleHiredWeighted(Rng* rng) const {
  if (hired_cdf_.empty()) return SampleBenign(rng);
  double u = rng->UniformDouble() * hired_cdf_.back();
  size_t lo = 0, hi = hired_cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (hired_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return num_benign_ + lo;
}

std::vector<uint64_t> Population::hired_ids() const {
  std::vector<uint64_t> out;
  out.reserve(num_hired());
  for (size_t i = num_benign_; i < users_.size(); ++i) {
    out.push_back(users_[i].id);
  }
  return out;
}

}  // namespace cats::platform
