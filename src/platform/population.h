#ifndef CATS_PLATFORM_POPULATION_H_
#define CATS_PLATFORM_POPULATION_H_

#include <cstdint>
#include <vector>

#include "platform/entities.h"
#include "util/random.h"

namespace cats::platform {

struct PopulationOptions {
  size_t num_benign_users = 20000;
  /// The promotion workforce. The paper traces E-platform's risky-user
  /// pairs back to a set of 1,056 accounts; presets keep that count even at
  /// reduced item scale so the user-aspect statistics keep their shape.
  size_t num_hired_users = 1056;
  /// Benign userExpValue ~ exp(Normal(mu, sigma)), clipped to the paper's
  /// [100, 27158720] range. Defaults put ~20% of the overall population
  /// below 2000, matching §V.
  double benign_log_mu = 8.9;
  double benign_log_sigma = 1.4;
  /// Hired accounts are young and cheap: a point mass at the minimum value
  /// plus a low lognormal. Defaults tuned so fraud-item buyers land near
  /// the paper's Fig 11 fractions (15% at 100, 39% < 1000, 45% < 2000).
  double hired_min_value_prob = 0.55;
  double hired_log_mu = 6.3;
  double hired_log_sigma = 1.8;
  /// Pareto-ish activity skew of the hired workforce; produces the paper's
  /// extreme repeat buyers (400+ purchases).
  double hired_activity_alpha = 0.85;
};

/// The user base of one simulated platform: benign shoppers plus the hired
/// promotion workforce.
class Population {
 public:
  Population(const PopulationOptions& options, Rng* rng);

  const std::vector<User>& users() const { return users_; }
  const User& user(uint64_t id) const { return users_[id]; }
  size_t num_benign() const { return num_benign_; }
  size_t num_hired() const { return users_.size() - num_benign_; }

  /// Uniformly random benign user id.
  uint64_t SampleBenign(Rng* rng) const;

  /// Random benign user from the least-reliable quartile (by exp_value).
  /// Promoted bargain listings attract newer, lower-reputation shoppers —
  /// the organic share of the paper's Fig-11 fraud-buyer skew.
  uint64_t SampleBenignLowReputation(Rng* rng) const;

  /// Hired user id, weighted by per-user activity (heavy-tailed).
  uint64_t SampleHiredWeighted(Rng* rng) const;

  /// All hired user ids (for campaign crew assembly).
  std::vector<uint64_t> hired_ids() const;

  /// Rewrites one account's exp_value (adversarial sockpuppet aging: a
  /// hired account dressed up with a benign-looking reputation). Safe for
  /// hired ids: the low-reputation sampling order (benign_by_exp_) indexes
  /// benign users only, so it never goes stale.
  void SetUserExpValue(uint64_t id, int64_t value) {
    users_[id].exp_value = value;
  }

 private:
  std::vector<User> users_;
  size_t num_benign_ = 0;
  std::vector<double> hired_activity_;  // parallel to hired users
  // Alias sampler over hired users by activity; built once.
  std::vector<double> hired_cdf_;
  // Benign user ids, ascending by exp_value (low-reputation sampling).
  std::vector<uint64_t> benign_by_exp_;
};

/// Anonymized nickname like "0***莉" (paper Table VII).
std::string MakeNickname(Rng* rng);

/// userExpValue draw for a benign account.
int64_t SampleBenignExpValue(const PopulationOptions& options, Rng* rng);

/// userExpValue draw for a hired account.
int64_t SampleHiredExpValue(const PopulationOptions& options, Rng* rng);

}  // namespace cats::platform

#endif  // CATS_PLATFORM_POPULATION_H_
