#include "platform/presets.h"

#include <algorithm>
#include <cmath>

namespace cats::platform {
namespace {

size_t Scaled(double count, double scale, size_t min_value) {
  double v = count * scale;
  return std::max<size_t>(min_value, static_cast<size_t>(std::llround(v)));
}

}  // namespace

LanguageOptions DefaultLanguageOptions() {
  LanguageOptions lang;
  lang.vocabulary_size = 4000;
  lang.zipf_exponent = 1.05;
  lang.homograph_bases = 6;
  lang.seed = 0x5EED'1A06;
  return lang;
}

MarketplaceConfig TaobaoD0Config(double scale) {
  MarketplaceConfig c;
  c.name = "taobao-d0";
  c.num_fraud_items = Scaled(14000, scale, 60);
  c.num_normal_items = Scaled(20000, scale, 100);
  // 474k comments / 34k items ~ 14 per item overall.
  c.mean_organic_comments_normal = 11.0;
  c.mean_organic_comments_fraud = 3.0;
  c.campaign.mean_spam_comments_per_item = 11.0;
  c.population.num_benign_users = Scaled(40000, scale, 2000);
  c.population.num_hired_users = Scaled(1056, std::sqrt(scale), 80);
  c.seed = 0xD0D0;
  return c;
}

MarketplaceConfig TaobaoD1Config(double scale) {
  MarketplaceConfig c;
  c.name = "taobao-d1";
  c.num_fraud_items = Scaled(18682, scale, 150);
  c.num_normal_items = Scaled(1461452, scale, 4000);
  c.items_per_shop_mean = 1480134.0 / 15992.0;  // paper: 15,992 shops
  c.mean_organic_comments_normal = 12.0;
  c.mean_organic_comments_fraud = 3.0;
  c.campaign.mean_spam_comments_per_item = 12.0;
  c.population.num_benign_users = Scaled(200000, scale, 5000);
  c.population.num_hired_users = Scaled(1056, std::sqrt(scale), 120);
  c.seed = 0xD1D1;
  return c;
}

MarketplaceConfig EPlatformConfig(double scale) {
  MarketplaceConfig c;
  c.name = "e-platform";
  // 10,720 reported frauds out of ~4.5M items. The fraud count is floored
  // high enough that campaign overlap statistics (risky-user pairs) retain
  // the paper's shape at small scale.
  c.num_fraud_items = Scaled(10720, scale, 400);
  c.num_normal_items = Scaled(4500000 - 10720, scale, 8000);
  c.mean_organic_comments_normal = 10.0;
  c.mean_organic_comments_fraud = 1.0;
  c.campaign.mean_spam_comments_per_item = 12.0;
  c.campaign.crew_size = 30;
  // The paper's E-platform frauds validated at higher precision (0.96)
  // than Taobao's evidence-labeled set — its campaigns were blunter and
  // its organic review culture terser (fewer gushing lookalikes).
  c.campaign.stealth_campaign_prob = 0.12;
  c.benign_comments.enthusiast_prob = 0.03;
  // The real platform's user base is orders of magnitude larger than its
  // per-item comment volume; keep the benign pool sparse even at tiny item
  // scales or accidental co-purchase overlap swamps the §V pair analysis.
  c.population.num_benign_users = Scaled(500000, scale, 40000);
  // The hired workforce shrinks sub-linearly with scale (paper: 1,056 at
  // 10,720 fraud items) so campaign crews keep overlapping the way the
  // risky-user ring requires.
  c.population.num_hired_users = static_cast<size_t>(std::clamp(
      1056.0 * std::pow(scale, 0.3), 150.0, 1056.0));
  c.seed = 0xE9A7;
  return c;
}

MarketplaceConfig TaobaoFiveKConfig(double scale) {
  MarketplaceConfig c;
  c.name = "taobao-5k";
  c.num_fraud_items = Scaled(5000, scale, 60);
  c.num_normal_items = Scaled(5000, scale, 60);
  // ~70k comments per 5k-item side => ~14 per item.
  c.mean_organic_comments_normal = 13.0;
  c.mean_organic_comments_fraud = 3.5;
  c.campaign.mean_spam_comments_per_item = 10.5;
  c.population.num_benign_users = Scaled(20000, scale, 1500);
  c.population.num_hired_users = Scaled(1056, std::sqrt(scale), 80);
  c.seed = 0x5005;
  return c;
}

}  // namespace cats::platform
