#ifndef CATS_PLATFORM_PRESETS_H_
#define CATS_PLATFORM_PRESETS_H_

#include <cstdint>

#include "platform/language_model.h"
#include "platform/marketplace.h"

namespace cats::platform {

/// The shared synthetic language both platforms speak (paper §VII: both
/// Taobao and E-platform serve Chinese speakers, which is what makes the
/// Taobao-trained lexicons and sentiment model transferable).
LanguageOptions DefaultLanguageOptions();

/// Taobao D0 (paper Table IV): 14,000 fraud / 20,000 normal items, 474,000
/// comments — the labeled training set for CATS' detector. `scale` in
/// (0, 1] shrinks item counts proportionally; class ratio and per-item
/// comment volume are preserved.
MarketplaceConfig TaobaoD0Config(double scale);

/// Taobao D1 (paper Table V): 18,682 fraud / 1,461,452 normal items from
/// 15,992 shops with 72.3M comments — the held-out evaluation set.
/// Per-item comment volume is reduced from the paper's ~49 to ~12 at
/// sub-1% scales to keep bench runtimes laptop-sized (documented in
/// DESIGN.md; all reported metrics are ratio-shaped).
MarketplaceConfig TaobaoD1Config(double scale);

/// E-platform (paper §IV-A): ~4.5M items, 100M+ comments crawled over one
/// week; CATS reports 10,720 fraud items. At small scales the fraud-item
/// count is floored (default 400) so the user-aspect pair statistics keep
/// their shape (the hired workforce stays at the paper's 1,056 accounts).
MarketplaceConfig EPlatformConfig(double scale);

/// The 5,000 + 5,000 ground-truth subset used for the paper's Table III
/// classifier comparison and Figs 1-5 (quoted as "5,000 fraud items with
/// ~70,000 comments, and 5,000 normal items with ~70,000 comments").
MarketplaceConfig TaobaoFiveKConfig(double scale);

}  // namespace cats::platform

#endif  // CATS_PLATFORM_PRESETS_H_
