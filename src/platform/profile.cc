#include "platform/profile.h"

#include <cstdio>
#include <cstdlib>

#include "platform/presets.h"
#include "util/string_util.h"

namespace cats::platform {
namespace {

/// Canonical client labels, indexed like ClientType (entities.h).
constexpr std::array<std::string_view, 4> kCanonicalClients = {
    "Web", "Android", "iPhone", "WeChat"};

/// Proleptic-Gregorian day count from civil date (Howard Hinnant's
/// days_from_civil) — the epoch conversion for DateWire::kEpochSeconds.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp < 10 ? mp + 3 : mp - 9;
  *y = yy + (*m <= 2);
}

struct CivilTime {
  int64_t year = 2017;
  unsigned month = 9, day = 1, hour = 0, minute = 0, second = 0;
};

bool ParseIso(const std::string& iso, CivilTime* t) {
  long long y = 0;
  unsigned mo = 0, dd = 0, hh = 0, mi = 0, ss = 0;
  if (std::sscanf(iso.c_str(), "%lld-%u-%u %u:%u:%u", &y, &mo, &dd, &hh, &mi,
                  &ss) != 6) {
    return false;
  }
  if (mo < 1 || mo > 12 || dd < 1 || dd > 31 || hh > 23 || mi > 59 ||
      ss > 59) {
    return false;
  }
  t->year = y;
  t->month = mo;
  t->day = dd;
  t->hour = hh;
  t->minute = mi;
  t->second = ss;
  return true;
}

std::string FormatIso(const CivilTime& t, char date_sep) {
  return StrFormat("%04lld%c%02u%c%02u %02u:%02u:%02u",
                   static_cast<long long>(t.year), date_sep, t.month, date_sep,
                   t.day, t.hour, t.minute, t.second);
}

}  // namespace

const PlatformProfile& PlatformProfile::Canonical() {
  static const PlatformProfile* canonical = new PlatformProfile();
  return *canonical;
}

std::string PlatformProfile::PathId(uint64_t id,
                                    const std::string& prefix) const {
  if (id_style == IdWireStyle::kPrefixedString) {
    return prefix + std::to_string(id);
  }
  return std::to_string(id);
}

std::string PlatformProfile::ItemsRoute(uint64_t shop_id) const {
  return "/" + shops_segment + "/" + PathId(shop_id, shop_id_prefix) + "/" +
         items_segment;
}

std::string PlatformProfile::CommentsRoute(uint64_t item_id) const {
  return "/" + items_segment + "/" + PathId(item_id, item_id_prefix) + "/" +
         comments_segment;
}

std::string PlatformProfile::CursorForPage(size_t page) const {
  if (page == 0) return "";
  return cursor_prefix + std::to_string(page);
}

std::string PlatformProfile::PageQuery(size_t page, size_t page_size) const {
  switch (pagination) {
    case PaginationStyle::kPageNumber:
      return "?" + query_page + "=" + std::to_string(page);
    case PaginationStyle::kOffsetLimit:
      return "?" + query_offset + "=" + std::to_string(page * page_size) +
             "&" + query_limit + "=" + std::to_string(page_size);
    case PaginationStyle::kCursorToken:
      return "?" + query_cursor + "=" + CursorForPage(page);
  }
  return "";
}

JsonValue PlatformProfile::EncodeId(uint64_t id,
                                    const std::string& prefix) const {
  switch (id_style) {
    case IdWireStyle::kDecimalString:
      return JsonValue::String(std::to_string(id));
    case IdWireStyle::kNumber:
      return JsonValue::Int(static_cast<int64_t>(id));
    case IdWireStyle::kPrefixedString:
      return JsonValue::String(prefix + std::to_string(id));
  }
  return JsonValue::Null();
}

Result<uint64_t> PlatformProfile::DecodeId(const JsonValue& wire,
                                           const std::string& prefix) const {
  if (id_style == IdWireStyle::kNumber) {
    if (!wire.is_number()) return Status::ParseError("id is not a number");
    int64_t v = wire.int_value();
    if (v < 0) return Status::ParseError("id is negative");
    return static_cast<uint64_t>(v);
  }
  if (!wire.is_string()) return Status::ParseError("id is not a string");
  std::string_view s = wire.string_value();
  if (id_style == IdWireStyle::kPrefixedString) {
    if (s.substr(0, prefix.size()) != prefix) {
      return Status::ParseError("id missing prefix '" + prefix + "'");
    }
    s.remove_prefix(prefix.size());
  }
  if (s.empty()) return Status::ParseError("id is empty");
  uint64_t id = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError("id is not numeric: " + std::string(s));
    }
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

JsonValue PlatformProfile::EncodeReputation(int64_t exp_value) const {
  switch (reputation_wire) {
    case ReputationWire::kRawString:
      return JsonValue::String(std::to_string(exp_value));
    case ReputationWire::kScaledNumber:
      return JsonValue::Int(exp_value * reputation_scale);
    case ReputationWire::kLevelNumber: {
      // Member level L covers exp in [100 * 2^(L-1), 100 * 2^L).
      int64_t level = 0;
      int64_t bucket = exp_value / 100;
      while (bucket > 0) {
        bucket >>= 1;
        ++level;
      }
      return JsonValue::Int(level);
    }
  }
  return JsonValue::Null();
}

Result<int64_t> PlatformProfile::DecodeReputation(
    const JsonValue& wire) const {
  switch (reputation_wire) {
    case ReputationWire::kRawString: {
      if (!wire.is_string()) {
        return Status::ParseError("reputation is not a string");
      }
      return static_cast<int64_t>(
          std::strtoll(wire.string_value().c_str(), nullptr, 10));
    }
    case ReputationWire::kScaledNumber: {
      if (!wire.is_number()) {
        return Status::ParseError("reputation is not a number");
      }
      return wire.int_value() / (reputation_scale == 0 ? 1 : reputation_scale);
    }
    case ReputationWire::kLevelNumber: {
      if (!wire.is_number()) {
        return Status::ParseError("reputation level is not a number");
      }
      int64_t level = wire.int_value();
      if (level <= 1) return 100;
      if (level > 48) level = 48;  // keep the shift in range
      return 100 * (int64_t{1} << (level - 1));
    }
  }
  return Status::ParseError("unknown reputation wire");
}

std::string PlatformProfile::EncodeClient(std::string_view canonical) const {
  for (size_t i = 0; i < kCanonicalClients.size(); ++i) {
    if (canonical == kCanonicalClients[i]) return client_names[i];
  }
  return std::string(canonical);
}

std::string PlatformProfile::DecodeClient(std::string_view wire) const {
  for (size_t i = 0; i < client_names.size(); ++i) {
    if (wire == client_names[i]) return std::string(kCanonicalClients[i]);
  }
  return std::string(wire);
}

JsonValue PlatformProfile::EncodeDate(const std::string& iso_date) const {
  switch (date_wire) {
    case DateWire::kIsoLocal:
      return JsonValue::String(iso_date);
    case DateWire::kSlashLocal: {
      CivilTime t;
      if (!ParseIso(iso_date, &t)) return JsonValue::String(iso_date);
      return JsonValue::String(FormatIso(t, '/'));
    }
    case DateWire::kEpochSeconds: {
      CivilTime t;
      if (!ParseIso(iso_date, &t)) return JsonValue::Int(0);
      int64_t days = DaysFromCivil(t.year, t.month, t.day);
      return JsonValue::Int(days * 86400 + t.hour * 3600 + t.minute * 60 +
                            t.second);
    }
  }
  return JsonValue::String(iso_date);
}

Result<std::string> PlatformProfile::DecodeDate(const JsonValue& wire) const {
  switch (date_wire) {
    case DateWire::kIsoLocal: {
      if (!wire.is_string()) return Status::ParseError("date is not a string");
      return wire.string_value();
    }
    case DateWire::kSlashLocal: {
      if (!wire.is_string()) return Status::ParseError("date is not a string");
      std::string iso = wire.string_value();
      for (char& c : iso) {
        if (c == '/') c = '-';
      }
      CivilTime t;
      if (!ParseIso(iso, &t)) {
        return Status::ParseError("malformed slash date: " +
                                  wire.string_value());
      }
      return FormatIso(t, '-');
    }
    case DateWire::kEpochSeconds: {
      if (!wire.is_number()) {
        return Status::ParseError("epoch date is not a number");
      }
      int64_t epoch = wire.int_value();
      int64_t days = epoch / 86400;
      int64_t rem = epoch % 86400;
      if (rem < 0) {
        rem += 86400;
        --days;
      }
      CivilTime t;
      CivilFromDays(days, &t.year, &t.month, &t.day);
      t.hour = static_cast<unsigned>(rem / 3600);
      t.minute = static_cast<unsigned>((rem % 3600) / 60);
      t.second = static_cast<unsigned>(rem % 60);
      return FormatIso(t, '-');
    }
  }
  return Status::ParseError("unknown date wire");
}

bool PlatformProfile::StructurallyDistinctFrom(
    const PlatformProfile& other) const {
  return pagination != other.pagination || id_style != other.id_style ||
         reputation_wire != other.reputation_wire ||
         date_wire != other.date_wire ||
         envelope.wrapper != other.envelope.wrapper ||
         envelope.key_data != other.envelope.key_data ||
         shops_segment != other.shops_segment ||
         items_segment != other.items_segment ||
         comments_segment != other.comments_segment ||
         shop.id != other.shop.id || item.id != other.item.id ||
         comment.id != other.comment.id ||
         comment.content != other.comment.content ||
         client_names != other.client_names;
}

namespace {

PlatformSpec TaobaoSpec(double scale) {
  PlatformSpec spec;
  spec.profile = PlatformProfile::Canonical();
  spec.market = TaobaoD0Config(scale);
  spec.market.name = "taobao";
  spec.default_weather = fault::FaultProfile::Mild();
  spec.api_seed = 99;
  return spec;
}

PlatformSpec JademallSpec(double scale) {
  PlatformSpec spec;
  PlatformProfile& p = spec.profile;
  p.platform_id = "jademall";
  p.pagination = PaginationStyle::kOffsetLimit;
  p.shops_segment = "sellers";
  p.items_segment = "products";
  p.comments_segment = "reviews";
  p.envelope.wrapper = "result";
  p.envelope.status_key = "code";
  p.envelope.status_value = 0;
  p.envelope.key_data = "records";
  p.envelope.key_offset = "offset";
  p.envelope.key_total = "total";
  p.shop = {"sellerId", "homepage", "displayName"};
  p.item = {"productId", "sellerId", "title",
            "priceYuan", "monthlySales", "categoryName"};
  p.comment = {"productId", "reviewId",  "body",      "buyerNick",
               "repPoints", "channel", "reviewTime"};
  p.id_style = IdWireStyle::kNumber;
  p.reputation_wire = ReputationWire::kScaledNumber;
  p.reputation_scale = 3;
  p.client_names = {"web_h5", "android_app", "ios_app", "wechat_mini"};
  p.date_wire = DateWire::kSlashLocal;

  // Chatty review culture, web-leaning traffic, smaller but pushier crews.
  MarketplaceConfig& m = spec.market;
  m = TaobaoD0Config(scale);
  m.name = "jademall";
  m.seed = 0x1ADE;
  m.mean_organic_comments_normal = 13.0;
  m.benign_client_probs[0] = 0.32;
  m.benign_client_probs[1] = 0.28;
  m.benign_client_probs[2] = 0.22;
  m.benign_client_probs[3] = 0.18;
  m.benign_comments.mean_length_words = 12.0;
  m.benign_comments.punctuation_prob = 0.10;
  m.benign_comments.enthusiast_prob = 0.09;
  m.campaign.crew_size = 18;
  m.campaign.mean_spam_comments_per_item = 9.0;
  m.campaign.stealth_campaign_prob = 0.18;
  m.campaign.client_probs[0] = 0.45;
  m.campaign.client_probs[1] = 0.30;
  m.campaign.client_probs[2] = 0.15;
  m.campaign.client_probs[3] = 0.10;
  m.spam_comments.mean_length_words = 28.0;

  // Aggressive rate limiting is jademall's defining transport regime.
  fault::FaultProfile w = fault::FaultProfile::Mild();
  w.rate_limit_prob = 0.05;
  w.retry_after_min_micros = 50'000;
  w.retry_after_max_micros = 400'000;
  spec.default_weather = w;
  spec.api_seed = 7601;
  return spec;
}

PlatformSpec BazaarSpec(double scale) {
  PlatformSpec spec;
  PlatformProfile& p = spec.profile;
  p.platform_id = "bazaar";
  p.pagination = PaginationStyle::kCursorToken;
  p.shops_segment = "vendors";
  p.items_segment = "goods";
  p.comments_segment = "feedback";
  p.cursor_prefix = "tok-";
  p.envelope.key_data = "listings";
  p.envelope.key_cursor = "cursor";
  p.envelope.key_next_cursor = "next_cursor";
  p.shop = {"vendor_ref", "vendor_link", "vendor_label"};
  p.item = {"goods_ref", "vendor_ref",  "goods_title",
            "amount",    "units_moved", "kind"};
  p.comment = {"goods_ref",    "feedback_ref", "text",     "handle",
               "member_level", "client_app",   "posted_at"};
  p.id_style = IdWireStyle::kPrefixedString;
  p.shop_id_prefix = "V";
  p.item_id_prefix = "G";
  p.comment_id_prefix = "F";
  p.reputation_wire = ReputationWire::kLevelNumber;
  p.client_names = {"Desktop", "AndroidApp", "iOSApp", "WeChatMP"};
  p.date_wire = DateWire::kEpochSeconds;

  // Terse review culture, wechat-heavy buyers, stealth-heavy campaigns.
  MarketplaceConfig& m = spec.market;
  m = TaobaoD0Config(scale);
  m.name = "bazaar";
  m.seed = 0xBA2A;
  m.mean_organic_comments_normal = 9.0;
  m.mean_organic_comments_fraud = 2.0;
  m.benign_client_probs[0] = 0.08;
  m.benign_client_probs[1] = 0.35;
  m.benign_client_probs[2] = 0.22;
  m.benign_client_probs[3] = 0.35;
  m.benign_comments.mean_length_words = 6.0;
  m.benign_comments.short_comment_prob = 0.25;
  m.benign_comments.enthusiast_prob = 0.02;
  m.campaign.crew_size = 40;
  m.campaign.mean_spam_comments_per_item = 14.0;
  m.campaign.stealth_campaign_prob = 0.50;
  m.spam_comments.mean_length_words = 24.0;
  m.spam_comments.min_length_words = 8;

  // Flaky fronting proxies: truncation, garbling, stale snapshots.
  fault::FaultProfile w = fault::FaultProfile::Mild();
  w.truncate_body_prob = 0.01;
  w.garble_body_prob = 0.01;
  w.slow_response_prob = 0.005;
  w.stale_total_pages_prob = 0.01;
  w.repagination_shift_prob = 0.01;
  spec.default_weather = w;
  spec.api_seed = 4133;
  return spec;
}

}  // namespace

Result<PlatformSpec> BuiltinPlatform(std::string_view name, double scale) {
  if (name == "taobao") return TaobaoSpec(scale);
  if (name == "jademall") return JademallSpec(scale);
  if (name == "bazaar") return BazaarSpec(scale);
  return Status::InvalidArgument("unknown platform preset: " +
                                 std::string(name) +
                                 " (builtins: taobao, jademall, bazaar)");
}

std::vector<std::string> BuiltinPlatformNames() {
  return {"taobao", "jademall", "bazaar"};
}

}  // namespace cats::platform
