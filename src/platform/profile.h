#ifndef CATS_PLATFORM_PROFILE_H_
#define CATS_PLATFORM_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"
#include "platform/marketplace.h"
#include "util/json.h"
#include "util/result.h"

namespace cats::platform {

/// How a platform paginates its list endpoints. The crawler never hardcodes
/// one convention: it asks the profile how to build the next request and how
/// to decide whether a walk has more pages.
enum class PaginationStyle {
  /// `?page=K` with a `{page, total_pages}` envelope (the canonical wire).
  kPageNumber,
  /// `?offset=O&limit=L` with `{offset, total}` record counts.
  kOffsetLimit,
  /// `?cursor=TOK` with a `{cursor, next_cursor}` token chain; the walk ends
  /// when `next_cursor` comes back empty. No total is ever reported.
  kCursorToken,
};

/// How entity ids appear on the wire.
enum class IdWireStyle {
  kDecimalString,   // "1374"  (canonical, Listing 2)
  kNumber,          // 1374    (JSON integer; needs JsonValue's exact kInt)
  kPrefixedString,  // "G1374" (typed opaque-looking references)
};

/// How the commenter's reputation is encoded. Canonical is the paper's
/// stringly `userExpValue`; other platforms run their own scales.
enum class ReputationWire {
  kRawString,     // "27158720"
  kScaledNumber,  // exp * scale as a JSON integer (lossless, own unit)
  kLevelNumber,   // member level L with exp ~ 100 * 2^(L-1) (lossy buckets)
};

/// How comment timestamps are encoded.
enum class DateWire {
  kIsoLocal,      // "2017-09-14 13:22:05" (canonical)
  kSlashLocal,    // "2017/09/14 13:22:05"
  kEpochSeconds,  // 1505395325 as a JSON integer
};

/// Envelope field names (and optional nesting) of a paginated response.
struct EnvelopeSchema {
  /// Non-empty: the whole payload is nested under this key, i.e.
  /// `{"<status_key>":<status_value>,"<wrapper>":{...}}`.
  std::string wrapper;
  std::string status_key;  // only emitted when wrapper is non-empty
  int64_t status_value = 0;
  std::string key_data = "data";
  std::string key_page = "page";                // kPageNumber
  std::string key_total_pages = "total_pages";  // kPageNumber
  std::string key_offset = "offset";            // kOffsetLimit
  std::string key_total = "total";              // kOffsetLimit
  std::string key_cursor = "cursor";            // kCursorToken (echo)
  std::string key_next_cursor = "next_cursor";  // kCursorToken
};

/// Per-record-type wire field names.
struct ShopSchema {
  std::string id = "shop_id";
  std::string url = "shop_url";
  std::string name = "shop_name";
};
struct ItemSchema {
  std::string id = "item_id";
  std::string shop_id = "shop_id";
  std::string name = "item_name";
  std::string price = "price";
  std::string sales = "sales_volume";
  std::string category = "category";
};
struct CommentSchema {
  std::string item_id = "item_id";
  std::string id = "comment_id";
  std::string content = "comment_content";
  std::string nickname = "nickname";
  std::string reputation = "userExpValue";
  std::string client = "client_information";
  std::string date = "date";
};

/// Everything that makes one marketplace's public web surface *itself*:
/// route names, pagination convention, envelope shape, record field names,
/// id/reputation/client/date encodings. A default-constructed profile is
/// the canonical (paper Listing 2) wire, byte-identical to what
/// MarketplaceApi served before profiles existed; the other built-ins
/// (profile.cc) differ structurally, not just by seed.
///
/// The profile is consulted by both sides: MarketplaceApi serializes
/// through it, and collect::SchemaNormalizer parses wire records back into
/// the canonical collect::Record structs through the same profile — so one
/// detection plane consumes every platform.
struct PlatformProfile {
  std::string platform_id = "taobao";
  PaginationStyle pagination = PaginationStyle::kPageNumber;

  /// Route segments: `/<shops>`, `/<shops>/<id>/<items>`,
  /// `/<items>/<id>/<comments>`.
  std::string shops_segment = "shops";
  std::string items_segment = "items";
  std::string comments_segment = "comments";

  /// Query parameter names per pagination style.
  std::string query_page = "page";
  std::string query_offset = "offset";
  std::string query_limit = "limit";
  std::string query_cursor = "cursor";
  /// Cursor tokens are `<cursor_prefix><page>`; opaque to the crawler,
  /// which only ever echoes what the server handed it.
  std::string cursor_prefix = "pg-";

  EnvelopeSchema envelope;
  ShopSchema shop;
  ItemSchema item;
  CommentSchema comment;

  IdWireStyle id_style = IdWireStyle::kDecimalString;
  std::string shop_id_prefix = "S";     // kPrefixedString only
  std::string item_id_prefix = "G";
  std::string comment_id_prefix = "F";

  ReputationWire reputation_wire = ReputationWire::kRawString;
  int64_t reputation_scale = 1;  // kScaledNumber multiplier

  /// Platform-local client labels, indexed like ClientType
  /// (web, android, iphone, wechat). Canonical matches ClientTypeName.
  std::array<std::string, 4> client_names = {"Web", "Android", "iPhone",
                                             "WeChat"};

  DateWire date_wire = DateWire::kIsoLocal;

  /// The canonical profile (a default-constructed PlatformProfile).
  static const PlatformProfile& Canonical();

  // --- Path / query building (crawler side). ---
  std::string ShopsRoute() const { return "/" + shops_segment; }
  std::string ItemsRoute(uint64_t shop_id) const;
  std::string CommentsRoute(uint64_t item_id) const;
  /// The id as it appears inside a route path.
  std::string PathId(uint64_t id, const std::string& prefix) const;
  /// Cursor token for a page index ("" for page 0, the walk's start).
  std::string CursorForPage(size_t page) const;
  /// Full query suffix ("?page=3") for a page index.
  std::string PageQuery(size_t page, size_t page_size) const;

  // --- Wire encode (server side) / decode (normalizer side). ---
  JsonValue EncodeId(uint64_t id, const std::string& prefix) const;
  Result<uint64_t> DecodeId(const JsonValue& wire,
                            const std::string& prefix) const;
  JsonValue EncodeReputation(int64_t exp_value) const;
  Result<int64_t> DecodeReputation(const JsonValue& wire) const;
  /// Canonical client label ("Web"...) -> platform label, and back. Decode
  /// passes unknown labels through unchanged (lenient, like the canonical
  /// parser).
  std::string EncodeClient(std::string_view canonical) const;
  std::string DecodeClient(std::string_view wire) const;
  /// Canonical "YYYY-MM-DD HH:MM:SS" -> wire value, and back.
  JsonValue EncodeDate(const std::string& iso_date) const;
  Result<std::string> DecodeDate(const JsonValue& wire) const;

  /// True when the two profiles disagree on at least one structural axis
  /// (pagination, envelope nesting, id style, a route or field name...) —
  /// the "not just a different seed" guarantee tests assert on built-ins.
  bool StructurallyDistinctFrom(const PlatformProfile& other) const;
};

/// One platform, fully specified: wire profile + workload shape (campaign
/// mix, comment culture, client mix) + its characteristic transport
/// weather (rate-limit regime). The federation plane crawls a vector of
/// these.
struct PlatformSpec {
  PlatformProfile profile;
  MarketplaceConfig market;
  fault::FaultProfile default_weather = fault::FaultProfile::Mild();
  uint64_t api_seed = 99;
};

/// Built-in heterogeneous platforms at a given scale:
///   "taobao"   — the canonical wire (page numbers, string ids, Listing 2
///                field names), app-heavy organic traffic, mild weather.
///   "jademall" — offset/limit pagination, nested `{"code":0,"result":..}`
///                envelope, numeric ids, scaled `repPoints` reputation,
///                chatty review culture, aggressive 429 rate limiting.
///   "bazaar"   — cursor-token pagination, prefixed string refs, member
///                levels, epoch timestamps, terse reviews, stealth-heavy
///                campaigns, flaky proxies (truncation/garbling).
Result<PlatformSpec> BuiltinPlatform(std::string_view name, double scale);
std::vector<std::string> BuiltinPlatformNames();

}  // namespace cats::platform

#endif  // CATS_PLATFORM_PROFILE_H_
