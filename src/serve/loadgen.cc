#include "serve/loadgen.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "serve/tcp_server.h"
#include "util/string_util.h"

namespace cats::serve {
namespace {

using Clock = std::chrono::steady_clock;

double QuantileOf(std::vector<double>* sorted_micros, double q) {
  if (sorted_micros->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(sorted_micros->size() - 1));
  return (*sorted_micros)[rank];
}

void FinalizeStep(LoadgenStepResult* result, std::vector<double>* latencies,
                  double elapsed_seconds, uint64_t ok) {
  result->qps_achieved =
      elapsed_seconds > 0.0 ? static_cast<double>(ok) / elapsed_seconds : 0.0;
  std::sort(latencies->begin(), latencies->end());
  result->p50_micros = QuantileOf(latencies, 0.50);
  result->p99_micros = QuantileOf(latencies, 0.99);
  if (!latencies->empty()) {
    double sum = 0.0;
    for (double v : *latencies) sum += v;
    result->mean_micros = sum / static_cast<double>(latencies->size());
  }
}

}  // namespace

JsonValue LoadgenReport::ToJson(const ServeOptions& serve_options) const {
  JsonValue v = JsonValue::Object();
  v.Set("bench", JsonValue::String("serve_loadgen"));
  v.Set("workers",
        JsonValue::Int(static_cast<int64_t>(serve_options.num_workers)));
  v.Set("queue_capacity",
        JsonValue::Int(static_cast<int64_t>(serve_options.queue_capacity)));
  JsonValue steps_json = JsonValue::Array();
  for (const LoadgenStepResult& step : steps) {
    JsonValue s = JsonValue::Object();
    s.Set("qps_target", JsonValue::Number(step.qps_target));
    s.Set("qps_achieved", JsonValue::Number(step.qps_achieved));
    s.Set("requests", JsonValue::Int(static_cast<int64_t>(step.requests)));
    s.Set("ok", JsonValue::Int(static_cast<int64_t>(step.ok)));
    s.Set("overloaded",
          JsonValue::Int(static_cast<int64_t>(step.overloaded)));
    s.Set("errors", JsonValue::Int(static_cast<int64_t>(step.errors)));
    s.Set("p50_micros", JsonValue::Number(step.p50_micros));
    s.Set("p99_micros", JsonValue::Number(step.p99_micros));
    s.Set("mean_micros", JsonValue::Number(step.mean_micros));
    s.Set("max_inflight",
          JsonValue::Int(static_cast<int64_t>(step.max_inflight)));
    steps_json.Append(std::move(s));
  }
  v.Set("steps", std::move(steps_json));
  if (swap_attempted) {
    JsonValue swap = JsonValue::Object();
    swap.Set("ok", JsonValue::Bool(swap_ok));
    swap.Set("generation",
             JsonValue::Int(static_cast<int64_t>(swap_generation)));
    swap.Set("latency_micros", JsonValue::Int(swap_latency_micros));
    v.Set("swap", std::move(swap));
  }
  return v;
}

Result<LoadgenReport> RunLoadgen(
    ServeLoop* loop, const std::vector<collect::CollectedItem>& items,
    const LoadgenOptions& options) {
  if (items.empty()) {
    return Status::InvalidArgument("loadgen needs at least one item");
  }
  if (options.qps_steps.empty()) {
    return Status::InvalidArgument("loadgen needs at least one QPS step");
  }
  for (double qps : options.qps_steps) {
    if (!(qps > 0.0)) {
      return Status::InvalidArgument("QPS steps must be positive");
    }
  }

  LoadgenReport report;
  const size_t swap_before_step =
      options.swap_model_dir.empty() ? options.qps_steps.size()
                                     : options.qps_steps.size() / 2;
  uint32_t next_request_id = 1;
  size_t next_item = 0;

  for (size_t step_index = 0; step_index < options.qps_steps.size();
       ++step_index) {
    if (step_index == swap_before_step) {
      // Hot-swap between steps, while the previous steps' traffic pattern
      // resumes immediately after — the acceptance bar is that the swap
      // itself completes and zero in-flight requests fail because of it.
      report.swap_attempted = true;
      const Message response =
          loop->Call(MakeSwapModelRequest(next_request_id++,
                                          options.swap_model_dir));
      if (response.type == MessageType::kOk) {
        report.swap_ok = true;
        if (auto gen = response.payload.GetInt("model_generation"); gen.ok()) {
          report.swap_generation = static_cast<uint64_t>(*gen);
        }
        if (auto lat = response.payload.GetInt("latency_micros"); lat.ok()) {
          report.swap_latency_micros = *lat;
        }
      }
    }

    const double qps = options.qps_steps[step_index];
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / qps));
    const uint64_t total = std::max<uint64_t>(
        1, static_cast<uint64_t>(qps * options.step_seconds));

    // Completion state shared with the response callbacks.
    struct StepState {
      std::mutex mu;
      std::condition_variable cv;
      uint64_t submitted = 0;
      uint64_t completed = 0;
      uint64_t ok = 0;
      uint64_t overloaded = 0;
      uint64_t errors = 0;
      uint64_t max_inflight = 0;
      std::vector<double> latencies_micros;
    };
    auto state = std::make_shared<StepState>();
    state->latencies_micros.reserve(total);

    const Clock::time_point step_start = Clock::now();
    for (uint64_t i = 0; i < total; ++i) {
      const Clock::time_point scheduled = step_start + interval * i;
      std::this_thread::sleep_until(scheduled);  // open-loop pacing
      Message request = MakeScoreItemRequest(next_request_id++,
                                             items[next_item]);
      next_item = (next_item + 1) % items.size();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->submitted += 1;
        state->max_inflight =
            std::max(state->max_inflight, state->submitted - state->completed);
      }
      loop->Submit(std::move(request), [state, scheduled](Message response) {
        const double micros =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - scheduled)
                    .count());
        std::lock_guard<std::mutex> lock(state->mu);
        switch (response.type) {
          case MessageType::kOk:
            state->ok += 1;
            state->latencies_micros.push_back(micros);
            break;
          case MessageType::kOverloaded:
            state->overloaded += 1;
            break;
          default:
            state->errors += 1;
            break;
        }
        state->completed += 1;
        state->cv.notify_one();
      });
    }

    // Close out the step: every submitted request completes (ok, typed
    // overload, or error) before the next step starts, so steps don't
    // bleed into each other's percentiles.
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&] { return state->completed == total; });
    }
    const double elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - step_start).count();

    LoadgenStepResult result;
    result.qps_target = qps;
    result.requests = total;
    result.ok = state->ok;
    result.overloaded = state->overloaded;
    result.errors = state->errors;
    result.max_inflight = state->max_inflight;
    FinalizeStep(&result, &state->latencies_micros, elapsed_seconds,
                 state->ok);
    report.steps.push_back(result);
  }
  return report;
}

namespace {

/// Everything the pacer thread and the epoll reader thread share during a
/// TCP run. Requests are matched to responses by request_id; latency runs
/// from the request's *scheduled* arrival (open-loop convention).
struct TcpRunState {
  std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<uint32_t, Clock::time_point> pending;  // id -> scheduled
  uint64_t completed = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  uint64_t max_inflight = 0;
  std::vector<double> latencies_micros;
  bool failed = false;
  std::string failure;

  void ResetStep(uint64_t expected) {
    std::lock_guard<std::mutex> lock(mu);
    // The previous step drained (completed == total) before this runs, so
    // pending is empty in normal operation; clear defensively so a
    // straggler id can never inflate the next step's max_inflight.
    pending.clear();
    completed = 0;
    ok = 0;
    overloaded = 0;
    errors = 0;
    max_inflight = 0;
    latencies_micros.clear();
    latencies_micros.reserve(expected);
  }

  void Fail(std::string message) {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed) {
      failed = true;
      failure = std::move(message);
    }
    cv.notify_all();
  }
};

/// Blocking full-buffer send; the request path tolerates short writes.
Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<LoadgenReport> RunLoadgenTcp(
    const std::string& host, uint16_t port,
    const std::vector<collect::CollectedItem>& items,
    const LoadgenOptions& options) {
  if (items.empty()) {
    return Status::InvalidArgument("loadgen needs at least one item");
  }
  if (options.qps_steps.empty()) {
    return Status::InvalidArgument("loadgen needs at least one QPS step");
  }
  for (double qps : options.qps_steps) {
    if (!(qps > 0.0)) {
      return Status::InvalidArgument("QPS steps must be positive");
    }
  }
  if (options.connections == 0) {
    return Status::InvalidArgument("TCP loadgen needs at least 1 connection");
  }

  // One frame per distinct item, encoded once; per request the 4 bytes of
  // request_id (header offset 8) are patched into a copy. Encoding cost
  // stays out of the pacing loop.
  std::vector<std::string> item_frames;
  item_frames.reserve(items.size());
  for (const collect::CollectedItem& item : items) {
    item_frames.push_back(EncodeFrame(MakeScoreItemRequest(0, item)));
  }

  // The traffic connections. FrameClient gives us connect + TCP_NODELAY;
  // reads happen centrally on the epoll thread below, so only the raw fd
  // and a per-connection FrameReader are used afterwards.
  struct Conn {
    int fd = -1;
    FrameReader reader;
  };
  std::vector<int> fds;
  std::vector<FrameClient> clients(options.connections);
  std::vector<Conn> conns(options.connections);
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::IoError(
        StrFormat("epoll_create1 failed: %s", strerror(errno)));
  }
  auto cleanup = [&] {
    ::close(epoll_fd);
    for (FrameClient& c : clients) c.Close();
  };
  for (size_t i = 0; i < options.connections; ++i) {
    Status status = clients[i].Connect(host, port);
    if (!status.ok()) {
      cleanup();
      return Status::IoError(StrFormat(
          "loadgen connection %zu/%zu: %s", i + 1, options.connections,
          status.message().c_str()));
    }
    conns[i].fd = clients[i].raw_fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = static_cast<uint64_t>(i);
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conns[i].fd, &ev) < 0) {
      const Status st = Status::IoError(
          StrFormat("epoll_ctl(ADD) failed: %s", strerror(errno)));
      cleanup();
      return st;
    }
  }

  auto state = std::make_shared<TcpRunState>();
  std::atomic<bool> stop{false};

  // Reader: one thread, epoll over every connection. Sockets stay
  // blocking — one recv per readiness event never blocks, and
  // level-triggered epoll re-arms while bytes remain.
  std::thread reader([&] {
    epoll_event events[64];
    char buf[64 * 1024];
    while (!stop.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd, events, 64, 50);
      if (n < 0) {
        if (errno == EINTR) continue;
        state->Fail(StrFormat("epoll_wait failed: %s", strerror(errno)));
        return;
      }
      for (int e = 0; e < n; ++e) {
        Conn& conn = conns[events[e].data.u64];
        const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (got < 0 && errno == EINTR) continue;
        if (got <= 0) {
          state->Fail("server closed a loadgen connection mid-run");
          return;
        }
        conn.reader.Feed(std::string_view(buf, static_cast<size_t>(got)));
        while (true) {
          auto message = conn.reader.Next();
          if (!message.ok()) {
            if (message.status().code() == StatusCode::kNotFound) break;
            state->Fail("framing error on a loadgen connection: " +
                        message.status().message());
            return;
          }
          const Message& response = message.value();
          const Clock::time_point now = Clock::now();
          std::lock_guard<std::mutex> lock(state->mu);
          auto it = state->pending.find(response.request_id);
          if (it == state->pending.end()) continue;  // not ours (unexpected)
          const double micros = static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - it->second)
                  .count());
          state->pending.erase(it);
          switch (response.type) {
            case MessageType::kOk:
              state->ok += 1;
              state->latencies_micros.push_back(micros);
              break;
            case MessageType::kOverloaded:
              state->overloaded += 1;
              break;
            default:
              state->errors += 1;
              break;
          }
          state->completed += 1;
          state->cv.notify_one();
        }
      }
    }
  });
  auto join_and_cleanup = [&] {
    stop.store(true, std::memory_order_release);
    reader.join();
    cleanup();
  };

  LoadgenReport report;
  const size_t swap_before_step =
      options.swap_model_dir.empty() ? options.qps_steps.size()
                                     : options.qps_steps.size() / 2;
  uint32_t next_request_id = 1;
  size_t next_item = 0;
  size_t next_conn = 0;

  for (size_t step_index = 0; step_index < options.qps_steps.size();
       ++step_index) {
    if (step_index == swap_before_step) {
      // Hot-swap between steps, over its own connection so its response
      // never interleaves with the traffic the reader thread is matching.
      report.swap_attempted = true;
      FrameClient swap_client;
      Status status = swap_client.Connect(host, port);
      if (status.ok()) {
        const Clock::time_point swap_start = Clock::now();
        auto response = swap_client.Call(MakeSwapModelRequest(
            0x7fffffffu, options.swap_model_dir));
        if (response.ok() && response.value().type == MessageType::kOk) {
          report.swap_ok = true;
          const JsonValue& payload = response.value().payload;
          if (auto gen = payload.GetInt("model_generation"); gen.ok()) {
            report.swap_generation = static_cast<uint64_t>(*gen);
          }
          if (auto lat = payload.GetInt("latency_micros"); lat.ok()) {
            report.swap_latency_micros = *lat;
          } else {
            report.swap_latency_micros =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - swap_start)
                    .count();
          }
        }
      }
    }

    const double qps = options.qps_steps[step_index];
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / qps));
    const uint64_t total = std::max<uint64_t>(
        1, static_cast<uint64_t>(qps * options.step_seconds));
    state->ResetStep(total);

    const Clock::time_point step_start = Clock::now();
    for (uint64_t i = 0; i < total; ++i) {
      const Clock::time_point scheduled = step_start + interval * i;
      std::this_thread::sleep_until(scheduled);  // open-loop pacing
      const uint32_t request_id = next_request_id++;
      std::string frame = item_frames[next_item];
      next_item = (next_item + 1) % items.size();
      frame[8] = static_cast<char>(request_id & 0xff);
      frame[9] = static_cast<char>((request_id >> 8) & 0xff);
      frame[10] = static_cast<char>((request_id >> 16) & 0xff);
      frame[11] = static_cast<char>((request_id >> 24) & 0xff);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->failed) break;
        state->pending.emplace(request_id, scheduled);
        state->max_inflight =
            std::max(state->max_inflight,
                     static_cast<uint64_t>(state->pending.size()));
      }
      const int fd = conns[next_conn].fd;
      next_conn = (next_conn + 1) % conns.size();
      Status status = SendAll(fd, frame.data(), frame.size());
      if (!status.ok()) {
        state->Fail("loadgen send: " + status.message());
        break;
      }
    }

    // Close out the step: every request got a response (or the run
    // failed) before the next step starts. The deadline is generous — a
    // healthy server answers in milliseconds; only a hang trips it.
    {
      std::unique_lock<std::mutex> lock(state->mu);
      const bool done = state->cv.wait_for(
          lock, std::chrono::seconds(120),
          [&] { return state->failed || state->completed == total; });
      if (state->failed) {
        const std::string failure = state->failure;
        lock.unlock();
        join_and_cleanup();
        return Status::IoError("TCP loadgen failed: " + failure);
      }
      if (!done) {
        lock.unlock();
        join_and_cleanup();
        return Status::IoError(StrFormat(
            "TCP loadgen step %zu timed out waiting for responses",
            step_index));
      }
    }
    const double elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - step_start).count();

    LoadgenStepResult result;
    result.qps_target = qps;
    result.requests = total;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      result.ok = state->ok;
      result.overloaded = state->overloaded;
      result.errors = state->errors;
      result.max_inflight = state->max_inflight;
      FinalizeStep(&result, &state->latencies_micros, elapsed_seconds,
                   state->ok);
    }
    report.steps.push_back(result);
  }

  join_and_cleanup();
  return report;
}

}  // namespace cats::serve
