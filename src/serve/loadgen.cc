#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace cats::serve {
namespace {

using Clock = std::chrono::steady_clock;

double QuantileOf(std::vector<double>* sorted_micros, double q) {
  if (sorted_micros->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(sorted_micros->size() - 1));
  return (*sorted_micros)[rank];
}

}  // namespace

JsonValue LoadgenReport::ToJson(const ServeOptions& serve_options) const {
  JsonValue v = JsonValue::Object();
  v.Set("bench", JsonValue::String("serve_loadgen"));
  v.Set("workers",
        JsonValue::Int(static_cast<int64_t>(serve_options.num_workers)));
  v.Set("queue_capacity",
        JsonValue::Int(static_cast<int64_t>(serve_options.queue_capacity)));
  JsonValue steps_json = JsonValue::Array();
  for (const LoadgenStepResult& step : steps) {
    JsonValue s = JsonValue::Object();
    s.Set("qps_target", JsonValue::Number(step.qps_target));
    s.Set("qps_achieved", JsonValue::Number(step.qps_achieved));
    s.Set("requests", JsonValue::Int(static_cast<int64_t>(step.requests)));
    s.Set("ok", JsonValue::Int(static_cast<int64_t>(step.ok)));
    s.Set("overloaded",
          JsonValue::Int(static_cast<int64_t>(step.overloaded)));
    s.Set("errors", JsonValue::Int(static_cast<int64_t>(step.errors)));
    s.Set("p50_micros", JsonValue::Number(step.p50_micros));
    s.Set("p99_micros", JsonValue::Number(step.p99_micros));
    s.Set("mean_micros", JsonValue::Number(step.mean_micros));
    steps_json.Append(std::move(s));
  }
  v.Set("steps", std::move(steps_json));
  if (swap_attempted) {
    JsonValue swap = JsonValue::Object();
    swap.Set("ok", JsonValue::Bool(swap_ok));
    swap.Set("generation",
             JsonValue::Int(static_cast<int64_t>(swap_generation)));
    swap.Set("latency_micros", JsonValue::Int(swap_latency_micros));
    v.Set("swap", std::move(swap));
  }
  return v;
}

Result<LoadgenReport> RunLoadgen(
    ServeLoop* loop, const std::vector<collect::CollectedItem>& items,
    const LoadgenOptions& options) {
  if (items.empty()) {
    return Status::InvalidArgument("loadgen needs at least one item");
  }
  if (options.qps_steps.empty()) {
    return Status::InvalidArgument("loadgen needs at least one QPS step");
  }
  for (double qps : options.qps_steps) {
    if (!(qps > 0.0)) {
      return Status::InvalidArgument("QPS steps must be positive");
    }
  }

  LoadgenReport report;
  const size_t swap_before_step =
      options.swap_model_dir.empty() ? options.qps_steps.size()
                                     : options.qps_steps.size() / 2;
  uint32_t next_request_id = 1;
  size_t next_item = 0;

  for (size_t step_index = 0; step_index < options.qps_steps.size();
       ++step_index) {
    if (step_index == swap_before_step) {
      // Hot-swap between steps, while the previous steps' traffic pattern
      // resumes immediately after — the acceptance bar is that the swap
      // itself completes and zero in-flight requests fail because of it.
      report.swap_attempted = true;
      const Message response =
          loop->Call(MakeSwapModelRequest(next_request_id++,
                                          options.swap_model_dir));
      if (response.type == MessageType::kOk) {
        report.swap_ok = true;
        if (auto gen = response.payload.GetInt("model_generation"); gen.ok()) {
          report.swap_generation = static_cast<uint64_t>(*gen);
        }
        if (auto lat = response.payload.GetInt("latency_micros"); lat.ok()) {
          report.swap_latency_micros = *lat;
        }
      }
    }

    const double qps = options.qps_steps[step_index];
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / qps));
    const uint64_t total = std::max<uint64_t>(
        1, static_cast<uint64_t>(qps * options.step_seconds));

    // Completion state shared with the response callbacks.
    struct StepState {
      std::mutex mu;
      std::condition_variable cv;
      uint64_t completed = 0;
      uint64_t ok = 0;
      uint64_t overloaded = 0;
      uint64_t errors = 0;
      std::vector<double> latencies_micros;
    };
    auto state = std::make_shared<StepState>();
    state->latencies_micros.reserve(total);

    const Clock::time_point step_start = Clock::now();
    for (uint64_t i = 0; i < total; ++i) {
      const Clock::time_point scheduled = step_start + interval * i;
      std::this_thread::sleep_until(scheduled);  // open-loop pacing
      Message request = MakeScoreItemRequest(next_request_id++,
                                             items[next_item]);
      next_item = (next_item + 1) % items.size();
      loop->Submit(std::move(request), [state, scheduled](Message response) {
        const double micros =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - scheduled)
                    .count());
        std::lock_guard<std::mutex> lock(state->mu);
        switch (response.type) {
          case MessageType::kOk:
            state->ok += 1;
            state->latencies_micros.push_back(micros);
            break;
          case MessageType::kOverloaded:
            state->overloaded += 1;
            break;
          default:
            state->errors += 1;
            break;
        }
        state->completed += 1;
        state->cv.notify_one();
      });
    }

    // Close out the step: every submitted request completes (ok, typed
    // overload, or error) before the next step starts, so steps don't
    // bleed into each other's percentiles.
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&] { return state->completed == total; });
    }
    const double elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - step_start).count();

    LoadgenStepResult result;
    result.qps_target = qps;
    result.requests = total;
    result.ok = state->ok;
    result.overloaded = state->overloaded;
    result.errors = state->errors;
    result.qps_achieved =
        elapsed_seconds > 0.0 ? static_cast<double>(state->ok) / elapsed_seconds
                              : 0.0;
    std::vector<double>& lat = state->latencies_micros;
    std::sort(lat.begin(), lat.end());
    result.p50_micros = QuantileOf(&lat, 0.50);
    result.p99_micros = QuantileOf(&lat, 0.99);
    if (!lat.empty()) {
      double sum = 0.0;
      for (double v : lat) sum += v;
      result.mean_micros = sum / static_cast<double>(lat.size());
    }
    report.steps.push_back(result);
  }
  return report;
}

}  // namespace cats::serve
