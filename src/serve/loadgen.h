#ifndef CATS_SERVE_LOADGEN_H_
#define CATS_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collect/store.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/result.h"

namespace cats::serve {

struct LoadgenOptions {
  /// Offered-load steps, requests/second each. The run walks them in
  /// order, holding each for `step_seconds`.
  std::vector<double> qps_steps = {100.0, 200.0, 400.0, 800.0};
  double step_seconds = 2.0;
  /// When non-empty, a swap_model request to this directory fires at the
  /// boundary before the middle step — the hot-swap is measured under
  /// load, and the run asserts it completes with zero failed requests.
  std::string swap_model_dir;
  /// RunLoadgenTcp only: how many loopback connections carry the traffic.
  /// Requests round-robin across them, pipelined — many can be in flight
  /// on one connection at once.
  size_t connections = 64;
};

/// Per-step measurement. Latency is measured from each request's
/// *scheduled* arrival time, not its submit time — the open-loop
/// (coordinated-omission-free) convention: when the server stalls, the
/// backlog's wait shows up in the percentiles instead of being hidden by
/// a slowed-down client.
struct LoadgenStepResult {
  double qps_target = 0.0;
  double qps_achieved = 0.0;  // completed ok / elapsed
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double mean_micros = 0.0;
  /// High-water mark of requests in flight (submitted, response not yet
  /// seen) during the step — the open-loop backlog gauge. A step whose
  /// max_inflight keeps climbing is past the knee of the latency curve.
  uint64_t max_inflight = 0;
};

struct LoadgenReport {
  std::vector<LoadgenStepResult> steps;
  /// Present when swap_model_dir was set.
  bool swap_attempted = false;
  bool swap_ok = false;
  uint64_t swap_generation = 0;
  int64_t swap_latency_micros = 0;

  JsonValue ToJson(const ServeOptions& serve_options) const;
};

/// Replays `items` against a running ServeLoop open-loop: requests are
/// scheduled on the steady clock at 1/qps intervals and submitted
/// asynchronously the moment they are due, whether or not earlier ones
/// completed. Items cycle round-robin; every request is a full
/// score_item. Blocks until the last step's responses arrived.
Result<LoadgenReport> RunLoadgen(ServeLoop* loop,
                                 const std::vector<collect::CollectedItem>& items,
                                 const LoadgenOptions& options);

/// Same open-loop schedule, but over the wire: `options.connections`
/// loopback TCP connections to a frame server at host:port, requests
/// round-robin across them and pipelined (a connection does not wait for
/// its previous response before carrying the next request). A client-side
/// epoll reader matches responses to requests by request_id and measures
/// latency from each request's scheduled arrival. The swap, when
/// configured, goes over its own dedicated connection between steps.
Result<LoadgenReport> RunLoadgenTcp(
    const std::string& host, uint16_t port,
    const std::vector<collect::CollectedItem>& items,
    const LoadgenOptions& options);

}  // namespace cats::serve

#endif  // CATS_SERVE_LOADGEN_H_
