#include "serve/model_gateway.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cats::serve {
namespace {

/// Handles for the swap metrics, resolved once per process.
struct SwapMetrics {
  obs::Gauge* generation;
  obs::Counter* swaps;
  obs::Counter* swap_failures;
  obs::LatencyHistogram* swap_latency;

  static const SwapMetrics& Get() {
    static const SwapMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new SwapMetrics{r.GetGauge(obs::kServeModelGeneration),
                             r.GetCounter(obs::kServeModelSwapsTotal),
                             r.GetCounter(obs::kServeModelSwapFailuresTotal),
                             r.GetLatencyHistogram(
                                 obs::kServeModelSwapLatencyMicros)};
    }();
    return *metrics;
  }
};

}  // namespace

Status ModelGateway::LoadInitial(const std::string& model_dir) {
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  CATS_ASSIGN_OR_RETURN(std::unique_ptr<core::Cats> cats,
                        LoadAndProbe(model_dir));
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->cats = std::move(cats);
  snapshot->model_dir = model_dir;
  snapshot->generation = next_generation_++;
  const double generation = static_cast<double>(snapshot->generation);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  SwapMetrics::Get().generation->Set(generation);
  return Status::OK();
}

std::shared_ptr<const ModelSnapshot> ModelGateway::Acquire() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<SwapOutcome> ModelGateway::Swap(const std::string& model_dir) {
  const SwapMetrics& metrics = SwapMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  auto loaded = LoadAndProbe(model_dir);
  if (!loaded.ok()) {
    metrics.swap_failures->Increment();
    return loaded.status();
  }
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->cats = std::move(loaded).value();
  snapshot->model_dir = model_dir;
  snapshot->generation = next_generation_++;

  SwapOutcome outcome;
  outcome.generation = snapshot->generation;
  outcome.probe_items_scored = probe_items_.size();
  {
    // Commit: one pointer exchange under the snapshot mutex. In-flight
    // requests hold their own shared_ptr and finish on the old model.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  outcome.latency_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  metrics.generation->Set(static_cast<double>(outcome.generation));
  metrics.swaps->Increment();
  metrics.swap_latency->Observe(static_cast<double>(outcome.latency_micros));
  return outcome;
}

uint64_t ModelGateway::generation() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_ == nullptr ? 0 : snapshot_->generation;
}

Result<std::unique_ptr<core::Cats>> ModelGateway::LoadAndProbe(
    const std::string& model_dir) const {
  // Loading: the ModelManifest CRC path — a candidate with a missing,
  // truncated or bit-flipped file is rejected here with a typed error.
  auto cats = std::make_unique<core::Cats>(cats_options_);
  CATS_RETURN_NOT_OK(cats->LoadModel(model_dir));

  // Probing: the candidate must score the held-out rows sanely before it
  // may serve traffic. This catches models that load (checksums intact)
  // but are semantically broken for this deployment.
  if (!probe_items_.empty()) {
    auto report = cats->Detect(probe_items_);
    if (!report.ok()) {
      return Status::FailedPrecondition(
          "candidate model failed probe scoring: " +
          report.status().ToString());
    }
    if (report->items_scanned != probe_items_.size() ||
        report->items_scanned !=
            report->items_quarantined + report->items_filtered_low_sales +
                report->items_filtered_no_signal +
                report->items_filtered_no_comments +
                report->items_classified) {
      return Status::FailedPrecondition(
          "candidate model broke probe accounting");
    }
    for (const core::Detection& d : report->detections) {
      if (!std::isfinite(d.score) || d.score < 0.0 || d.score > 1.0) {
        return Status::FailedPrecondition(
            "candidate model produced a non-probability probe score");
      }
    }
  }
  return cats;
}

}  // namespace cats::serve
