#ifndef CATS_SERVE_MODEL_GATEWAY_H_
#define CATS_SERVE_MODEL_GATEWAY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collect/store.h"
#include "core/cats.h"
#include "util/result.h"

namespace cats::serve {

/// An immutable, reference-counted deployment of one model: the loaded
/// core::Cats (semantic model + trained detector) plus its provenance.
/// Requests Acquire() a snapshot and keep scoring on it even while a swap
/// installs a successor — the old snapshot dies only when its last
/// in-flight request releases it.
struct ModelSnapshot {
  std::unique_ptr<core::Cats> cats;
  std::string model_dir;
  /// Monotonic deployment counter: 1 for the model the server booted with,
  /// +1 per committed swap. Echoed in score/health responses so a client
  /// can tell which deployment scored it.
  uint64_t generation = 0;

  const core::Detector& detector() const { return cats->detector(); }
};

/// Outcome of one committed swap.
struct SwapOutcome {
  uint64_t generation = 0;       // generation now serving
  int64_t latency_micros = 0;    // wall time of load + probe + commit
  size_t probe_items_scored = 0;  // held-out rows the candidate had to pass
};

/// The hot-swap state machine (docs/SERVING.md "Model hot-swap"):
///
///   serving(G) --Swap(dir)--> loading --> probing --> commit: serving(G+1)
///                   |             |           |
///                   |   load fails (CRC /     | probe fails (non-finite
///                   |   parse / version)      | scores, broken accounting)
///                   +------- reject: still serving(G), typed error -------+
///
/// Load goes through core::Cats::LoadModel — the crash-safe ModelManifest
/// path, so a truncated or bit-flipped candidate is rejected by checksum
/// before a byte of it is parsed. Probing scores the held-out probe items
/// with the candidate and rejects deployments that cannot reproduce sane
/// output (scores outside [0,1] or broken item accounting). Commit is an
/// atomic shared_ptr exchange: new requests see generation G+1, in-flight
/// requests finish on G. Swaps serialize; concurrent Swap calls queue on
/// the swap mutex and each lands a distinct generation (double-swap
/// ordering is last-writer-wins, covered in tests/serve_hot_swap_test.cc).
class ModelGateway {
 public:
  /// `probe_items` are the held-out rows every candidate must score sanely
  /// before it may serve; empty disables probing (load checks still apply).
  /// `cats_options` configures every core::Cats this gateway loads (boot
  /// model and swap candidates alike) — detector/extractor knobs, including
  /// the token-id hot-path toggle the serve identity tests flip.
  explicit ModelGateway(std::vector<collect::CollectedItem> probe_items,
                        core::CatsOptions cats_options = {})
      : probe_items_(std::move(probe_items)), cats_options_(cats_options) {}

  /// Loads the boot model (generation 1). Fails without touching state, so
  /// a server never starts on a corrupt model.
  Status LoadInitial(const std::string& model_dir);

  /// The current snapshot (never null after LoadInitial succeeded). The
  /// returned pointer keeps the whole deployment alive for as long as the
  /// caller holds it.
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  /// Runs the load -> probe -> commit machine above. On any failure the
  /// previous snapshot keeps serving and the typed error says which stage
  /// rejected the candidate (NotFound / Corruption / ParseError /
  /// FailedPrecondition from the manifest path, FailedPrecondition from
  /// the probe).
  Result<SwapOutcome> Swap(const std::string& model_dir);

  uint64_t generation() const;
  size_t probe_items() const { return probe_items_.size(); }

 private:
  /// Loads + probes a candidate into a ready-to-commit snapshot.
  Result<std::unique_ptr<core::Cats>> LoadAndProbe(
      const std::string& model_dir) const;

  std::vector<collect::CollectedItem> probe_items_;
  core::CatsOptions cats_options_;
  mutable std::mutex snapshot_mu_;  // guards the pointer, not the snapshot
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::mutex swap_mu_;  // serializes Swap calls (ordering, not safety)
  uint64_t next_generation_ = 1;
};

}  // namespace cats::serve

#endif  // CATS_SERVE_MODEL_GATEWAY_H_
