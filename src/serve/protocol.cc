#include "serve/protocol.h"

#include <cstring>

#include "util/string_util.h"

namespace cats::serve {
namespace {

void PutU16Le(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint16_t GetU16Le(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kScoreItem:
    case MessageType::kScoreCommentDelta:
    case MessageType::kHealth:
    case MessageType::kMetrics:
    case MessageType::kSwapModel:
      return true;
    default:
      return false;
  }
}

bool IsResponseType(MessageType type) {
  switch (type) {
    case MessageType::kOk:
    case MessageType::kError:
    case MessageType::kOverloaded:
      return true;
    default:
      return false;
  }
}

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kScoreItem:
      return "score_item";
    case MessageType::kScoreCommentDelta:
      return "score_comment_delta";
    case MessageType::kHealth:
      return "health";
    case MessageType::kMetrics:
      return "metrics";
    case MessageType::kSwapModel:
      return "swap_model";
    case MessageType::kOk:
      return "ok";
    case MessageType::kError:
      return "error";
    case MessageType::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

void EncodeFrameHeader(MessageType type, uint32_t request_id,
                       uint32_t payload_len, char out[kFrameHeaderBytes]) {
  std::memcpy(out, kFrameMagic, sizeof(kFrameMagic));
  out[4] = static_cast<char>(kProtocolVersion);
  out[5] = static_cast<char>(type);
  out[6] = 0;  // flags: reserved
  out[7] = 0;
  out[8] = static_cast<char>(request_id & 0xff);
  out[9] = static_cast<char>((request_id >> 8) & 0xff);
  out[10] = static_cast<char>((request_id >> 16) & 0xff);
  out[11] = static_cast<char>((request_id >> 24) & 0xff);
  out[12] = static_cast<char>(payload_len & 0xff);
  out[13] = static_cast<char>((payload_len >> 8) & 0xff);
  out[14] = static_cast<char>((payload_len >> 16) & 0xff);
  out[15] = static_cast<char>((payload_len >> 24) & 0xff);
}

std::string EncodeFrame(const Message& message) {
  std::string payload = message.payload.Serialize();
  std::string out;
  out.resize(kFrameHeaderBytes);
  out.reserve(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(message.type, message.request_id,
                    static_cast<uint32_t>(payload.size()), out.data());
  out.append(payload);
  return out;
}

void FrameReader::Feed(std::string_view bytes) {
  // Reclaim a fully consumed buffer for free before growing it: clear()
  // keeps the capacity, so a well-paced connection never reallocates.
  if (read_pos_ > 0 && read_pos_ == buffer_.size()) {
    buffer_.clear();
    read_pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

Result<Message> FrameReader::Next() {
  if (buffer_.size() - read_pos_ < kFrameHeaderBytes) {
    return Status::NotFound("incomplete frame header");
  }
  const char* p = buffer_.data() + read_pos_;
  if (std::memcmp(p, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::ParseError("bad frame magic (not a CATS stream)");
  }
  const uint8_t version = static_cast<uint8_t>(p[4]);
  if (version != kProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("unsupported protocol version %u (speak %u)", version,
                  kProtocolVersion));
  }
  const uint8_t opcode = static_cast<uint8_t>(p[5]);
  const MessageType type = static_cast<MessageType>(opcode);
  if (!IsRequestType(type) && !IsResponseType(type)) {
    return Status::ParseError(StrFormat("unknown message type 0x%02x", opcode));
  }
  if (GetU16Le(p + 6) != 0) {
    return Status::ParseError("nonzero reserved flags");
  }
  const uint32_t request_id = GetU32Le(p + 8);
  const uint32_t payload_len = GetU32Le(p + 12);
  if (payload_len > kMaxPayloadBytes) {
    return Status::OutOfRange(
        StrFormat("payload of %u bytes exceeds the %u-byte frame limit",
                  payload_len, kMaxPayloadBytes));
  }
  if (buffer_.size() - read_pos_ < kFrameHeaderBytes + payload_len) {
    return Status::NotFound("incomplete frame payload");
  }
  // Zero-copy decode: the payload is parsed as a view into the buffer; the
  // consumed prefix is reclaimed lazily below instead of per frame.
  std::string_view payload_bytes(
      buffer_.data() + read_pos_ + kFrameHeaderBytes, payload_len);
  auto payload = JsonValue::Parse(payload_bytes);
  if (!payload.ok()) {
    return Status::ParseError("frame payload is not valid JSON: " +
                              payload.status().message());
  }
  Message message;
  message.type = type;
  message.request_id = request_id;
  message.payload = std::move(payload).value();
  read_pos_ += kFrameHeaderBytes + payload_len;
  // Amortized compaction: memmove the residue down only once the consumed
  // prefix is large. Decoding a pipelined burst of N small frames compacts
  // O(total_bytes / threshold) times instead of N times — the difference
  // between linear and quadratic on a 10k-frame blob.
  if (read_pos_ == buffer_.size()) {
    buffer_.clear();
    read_pos_ = 0;
  } else if (read_pos_ >= kCompactThresholdBytes) {
    buffer_.erase(0, read_pos_);
    read_pos_ = 0;
    ++compactions_;
  }
  return message;
}

std::vector<FrameField> FrameLayout() {
  return {
      {"magic", 0, 4},      {"version", 4, 1},     {"type", 5, 1},
      {"flags", 6, 2},      {"request_id", 8, 4},  {"payload_len", 12, 4},
  };
}

Message OkResponse(uint32_t request_id, JsonValue payload) {
  Message m;
  m.type = MessageType::kOk;
  m.request_id = request_id;
  m.payload = std::move(payload);
  return m;
}

Message ErrorResponse(uint32_t request_id, const Status& status) {
  Message m;
  m.type = MessageType::kError;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  m.payload.Set("code", JsonValue::String(
                            std::string(StatusCodeToString(status.code()))));
  m.payload.Set("message", JsonValue::String(status.message()));
  return m;
}

Message OverloadedResponse(uint32_t request_id, uint32_t retry_after_millis) {
  Message m;
  m.type = MessageType::kOverloaded;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  m.payload.Set("retry_after_millis",
                JsonValue::Int(static_cast<int64_t>(retry_after_millis)));
  return m;
}

Status StatusFromErrorPayload(const JsonValue& payload) {
  std::string code = "Internal";
  std::string message;
  if (const JsonValue* c = payload.Get("code"); c != nullptr && c->is_string()) {
    code = c->string_value();
  }
  if (const JsonValue* m = payload.Get("message");
      m != nullptr && m->is_string()) {
    message = m->string_value();
  }
  if (code == "InvalidArgument") return Status::InvalidArgument(message);
  if (code == "NotFound") return Status::NotFound(message);
  if (code == "AlreadyExists") return Status::AlreadyExists(message);
  if (code == "OutOfRange") return Status::OutOfRange(message);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(message);
  if (code == "IoError") return Status::IoError(message);
  if (code == "ParseError") return Status::ParseError(message);
  if (code == "Unavailable") return Status::Unavailable(message);
  if (code == "Corruption") return Status::Corruption(message);
  return Status::Internal(message);
}

}  // namespace cats::serve
