#ifndef CATS_SERVE_PROTOCOL_H_
#define CATS_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace cats::serve {

/// The serving plane's wire format: length-prefixed frames, fixed 16-byte
/// header followed by a UTF-8 JSON payload. docs/SERVING.md documents the
/// layout byte-for-byte and tests/serve_protocol_test.cc parses the doc's
/// frame table back against FrameLayout(), so the document cannot drift
/// from this header.
///
///   offset  size  field
///   0       4     magic        'C' 'A' 'T' 'S'
///   4       1     version      kProtocolVersion
///   5       1     type         MessageType opcode
///   6       2     flags        reserved, must be zero
///   8       4     request_id   uint32 LE, echoed in the response
///   12      4     payload_len  uint32 LE, bytes of JSON after the header
///   16      N     payload      UTF-8 JSON document
///
/// All multi-byte integers are little-endian. A response carries the
/// request_id of the request it answers, so clients may pipeline.
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr char kFrameMagic[4] = {'C', 'A', 'T', 'S'};
/// Upper bound on payload_len: a decoder refuses anything larger before
/// allocating, so a garbage length prefix cannot balloon memory.
inline constexpr uint32_t kMaxPayloadBytes = 16u * 1024 * 1024;

/// Request and response opcodes (the header's `type` byte). Requests have
/// the high bit clear, responses have it set.
enum class MessageType : uint8_t {
  // Requests.
  kScoreItem = 0x01,          // score one item with its comments
  kScoreCommentDelta = 0x02,  // append comments to a known item, rescore
  kHealth = 0x03,             // liveness + model generation + queue state
  kMetrics = 0x04,            // obs registry snapshot as JSON
  kSwapModel = 0x05,          // load-validate-swap a candidate model dir
  // Responses.
  kOk = 0x81,          // request-specific result payload
  kError = 0x82,       // typed failure: {"code","message"}
  kOverloaded = 0x83,  // admission refused: {"retry_after_millis"}
};

bool IsRequestType(MessageType type);
bool IsResponseType(MessageType type);
std::string_view MessageTypeName(MessageType type);

/// One decoded message.
struct Message {
  MessageType type = MessageType::kHealth;
  uint32_t request_id = 0;
  JsonValue payload;
};

/// Serializes one message into its wire frame (header + JSON payload).
std::string EncodeFrame(const Message& message);

/// Writes just the 16-byte header into `out`. Transports that already hold
/// the serialized payload use this to emit header + payload as two iovecs
/// (writev) instead of concatenating them into a fresh string per response.
void EncodeFrameHeader(MessageType type, uint32_t request_id,
                       uint32_t payload_len, char out[kFrameHeaderBytes]);

/// Incremental frame decoder: feed arbitrary byte chunks, pop complete
/// messages. Typed errors (never exceptions) on bad magic, version skew,
/// nonzero flags, unknown opcodes, oversized or unparseable payloads; a
/// framing error is fatal for the stream (resynchronization is impossible
/// once the length prefix is untrusted), so the connection must close.
///
/// Decoding is zero-copy over the feed buffer: each frame's header and
/// payload are read as views into the buffer, and consumed bytes are
/// reclaimed by *amortized* compaction — the consumed prefix is only
/// memmoved out once it exceeds kCompactThresholdBytes (or the buffer
/// empties, which is free). A pipelined burst of N frames therefore costs
/// O(bytes) total instead of the O(N * bytes) a per-frame erase would.
class FrameReader {
 public:
  /// Consumed-prefix size beyond which Next() compacts the buffer.
  static constexpr size_t kCompactThresholdBytes = 64 * 1024;

  /// Appends raw bytes from the wire.
  void Feed(std::string_view bytes);

  /// Extracts the next complete message, if any. Returns:
  ///  - ok with a message when one is complete,
  ///  - NotFound when more bytes are needed (not an error),
  ///  - ParseError / FailedPrecondition / OutOfRange on framing errors
  ///    (bad magic / version or flags skew / oversized payload).
  Result<Message> Next();

  /// Bytes buffered but not yet consumed.
  size_t buffered_bytes() const { return buffer_.size() - read_pos_; }

  /// Times the consumed prefix was actually memmoved out (regression
  /// observability: decoding an N-frame burst must compact
  /// O(bytes / kCompactThresholdBytes) times, not O(N)).
  uint64_t compactions() const { return compactions_; }

 private:
  std::string buffer_;
  size_t read_pos_ = 0;  // start of the first unconsumed byte
  uint64_t compactions_ = 0;
};

/// One header field of the frame layout, for the doc-parity test.
struct FrameField {
  std::string_view name;
  size_t offset = 0;
  size_t size = 0;
};

/// The header layout as data: name/offset/size of every field, in wire
/// order. tests/serve_protocol_test.cc checks docs/SERVING.md against this.
std::vector<FrameField> FrameLayout();

/// Builders for the typed responses every handler shares.
Message OkResponse(uint32_t request_id, JsonValue payload);
Message ErrorResponse(uint32_t request_id, const Status& status);
Message OverloadedResponse(uint32_t request_id, uint32_t retry_after_millis);

/// Maps an error response payload back to a Status (client side).
Status StatusFromErrorPayload(const JsonValue& payload);

}  // namespace cats::serve

#endif  // CATS_SERVE_PROTOCOL_H_
