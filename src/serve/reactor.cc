#include "serve/reactor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/tcp_server.h"
#include "util/string_util.h"

namespace cats::serve {
namespace {

struct ReactorMetrics {
  obs::Counter* connections_opened;
  obs::Gauge* connections_active;
  obs::Counter* frames_read;
  obs::Counter* frame_errors;
  obs::Counter* timeouts;
  obs::Counter* conn_rejected;
  obs::Counter* loop_wakeups;
  obs::Counter* writev_partials;
  obs::Gauge* buffer_high_water;

  static const ReactorMetrics& Get() {
    static const ReactorMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new ReactorMetrics{
          r.GetCounter(obs::kServeTcpConnectionsOpenedTotal),
          r.GetGauge(obs::kServeTcpConnectionsActive),
          r.GetCounter(obs::kServeTcpFramesReadTotal),
          r.GetCounter(obs::kServeTcpFrameErrorsTotal),
          r.GetCounter(obs::kServeTcpTimeoutsTotal),
          r.GetCounter(obs::kServeTcpConnRejectedTotal),
          r.GetCounter(obs::kServeTcpLoopWakeupsTotal),
          r.GetCounter(obs::kServeTcpWritevPartialsTotal),
          r.GetGauge(obs::kServeTcpBufferHighWaterBytes)};
    }();
    return *metrics;
  }
};

int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(StrFormat("fcntl(O_NONBLOCK) failed: %s",
                                     strerror(errno)));
  }
  return Status::OK();
}

/// Most response frames the flush offers in one writev call: 2 iovecs per
/// frame (header + payload), comfortably under any IOV_MAX.
constexpr size_t kMaxFramesPerWritev = 64;

}  // namespace

EpollReactor::EpollReactor(ServeLoop* loop, const TcpServerOptions& options)
    : loop_(loop),
      configured_port_(options.port),
      recv_timeout_millis_(options.recv_timeout_millis),
      send_timeout_millis_(options.send_timeout_millis),
      max_connections_(options.max_connections),
      drain_deadline_millis_(options.drain_deadline_millis),
      num_shards_(options.num_shards == 0 ? 1 : options.num_shards) {}

EpollReactor::~EpollReactor() { Stop(); }

Status EpollReactor::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(configured_port_);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError(StrFormat("bind to 127.0.0.1:%u failed: %s",
                                  configured_port_, strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 256) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen failed: %s", strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const Status status = Status::IoError(
        StrFormat("getsockname failed: %s", strerror(errno)));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);

  shards_.clear();
  for (size_t s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->epoll_fd < 0 || shard->event_fd < 0) {
      const Status status = Status::IoError(
          StrFormat("epoll/eventfd setup failed: %s", strerror(errno)));
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->event_fd >= 0) ::close(shard->event_fd);
      for (auto& prior : shards_) {
        ::close(prior->epoll_fd);
        ::close(prior->event_fd);
      }
      shards_.clear();
      ::close(fd);
      return status;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->event_fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    shard->mailbox = std::make_shared<Mailbox>();
    shard->mailbox->event_fd = shard->event_fd;
    shards_.push_back(std::move(shard));
  }

  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([this, raw] { ShardLoop(raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EpollReactor::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Phase 1: stop accepting. Closing the listener kicks accept() out.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Phase 2: shards stop reading, flush what they owe (bounded by the
  // drain deadline), then close. The shard loop owns the actual work; the
  // mailbox flag flips it into drain mode.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mailbox->mu);
      shard->mailbox->draining = true;
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(shard->event_fd, &one, sizeof(one));
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  shards_.clear();
}

void EpollReactor::AcceptLoop() {
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  size_t next_shard = 0;
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatally broken
    }
    if (max_connections_ > 0 &&
        active_connections_.load(std::memory_order_acquire) >=
            max_connections_) {
      // Connection cap, same contract as the thread-per-connection
      // transport: close immediately, the client sees a reset and backs
      // off. The reactor could hold far more sockets than the legacy
      // transport could hold threads, but the cap's semantics stay
      // byte-compatible.
      metrics.conn_rejected->Increment();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    metrics.connections_opened->Increment();
    const size_t count =
        active_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
    metrics.connections_active->Set(static_cast<double>(count));
    // Round-robin handoff: the shard adopts the fd on its own thread.
    Shard* shard = shards_[next_shard].get();
    next_shard = (next_shard + 1) % shards_.size();
    bool delivered = false;
    {
      std::lock_guard<std::mutex> lock(shard->mailbox->mu);
      if (!shard->mailbox->stop) {
        shard->mailbox->accepts.push_back(fd);
        delivered = true;
      }
    }
    if (!delivered) {
      ::close(fd);
      const size_t after =
          active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      metrics.connections_active->Set(static_cast<double>(after));
      continue;
    }
    const uint64_t wake = 1;
    [[maybe_unused]] ssize_t n =
        ::write(shard->event_fd, &wake, sizeof(wake));
  }
}

bool EpollReactor::ReadAndDispatch(Shard* shard,
                                   const std::shared_ptr<Connection>& conn) {
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  char buf[64 * 1024];
  bool read_any = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) return false;  // peer hung up or socket error
    read_any = true;
    conn->reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (true) {
      auto message = conn->reader.Next();
      if (!message.ok()) {
        if (message.status().code() == StatusCode::kNotFound) break;
        // Framing error: the stream position is unrecoverable — count it
        // and drop only this connection.
        metrics.frame_errors->Increment();
        return false;
      }
      metrics.frames_read->Increment();
      conn->inflight.fetch_add(1, std::memory_order_acq_rel);
      // The response completes on a ServeLoop worker (or inline, for
      // overload/rejection): encode into the outbox and hand the
      // connection back to its shard through the mailbox. The shared_ptrs
      // keep both ends alive however late the response lands.
      std::shared_ptr<Connection> conn_ref = conn;
      std::shared_ptr<Mailbox> mailbox = shard->mailbox;
      loop_->Submit(
          std::move(message).value(),
          [conn_ref, mailbox](Message response) {
            std::string payload = response.payload.Serialize();
            bool enqueued = false;
            {
              std::lock_guard<std::mutex> lock(conn_ref->out_mu);
              if (!conn_ref->closed) {
                OutFrame frame;
                EncodeFrameHeader(response.type, response.request_id,
                                  static_cast<uint32_t>(payload.size()),
                                  frame.header);
                frame.payload = std::move(payload);
                conn_ref->outbox_bytes +=
                    kFrameHeaderBytes + frame.payload.size();
                conn_ref->outbox.push_back(std::move(frame));
                enqueued = true;
              }
            }
            conn_ref->inflight.fetch_sub(1, std::memory_order_acq_rel);
            if (!enqueued) return;
            std::lock_guard<std::mutex> lock(mailbox->mu);
            if (mailbox->event_fd < 0) return;
            mailbox->flush.push_back(conn_ref);
            const uint64_t wake = 1;
            [[maybe_unused]] ssize_t w =
                ::write(mailbox->event_fd, &wake, sizeof(wake));
          });
    }
    UpdateHighWater(conn->reader.buffered_bytes());
  }
  if (read_any) conn->last_read_millis = SteadyMillis();
  return true;
}

bool EpollReactor::FlushOutbox(Shard* shard,
                               const std::shared_ptr<Connection>& conn) {
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  std::unique_lock<std::mutex> lock(conn->out_mu);
  while (!conn->outbox.empty()) {
    // Vectored flush: up to kMaxFramesPerWritev frames go out in one
    // writev, each as header+payload iovecs — no concatenation copies.
    iovec iov[2 * kMaxFramesPerWritev];
    int iov_count = 0;
    size_t offered = 0;
    for (const OutFrame& frame :
         conn->outbox) {
      if (iov_count >= static_cast<int>(2 * kMaxFramesPerWritev) - 1) break;
      size_t skip = frame.sent;
      if (skip < kFrameHeaderBytes) {
        iov[iov_count].iov_base =
            const_cast<char*>(frame.header) + skip;
        iov[iov_count].iov_len = kFrameHeaderBytes - skip;
        offered += iov[iov_count].iov_len;
        ++iov_count;
        skip = 0;
      } else {
        skip -= kFrameHeaderBytes;
      }
      if (skip < frame.payload.size()) {
        iov[iov_count].iov_base =
            const_cast<char*>(frame.payload.data()) + skip;
        iov[iov_count].iov_len = frame.payload.size() - skip;
        offered += iov[iov_count].iov_len;
        ++iov_count;
      }
    }
    if (iov_count == 0) {
      // Fully-sent frames at the head (shouldn't persist, but be safe).
      conn->outbox.pop_front();
      continue;
    }
    const ssize_t n = ::writev(conn->fd, iov, iov_count);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: the peer is not reading fast enough. Arm
      // EPOLLOUT and start (or continue) the send-deadline clock.
      metrics.writev_partials->Increment();
      if (conn->write_stalled_since_millis < 0) {
        conn->write_stalled_since_millis = SteadyMillis();
      }
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      UpdateHighWater(conn->outbox_bytes + conn->reader.buffered_bytes());
      return true;
    }
    if (n < 0) return false;  // peer vanished mid-flush
    size_t advanced = static_cast<size_t>(n);
    conn->outbox_bytes -= advanced;
    while (advanced > 0 && !conn->outbox.empty()) {
      OutFrame& head = conn->outbox.front();
      const size_t total = kFrameHeaderBytes + head.payload.size();
      const size_t take = std::min(advanced, total - head.sent);
      head.sent += take;
      advanced -= take;
      if (head.sent == total) conn->outbox.pop_front();
    }
    if (static_cast<size_t>(n) < offered) {
      // Short write without EAGAIN: count it and loop — the next writev
      // resumes mid-frame via the `sent` offsets.
      metrics.writev_partials->Increment();
    }
  }
  // Outbox drained: disarm EPOLLOUT and clear the send-deadline clock.
  conn->write_stalled_since_millis = -1;
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  return true;
}

void EpollReactor::CloseConnection(Shard* shard,
                                   const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    conn->closed = true;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
  }
  shard->conns.erase(conn->fd);
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  const size_t after =
      active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  metrics.connections_active->Set(static_cast<double>(after));
}

int EpollReactor::SweepDeadlines(Shard* shard, int64_t now_millis) {
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  int64_t next_deadline_in = 500;  // idle tick upper bound
  std::vector<std::shared_ptr<Connection>> evict;
  for (auto& [fd, conn] : shard->conns) {
    if (recv_timeout_millis_ > 0) {
      const int64_t due =
          conn->last_read_millis + recv_timeout_millis_ - now_millis;
      if (due <= 0) {
        evict.push_back(conn);
        continue;
      }
      next_deadline_in = std::min(next_deadline_in, due);
    }
    if (send_timeout_millis_ > 0 && conn->write_stalled_since_millis >= 0) {
      const int64_t due = conn->write_stalled_since_millis +
                          send_timeout_millis_ - now_millis;
      if (due <= 0) {
        evict.push_back(conn);
        continue;
      }
      next_deadline_in = std::min(next_deadline_in, due);
    }
  }
  for (const auto& conn : evict) {
    // Slow-client guard, poll-timer edition: no bytes in (or no write
    // progress out) within the deadline evicts the connection.
    metrics.timeouts->Increment();
    CloseConnection(shard, conn);
  }
  return static_cast<int>(std::max<int64_t>(1, next_deadline_in));
}

void EpollReactor::UpdateHighWater(size_t bytes) {
  size_t seen = buffer_high_water_.load(std::memory_order_relaxed);
  while (bytes > seen &&
         !buffer_high_water_.compare_exchange_weak(
             seen, bytes, std::memory_order_relaxed)) {
  }
  if (bytes > seen) {
    ReactorMetrics::Get().buffer_high_water->Set(static_cast<double>(bytes));
  }
}

void EpollReactor::ShardLoop(Shard* shard) {
  const ReactorMetrics& metrics = ReactorMetrics::Get();
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool draining = false;
  int64_t drain_deadline_millis = 0;
  int timeout_millis = 500;

  while (true) {
    const int n =
        ::epoll_wait(shard->epoll_fd, events, kMaxEvents,
                     draining ? 10 : timeout_millis);
    metrics.loop_wakeups->Increment();
    if (n < 0 && errno != EINTR) break;

    // Drain the mailbox: adopted connections, flush requests, drain flag.
    std::vector<int> accepts;
    std::vector<std::shared_ptr<Connection>> flush;
    {
      std::lock_guard<std::mutex> lock(shard->mailbox->mu);
      accepts.swap(shard->mailbox->accepts);
      flush.swap(shard->mailbox->flush);
      if (shard->mailbox->draining && !draining) {
        draining = true;
        drain_deadline_millis = SteadyMillis() + drain_deadline_millis_;
      }
    }
    uint64_t drained;
    while (::read(shard->event_fd, &drained, sizeof(drained)) > 0) {
    }

    for (int fd : accepts) {
      if (draining) {
        ::close(fd);
        const size_t after =
            active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
        metrics.connections_active->Set(static_cast<double>(after));
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->last_read_millis = SteadyMillis();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        ::close(fd);
        const size_t after =
            active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
        metrics.connections_active->Set(static_cast<double>(after));
        continue;
      }
      shard->conns.emplace(fd, std::move(conn));
    }

    // Socket readiness.
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard->event_fd) continue;
      auto it = shard->conns.find(fd);
      if (it == shard->conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      bool alive = true;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Peer reset/hangup. Flush whatever the socket still accepts
        // (half-close keeps the send side open on EPOLLHUP-less FINs),
        // then close.
        alive = false;
      }
      if (alive && (events[i].events & EPOLLIN) && !draining) {
        alive = ReadAndDispatch(shard, conn);
      }
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushOutbox(shard, conn);
      }
      if (!alive) CloseConnection(shard, conn);
    }

    // Responses queued by workers since the last pass.
    for (const auto& conn : flush) {
      bool still_open;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        still_open = !conn->closed;
      }
      if (!still_open) continue;
      if (!FlushOutbox(shard, conn)) CloseConnection(shard, conn);
    }

    const int64_t now = SteadyMillis();
    if (!draining) {
      timeout_millis = SweepDeadlines(shard, now);
      continue;
    }

    // Drain phase: no new reads are dispatched above; finish once every
    // adopted connection has no in-flight request and an empty outbox, or
    // the deadline passes — whichever is first.
    bool settled = true;
    for (auto& [fd, conn] : shard->conns) {
      if (conn->inflight.load(std::memory_order_acquire) > 0) {
        settled = false;
        break;
      }
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (!conn->outbox.empty()) {
        settled = false;
        break;
      }
    }
    if (settled || now >= drain_deadline_millis) break;
  }

  // Teardown: close every socket this shard still owns and seal the
  // mailbox so late responses drop instead of waking a dead loop.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(shard->conns.size());
  for (auto& [fd, conn] : shard->conns) remaining.push_back(conn);
  for (const auto& conn : remaining) CloseConnection(shard, conn);
  {
    std::lock_guard<std::mutex> lock(shard->mailbox->mu);
    shard->mailbox->event_fd = -1;
    shard->mailbox->stop = true;
    for (int fd : shard->mailbox->accepts) {
      ::close(fd);
      const size_t after =
          active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      metrics.connections_active->Set(static_cast<double>(after));
    }
    shard->mailbox->accepts.clear();
    shard->mailbox->flush.clear();
  }
  ::close(shard->epoll_fd);
  ::close(shard->event_fd);
}

}  // namespace cats::serve
