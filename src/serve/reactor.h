#ifndef CATS_SERVE_REACTOR_H_
#define CATS_SERVE_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/result.h"

namespace cats::serve {

struct TcpServerOptions;  // serve/tcp_server.h

/// The epoll-driven transport behind TcpServer's default
/// TcpTransport::kReactor: one blocking acceptor thread distributes
/// connections round-robin across N event-loop shards; each shard owns its
/// connections' non-blocking sockets, a grow-only read buffer decoded
/// zero-copy by FrameReader, and a per-connection response outbox flushed
/// with vectored writev (header + payload iovecs, no per-response string
/// concatenation). Scoring responses complete asynchronously on ServeLoop
/// worker threads and are handed back to the owning shard through its
/// eventfd mailbox — sockets are only ever read and written by their
/// shard's thread, so no per-connection locks sit on the I/O path.
///
/// Slow-client deadlines are poll-timer based (the epoll_wait timeout
/// doubles as the deadline sweep tick): a connection that delivers no
/// bytes for recv_timeout_millis, or whose pending responses cannot make
/// write progress for send_timeout_millis, is evicted and counted in
/// serve.tcp.timeouts_total — same semantics as the legacy per-socket
/// SO_RCVTIMEO/SO_SNDTIMEO guard, without a thread to reclaim.
///
/// Shutdown is a two-phase drain: Stop() first closes the listener (no new
/// connections), then shards stop reading but keep flushing — responses
/// for every request already submitted to the ServeLoop are written out,
/// up to drain_deadline_millis — and only then are the sockets closed.
class EpollReactor {
 public:
  /// `loop` must outlive the reactor and must already be Start()ed.
  EpollReactor(ServeLoop* loop, const TcpServerOptions& options);
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Binds 127.0.0.1:port, starts the acceptor and the shard loops.
  Status Start();

  /// Two-phase drain shutdown (see class comment). Idempotent.
  void Stop();

  /// The port actually bound (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

 private:
  /// One response frame waiting on a connection's outbox: the 16-byte
  /// header and the serialized JSON payload stay separate so the flush can
  /// writev them without concatenating; `sent` counts bytes of
  /// header+payload already on the wire (partial-write resume point).
  struct OutFrame {
    char header[kFrameHeaderBytes];
    std::string payload;
    size_t sent = 0;
  };

  struct Shard;

  /// Shared per-connection state. The shard thread owns the socket and the
  /// read side outright; only the outbox (fed by ServeLoop worker
  /// callbacks) needs a mutex.
  struct Connection {
    int fd = -1;
    size_t shard_index = 0;
    FrameReader reader;
    std::mutex out_mu;  // guards outbox, outbox_bytes, closed
    std::deque<OutFrame> outbox;
    size_t outbox_bytes = 0;
    bool closed = false;       // fd released; late responses are dropped
    bool want_write = false;   // EPOLLOUT armed after a short/EAGAIN write
    /// Requests submitted to the ServeLoop whose response has not yet been
    /// queued on the outbox — what the drain phase waits for.
    std::atomic<uint32_t> inflight{0};
    int64_t last_read_millis = 0;              // recv-deadline bookkeeping
    int64_t write_stalled_since_millis = -1;   // send-deadline bookkeeping
  };

  /// The cross-thread door into a shard. Outlives the shard thread (held
  /// by shared_ptr from response callbacks), so a response completing
  /// after Stop() finds event_fd == -1 and drops instead of waking a dead
  /// loop.
  struct Mailbox {
    std::mutex mu;
    std::vector<int> accepts;                             // fds to adopt
    std::vector<std::shared_ptr<Connection>> flush;       // conns with output
    int event_fd = -1;
    bool draining = false;
    bool stop = false;
  };

  struct Shard {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::shared_ptr<Mailbox> mailbox;
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
  };

  void AcceptLoop();
  void ShardLoop(Shard* shard);
  /// Drains the socket until EAGAIN, dispatching every complete frame into
  /// the ServeLoop. Returns false when the connection must close (peer
  /// hangup or fatal framing error).
  bool ReadAndDispatch(Shard* shard, const std::shared_ptr<Connection>& conn);
  /// Flushes the outbox with vectored writes. Returns false on a dead
  /// socket. Arms/disarms EPOLLOUT as the outbox fills and empties.
  bool FlushOutbox(Shard* shard, const std::shared_ptr<Connection>& conn);
  void CloseConnection(Shard* shard, const std::shared_ptr<Connection>& conn);
  /// Sweeps recv/send deadlines; returns the millis until the next one.
  int SweepDeadlines(Shard* shard, int64_t now_millis);
  void UpdateHighWater(size_t bytes);

  ServeLoop* loop_;
  uint16_t configured_port_ = 0;
  uint32_t recv_timeout_millis_ = 0;
  uint32_t send_timeout_millis_ = 0;
  size_t max_connections_ = 0;
  uint32_t drain_deadline_millis_ = 0;
  size_t num_shards_ = 1;

  uint16_t port_ = 0;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> buffer_high_water_{0};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cats::serve

#endif  // CATS_SERVE_REACTOR_H_
