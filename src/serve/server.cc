#include "serve/server.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "collect/record.h"
#include "core/detector.h"
#include "core/feature_extractor.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace cats::serve {
namespace {

/// Stable handles for every serve.* metric except the swap family (owned
/// by model_gateway.cc) and the TCP family (owned by tcp_server.cc).
struct ServeMetrics {
  obs::Counter* received;
  obs::Counter* accepted;
  obs::Counter* overload_rejected;
  obs::Counter* rejected;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* shed;
  obs::LatencyHistogram* request_latency;
  obs::LatencyHistogram* score_batch_latency;
  obs::LatencyHistogram* batch_requests;
  obs::Gauge* slo_p50;
  obs::Gauge* slo_p99;
  obs::Gauge* item_cache_size;
  util::BoundedQueueMetrics admission;

  static const ServeMetrics& Get() {
    static const ServeMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new ServeMetrics{
          r.GetCounter(obs::kServeRequestsReceivedTotal),
          r.GetCounter(obs::kServeRequestsAcceptedTotal),
          r.GetCounter(obs::kServeRequestsOverloadRejectedTotal),
          r.GetCounter(obs::kServeRequestsRejectedTotal),
          r.GetCounter(obs::kServeRequestsOkTotal),
          r.GetCounter(obs::kServeRequestsErrorTotal),
          r.GetCounter(obs::kServeRequestsShedTotal),
          r.GetLatencyHistogram(obs::kServeRequestLatencyMicros),
          r.GetLatencyHistogram(obs::kServeScoreBatchLatencyMicros),
          r.GetHistogram(obs::kServeBatchRequests,
                         obs::LatencyHistogram::UniformBounds(1.0, 64.0, 16)),
          r.GetGauge(obs::kServeSloP50Micros),
          r.GetGauge(obs::kServeSloP99Micros),
          r.GetGauge(obs::kServeItemCacheSize),
          util::BoundedQueueMetrics{
              r.GetGauge(obs::kServeAdmissionDepth),
              r.GetCounter(obs::kServeAdmissionPushedTotal),
              r.GetCounter(obs::kServeAdmissionPushStallMicrosTotal),
              r.GetCounter(obs::kServeAdmissionPopStallMicrosTotal)}};
    }();
    return *metrics;
  }
};

/// Upper bound of the bucket holding the q-quantile of a live histogram.
/// Reads the atomic bucket counters without a snapshot — each counter is
/// individually consistent, which is all a gauge refresh needs.
double LiveQuantileUpperBound(const obs::LatencyHistogram& hist, double q) {
  const uint64_t total = hist.total_count();
  if (total == 0) return 0.0;
  const auto& bounds = hist.bounds();
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    seen += hist.bucket_count(i);
    if (seen >= rank) return bounds[i];
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Per-item disposition derived from a one-item StagedBatch.
std::string_view DispositionOf(const core::StagedBatch& staged) {
  if (!staged.quarantined.empty()) return "quarantined";
  if (!staged.pending.empty()) return "classified";
  if (staged.filtered_low_sales > 0) return "filtered_low_sales";
  if (staged.filtered_no_signal > 0) return "filtered_no_signal";
  return "filtered_no_comments";
}

}  // namespace

ServeLoop::ServeLoop(ServeOptions options)
    : options_(options), drift_(options_.drift) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_batch_requests < 1) options_.max_batch_requests = 1;
}

ServeLoop::~ServeLoop() { Stop(StopMode::kDrain); }

Status ServeLoop::Start(const std::string& model_dir,
                        std::vector<collect::CollectedItem> probe_items) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("serve loop is already running");
  }
  // Keep a copy before the gateway consumes the originals: the drift
  // reference is rebuilt from these on every successful swap.
  if (options_.enable_drift_detection) reference_items_ = probe_items;
  auto gateway =
      std::make_unique<ModelGateway>(std::move(probe_items), options_.cats);
  CATS_RETURN_NOT_OK(gateway->LoadInitial(model_dir));
  gateway_ = std::move(gateway);
  ResetDriftReference();

  shedding_.store(false, std::memory_order_release);
  admission_ = std::make_unique<util::BoundedQueue<PendingRequest>>(
      options_.queue_capacity, ServeMetrics::Get().admission);
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ServeLoop::Stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  if (mode == StopMode::kShed) {
    shedding_.store(true, std::memory_order_release);
  }
  admission_->Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ServeLoop::Submit(Message request, std::function<void(Message)> done) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  stats_.received.fetch_add(1, std::memory_order_relaxed);
  metrics.received->Increment();
  const uint32_t id = request.request_id;
  if (!IsRequestType(request.type)) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected->Increment();
    done(ErrorResponse(
        id, Status::InvalidArgument(
                StrFormat("not a request opcode: 0x%02x",
                          static_cast<unsigned>(request.type)))));
    return;
  }
  if (!running_.load(std::memory_order_acquire)) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected->Increment();
    done(ErrorResponse(id,
                       Status::Unavailable("serve loop is not running")));
    return;
  }
  PendingRequest pending;
  pending.request = std::move(request);
  pending.done = done;  // copy: TryPush consumes its argument even on failure
  pending.accepted_micros = NowMicros();
  if (!admission_->TryPush(std::move(pending))) {
    // Admission control: a full queue (or a concurrent shutdown closing it)
    // answers immediately with a typed retry hint instead of queueing
    // unboundedly — the client backs off, and the p99 of accepted requests
    // stays bounded by queue_capacity / service rate.
    stats_.overload_rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.overload_rejected->Increment();
    done(OverloadedResponse(id, options_.retry_after_millis));
    return;
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  metrics.accepted->Increment();
}

Message ServeLoop::Call(Message request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Message response;
  Submit(std::move(request), [&](Message m) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(m);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return response;
}

void ServeLoop::WorkerLoop() {
  std::vector<PendingRequest> batch;
  while (admission_->PopBatch(&batch, options_.max_batch_requests)) {
    if (shedding_.load(std::memory_order_acquire)) {
      const ServeMetrics& metrics = ServeMetrics::Get();
      for (PendingRequest& pending : batch) {
        stats_.shed.fetch_add(1, std::memory_order_relaxed);
        metrics.shed->Increment();
        pending.done(ErrorResponse(
            pending.request.request_id,
            Status::Unavailable("server shutting down, request shed")));
      }
      continue;
    }
    ProcessBatch(&batch);
  }
}

void ServeLoop::ProcessBatch(std::vector<PendingRequest>* batch) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.batch_requests->Observe(static_cast<double>(batch->size()));

  // One model snapshot per batch: every request in it scores on the same
  // generation, and a concurrent swap cannot pull the model out from under
  // us — the shared_ptr keeps the old deployment alive until we are done.
  std::shared_ptr<const ModelSnapshot> snapshot = gateway_->Acquire();
  const core::Detector& detector = snapshot->detector();
  // Serial per-batch extractor: parallelism comes from the worker pool,
  // not nested thread pools (same design as the streaming plane).
  core::FeatureExtractor extractor(&detector.extractor().model(),
                                   core::FeatureExtractorOptions{
                                       .num_threads = 1});

  // First pass: control requests answered inline, score requests staged.
  // Staging (validate -> extract -> rules) is the expensive half and runs
  // concurrently across workers; StageForScoring is thread-safe.
  struct ScoreJob {
    size_t request_index;
    core::StagedBatch staged;  // staged over exactly one item
    uint64_t item_id = 0;
  };
  std::vector<ScoreJob> jobs;
  std::vector<core::FeatureVector> rows;
  jobs.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    PendingRequest& pending = (*batch)[i];
    switch (pending.request.type) {
      case MessageType::kHealth:
        Finish(&pending, HandleHealth(pending));
        continue;
      case MessageType::kMetrics:
        Finish(&pending, HandleMetrics(pending));
        continue;
      case MessageType::kSwapModel:
        Finish(&pending, HandleSwap(pending));
        continue;
      case MessageType::kScoreItem:
      case MessageType::kScoreCommentDelta:
        break;
      default:
        Finish(&pending,
               ErrorResponse(pending.request.request_id,
                             Status::InvalidArgument("not a request type")));
        continue;
    }
    auto item = ResolveItem(pending.request);
    if (!item.ok()) {
      Finish(&pending,
             ErrorResponse(pending.request.request_id, item.status()));
      continue;
    }
    ScoreJob job;
    job.request_index = i;
    job.item_id = item->item.item_id;
    job.staged = detector.StageForScoring({*item}, /*trace=*/nullptr,
                                          &extractor);
    if (!job.staged.pending.empty()) {
      core::FeatureVector row;
      std::copy_n(job.staged.rows.begin(), row.size(), row.begin());
      rows.push_back(row);
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return;

  // Second pass: one batched classifier call for every pending row in the
  // batch. The classifier's batch path owns a thread pool, so scoring is
  // serialized across workers; staging above is not.
  std::vector<double> scores;
  {
    const auto score_start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(score_mu_);
    auto scored = detector.ScoreFeatures(rows);
    if (!scored.ok()) {
      for (ScoreJob& job : jobs) {
        PendingRequest& pending = (*batch)[job.request_index];
        Finish(&pending, ErrorResponse(pending.request.request_id,
                                       scored.status()));
      }
      return;
    }
    scores = std::move(scored).value();
    metrics.score_batch_latency->Observe(
        static_cast<double>(ElapsedMicros(score_start)));
  }
  // Every served score feeds the drift window — the detector is the early
  // warning that the model under this traffic has gone stale.
  if (options_.enable_drift_detection && drift_.has_reference()) {
    drift_.ObserveBatch(scores);
  }

  // Third pass: per-request responses, plus the detector.* run mirror so
  // the process-wide pipeline counters stay coherent with served traffic.
  core::DetectionReport mirror;
  size_t next_score = 0;
  const double threshold = detector.decision_threshold();
  for (ScoreJob& job : jobs) {
    PendingRequest& pending = (*batch)[job.request_index];
    const core::StagedBatch& staged = job.staged;
    mirror.items_scanned += staged.items_scanned;
    mirror.items_quarantined += staged.quarantined.size();
    mirror.items_classified += staged.pending.size();
    mirror.items_degraded += staged.degraded;

    JsonValue payload = JsonValue::Object();
    payload.Set("item_id", JsonValue::Int(static_cast<int64_t>(job.item_id)));
    payload.Set("model_generation",
                JsonValue::Int(static_cast<int64_t>(snapshot->generation)));
    payload.Set("disposition",
                JsonValue::String(std::string(DispositionOf(staged))));
    if (!staged.quarantined.empty()) {
      payload.Set("issues",
                  JsonValue::String(core::RecordIssuesToString(
                      staged.quarantined.front().issues)));
      payload.Set("flagged", JsonValue::Bool(false));
    } else if (!staged.pending.empty()) {
      const double score = scores[next_score++];
      const bool degraded = staged.pending.front().degraded;
      const bool flagged = score >= threshold;
      payload.Set("score", JsonValue::Number(score));
      payload.Set("flagged", JsonValue::Bool(flagged));
      payload.Set("confidence",
                  JsonValue::String(degraded ? "degraded" : "full"));
      if (flagged) {
        auto& sink = degraded ? mirror.degraded_detections : mirror.detections;
        sink.push_back(core::Detection{
            job.item_id, score,
            degraded ? core::ScoreConfidence::kDegraded
                     : core::ScoreConfidence::kFull});
      }
    } else {
      payload.Set("flagged", JsonValue::Bool(false));
    }
    Finish(&pending, OkResponse(pending.request.request_id,
                                std::move(payload)));
  }
  core::Detector::MirrorReportMetrics(mirror);
}

void ServeLoop::Finish(PendingRequest* pending, Message response) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  if (response.type == MessageType::kOk) {
    stats_.ok.fetch_add(1, std::memory_order_relaxed);
    metrics.ok->Increment();
  } else {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
  }
  metrics.request_latency->Observe(
      static_cast<double>(NowMicros() - pending->accepted_micros));
  metrics.slo_p50->Set(LiveQuantileUpperBound(*metrics.request_latency, 0.50));
  metrics.slo_p99->Set(LiveQuantileUpperBound(*metrics.request_latency, 0.99));
  pending->done(std::move(response));
}

Message ServeLoop::HandleHealth(const PendingRequest& pending) {
  std::shared_ptr<const ModelSnapshot> snapshot = gateway_->Acquire();
  JsonValue payload = JsonValue::Object();
  payload.Set("status", JsonValue::String(
                            running_.load(std::memory_order_acquire)
                                ? "serving"
                                : "stopping"));
  payload.Set("model_generation",
              JsonValue::Int(static_cast<int64_t>(snapshot->generation)));
  payload.Set("model_dir", JsonValue::String(snapshot->model_dir));
  payload.Set("queue_depth",
              JsonValue::Int(static_cast<int64_t>(admission_->size())));
  payload.Set("queue_capacity",
              JsonValue::Int(static_cast<int64_t>(options_.queue_capacity)));
  payload.Set("workers",
              JsonValue::Int(static_cast<int64_t>(options_.num_workers)));
  payload.Set("probe_items",
              JsonValue::Int(static_cast<int64_t>(gateway_->probe_items())));
  payload.Set("drift",
              JsonValue::String(std::string(
                  options_.enable_drift_detection
                      ? drift::DriftStatusName(drift_.status())
                      : "disabled")));
  payload.Set("requests_received",
              JsonValue::Int(static_cast<int64_t>(
                  stats_.received.load(std::memory_order_relaxed))));
  return OkResponse(pending.request.request_id, std::move(payload));
}

Message ServeLoop::HandleMetrics(const PendingRequest& pending) {
  return OkResponse(pending.request.request_id,
                    obs::MetricsRegistry::Global().Snapshot().ToJson());
}

Message ServeLoop::HandleSwap(const PendingRequest& pending) {
  auto dir = pending.request.payload.GetString("model_dir");
  if (!dir.ok()) {
    return ErrorResponse(pending.request.request_id,
                         Status::InvalidArgument(
                             "swap_model payload needs a model_dir string"));
  }
  auto outcome = gateway_->Swap(*dir);
  if (!outcome.ok()) {
    return ErrorResponse(pending.request.request_id, outcome.status());
  }
  // The swapped-in model scores differently by design; re-anchor drift on
  // its own probe-score distribution instead of flagging the swap itself.
  ResetDriftReference();
  JsonValue payload = JsonValue::Object();
  payload.Set("model_generation",
              JsonValue::Int(static_cast<int64_t>(outcome->generation)));
  payload.Set("latency_micros", JsonValue::Int(outcome->latency_micros));
  payload.Set("probe_items_scored",
              JsonValue::Int(
                  static_cast<int64_t>(outcome->probe_items_scored)));
  return OkResponse(pending.request.request_id, std::move(payload));
}

int64_t ServeLoop::NowMicros() const {
  if (options_.clock != nullptr) return options_.clock->NowMicros();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ServeLoop::ResetDriftReference() {
  if (!options_.enable_drift_detection || reference_items_.empty()) return;
  std::shared_ptr<const ModelSnapshot> snapshot = gateway_->Acquire();
  const core::Detector& detector = snapshot->detector();
  core::StagedBatch staged = detector.StageForScoring(reference_items_);
  std::vector<core::FeatureVector> rows;
  rows.reserve(staged.pending.size());
  for (size_t i = 0; i < staged.pending.size(); ++i) {
    core::FeatureVector row;
    std::copy_n(staged.rows.begin() +
                    static_cast<std::ptrdiff_t>(i * row.size()),
                row.size(), row.begin());
    rows.push_back(row);
  }
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(score_mu_);
  auto scored = detector.ScoreFeatures(rows);
  if (!scored.ok()) return;  // old reference keeps standing
  drift_.SetReference(*scored);
}

Result<collect::CollectedItem> ServeLoop::ResolveItem(
    const Message& request) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  if (request.type == MessageType::kScoreItem) {
    const JsonValue* item_json = request.payload.Get("item");
    if (item_json == nullptr) {
      return Status::InvalidArgument(
          "score_item payload needs an \"item\" object");
    }
    CATS_ASSIGN_OR_RETURN(collect::ItemRecord item,
                          collect::ParseItemRecord(*item_json));
    collect::CollectedItem collected;
    collected.item = std::move(item);
    if (const JsonValue* comments = request.payload.Get("comments");
        comments != nullptr && comments->is_array()) {
      collected.comments.reserve(comments->size());
      for (size_t i = 0; i < comments->size(); ++i) {
        CATS_ASSIGN_OR_RETURN(collect::CommentRecord comment,
                              collect::ParseCommentRecord(comments->at(i)));
        collected.comments.push_back(std::move(comment));
      }
    }
    // Remember the item for later score_comment_delta calls (FIFO-bounded).
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto [it, inserted] =
          item_cache_.insert_or_assign(collected.item.item_id, collected);
      (void)it;
      if (inserted) {
        item_cache_fifo_.push_back(collected.item.item_id);
        while (item_cache_.size() > options_.item_cache_capacity &&
               !item_cache_fifo_.empty()) {
          item_cache_.erase(item_cache_fifo_.front());
          item_cache_fifo_.pop_front();
        }
      }
      metrics.item_cache_size->Set(static_cast<double>(item_cache_.size()));
    }
    return collected;
  }

  // score_comment_delta: append new comments to the cached item, rescore
  // the whole item. Duplicate comment_ids in the delta are dropped, same
  // as the crawler's store-side dedup.
  CATS_ASSIGN_OR_RETURN(int64_t item_id, request.payload.GetInt("item_id"));
  const JsonValue* comments = request.payload.Get("comments");
  if (comments == nullptr || !comments->is_array()) {
    return Status::InvalidArgument(
        "score_comment_delta payload needs a \"comments\" array");
  }
  std::vector<collect::CommentRecord> delta;
  delta.reserve(comments->size());
  for (size_t i = 0; i < comments->size(); ++i) {
    CATS_ASSIGN_OR_RETURN(collect::CommentRecord comment,
                          collect::ParseCommentRecord(comments->at(i)));
    delta.push_back(std::move(comment));
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = item_cache_.find(static_cast<uint64_t>(item_id));
  if (it == item_cache_.end()) {
    return Status::NotFound(StrFormat(
        "item %lld is not cached; send a full score_item first",
        static_cast<long long>(item_id)));
  }
  collect::CollectedItem& cached = it->second;
  for (collect::CommentRecord& comment : delta) {
    const bool duplicate =
        std::any_of(cached.comments.begin(), cached.comments.end(),
                    [&](const collect::CommentRecord& existing) {
                      return existing.comment_id == comment.comment_id;
                    });
    if (!duplicate) cached.comments.push_back(std::move(comment));
  }
  return cached;
}

JsonValue CollectedItemToJson(const collect::CollectedItem& item) {
  JsonValue v = JsonValue::Object();
  v.Set("item", collect::ItemRecordToJson(item.item));
  JsonValue comments = JsonValue::Array();
  for (const collect::CommentRecord& c : item.comments) {
    comments.Append(collect::CommentRecordToJson(c));
  }
  v.Set("comments", std::move(comments));
  return v;
}

Result<collect::CollectedItem> CollectedItemFromJson(const JsonValue& v) {
  const JsonValue* item_json = v.Get("item");
  if (item_json == nullptr) {
    return Status::InvalidArgument("missing \"item\" object");
  }
  CATS_ASSIGN_OR_RETURN(collect::ItemRecord item,
                        collect::ParseItemRecord(*item_json));
  collect::CollectedItem collected;
  collected.item = std::move(item);
  if (const JsonValue* comments = v.Get("comments");
      comments != nullptr && comments->is_array()) {
    for (size_t i = 0; i < comments->size(); ++i) {
      CATS_ASSIGN_OR_RETURN(collect::CommentRecord comment,
                            collect::ParseCommentRecord(comments->at(i)));
      collected.comments.push_back(std::move(comment));
    }
  }
  return collected;
}

Message MakeScoreItemRequest(uint32_t request_id,
                             const collect::CollectedItem& item) {
  Message m;
  m.type = MessageType::kScoreItem;
  m.request_id = request_id;
  m.payload = CollectedItemToJson(item);
  return m;
}

Message MakeScoreCommentDeltaRequest(
    uint32_t request_id, uint64_t item_id,
    const std::vector<collect::CommentRecord>& comments) {
  Message m;
  m.type = MessageType::kScoreCommentDelta;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  m.payload.Set("item_id", JsonValue::Int(static_cast<int64_t>(item_id)));
  JsonValue array = JsonValue::Array();
  for (const collect::CommentRecord& c : comments) {
    array.Append(collect::CommentRecordToJson(c));
  }
  m.payload.Set("comments", std::move(array));
  return m;
}

Message MakeHealthRequest(uint32_t request_id) {
  Message m;
  m.type = MessageType::kHealth;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  return m;
}

Message MakeMetricsRequest(uint32_t request_id) {
  Message m;
  m.type = MessageType::kMetrics;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  return m;
}

Message MakeSwapModelRequest(uint32_t request_id,
                             const std::string& model_dir) {
  Message m;
  m.type = MessageType::kSwapModel;
  m.request_id = request_id;
  m.payload = JsonValue::Object();
  m.payload.Set("model_dir", JsonValue::String(model_dir));
  return m;
}

}  // namespace cats::serve
