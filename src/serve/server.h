#ifndef CATS_SERVE_SERVER_H_
#define CATS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collect/store.h"
#include "drift/drift_detector.h"
#include "fault/clock.h"
#include "serve/model_gateway.h"
#include "serve/protocol.h"
#include "util/bounded_queue.h"
#include "util/result.h"

namespace cats::serve {

/// Knobs of the scoring server. Defaults suit the repo's test scale; a
/// deployment sizes `queue_capacity` against its latency SLO — the queue
/// is the only place a request may wait, so capacity bounds worst-case
/// queueing delay at capacity / throughput.
struct ServeOptions {
  /// Admission queue capacity. A request arriving to a full queue is NOT
  /// queued: it gets an immediate kOverloaded response with a retry hint.
  /// Bounded admission is what keeps p99 flat when offered load exceeds
  /// capacity — the server sheds instead of building an unbounded backlog.
  size_t queue_capacity = 128;
  /// Scoring workers popping the admission queue.
  size_t num_workers = 2;
  /// Requests a worker pops in one adaptive micro-batch
  /// (util::BoundedQueue::PopBatch): under load the whole batch's feature
  /// rows are classified in a single batched predict call.
  size_t max_batch_requests = 16;
  /// Retry hint carried by kOverloaded responses.
  uint32_t retry_after_millis = 25;
  /// Items remembered for score_comment_delta, FIFO-evicted beyond this.
  size_t item_cache_capacity = 4096;
  /// Options for every core::Cats the model gateway loads (boot model and
  /// swap candidates) — detector/extractor knobs, including the token-id
  /// hot-path toggle (see FeatureExtractorOptions::use_token_ids).
  core::CatsOptions cats;
  /// Online score-drift monitoring (drift/drift_detector.h). The reference
  /// distribution is the boot model's scores over the probe items, reset on
  /// every successful swap; each scored request feeds the sliding window.
  drift::DriftDetectorOptions drift;
  /// Disable to skip drift bookkeeping entirely (health reports "disabled").
  bool enable_drift_detection = true;
  /// Injectable time source for request latency accounting. nullptr means
  /// wall clock; tests inject a fault::FakeClock for deterministic timing.
  fault::VirtualClock* clock = nullptr;
};

/// Exact per-instance request accounting, all relaxed atomics. Invariants
/// (asserted by tests/serve_chaos_test.cc):
///   received == accepted + overload_rejected + rejected
///   accepted == ok + errors + shed        (after Stop returned)
struct ServeStats {
  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> overload_rejected{0};
  /// Refused before the queue with a typed error (loop not running, or a
  /// non-request opcode submitted).
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> shed{0};
};

/// How Stop treats requests still sitting in the admission queue.
enum class StopMode {
  kDrain,  // workers score everything already accepted, then exit
  kShed,   // queued requests get a typed Unavailable reply, unscored
};

/// The long-lived fraud-scoring loop: bounded admission queue -> worker
/// pool -> reply callbacks, scoring through a hot-swappable ModelGateway
/// snapshot. Transport-agnostic: TcpServer (serve/tcp_server.h) feeds it
/// decoded frames, tests and the load generator feed it directly — same
/// admission, same workers, same accounting either way.
///
///   Submit(msg, done) --TryPush--> [admission BoundedQueue] --PopBatch-->
///       worker: stage each item (validate/extract/rules, thread-safe) ->
///       one batched classifier call -> done(response)   [x num_workers]
///
/// Request handling per MessageType is documented in docs/SERVING.md
/// (request/response payloads, overload semantics, the swap state
/// machine). Scoring is result-identical to Detector::Detect over the
/// same items: staging runs the exact same StageForScoring code per item
/// and the classifier scores the staged rows.
class ServeLoop {
 public:
  explicit ServeLoop(ServeOptions options);
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Loads the boot model (rejecting corrupt candidates via the manifest
  /// CRC path), installs `probe_items` as the held-out validation rows for
  /// every later swap, and starts the workers.
  Status Start(const std::string& model_dir,
               std::vector<collect::CollectedItem> probe_items);

  /// Stops the loop: closes admission, then drains or sheds the backlog
  /// (see StopMode) and joins the workers. Idempotent.
  void Stop(StopMode mode = StopMode::kDrain);

  /// Submits one request. `done` is invoked exactly once — inline when
  /// admission refuses (kOverloaded) or the server is stopped
  /// (kError/Unavailable), from a worker thread otherwise. `done` must be
  /// callable from any thread and must not block on the serve loop.
  void Submit(Message request, std::function<void(Message)> done);

  /// Synchronous convenience wrapper around Submit for tests, the CLI and
  /// the TCP handler: blocks until the response is ready.
  Message Call(Message request);

  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServeStats& stats() const { return stats_; }
  const ServeOptions& options() const { return options_; }
  uint64_t model_generation() const {
    return gateway_ == nullptr ? 0 : gateway_->generation();
  }

  /// Live drift verdict over served scores (kStable until the window fills
  /// past min_observations). Always kStable when detection is disabled.
  drift::DriftStatus drift_status() const { return drift_.status(); }
  const drift::DriftDetector& drift_detector() const { return drift_; }

 private:
  struct PendingRequest {
    Message request;
    std::function<void(Message)> done;
    int64_t accepted_micros = 0;  // on the injected clock
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<PendingRequest>* batch);

  /// Completes one request: counts it, observes its latency, updates the
  /// SLO gauges, invokes done.
  void Finish(PendingRequest* pending, Message response);

  /// Handlers for the non-scoring request types.
  Message HandleHealth(const PendingRequest& pending);
  Message HandleMetrics(const PendingRequest& pending);
  Message HandleSwap(const PendingRequest& pending);

  /// Resolves the request's CollectedItem: from the payload (score_item,
  /// also caching it) or cache + delta (score_comment_delta).
  Result<collect::CollectedItem> ResolveItem(const Message& request);

  /// Current time on the injected clock (wall clock when none was given).
  int64_t NowMicros() const;

  /// Rebuilds the drift reference: scores `reference_items_` on the current
  /// model snapshot and installs the result as the expected distribution.
  /// Called at Start and after every successful swap — drift is measured
  /// against the model that is actually serving.
  void ResetDriftReference();

  ServeOptions options_;
  std::unique_ptr<ModelGateway> gateway_;
  ServeStats stats_;
  drift::DriftDetector drift_;
  /// Copy of the probe items kept for drift-reference rescoring (the
  /// originals move into the gateway at Start).
  std::vector<collect::CollectedItem> reference_items_;

  std::unique_ptr<util::BoundedQueue<PendingRequest>> admission_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shedding_{false};
  std::mutex lifecycle_mu_;  // serializes Start/Stop

  /// Scoring-side serialization: the classifier's batch path owns a thread
  /// pool, so only one worker classifies at a time (staging — the
  /// expensive half — still runs fully parallel across workers).
  std::mutex score_mu_;

  /// score_comment_delta state: item_id -> last-known CollectedItem.
  std::mutex cache_mu_;
  std::unordered_map<uint64_t, collect::CollectedItem> item_cache_;
  std::deque<uint64_t> item_cache_fifo_;
};

/// Item payload codecs shared by the server, clients and the loadgen:
///   {"item": {...items.jsonl record...}, "comments": [{...comments.jsonl
///   record...}, ...]}
JsonValue CollectedItemToJson(const collect::CollectedItem& item);
Result<collect::CollectedItem> CollectedItemFromJson(const JsonValue& v);

/// Builds the canonical request messages (client side).
Message MakeScoreItemRequest(uint32_t request_id,
                             const collect::CollectedItem& item);
Message MakeScoreCommentDeltaRequest(
    uint32_t request_id, uint64_t item_id,
    const std::vector<collect::CommentRecord>& comments);
Message MakeHealthRequest(uint32_t request_id);
Message MakeMetricsRequest(uint32_t request_id);
Message MakeSwapModelRequest(uint32_t request_id,
                             const std::string& model_dir);

}  // namespace cats::serve

#endif  // CATS_SERVE_SERVER_H_
