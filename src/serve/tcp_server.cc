#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/reactor.h"
#include "util/string_util.h"

namespace cats::serve {
namespace {

struct TcpMetrics {
  obs::Counter* connections_opened;
  obs::Gauge* connections_active;
  obs::Counter* frames_read;
  obs::Counter* frame_errors;
  obs::Counter* timeouts;
  obs::Counter* conn_rejected;

  static const TcpMetrics& Get() {
    static const TcpMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new TcpMetrics{
          r.GetCounter(obs::kServeTcpConnectionsOpenedTotal),
          r.GetGauge(obs::kServeTcpConnectionsActive),
          r.GetCounter(obs::kServeTcpFramesReadTotal),
          r.GetCounter(obs::kServeTcpFrameErrorsTotal),
          r.GetCounter(obs::kServeTcpTimeoutsTotal),
          r.GetCounter(obs::kServeTcpConnRejectedTotal)};
    }();
    return *metrics;
  }
};

timeval MillisToTimeval(uint32_t millis) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  return tv;
}

/// Writes the whole buffer, retrying short writes. MSG_NOSIGNAL so a peer
/// that hung up yields EPIPE instead of killing the process.
Status WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped reading. A typed status so
        // the server side can count it as a slow-client timeout.
        return Status::Unavailable("send timed out (peer not reading)");
      }
      return Status::IoError(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

TcpServer::TcpServer(ServeLoop* loop, TcpServerOptions options)
    : loop_(loop), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

uint16_t TcpServer::port() const {
  if (reactor_ != nullptr) return reactor_->port();
  return port_;
}

Status TcpServer::Start() {
  if (options_.transport == TcpTransport::kReactor) {
    reactor_ = std::make_unique<EpollReactor>(loop_, options_);
    Status status = reactor_->Start();
    if (!status.ok()) reactor_.reset();
    return status;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError(StrFormat("bind to 127.0.0.1:%u failed: %s",
                                  options_.port, strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen failed: %s", strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const Status status = Status::IoError(
        StrFormat("getsockname failed: %s", strerror(errno)));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (reactor_ != nullptr) {
    reactor_->Stop();
    return;
  }
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Closing the listener kicks accept() out with an error.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // shutdown() unblocks any recv() without racing the fd number reuse a
    // close() here could cause; the connection thread closes its own fd.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.clear();
}

void TcpServer::AcceptLoop() {
  const TcpMetrics& metrics = TcpMetrics::Get();
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatally broken
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.recv_timeout_millis > 0) {
      const timeval tv = MillisToTimeval(options_.recv_timeout_millis);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (options_.send_timeout_millis > 0) {
      const timeval tv = MillisToTimeval(options_.send_timeout_millis);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (options_.max_connections > 0 &&
        conn_fds_.size() >= options_.max_connections) {
      // Connection cap: one thread per connection, so accepting past the
      // cap is a thread bomb. Close immediately; the client sees a reset
      // and backs off, same contract as queue-full admission.
      metrics.conn_rejected->Increment();
      ::close(fd);
      continue;
    }
    metrics.connections_opened->Increment();
    conn_fds_.push_back(fd);
    metrics.connections_active->Set(static_cast<double>(conn_fds_.size()));
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void TcpServer::ConnectionLoop(int fd) {
  const TcpMetrics& metrics = TcpMetrics::Get();
  FrameReader reader;
  // Shared write endpoint: serializes response frames (workers complete
  // out of order and each frame must hit the wire contiguously) and pins
  // the fd's lifetime — a late response after the connection closed finds
  // closed=true instead of writing into a recycled fd number.
  struct WriteEnd {
    std::mutex mu;
    int fd;
    bool closed = false;
  };
  auto write_end = std::make_shared<WriteEnd>();
  write_end->fd = fd;
  char buf[16 * 1024];
  bool fatal = false;
  while (!fatal) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired with no bytes: slow or stalled client. Drop
      // the connection to reclaim the thread; a healthy client reconnects.
      metrics.timeouts->Increment();
      break;
    }
    if (n <= 0) break;  // peer hung up, or Stop() shut the socket down
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (true) {
      auto message = reader.Next();
      if (!message.ok()) {
        if (message.status().code() == StatusCode::kNotFound) break;
        // Framing error: the stream position is unrecoverable. Count it
        // and drop the connection; the client reconnects with a clean
        // stream.
        metrics.frame_errors->Increment();
        fatal = true;
        break;
      }
      metrics.frames_read->Increment();
      loop_->Submit(std::move(message).value(),
                    [write_end](Message response) {
                      const std::string frame = EncodeFrame(response);
                      std::lock_guard<std::mutex> lock(write_end->mu);
                      if (write_end->closed) return;
                      const Status st = WriteAll(write_end->fd, frame);
                      if (st.code() == StatusCode::kUnavailable) {
                        // Send timed out mid-frame: the stream is torn.
                        // Shut the socket down so the reader thread exits
                        // and the connection is dismantled.
                        TcpMetrics::Get().timeouts->Increment();
                        ::shutdown(write_end->fd, SHUT_RDWR);
                      }
                    });
    }
  }
  {
    std::lock_guard<std::mutex> lock(write_end->mu);
    write_end->closed = true;
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
  metrics.connections_active->Set(static_cast<double>(conn_fds_.size()));
}

FrameClient::~FrameClient() { Close(); }

Status FrameClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(StrFormat(
        "connect to %s:%u failed: %s", host.c_str(), port, strerror(errno)));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void FrameClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
  pending_.clear();
}

Status FrameClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return WriteAll(fd_, bytes);
}

Result<Message> FrameClient::ReadMessage() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  char buf[16 * 1024];
  while (true) {
    auto message = reader_.Next();
    if (message.ok()) return message;
    if (message.status().code() != StatusCode::kNotFound) {
      return message.status();  // framing error — stream unusable
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError(StrFormat("recv failed: %s", strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<Message> FrameClient::Call(const Message& request) {
  CATS_RETURN_NOT_OK(SendRaw(EncodeFrame(request)));
  // Drain buffered responses first (pipelined calls may interleave).
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].request_id == request.request_id) {
      Message found = std::move(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
      return found;
    }
  }
  while (true) {
    CATS_ASSIGN_OR_RETURN(Message message, ReadMessage());
    if (message.request_id == request.request_id) return message;
    pending_.push_back(std::move(message));
  }
}

}  // namespace cats::serve
