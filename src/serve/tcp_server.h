#ifndef CATS_SERVE_TCP_SERVER_H_
#define CATS_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/result.h"

namespace cats::serve {

struct TcpServerOptions {
  /// Port to listen on; 0 asks the kernel for an ephemeral port (tests) —
  /// read the actual one back via port().
  uint16_t port = 0;
  /// Slow-client guard, read side: a connection that sends no bytes for
  /// this long is closed and its thread reclaimed (counted in
  /// serve.tcp.timeouts_total). 0 disables the timeout. With one OS thread
  /// per connection, an idle-forever client would otherwise pin a thread
  /// indefinitely.
  uint32_t recv_timeout_millis = 30'000;
  /// Slow-client guard, write side: a send() that cannot make progress for
  /// this long (client stopped reading, full socket buffer) fails the
  /// write and tears the connection down. 0 disables the timeout.
  uint32_t send_timeout_millis = 30'000;
  /// Cap on concurrent connections; accepts beyond it are closed
  /// immediately (counted in serve.tcp.conn_rejected_total) so a
  /// connection flood cannot spawn unbounded threads. 0 disables the cap.
  size_t max_connections = 64;
};

/// The socket skin over ServeLoop: accepts loopback TCP connections,
/// decodes length-prefixed frames (serve/protocol.h) and submits them to
/// the loop. Responses are written back on the same connection, each under
/// a per-connection write mutex; because every frame carries the client's
/// request_id, a client may pipeline requests and match responses out of
/// order. A framing error (bad magic, unknown opcode, oversized payload)
/// is unrecoverable for that byte stream, so the connection is closed
/// after counting serve.tcp.frame_errors_total.
///
/// One OS thread per connection — deliberate: admission control lives in
/// ServeLoop's bounded queue, so connection threads only parse and wait,
/// and the repo's workloads are a handful of loadgen connections, not C10k.
class TcpServer {
 public:
  /// `loop` must outlive the server and must already be Start()ed.
  TcpServer(ServeLoop* loop, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:port, starts the accept loop.
  Status Start();

  /// Closes the listener and every open connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The port actually bound (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  ServeLoop* loop_;
  TcpServerOptions options_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;  // guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Minimal blocking client for tests, the CLI and the load generator:
/// connects, sends one frame per Call, reads frames until the response
/// with the matching request_id arrives.
class FrameClient {
 public:
  FrameClient() = default;
  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and blocks for the response carrying the same
  /// request_id (responses to other in-flight ids are buffered).
  Result<Message> Call(const Message& request);

  /// Raw frame I/O for protocol-level tests.
  Status SendRaw(const std::string& bytes);
  Result<Message> ReadMessage();

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::vector<Message> pending_;  // responses read for other request_ids
};

}  // namespace cats::serve

#endif  // CATS_SERVE_TCP_SERVER_H_
