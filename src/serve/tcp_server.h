#ifndef CATS_SERVE_TCP_SERVER_H_
#define CATS_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/result.h"

namespace cats::serve {

class EpollReactor;

/// Which I/O engine carries the frames. Both speak the identical wire
/// protocol with identical typed-error, slow-client and connection-cap
/// semantics; keeping the legacy engine selectable lets one process A/B the
/// two in the same run (bench/bench_serve.cc does exactly that).
enum class TcpTransport {
  /// Epoll reactor (serve/reactor.h): an acceptor distributes connections
  /// across num_shards event loops; sockets are non-blocking, responses go
  /// out via vectored writev. The default — sustains hundreds of
  /// connections without hundreds of threads.
  kReactor,
  /// One blocking OS thread per connection. Simple and debuggable, but a
  /// thread bomb past a few dozen connections; kept as the A/B baseline.
  kThreadPerConnection,
};

struct TcpServerOptions {
  /// Port to listen on; 0 asks the kernel for an ephemeral port (tests) —
  /// read the actual one back via port().
  uint16_t port = 0;
  /// Slow-client guard, read side: a connection that sends no bytes for
  /// this long is closed and its thread reclaimed (counted in
  /// serve.tcp.timeouts_total). 0 disables the timeout. With one OS thread
  /// per connection, an idle-forever client would otherwise pin a thread
  /// indefinitely.
  uint32_t recv_timeout_millis = 30'000;
  /// Slow-client guard, write side: a send() that cannot make progress for
  /// this long (client stopped reading, full socket buffer) fails the
  /// write and tears the connection down. 0 disables the timeout.
  uint32_t send_timeout_millis = 30'000;
  /// Cap on concurrent connections; accepts beyond it are closed
  /// immediately (counted in serve.tcp.conn_rejected_total) so a
  /// connection flood cannot spawn unbounded threads. 0 disables the cap.
  size_t max_connections = 64;
  /// I/O engine. kReactor unless a caller explicitly asks for the legacy
  /// thread-per-connection path (A/B benchmarking, debugging).
  TcpTransport transport = TcpTransport::kReactor;
  /// Reactor only: number of event-loop shards. 0 means 1. One shard is
  /// right for single-core hosts; add shards only when epoll dispatch
  /// itself saturates a core.
  size_t num_shards = 1;
  /// Reactor only: Stop() drains — stops accepting and reading, keeps
  /// flushing responses for requests already admitted — for at most this
  /// long before closing sockets.
  uint32_t drain_deadline_millis = 1'000;
};

/// The socket skin over ServeLoop: accepts loopback TCP connections,
/// decodes length-prefixed frames (serve/protocol.h) and submits them to
/// the loop. Responses are written back on the same connection, each under
/// a per-connection write mutex; because every frame carries the client's
/// request_id, a client may pipeline requests and match responses out of
/// order. A framing error (bad magic, unknown opcode, oversized payload)
/// is unrecoverable for that byte stream, so the connection is closed
/// after counting serve.tcp.frame_errors_total.
///
/// TcpServer is a facade over two interchangeable I/O engines (see
/// TcpTransport): the default epoll reactor, and the legacy
/// thread-per-connection loop kept for A/B comparison. Admission control
/// lives in ServeLoop's bounded queue either way — the transport only
/// moves bytes.
class TcpServer {
 public:
  /// `loop` must outlive the server and must already be Start()ed.
  TcpServer(ServeLoop* loop, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:port, starts the accept loop.
  Status Start();

  /// Closes the listener and every open connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The port actually bound (resolves port 0 to the kernel's choice).
  uint16_t port() const;

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  ServeLoop* loop_;
  TcpServerOptions options_;
  std::unique_ptr<EpollReactor> reactor_;  // set iff transport == kReactor
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;  // guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Minimal blocking client for tests, the CLI and the load generator:
/// connects, sends one frame per Call, reads frames until the response
/// with the matching request_id arrives.
class FrameClient {
 public:
  FrameClient() = default;
  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and blocks for the response carrying the same
  /// request_id (responses to other in-flight ids are buffered).
  Result<Message> Call(const Message& request);

  /// Raw frame I/O for protocol-level tests.
  Status SendRaw(const std::string& bytes);
  Result<Message> ReadMessage();

  /// The underlying socket, for callers that take over the read side
  /// (the TCP load generator multiplexes many clients onto one epoll).
  int raw_fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::vector<Message> pending_;  // responses read for other request_ids
};

}  // namespace cats::serve

#endif  // CATS_SERVE_TCP_SERVER_H_
