#include "text/double_array_trie.h"

#include "util/logging.h"

namespace cats::text {

void DoubleArrayTrie::EnsureSize(size_t n) {
  if (n <= check_.size()) return;
  base_.resize(n, 0);
  check_.resize(n, -1);
  value_.resize(n, kNoValue);
}

int32_t DoubleArrayTrie::FindBase(const std::vector<uint8_t>& codes) {
  // First-fit: the smallest base >= 1 whose child slots are all free.
  // search_start_ skips the densely packed prefix; it only ever advances,
  // so the scan is amortized linear over the build.
  while (static_cast<size_t>(search_start_) < check_.size() &&
         check_[static_cast<size_t>(search_start_)] != -1) {
    ++search_start_;
  }
  for (int32_t b = search_start_;; ++b) {
    EnsureSize(static_cast<size_t>(b) + 256 + 1);
    bool fits = true;
    for (uint8_t code : codes) {
      if (check_[static_cast<size_t>(b) + code] != -1) {
        fits = false;
        break;
      }
    }
    if (fits) return b;
  }
}

void DoubleArrayTrie::BuildRange(const std::vector<std::string>& words,
                                 int32_t node, size_t begin, size_t end,
                                 size_t depth) {
  if (words[begin].size() == depth) {
    value_[static_cast<size_t>(node)] = static_cast<int32_t>(begin);
    ++begin;
    if (begin == end) return;
  }
  // The range is sorted, so children group into contiguous sub-ranges by
  // their byte at `depth`.
  struct Child {
    uint8_t code;
    size_t begin;
    size_t end;
  };
  std::vector<Child> children;
  std::vector<uint8_t> codes;
  size_t i = begin;
  while (i < end) {
    uint8_t code = static_cast<uint8_t>(words[i][depth]);
    size_t j = i + 1;
    while (j < end && static_cast<uint8_t>(words[j][depth]) == code) ++j;
    children.push_back(Child{code, i, j});
    codes.push_back(code);
    i = j;
  }
  int32_t b = FindBase(codes);
  base_[static_cast<size_t>(node)] = b;
  // Claim every sibling slot before recursing so a descendant's base search
  // cannot steal a slot this node still needs.
  for (const Child& child : children) {
    check_[static_cast<size_t>(b) + child.code] = node;
  }
  for (const Child& child : children) {
    BuildRange(words, b + static_cast<int32_t>(child.code), child.begin,
               child.end, depth + 1);
  }
}

DoubleArrayTrie DoubleArrayTrie::Build(const std::vector<std::string>& words) {
  for (size_t i = 0; i < words.size(); ++i) {
    CATS_CHECK(!words[i].empty());
    if (i > 0) CATS_CHECK(words[i - 1] < words[i]);
  }
  DoubleArrayTrie trie;
  trie.EnsureSize(257);
  trie.check_[0] = 0;  // root is never a free slot
  trie.num_words_ = words.size();
  if (!words.empty()) trie.BuildRange(words, kRoot, 0, words.size(), 0);
  return trie;
}

int32_t DoubleArrayTrie::Find(std::string_view word) const {
  if (check_.empty()) return kNoValue;
  int32_t node = kRoot;
  for (char c : word) {
    node = Step(node, static_cast<uint8_t>(c));
    if (node < 0) return kNoValue;
  }
  return ValueAt(node);
}

}  // namespace cats::text
