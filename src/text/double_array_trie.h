#ifndef CATS_TEXT_DOUBLE_ARRAY_TRIE_H_
#define CATS_TEXT_DOUBLE_ARRAY_TRIE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cats::text {

/// Byte-level double-array trie (Aoe 1989) over a sorted word list. Built
/// once per dictionary, read-only and thread-safe afterwards. A transition
/// is two array reads and a compare — no hashing, no pointer chasing — which
/// is what makes the segmenter's longest-match walk cheap enough to run
/// per input byte.
///
/// Layout: node s transitions on byte c to t = base_[s] + c iff
/// check_[t] == s. value_[s] is the word id terminating at s (the index of
/// the word in the sorted build list) or -1. The root is node 0 and bases
/// are >= 1, so slot 0 is never a child.
class DoubleArrayTrie {
 public:
  DoubleArrayTrie() = default;

  static constexpr int32_t kRoot = 0;
  static constexpr int32_t kNoValue = -1;

  /// Builds from `words`, which must be sorted ascending, unique and
  /// non-empty. Word i gets value i.
  static DoubleArrayTrie Build(const std::vector<std::string>& words);

  /// Follows the byte transition from `node`; -1 when there is none.
  int32_t Step(int32_t node, uint8_t byte) const {
    int32_t t = base_[static_cast<size_t>(node)] + static_cast<int32_t>(byte);
    return static_cast<size_t>(t) < check_.size() &&
                   check_[static_cast<size_t>(t)] == node
               ? t
               : -1;
  }

  /// Word id ending exactly at `node`, or kNoValue.
  int32_t ValueAt(int32_t node) const {
    return value_[static_cast<size_t>(node)];
  }

  /// Exact lookup (diagnostics / tests): the word's id or kNoValue.
  int32_t Find(std::string_view word) const;

  size_t num_words() const { return num_words_; }
  /// Allocated slot count (array length), for the `text.trie.nodes` gauge.
  size_t num_slots() const { return check_.size(); }

 private:
  void EnsureSize(size_t n);
  int32_t FindBase(const std::vector<uint8_t>& codes);
  void BuildRange(const std::vector<std::string>& words, int32_t node,
                  size_t begin, size_t end, size_t depth);

  std::vector<int32_t> base_;
  std::vector<int32_t> check_;  // -1 = free slot
  std::vector<int32_t> value_;
  size_t num_words_ = 0;
  int32_t search_start_ = 1;  // first-fit base search resumes here
};

}  // namespace cats::text

#endif  // CATS_TEXT_DOUBLE_ARRAY_TRIE_H_
