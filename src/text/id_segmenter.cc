#include "text/id_segmenter.h"

#include <algorithm>

#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::text {
namespace {

constexpr std::string_view kCanonicalReplacement = "\xEF\xBF\xBD";

/// Id of a single-codepoint token slice. A post-surrogate-fix DecodeOne
/// returns a non-U+FFFD codepoint only for strictly valid sequences, whose
/// bytes ARE the canonical encoding — so the codepoint id alone
/// reconstructs them. A U+FFFD result is canonical only when the slice is
/// literally the U+FFFD encoding; every other such slice is malformed and
/// must be interned so its exact bytes survive.
uint32_t SingleCodepointId(std::string_view slice, uint32_t cp,
                           TokenArena* arena) {
  if (cp != kReplacementChar) return IdOfCodepoint(cp);
  if (slice == kCanonicalReplacement) return IdOfCodepoint(cp);
  return arena->InternIrregular(slice);
}

}  // namespace

IdSegmenter::IdSegmenter(const SegmentationDictionary& dictionary,
                         SegmenterOptions options)
    : options_(options), max_word_codepoints_(dictionary.max_word_codepoints()) {
  dict_words_.assign(dictionary.words().begin(), dictionary.words().end());
  std::sort(dict_words_.begin(), dict_words_.end());
  trie_ = DoubleArrayTrie::Build(dict_words_);
}

std::span<const uint32_t> IdSegmenter::SegmentToIds(
    std::string_view sentence, TokenArena* arena,
    CommentStructure* structure) const {
  size_t begin = arena->BeginComment();
  std::vector<size_t>& offsets = arena->offset_scratch();
  std::vector<uint32_t>& cps = arena->codepoint_scratch();
  offsets.clear();
  cps.clear();

  // Pre-decode once: byte offsets + codepoints. The same decode feeds the
  // structural stats, replacing AnalyzeStructure's second pass.
  size_t punctuation_count = 0;
  {
    size_t pos = 0;
    while (pos < sentence.size()) {
      offsets.push_back(pos);
      uint32_t cp = DecodeOne(sentence, &pos);
      cps.push_back(cp);
      if (IsPunctuation(cp)) ++punctuation_count;
    }
    offsets.push_back(sentence.size());  // sentinel: end of text
  }
  size_t n = cps.size();
  if (structure != nullptr) {
    structure->codepoint_length = n;
    structure->punctuation_count = punctuation_count;
    structure->punctuation_ratio =
        n > 0 ? static_cast<double>(punctuation_count) /
                    static_cast<double>(n)
              : 0.0;
  }

  size_t window = std::max<size_t>(1, max_word_codepoints_);
  size_t i = 0;
  while (i < n) {
    uint32_t cp = cps[i];
    if (cp == ' ' || cp == '\t' || cp == '\n' || cp == '\r' || cp == 0x3000) {
      ++i;
      continue;
    }
    auto slice_at = [&](size_t k) {
      return sentence.substr(offsets[k], offsets[k + 1] - offsets[k]);
    };
    if (IsPunctuation(cp)) {
      if (options_.emit_punctuation) {
        arena->PushId(SingleCodepointId(slice_at(i), cp, arena));
      }
      ++i;
      continue;
    }

    // Forward maximum matching via one trie walk: extend byte-by-byte,
    // remembering the longest prefix that is a word AND ends on an input
    // codepoint boundary.
    size_t best_len = 0;
    int32_t best_value = DoubleArrayTrie::kNoValue;
    int32_t node = DoubleArrayTrie::kRoot;
    size_t max_len = std::min(window, n - i);
    for (size_t len = 1; len <= max_len; ++len) {
      bool dead = false;
      for (size_t b = offsets[i + len - 1]; b < offsets[i + len]; ++b) {
        node = trie_.Step(node, static_cast<uint8_t>(sentence[b]));
        if (node < 0) {
          dead = true;
          break;
        }
      }
      if (dead) break;
      int32_t value = trie_.ValueAt(node);
      if (value != DoubleArrayTrie::kNoValue) {
        best_len = len;
        best_value = value;
      }
    }
    if (best_len > 0) {
      arena->PushId(static_cast<uint32_t>(best_value));
      i += best_len;
    } else {
      if (options_.emit_oov_chars) {
        arena->PushId(SingleCodepointId(slice_at(i), cp, arena));
      }
      ++i;
    }
  }
  return arena->SpanFrom(begin);
}

void IdSegmenter::AppendTokenText(uint32_t id, const TokenArena& arena,
                                  std::string* out) const {
  if (IsDictId(id)) {
    out->append(dict_words_[id]);
  } else if (IsCodepointId(id)) {
    AppendCodepoint(CodepointOfId(id), out);
  } else {
    out->append(arena.IrregularBytes(id));
  }
}

std::string IdSegmenter::TokenText(uint32_t id,
                                   const TokenArena& arena) const {
  std::string out;
  AppendTokenText(id, arena, &out);
  return out;
}

}  // namespace cats::text
